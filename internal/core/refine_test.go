package core

import (
	"math"
	"testing"

	"rpm/internal/ts"
)

func mkCandidate(class int, freq int, values []float64, intra []float64) candidate {
	return candidate{
		class:      class,
		values:     ts.ZNorm(values),
		support:    freq,
		freq:       freq,
		intraDists: intra,
	}
}

func TestComputeTau(t *testing.T) {
	cands := []candidate{
		{intraDists: []float64{1, 2, 3}},
		{intraDists: []float64{4, 5}},
	}
	// pooled = [1 2 3 4 5]; 30th percentile with interpolation = 2.2
	if got := computeTau(cands, 30); math.Abs(got-2.2) > 1e-12 {
		t.Errorf("tau = %v, want 2.2", got)
	}
	if got := computeTau(nil, 30); got != 0 {
		t.Errorf("empty tau = %v", got)
	}
	if got := computeTau([]candidate{{}}, 30); got != 0 {
		t.Errorf("no-intra tau = %v", got)
	}
}

func TestRemoveSimilarKeepsMoreFrequent(t *testing.T) {
	// two nearly identical sine patterns with different frequency counts,
	// plus one genuinely different pattern
	sine := make([]float64, 32)
	sine2 := make([]float64, 32)
	ramp := make([]float64, 32)
	for i := range sine {
		sine[i] = math.Sin(float64(i) / 4)
		sine2[i] = math.Sin(float64(i)/4) + 0.001
		ramp[i] = float64(i)
	}
	cands := []candidate{
		mkCandidate(1, 3, sine, nil),
		mkCandidate(2, 9, sine2, nil), // same shape, more frequent
		mkCandidate(1, 5, ramp, nil),
	}
	kept := removeSimilar(cands, 0.5, 4)
	if len(kept) != 2 {
		t.Fatalf("kept %d candidates, want 2", len(kept))
	}
	// the frequent sine must have won over the rare one
	foundFrequentSine := false
	for _, c := range kept {
		if c.freq == 9 {
			foundFrequentSine = true
		}
		if c.freq == 3 {
			t.Error("rare duplicate survived")
		}
	}
	if !foundFrequentSine {
		t.Error("frequent sine dropped")
	}
}

func TestRemoveSimilarZeroTauKeepsAll(t *testing.T) {
	a := make([]float64, 16)
	b := make([]float64, 16)
	for i := range a {
		a[i] = math.Sin(float64(i))
		b[i] = math.Sin(float64(i))
	}
	cands := []candidate{mkCandidate(1, 2, a, nil), mkCandidate(2, 2, b, nil)}
	// τ = 0: nothing is "similar" under strict <
	if kept := removeSimilar(cands, 0, 1); len(kept) != 2 {
		t.Errorf("kept %d with tau=0, want 2", len(kept))
	}
}

func TestRemoveSimilarDifferentLengths(t *testing.T) {
	long := make([]float64, 64)
	for i := range long {
		long[i] = math.Sin(float64(i) / 5)
	}
	short := make([]float64, 20)
	copy(short, ts.ZNorm(long)[10:30]) // a sub-pattern of long
	cands := []candidate{
		mkCandidate(1, 8, long, nil),
		mkCandidate(1, 2, short, nil),
	}
	kept := removeSimilar(cands, 0.4, 0)
	if len(kept) != 1 {
		t.Fatalf("embedded sub-pattern should be removed, kept %d", len(kept))
	}
	if kept[0].freq != 8 {
		t.Error("wrong survivor")
	}
}

func TestFindDistinctEmptyInput(t *testing.T) {
	if got := findDistinct(nil, nil, DefaultOptions()); got != nil {
		t.Errorf("findDistinct(empty) = %v", got)
	}
}
