// Package bad exercises the obsnames findings: a raw-literal name, a
// duplicate constant value, and a declared-but-never-recorded name.
package bad

import "lintfix/obsnames/obs"

func record(r *obs.Registry) {
	r.Counter("bad.raw").Inc() // want "does not reference any obsnames.go constant"
	r.Counter(CtrGood).Inc()
	r.Counter(CtrDupe).Inc()
}
