package shapelettransform

import (
	"math"
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

func TestTrainPredictGunPoint(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(1)
	m := Train(s.Train, Config{})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.15 {
		t.Errorf("ST error on SynGunPoint = %v", e)
	}
	if len(m.Shapelets()) == 0 {
		t.Error("no shapelets")
	}
}

func TestTrainPredictCBF(t *testing.T) {
	s := datagen.MustByName("SynCBF").Generate(2)
	m := Train(s.Train, Config{K: 12})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.25 {
		t.Errorf("ST error on SynCBF = %v", e)
	}
	if len(m.Shapelets()) > 12 {
		t.Errorf("kept %d shapelets, cap was 12", len(m.Shapelets()))
	}
}

func TestShapeletsZNormalized(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(3)
	m := Train(s.Train, Config{})
	for _, sh := range m.Shapelets() {
		if math.Abs(ts.Mean(sh)) > 1e-6 {
			t.Error("shapelet not z-normalized")
		}
	}
}

func TestSelfSimilarPruning(t *testing.T) {
	a := scored{series: 0, start: 10, values: make([]float64, 20)}
	cases := []struct {
		c    scored
		want bool
	}{
		{scored{series: 0, start: 15, values: make([]float64, 20)}, true},  // overlaps
		{scored{series: 0, start: 30, values: make([]float64, 20)}, false}, // adjacent
		{scored{series: 1, start: 10, values: make([]float64, 20)}, false}, // other series
	}
	for i, c := range cases {
		if got := selfSimilar(c.c, []scored{a}); got != c.want {
			t.Errorf("case %d: selfSimilar = %v, want %v", i, got, c.want)
		}
	}
}

func TestDegenerateConstantData(t *testing.T) {
	var d ts.Dataset
	for i := 0; i < 6; i++ {
		v := make([]float64, 30)
		for j := range v {
			v[j] = 1 // constant: no informative shapelet exists
		}
		d = append(d, ts.Instance{Label: 1 + i%2, Values: v})
	}
	m := Train(d, Config{})
	// must not panic and must return a valid label
	if got := m.Predict(d[0].Values); got != 1 && got != 2 {
		t.Errorf("Predict = %d", got)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Train(nil, Config{})
}

func TestInfoGainSplitPerfectSeparation(t *testing.T) {
	gain, thr, _ := infoGainSplit([]float64{1, 2, 8, 9}, []int{1, 1, 2, 2})
	if math.Abs(gain-1) > 1e-12 {
		t.Errorf("gain = %v", gain)
	}
	if thr <= 2 || thr >= 8 {
		t.Errorf("threshold = %v", thr)
	}
}
