// Package nondeterm is a golden fixture for the nondeterm analyzer:
// clock, global-rand, and environment reads in a deterministic package
// are reported unless they only feed obs recording.
package nondeterm

import (
	"math/rand"
	"os"
	"time"

	"lintfix/nondeterm/obs"
)

func work() {}

// BadClock leaks the wall clock into a return value.
func BadClock() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

// BadSince reads the clock via Since outside any obs call.
func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

// GoodObsDirect times straight into an obs call.
func GoodObsDirect(sp *obs.Span, t0 time.Time) {
	sp.Add(time.Since(t0))
}

// GoodObsTwoStep is the t0 := time.Now(); ...; span.Add(time.Since(t0))
// idiom used throughout internal/core.
func GoodObsTwoStep(sp *obs.Span) {
	t0 := time.Now()
	work()
	sp.Add(time.Since(t0))
}

// BadMixedUse records the start time but also returns it, so the clock
// steers the caller.
func BadMixedUse(sp *obs.Span) time.Time {
	t0 := time.Now() // want "time.Now in deterministic package"
	sp.Add(time.Since(t0))
	return t0
}

// BadGlobalRand draws from the process-global source.
func BadGlobalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the global source"
}

// GoodSeededRand derives every draw from a caller-supplied seed.
func GoodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// BadEnv reads the process environment.
func BadEnv() string {
	return os.Getenv("HOME") // want "os.Getenv reads the process environment"
}

// GoodIgnored is a deliberate exception with a reason.
func GoodIgnored() int64 {
	//rpmlint:ignore nondeterm fixture: cache-busting nonce never reaches returned values
	return time.Now().UnixNano()
}
