package stream

// The concurrent-stream soak battery (ISSUE 8 satellite 2): 10k live
// streams driven concurrently under the race detector, a hard
// 0-allocs-per-sample pin on the steady-state append path, a per-stream
// memory bound checked against the registry's byte gauge, and a
// no-goroutine-leak pin across registry close. internal/stream itself
// never starts a goroutine (rpmlint's baregoroutine discipline); the
// concurrency here is the callers' — exactly as in production, where
// HTTP handler goroutines drive the registry.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// flipPred alternates its label on every classification call —
// maximum event churn for the hysteresis/ring paths.
type flipPred struct{ i int }

func (p *flipPred) PredictVector([]float64) int {
	p.i++
	return p.i % 2
}

// soakModel is a small but non-trivial model: three pattern lengths,
// four matchers, argmin labels.
func soakModel(t testing.TB) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	pat := func(n int) []float64 {
		v := make([]float64, n)
		x := 0.0
		for i := range v {
			x += rng.NormFloat64()
			v[i] = x
		}
		return v
	}
	m, err := NewModel([][]float64{pat(8), pat(16), pat(8), pat(12)}, argminPred{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSoak10kConcurrentStreams creates 10k streams and drives them from
// a worker pool, each stream receiving multiple chunks plus a
// subscriber, all under -race in CI. Asserts: every stream reaches the
// expected sample count, the registry byte gauge equals the summed
// per-detector footprint and respects the per-stream budget, close
// detaches every subscriber, and no goroutines leak.
func TestSoak10kConcurrentStreams(t *testing.T) {
	const (
		streams     = 10000
		chunks      = 2
		chunkLen    = 32
		workers     = 16
		maxEvents   = 8
		budgetBytes = 4096 // per-stream ceiling for this model (DESIGN.md §14)
	)
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	before := runtime.NumGoroutine()
	m := soakModel(t)
	r := NewRegistry(streams)
	cfg := Config{MaxEvents: maxEvents}

	// Phase 1: concurrent creation, appends, and subscriptions. Each
	// worker owns a disjoint id range; subscribers are registered on a
	// sample of streams to exercise notify fan-out under race.
	var wg sync.WaitGroup
	subs := make([][]*Sub, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			chunk := make([]float64, chunkLen)
			for id := w; id < streams; id += workers {
				st, created, err := r.GetOrCreate(fmt.Sprintf("s-%05d", id), func() (*Detector, any, error) {
					return m.NewDetector(cfg), nil, nil
				})
				if err != nil || !created {
					errs <- fmt.Errorf("stream %d: created=%v err=%v", id, created, err)
					return
				}
				if id%97 == 0 {
					sub, err := st.Subscribe()
					if err != nil {
						errs <- err
						return
					}
					subs[w] = append(subs[w], sub)
				}
				for c := 0; c < chunks; c++ {
					x := 0.0
					for i := range chunk {
						x += rng.NormFloat64()
						chunk[i] = x
					}
					res, err := st.Append(chunk)
					if err != nil {
						errs <- err
						return
					}
					if want := int64((c + 1) * chunkLen); res.Seen != want {
						errs <- fmt.Errorf("stream %d: seen %d want %d", id, res.Seen, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.Len() != streams {
		t.Fatalf("registry holds %d streams, want %d", r.Len(), streams)
	}

	// Memory bound: the gauge equals streams × the (fixed) per-detector
	// footprint, and that footprint respects the budget.
	per := m.NewDetector(cfg).Bytes()
	if per > budgetBytes {
		t.Fatalf("per-stream footprint %dB exceeds the %dB budget", per, budgetBytes)
	}
	if got, want := r.Bytes(), int64(streams)*int64(per); got != want {
		t.Fatalf("byte gauge %d != %d streams × %dB", got, streams, per)
	}

	// Phase 2: capacity is enforced at the soak's scale.
	if _, _, err := r.GetOrCreate("overflow", func() (*Detector, any, error) {
		return m.NewDetector(cfg), nil, nil
	}); err != ErrTooManyStreams {
		t.Fatalf("stream %d+1 admitted: %v", streams, err)
	}

	// Phase 3: close under load — every subscriber channel must close.
	r.Close()
	for _, ws := range subs {
		for _, sub := range ws {
			select {
			case _, open := <-sub.Wait():
				if open {
					// A pending coalesced token is fine; the close must
					// still be observable right behind it.
					if _, open := <-sub.Wait(); open {
						t.Fatal("subscriber channel still open after registry close")
					}
				}
			default:
				t.Fatal("subscriber channel not closed after registry close")
			}
		}
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatalf("after close: Len=%d Bytes=%d", r.Len(), r.Bytes())
	}

	// No goroutine leaks: the package spawned none, and the workers are
	// joined. Allow the runtime a beat to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestAppendZeroAllocSteadyState pins the hot-path allocation contract:
// once warm (and with the event ring saturated so the overwrite branch
// is the one measured), appending costs zero heap allocations per
// sample — the property that makes 10k-stream ingest sustainable.
func TestAppendZeroAllocSteadyState(t *testing.T) {
	m := soakModel(t)

	// Alternating-label detector with a tiny ring: the flip predictor
	// changes label every sample, so K=1 commits an event per sample and
	// the ring overwrite branch is the one measured.
	mFlutter, err := NewModel([][]float64{ramp(8), ramp(12)}, &flipPred{})
	if err != nil {
		t.Fatal(err)
	}
	flutter := mFlutter.NewDetector(Config{ConfirmWindows: 1, MaxEvents: 2})
	rng := rand.New(rand.NewSource(3))
	chunk := make([]float64, 64)
	fill := func(d *Detector) {
		x := 0.0
		for i := range chunk {
			x += rng.NormFloat64()
			chunk[i] = x
		}
		d.Append(chunk)
	}
	for i := 0; i < 8; i++ {
		fill(flutter)
	}
	if flutter.EventSeq() < 10 {
		t.Fatalf("flutter detector committed only %d events; ring overwrite path not reached", flutter.EventSeq())
	}
	quiet := m.NewDetector(Config{})
	for i := 0; i < 8; i++ {
		fill(quiet)
	}
	for name, d := range map[string]*Detector{"quiet": quiet, "flutter": flutter} {
		if allocs := testing.AllocsPerRun(200, func() { fill(d) }); allocs != 0 {
			t.Errorf("%s: %v allocs per 64-sample append, want 0", name, allocs)
		}
	}

	// The registry wrapper adds nothing on the no-event path.
	r := NewRegistry(0)
	st, _, err := r.GetOrCreate("s", func() (*Detector, any, error) {
		return m.NewDetector(Config{ConfirmWindows: 1 << 30}), nil, nil // gate never commits
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := st.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() { st.Append(chunk) }); allocs != 0 {
		t.Errorf("Stream.Append (no events): %v allocs, want 0", allocs)
	}
}
