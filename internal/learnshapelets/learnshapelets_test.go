package learnshapelets

import (
	"math"
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

func TestTrainPredictGunPoint(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(1)
	m := Train(s.Train, Config{Epochs: 200})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.2 {
		t.Errorf("LS error on SynGunPoint = %v", e)
	}
}

func TestTrainPredictCBF(t *testing.T) {
	s := datagen.MustByName("SynCBF").Generate(2)
	m := Train(s.Train, Config{Epochs: 200})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.3 {
		t.Errorf("LS error on SynCBF = %v", e)
	}
}

func TestSoftMinApproximatesHardMin(t *testing.T) {
	s := []float64{1, 2, 3}
	v := []float64{0, 0, 1, 2, 3, 0, 0}
	// exact match exists at offset 2 -> hard min = 0
	m, psi, d := softMin(s, v, -100)
	if m > 1e-6 {
		t.Errorf("softmin = %v, want ~0", m)
	}
	if len(psi) != len(v)-len(s)+1 || len(d) != len(psi) {
		t.Fatalf("lengths: psi %d, d %d", len(psi), len(d))
	}
	var sum float64
	for _, p := range psi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmin weights sum to %v", sum)
	}
	// with very sharp alpha, the weight mass is on the best window
	if psi[2] < 0.99 {
		t.Errorf("psi[2] = %v, want ~1", psi[2])
	}
}

func TestSoftMinUpperBoundsHardMin(t *testing.T) {
	// softmin with finite alpha >= hard min, and decreases toward it
	s := []float64{0.5, -0.5}
	v := []float64{1, 0, -1, 0.4, -0.6}
	hard := math.Inf(1)
	for j := 0; j+2 <= len(v); j++ {
		d := ((s[0]-v[j])*(s[0]-v[j]) + (s[1]-v[j+1])*(s[1]-v[j+1])) / 2
		if d < hard {
			hard = d
		}
	}
	m10, _, _ := softMin(s, v, -10)
	m50, _, _ := softMin(s, v, -50)
	if m10 < hard-1e-12 || m50 < hard-1e-12 {
		t.Errorf("softmin below hard min: %v, %v < %v", m10, m50, hard)
	}
	if m50 > m10+1e-12 {
		t.Errorf("sharper alpha should be closer to hard min: %v > %v", m50, m10)
	}
}

func TestShapeletsLearnedMoveTowardDiscriminativeShape(t *testing.T) {
	// Training must reduce error vs. the untrained (0-epoch-like) model;
	// proxy: trained model beats majority-class guessing on ItalyPower.
	s := datagen.MustByName("SynItalyPower").Generate(3)
	m := Train(s.Train, Config{Epochs: 150})
	preds := m.PredictBatch(s.Test)
	e := stats.ErrorRate(preds, s.Test.Labels())
	if e > 0.4 {
		t.Errorf("LS error %v no better than chance", e)
	}
	if len(m.Shapelets()) == 0 {
		t.Error("no shapelets learned")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(4)
	m1 := Train(s.Train, Config{Epochs: 30, Seed: 5})
	m2 := Train(s.Train, Config{Epochs: 30, Seed: 5})
	p1 := m1.PredictBatch(s.Test)
	p2 := m2.PredictBatch(s.Test)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different predictions")
		}
	}
}

func TestMulticlass(t *testing.T) {
	s := datagen.MustByName("SynControl").Generate(5)
	m := Train(s.Train, Config{Epochs: 150})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.45 {
		t.Errorf("LS error on 6-class SynControl = %v", e)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Train(nil, Config{})
}

func TestInitShapeletsShapes(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(6)
	m := Train(s.Train, Config{Epochs: 1, K: 3, Scales: []float64{0.1, 0.2}})
	shs := m.Shapelets()
	if len(shs) != 6 {
		t.Fatalf("got %d shapelets, want 6 (3 per scale)", len(shs))
	}
	if len(shs[0]) >= len(shs[5]) {
		t.Errorf("scales not respected: first len %d, last len %d", len(shs[0]), len(shs[5]))
	}
}

func TestPredictShorterQueryDoesNotPanic(t *testing.T) {
	var d ts.Dataset
	for i := 0; i < 8; i++ {
		v := make([]float64, 30)
		lab := 1 + i%2
		v[5+i%2*10] = 3
		d = append(d, ts.Instance{Label: lab, Values: v})
	}
	m := Train(d, Config{Epochs: 10})
	got := m.Predict(make([]float64, 4)) // shorter than some shapelets
	if got != 1 && got != 2 {
		t.Errorf("Predict = %d", got)
	}
}
