package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every handle type through its full method set on
// nil receivers: nothing may panic, and all reads return zero values.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Pool("p") != nil || r.StartSpan("s") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(7)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var s *Span
	if s.Start("x") != nil || s.Child("y") != nil {
		t.Fatal("nil span must produce nil children")
	}
	s.End()
	s.Add(time.Second)
	s.AddBusy(time.Second)
	if s.Wall() != 0 {
		t.Fatal("nil span wall")
	}
	var p *Pool
	p.WorkerTask(0, time.Millisecond)
	p.RunDone(4, time.Millisecond)
	var snap *Snapshot
	if snap.FindSpan("x") != nil || snap.Counter("c") != 0 {
		t.Fatal("nil snapshot reads")
	}
	if b, err := snap.JSON(); err != nil || string(b) != "null" {
		t.Fatalf("nil snapshot JSON = %q, %v", b, err)
	}
	if got := snap.Text(); !strings.Contains(got, "no instrumentation") {
		t.Fatalf("nil snapshot text = %q", got)
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	if c2 := r.Counter("hits"); c2 != c {
		t.Fatal("same name must return the same counter")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("level")
	g.Set(10)
	g.SetMax(7) // lower: must not stick
	if g.Value() != 10 {
		t.Fatalf("gauge = %d, want 10 after SetMax(7)", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Fatalf("gauge = %d, want 12", g.Value())
	}
	snap := r.Snapshot()
	if snap.Counter("hits") != 5 {
		t.Fatalf("snapshot counter = %d", snap.Counter("hits"))
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "level" || snap.Gauges[0].Value != 12 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
}

func TestSpanTreeAndAggregate(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("train")
	step := root.Start("step")
	time.Sleep(time.Millisecond)
	step.End()
	agg := root.Child("agg")
	agg.Add(3 * time.Millisecond)
	agg.Add(2 * time.Millisecond)
	agg.AddBusy(10 * time.Millisecond)
	root.End()

	snap := r.Snapshot()
	got := snap.FindSpan("agg")
	if got == nil {
		t.Fatal("agg span missing")
	}
	if got.Wall() != 5*time.Millisecond {
		t.Fatalf("agg wall = %v, want 5ms", got.Wall())
	}
	if got.Count != 2 {
		t.Fatalf("agg count = %d, want 2", got.Count)
	}
	if got.BusyNS != int64(10*time.Millisecond) {
		t.Fatalf("agg busy = %d", got.BusyNS)
	}
	tr := snap.FindSpan("train")
	if tr == nil || tr.WallNS < int64(time.Millisecond) {
		t.Fatalf("train span = %+v", tr)
	}
	if len(tr.Children) != 2 {
		t.Fatalf("train children = %d, want 2", len(tr.Children))
	}
	if snap.FindSpan("nope") != nil {
		t.Fatal("FindSpan on missing name must be nil")
	}
}

// TestRunningSpanReportsElapsed: a snapshot taken mid-span shows
// elapsed-so-far wall time so live views are useful.
func TestRunningSpanReportsElapsed(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("running")
	time.Sleep(2 * time.Millisecond)
	s := r.Snapshot().FindSpan("running")
	if s == nil || s.WallNS <= 0 {
		t.Fatalf("running span = %+v, want positive elapsed wall", s)
	}
}

func TestPoolAccounting(t *testing.T) {
	r := NewRegistry()
	p := r.Pool("work")
	p.WorkerTask(0, 2*time.Millisecond)
	p.WorkerTask(1, 3*time.Millisecond)
	p.WorkerTask(MaxPoolWorkers+5, time.Millisecond) // clamps into last slot
	p.RunDone(2, 10*time.Millisecond)

	s := r.Snapshot()
	if len(s.Pools) != 1 {
		t.Fatalf("pools = %d", len(s.Pools))
	}
	ps := s.Pools[0]
	if ps.Tasks != 3 || ps.Runs != 1 || ps.MaxWorkers != 2 {
		t.Fatalf("pool snapshot = %+v", ps)
	}
	if ps.BusyNS != int64(6*time.Millisecond) {
		t.Fatalf("busy = %d", ps.BusyNS)
	}
	// capacity 2×10ms − busy 6ms = 14ms idle
	if ps.IdleNS != int64(14*time.Millisecond) {
		t.Fatalf("idle = %d, want 14ms", ps.IdleNS)
	}
	if len(ps.TasksPerWorker) != MaxPoolWorkers {
		t.Fatalf("perWorker len = %d (clamped slot must be last)", len(ps.TasksPerWorker))
	}
	if ps.TasksPerWorker[0] != 1 || ps.TasksPerWorker[1] != 1 || ps.TasksPerWorker[MaxPoolWorkers-1] != 1 {
		t.Fatalf("perWorker = %v", ps.TasksPerWorker)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines;
// meaningful under -race, and the final counts must be exact.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("root")
	agg := root.Child("agg")
	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("n").Inc()
				r.Gauge("max").SetMax(int64(g*iters + i))
				agg.Add(time.Microsecond)
				r.Pool("p").WorkerTask(g, time.Microsecond)
				if i%50 == 0 {
					_ = r.Snapshot() // reads race-free against writes
				}
			}
		}()
	}
	wg.Wait()
	root.End()
	s := r.Snapshot()
	if got := s.Counter("n"); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := s.FindSpan("agg").Count; got != goroutines*iters {
		t.Fatalf("agg count = %d", got)
	}
	if got := s.Pools[0].Tasks; got != goroutines*iters {
		t.Fatalf("pool tasks = %d", got)
	}
	if got := s.Gauges[0].Value; got != goroutines*iters-1 {
		t.Fatalf("gauge max = %d, want %d", got, goroutines*iters-1)
	}
}

func TestSnapshotRendering(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("train")
	sp.Start("fit").End()
	sp.End()
	r.Counter("b.ctr").Inc()
	r.Counter("a.ctr").Add(2)
	r.Gauge("workers").Set(4)
	r.Pool("p").RunDone(1, time.Millisecond)
	s := r.Snapshot()

	// counters sorted by name for stable JSON
	if s.Counters[0].Name != "a.ctr" || s.Counters[1].Name != "b.ctr" {
		t.Fatalf("counters not name-sorted: %+v", s.Counters)
	}
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counter("a.ctr") != 2 {
		t.Fatal("round-tripped counter lost")
	}
	txt := s.Text()
	for _, want := range []string{"spans:", "train", "fit", "counters:", "a.ctr", "gauges:", "workers", "pools:"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, txt)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)

	h := Handler(r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("handler JSON invalid: %v", err)
	}
	if snap.Counter("hits") != 3 {
		t.Fatal("handler snapshot lost counter")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs?format=text", nil))
	if !strings.Contains(rec.Body.String(), "hits") {
		t.Fatalf("text format missing counter: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if strings.TrimSpace(rec.Body.String()) != "null" {
		t.Fatalf("nil registry handler = %q, want null", rec.Body.String())
	}
}
