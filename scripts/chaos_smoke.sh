#!/usr/bin/env bash
# Chaos smoke: the binary-level leg of `make chaos`. Trains a small
# model, serves it with rpmserved running a REAL fault storm (injected
# model-load failures, flush stalls, queue saturation, deadline
# exhaustion), hot-reloads a corrupt snapshot mid-traffic, and drives it
# with rpmload through the retrying client. The run proves the
# resilience story end to end at the process boundary:
#
#   - the server survives the storm and keeps answering (rpmload -strict
#     fails on any terminal error; retries + Retry-After absorb the
#     injected shedding and stalls),
#   - a corrupt model file never evicts the serving version,
#   - /debug/faults shows the storm actually fired,
#   - SIGTERM still drains cleanly mid-chaos (exit 0, drain log line).
#
# Usage: scripts/chaos_smoke.sh [duration] [concurrency]
set -euo pipefail

duration="${1:-2s}"
concurrency="${2:-4}"
port="${CHAOS_SMOKE_PORT:-18081}"
seed="${CHAOS_SMOKE_SEED:-7}"

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
served_pid=""
cleanup() {
    [ -n "$served_pid" ] && kill "$served_pid" 2>/dev/null || true
    [ -n "$served_pid" ] && wait "$served_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/ucrgen ./cmd/rpmcli ./cmd/rpmserved ./cmd/rpmload

echo "== train"
"$work/bin/ucrgen" -dir "$work/data" -name SynCBF -seed 1
mkdir -p "$work/models"
"$work/bin/rpmcli" \
    -train "$work/data/SynCBF_TRAIN" -test "$work/data/SynCBF_TEST" \
    -mode fixed -window 40 -paa 6 -alpha 4 \
    -save "$work/models/cbf.json"

echo "== serve under fault storm (seed $seed)"
# Low-probability faults at every serving-path site: enough to fire
# repeatedly under load without starving the run. store.load skips the
# initial scan so the server comes up serving.
spec="store.load:skip=1:p=0.5;batcher.flush:p=0.05:d=10ms;batcher.enqueue:p=0.02;server.deadline:p=0.02"
"$work/bin/rpmserved" -addr "127.0.0.1:$port" -models "$work/models" \
    -faults "$spec" -faults-seed "$seed" >"$work/served.log" 2>&1 &
served_pid=$!

echo "== corrupt-reload mid-traffic"
# A corrupt snapshot plus injected load failures: neither may evict the
# serving model. Kick a reload storm in the background while loading.
(
    sleep 0.5
    echo '{"garbage": tru' > "$work/models/broken.json"
    for _ in 1 2 3; do
        curl -fsS -X POST "http://127.0.0.1:$port/admin/reload" >/dev/null || true
        sleep 0.3
    done
) &
reload_pid=$!

echo "== load ($duration, $concurrency workers, retrying client)"
# -retries: terminal failures only after the client's backoff budget is
# spent; injected 429/504/stalls must all be absorbed. -strict makes
# any terminal error fail the smoke.
"$work/bin/rpmload" \
    -addr "http://127.0.0.1:$port" -model cbf \
    -duration "$duration" -concurrency "$concurrency" \
    -retries 4 -wait 10s -strict
wait "$reload_pid"

echo "== model survived the storm"
curl -fsS "http://127.0.0.1:$port/v1/models" | grep -q '"name":"cbf"' \
    || { echo "chaos smoke FAIL: model cbf gone after reload storm"; exit 1; }

echo "== faults actually fired"
events="$(curl -fsS "http://127.0.0.1:$port/debug/faults")"
echo "$events" | grep -q '"site"' \
    || { echo "chaos smoke FAIL: /debug/faults shows no injected events: $events"; exit 1; }

echo "== drain under chaos"
kill -TERM "$served_pid"
wait "$served_pid"
rc=$?
served_pid=""
[ "$rc" -eq 0 ] || { echo "chaos smoke FAIL: rpmserved exited $rc on SIGTERM"; exit 1; }
grep -q "drained cleanly" "$work/served.log" \
    || { echo "chaos smoke FAIL: no clean-drain log line"; tail "$work/served.log"; exit 1; }

echo "chaos smoke OK"
