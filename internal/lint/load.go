package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir),
// compiles their dependencies' export data via the go command, and
// parses + type-checks every matched package from source.
//
// Only non-test GoFiles are loaded: every rpmlint analyzer exempts
// _test.go files, so the driver simply never sees them. The go command
// is the only external process involved; type checking itself is pure
// go/parser + go/types + go/importer (stdlib).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{
		exports: exports,
		inner: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
	}

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// exportImporter resolves imports from the export data files recorded
// by `go list -export`, special-casing "unsafe".
type exportImporter struct {
	exports map[string]string
	inner   types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.inner.Import(path)
}
