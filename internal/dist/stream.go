package dist

import (
	"math"

	"rpm/internal/ts"
)

// This file is the incremental (streaming) counterpart of the batch
// closest-match scan: the same arithmetic as bestMatchZ, re-cut so a
// caller that receives a series one sample at a time pays O(1) rolling
// mean/variance work per (sample, window length) and one early-abandoned
// window evaluation per (sample, pattern) — and ends up with a Match
// that is bit-identical to Matcher.Best over the fully assembled series
// (pinned by quick.Check in stream_test.go).
//
// The split of responsibilities mirrors the Query path: RollingStats is
// the per-length normalization state every same-length pattern shares
// (the WindowStats recurrence, kept as running sums instead of a
// precomputed array), StreamScan is the tens-of-bytes per-pattern state
// (current best squared distance and its position), and the caller —
// internal/stream's Detector — owns the one ring buffer of raw samples
// all lengths read their windows from.

// RollingStats is the O(1)-per-sample rolling z-normalization state of
// one window length over an append-only series: the running sum and
// sum-of-squares of the most recent n samples. Push folds one sample in
// using the exact recurrence of bestMatchZ / WindowStats.compute —
// initial element-by-element accumulation over the first n samples,
// then sum += in - out per slide — so the (mean, inv) pair it yields
// for window i is bit-identical to the batch scan's, including the
// inv == 0 constant-window sentinel. Do not "simplify" the update
// arithmetic: any reassociation rounds differently and breaks the
// streaming-vs-batch equivalence contract.
type RollingStats struct {
	n    int
	fn   float64
	sum  float64
	sumq float64
	seen int
}

// NewRollingStats returns rolling stats for window length n (n > 0; it
// panics otherwise, matching Query.Stats' contract).
func NewRollingStats(n int) RollingStats {
	if n <= 0 {
		panic("dist: RollingStats window length out of range")
	}
	return RollingStats{n: n, fn: float64(n)}
}

// Len returns the window length.
func (r *RollingStats) Len() int { return r.n }

// Seen returns how many samples have been pushed.
func (r *RollingStats) Seen() int { return r.seen }

// Full reports whether at least one complete window has been seen.
func (r *RollingStats) Full() bool { return r.seen >= r.n }

// Push folds the next sample in and, once a full window exists, returns
// that window's (mean, inv) — inv 0 for a constant window, mirroring
// WindowStats — with ok true. out must be the sample leaving the window
// (the one pushed n samples ago); it is ignored while the first window
// is still filling, so callers may pass 0 until Full reports true
// before the push.
func (r *RollingStats) Push(in, out float64) (mean, inv float64, ok bool) {
	if r.seen < r.n {
		// First window still filling: the element-by-element accumulation
		// of bestMatchZ's initial loop, one element per call.
		r.sum += in
		r.sumq += in * in
		r.seen++
		if r.seen < r.n {
			return 0, 0, false
		}
	} else {
		r.seen++
		r.sum += in - out
		r.sumq += in*in - out*out
	}
	mean = r.sum / r.fn
	variance := r.sumq/r.fn - mean*mean
	if variance < ts.ZNormThreshold*ts.ZNormThreshold {
		return mean, 0, true // constant window sentinel: z-norm is the zero vector
	}
	return mean, 1 / math.Sqrt(variance), true
}

// Reset returns the stats to their initial (empty) state.
func (r *RollingStats) Reset() {
	r.sum, r.sumq, r.seen = 0, 0, 0
}

// StreamScan is the per-pattern state of a streaming closest-match
// search: the best squared distance seen so far and its window start
// position. Two words per pattern — the footprint that lets one process
// hold the scan state of a hundred thousand streams.
type StreamScan struct {
	best    float64
	bestPos int
}

// Reset empties the scan (no window evaluated yet).
func (s *StreamScan) Reset() {
	s.best = math.Inf(1)
	s.bestPos = -1
}

// NewStreamScan returns an empty scan.
func NewStreamScan() StreamScan {
	var s StreamScan
	s.Reset()
	return s
}

// StreamEval folds one window into the scan: window is the raw samples
// series[pos : pos+m.Len()], (mean, inv) its RollingStats output. The
// body is bestMatchZ's window evaluation verbatim — the constant-window
// Σzp² branch, the per-element early abandon against the current best,
// the strict d < best update — so evaluating windows 0..i in order
// leaves the scan bit-identical to a batch scan over series[:pos+m.Len()].
// Ties need no explicit rule: positions only grow, so the first strict
// improvement wins, exactly as in the batch scan.
func (m *Matcher) StreamEval(s *StreamScan, window []float64, mean, inv float64, pos int) {
	best := s.best
	var d float64
	if inv == 0 {
		// constant window: z-norm is the zero vector
		for _, x := range m.zp {
			d += x * x
			if d > best {
				d = math.Inf(1)
				break
			}
		}
	} else {
		zp := m.zp
		w := window[:len(zp)] // BCE hint + contract check: len(window) == m.Len()
		for j, x := range w {
			diff := (x-mean)*inv - zp[j]
			d += diff * diff
			if d > best {
				d = math.Inf(1)
				break
			}
		}
	}
	if d < best {
		s.best = d
		s.bestPos = pos
	}
}

// StreamMatch reads the scan as a Match in Best's units: the length-
// normalized root distance and the best window start (+Inf / -1 while
// no window has been evaluated). For any series with at least m.Len()
// samples fed through StreamEval in window order, the result is
// bit-identical to m.Best(series) — Dist AND Pos. Streaming never
// role-swaps: a stream shorter than the pattern reports +Inf / -1 where
// Best would slide the series inside the pattern instead.
func (m *Matcher) StreamMatch(s *StreamScan) Match {
	return Match{Dist: math.Sqrt(s.best / float64(len(m.zp))), Pos: s.bestPos}
}
