package main

// Counter/summary names of the run registry, in the repo-wide
// obsnames.go convention (rpmlint obsnames): every recorded series is
// declared here, so the generator's observable surface reads in one
// place.
const (
	ctrOK        = "load.ok"
	ctrErrors    = "load.errors"
	ctrTransport = "load.errors.transport"
	// ctrShed counts 429 answers: deliberate backpressure, not failures
	// (kept out of load.errors so -strict ignores them).
	ctrShed    = "load.shed"
	ctrDropped = "load.dropped"
	sumLatency = "load.latency"
	// ctrErrPrefix prefixes one counter per distinct terminal error
	// code (taxonomy code or http_<status>), plus breaker_open from the
	// resilient client.
	ctrErrPrefix = "load.errors."
)
