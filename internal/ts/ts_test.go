package ts

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	cases := []struct {
		name string
		v    []float64
		mean float64
		std  float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"constant", []float64{2, 2, 2, 2}, 2, 0},
		{"simple", []float64{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{"negative", []float64{-1, 1}, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.v); !almostEqual(got, c.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
			if got := Std(c.v); !almostEqual(got, c.std, 1e-12) {
				t.Errorf("Std = %v, want %v", got, c.std)
			}
		})
	}
}

func TestZNormProperties(t *testing.T) {
	f := func(raw []float64) bool {
		// clamp values to a sane range to avoid overflow in quick-generated data
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			v = append(v, math.Mod(x, 1e6))
		}
		if len(v) < 2 {
			return true
		}
		z := ZNorm(v)
		if Std(v) < ZNormThreshold {
			for _, x := range z {
				if x != 0 {
					return false
				}
			}
			return true
		}
		return almostEqual(Mean(z), 0, 1e-6) && almostEqual(Std(z), 1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZNormConstantSeries(t *testing.T) {
	z := ZNorm([]float64{3, 3, 3})
	for _, x := range z {
		if x != 0 {
			t.Fatalf("constant series should z-normalize to zeros, got %v", z)
		}
	}
}

func TestZNormIntoInPlace(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	want := ZNorm(v)
	ZNormInto(v, v)
	if !reflect.DeepEqual(v, want) {
		t.Errorf("in-place ZNormInto = %v, want %v", v, want)
	}
}

func TestZNormIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ZNormInto(make([]float64, 2), make([]float64, 3))
}

func TestWindow(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4}
	w, err := Window(v, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, []float64{1, 2, 3}) {
		t.Errorf("window = %v", w)
	}
	if _, err := Window(v, 3, 3); err == nil {
		t.Error("expected error for out-of-range window")
	}
	if _, err := Window(v, -1, 2); err == nil {
		t.Error("expected error for negative start")
	}
	if _, err := Window(v, 0, 0); err == nil {
		t.Error("expected error for zero-length window")
	}
}

func TestNumWindows(t *testing.T) {
	cases := []struct{ m, n, want int }{
		{10, 3, 8}, {5, 5, 1}, {4, 5, 0}, {10, 0, 0}, {0, 1, 0},
	}
	for _, c := range cases {
		if got := NumWindows(c.m, c.n); got != c.want {
			t.Errorf("NumWindows(%d,%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestRotate(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4}
	cases := []struct {
		cut  int
		want []float64
	}{
		{0, []float64{0, 1, 2, 3, 4}},
		{2, []float64{2, 3, 4, 0, 1}},
		{5, []float64{0, 1, 2, 3, 4}},
		{7, []float64{2, 3, 4, 0, 1}},
		{-1, []float64{4, 0, 1, 2, 3}},
	}
	for _, c := range cases {
		if got := Rotate(v, c.cut); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Rotate(cut=%d) = %v, want %v", c.cut, got, c.want)
		}
	}
}

func TestRotateProperties(t *testing.T) {
	f := func(v []float64, cut int) bool {
		n := len(v)
		r := Rotate(v, cut)
		if len(r) != n {
			return false
		}
		if n == 0 {
			return true
		}
		// double rotation by complementary cuts restores the original
		k := ((cut % n) + n) % n
		back := Rotate(r, n-k)
		return reflect.DeepEqual(back, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRotateHalf(t *testing.T) {
	got := RotateHalf([]float64{1, 2, 3, 4})
	if !reflect.DeepEqual(got, []float64{3, 4, 1, 2}) {
		t.Errorf("RotateHalf = %v", got)
	}
	// odd length: cut at floor(n/2)
	got = RotateHalf([]float64{1, 2, 3})
	if !reflect.DeepEqual(got, []float64{2, 3, 1}) {
		t.Errorf("RotateHalf odd = %v", got)
	}
}

func TestConcat(t *testing.T) {
	c := Concat([]float64{1, 2}, []float64{3, 4, 5}, []float64{6})
	if !reflect.DeepEqual(c.Values, []float64{1, 2, 3, 4, 5, 6}) {
		t.Errorf("Values = %v", c.Values)
	}
	if !reflect.DeepEqual(c.Starts, []int{0, 2, 5}) {
		t.Errorf("Starts = %v", c.Starts)
	}
	if !reflect.DeepEqual(c.Lens, []int{2, 3, 1}) {
		t.Errorf("Lens = %v", c.Lens)
	}
}

func TestSeriesIndex(t *testing.T) {
	c := Concat([]float64{1, 2}, []float64{3, 4, 5}, []float64{6})
	cases := []struct{ off, want int }{
		{0, 0}, {1, 0}, {2, 1}, {4, 1}, {5, 2}, {6, -1}, {-1, -1},
	}
	for _, cse := range cases {
		if got := c.SeriesIndex(cse.off); got != cse.want {
			t.Errorf("SeriesIndex(%d) = %d, want %d", cse.off, got, cse.want)
		}
	}
}

func TestSpansJunction(t *testing.T) {
	c := Concat([]float64{1, 2, 3}, []float64{4, 5, 6})
	cases := []struct {
		start, n int
		want     bool
	}{
		{0, 3, false}, {3, 3, false}, {2, 2, true}, {1, 4, true},
		{0, 6, true}, {5, 1, false}, {5, 2, true}, {0, 0, false},
	}
	for _, cse := range cases {
		if got := c.SpansJunction(cse.start, cse.n); got != cse.want {
			t.Errorf("SpansJunction(%d,%d) = %v, want %v", cse.start, cse.n, got, cse.want)
		}
	}
}

func TestLocal(t *testing.T) {
	c := Concat([]float64{1, 2, 3}, []float64{4, 5})
	if s, l := c.Local(4); s != 1 || l != 1 {
		t.Errorf("Local(4) = (%d,%d), want (1,1)", s, l)
	}
	if s, l := c.Local(99); s != -1 || l != -1 {
		t.Errorf("Local(99) = (%d,%d), want (-1,-1)", s, l)
	}
}

func TestConcatDatasetRoundTrip(t *testing.T) {
	d := Dataset{
		{Label: 1, Values: []float64{1, 2, 3}},
		{Label: 2, Values: []float64{4, 5}},
	}
	c := ConcatDataset(d)
	for i, in := range d {
		start := c.Starts[i]
		got := c.Values[start : start+c.Lens[i]]
		if !reflect.DeepEqual(got, in.Values) {
			t.Errorf("series %d = %v, want %v", i, got, in.Values)
		}
	}
}

func TestDatasetClassesAndByClass(t *testing.T) {
	d := Dataset{
		{Label: 3, Values: []float64{1}},
		{Label: 1, Values: []float64{2}},
		{Label: 3, Values: []float64{3}},
	}
	if got := d.Classes(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Classes = %v", got)
	}
	by := d.ByClass()
	if len(by[3]) != 2 || len(by[1]) != 1 {
		t.Errorf("ByClass sizes wrong: %v", by)
	}
	if got := d.Labels(); !reflect.DeepEqual(got, []int{3, 1, 3}) {
		t.Errorf("Labels = %v", got)
	}
}

func TestDatasetCloneIndependence(t *testing.T) {
	d := Dataset{{Label: 1, Values: []float64{1, 2}}}
	c := d.Clone()
	c[0].Values[0] = 99
	c[0].Label = 7
	if d[0].Values[0] != 1 || d[0].Label != 1 {
		t.Error("Clone is not independent of the original")
	}
}

func TestMinLen(t *testing.T) {
	if got := (Dataset{}).MinLen(); got != 0 {
		t.Errorf("empty MinLen = %d", got)
	}
	d := Dataset{
		{Values: make([]float64, 5)},
		{Values: make([]float64, 3)},
		{Values: make([]float64, 9)},
	}
	if got := d.MinLen(); got != 3 {
		t.Errorf("MinLen = %d, want 3", got)
	}
}

func TestInstanceLen(t *testing.T) {
	in := Instance{Label: 1, Values: []float64{1, 2, 3}}
	if in.Len() != 3 {
		t.Errorf("Len = %d", in.Len())
	}
	if (Instance{}).Len() != 0 {
		t.Error("empty Len != 0")
	}
}

func TestResampleLocal(t *testing.T) {
	// Resample is exercised extensively from the dist package; this local
	// test pins its basic contract for per-package coverage.
	got := Resample([]float64{0, 2}, 3)
	want := []float64{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Resample = %v, want %v", got, want)
	}
	if Resample(nil, 2)[0] != 0 {
		t.Error("empty input should resample to zeros")
	}
}

func TestZNormInstanceNormalizesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Dataset{}
	for i := 0; i < 5; i++ {
		v := make([]float64, 50)
		for j := range v {
			v[j] = rng.NormFloat64()*3 + 10
		}
		d = append(d, Instance{Label: i, Values: v})
	}
	ZNormInstance(d)
	for i, in := range d {
		if !almostEqual(Mean(in.Values), 0, 1e-9) || !almostEqual(Std(in.Values), 1, 1e-9) {
			t.Errorf("instance %d not normalized", i)
		}
	}
}
