package datagen

import (
	"math"
	"math/rand"
)

// Suite returns the full synthetic evaluation suite: one generator per
// UCR dataset appearing in the paper's evaluation tables, structurally
// faithful but size-scaled so the entire 6-classifier comparison runs on a
// laptop (the paper's shapes — who wins, by roughly what factor — are the
// reproduction target, not absolute runtimes). Names carry a "Syn" prefix
// to make the substitution explicit in every report.
func Suite() []Generator {
	out := []Generator{
		CBF(),
		TwoPatterns(),
		SyntheticControl(),
		Trace(),
		GunPoint(),
		Coffee(),
		ECGFiveDays(),
		ECG200(),
		ItalyPowerDemand(),
		FaceFour(),
		SwedishLeaf(),
		OSULeaf(),
		MoteStrain(),
		Lightning2(),
		Wafer(),
		Beef(),
		Symbols(),
	}
	return append(out, suite2()...)
}

// CBF is the classic Cylinder-Bell-Funnel synthetic dataset (Saito 1994),
// generated from its published equations: an event window [a,b] with a ~
// U(16,32), b-a ~ U(32,96), amplitude 6+N(0,1), carrying a plateau
// (cylinder), an increasing ramp with a sudden drop (bell), or a sudden
// rise with a decreasing ramp (funnel), plus N(0,1) noise.
func CBF() Generator {
	const n = 128
	return Generator{
		Spec: Spec{Name: "SynCBF", Classes: 3, TrainSize: 30, TestSize: 300, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			a := int(uniform(rng, 16, 32))
			b := a + int(uniform(rng, 32, 96))
			if b > n-1 {
				b = n - 1
			}
			amp := 6 + rng.NormFloat64()
			for i := a; i <= b; i++ {
				switch class {
				case 1: // cylinder
					v[i] += amp
				case 2: // bell
					v[i] += amp * float64(i-a) / float64(b-a+1)
				case 3: // funnel
					v[i] += amp * float64(b-i) / float64(b-a+1)
				}
			}
			addNoise(v, rng, 1)
			return v
		},
	}
}

// TwoPatterns embeds two step events (each either up-down or down-up) at
// jittered positions in the two halves of the series; the four classes are
// the four combinations, so only local event shapes separate them.
func TwoPatterns() Generator {
	const n = 128
	event := func(v []float64, rng *rand.Rand, pos int, up bool) {
		width := 8 + rng.Intn(8)
		amp := 4.0 + rng.Float64()
		if !up {
			amp = -amp
		}
		for i := pos; i < pos+width && i < len(v); i++ {
			v[i] += amp
		}
		for i := pos + width; i < pos+2*width && i < len(v); i++ {
			v[i] -= amp
		}
	}
	return Generator{
		Spec: Spec{Name: "SynTwoPatterns", Classes: 4, TrainSize: 100, TestSize: 200, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			firstUp := class == 1 || class == 2
			secondUp := class == 1 || class == 3
			event(v, rng, 5+rng.Intn(30), firstUp)
			event(v, rng, 69+rng.Intn(30), secondUp)
			addNoise(v, rng, 0.6)
			return v
		},
	}
}

// SyntheticControl reproduces the six control-chart classes: normal,
// cyclic, increasing trend, decreasing trend, upward shift, downward shift.
func SyntheticControl() Generator {
	const n = 60
	return Generator{
		Spec: Spec{Name: "SynControl", Classes: 6, TrainSize: 60, TestSize: 120, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			m := 30.0
			for i := range v {
				v[i] = m
			}
			switch class {
			case 1: // normal: noise only
			case 2: // cyclic
				addSine(v, uniform(rng, 10, 15), uniform(rng, 10, 15), rng.Float64()*2*math.Pi)
			case 3: // increasing trend
				g := uniform(rng, 0.2, 0.5)
				addRampBlock(v, 0, n, 0, g*float64(n))
			case 4: // decreasing trend
				g := uniform(rng, 0.2, 0.5)
				addRampBlock(v, 0, n, 0, -g*float64(n))
			case 5: // upward shift
				t0 := int(uniform(rng, float64(n)/3, 2*float64(n)/3))
				x := uniform(rng, 7.5, 20)
				for i := t0; i < n; i++ {
					v[i] += x
				}
			case 6: // downward shift
				t0 := int(uniform(rng, float64(n)/3, 2*float64(n)/3))
				x := uniform(rng, 7.5, 20)
				for i := t0; i < n; i++ {
					v[i] -= x
				}
			}
			addNoise(v, rng, 2)
			return v
		},
	}
}

// Trace mimics the nuclear-instrumentation transients of the Trace dataset:
// all classes share a baseline-then-step structure; classes differ in a
// small pre-step oscillation and in whether the step rises or decays back.
func Trace() Generator {
	const n = 200
	return Generator{
		Spec: Spec{Name: "SynTrace", Classes: 4, TrainSize: 40, TestSize: 60, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			step := 90 + rng.Intn(20)
			hasOsc := class == 2 || class == 4
			decays := class == 3 || class == 4
			if hasOsc {
				addDampedBurst(v, step-40, 12, 9, 1.5)
			}
			if decays {
				// rise then exponential return to baseline
				for i := step; i < n; i++ {
					v[i] += 4 * math.Exp(-float64(i-step)/35)
				}
			} else {
				for i := step; i < n; i++ {
					v[i] += 4
				}
			}
			addNoise(v, rng, 0.15)
			return smooth(v, 2)
		},
	}
}

// GunPoint mirrors the Gun/Point motion-capture dataset: both classes raise
// a hand to a plateau and lower it; the Gun class adds the holster dip
// before the rise and after the fall — a strictly local discriminator.
func GunPoint() Generator {
	const n = 150
	return Generator{
		Spec: Spec{Name: "SynGunPoint", Classes: 2, TrainSize: 50, TestSize: 150, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			rise := 30 + rng.Intn(10)
			fall := 100 + rng.Intn(10)
			addPlateau(v, rise, fall, 12, 5+rng.NormFloat64()*0.3)
			if class == 2 { // gun: holster dips
				addBump(v, float64(rise-10), 4, -1.2+rng.NormFloat64()*0.1)
				addBump(v, float64(fall+14), 4, -1.2+rng.NormFloat64()*0.1)
			}
			addNoise(v, rng, 0.12)
			return smooth(v, 2)
		},
	}
}

// spectrum builds a spectroscopy-like series: fixed Gaussian bands whose
// amplitudes are per-class base levels plus small per-instance variation.
func spectrum(rng *rand.Rand, n int, centers, widths, amps []float64, noise float64) []float64 {
	v := make([]float64, n)
	for i, c := range centers {
		addBump(v, c, widths[i], amps[i]*(1+rng.NormFloat64()*0.05))
	}
	addNoise(v, rng, noise)
	return v
}

// Coffee mirrors the Robusta/Arabica FT-IR spectra: the classes share the
// carbohydrate/lipid bands and differ in the caffeine and chlorogenic-acid
// band amplitudes (paper Fig. 3).
func Coffee() Generator {
	const n = 286
	base := []float64{30, 75, 120, 170, 210, 250}
	widths := []float64{12, 10, 14, 9, 11, 13}
	return Generator{
		Spec: Spec{Name: "SynCoffee", Classes: 2, TrainSize: 28, TestSize: 28, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			amps := []float64{3, 2.5, 4, 2, 3.5, 2.8}
			if class == 1 { // robusta: stronger caffeine/chlorogenic bands
				amps[1] *= 1.7
				amps[3] *= 1.6
			} else { // arabica
				amps[1] *= 1.0
				amps[3] *= 0.9
			}
			return spectrum(rng, n, base, widths, amps, 0.05)
		},
	}
}

// heartbeat writes one synthetic PQRST complex starting at pos.
func heartbeat(v []float64, pos int, stDelta, tAmp float64) {
	fp := float64(pos)
	addBump(v, fp+8, 3, 0.25)    // P
	addBump(v, fp+18, 1.2, -0.4) // Q
	addBump(v, fp+21, 1.6, 3.0)  // R
	addBump(v, fp+24, 1.4, -0.8) // S
	for i := pos + 26; i < pos+34 && i < len(v); i++ {
		v[i] += stDelta // ST segment shift
	}
	addBump(v, fp+40, 5, tAmp) // T
}

// ECGFiveDays mirrors its namesake: one beat per series, the classes
// differing subtly in ST level and T-wave amplitude (paper Fig. 5).
func ECGFiveDays() Generator {
	const n = 136
	return Generator{
		Spec: Spec{Name: "SynECGFiveDays", Classes: 2, TrainSize: 23, TestSize: 100, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			pos := 30 + rng.Intn(12)
			if class == 1 {
				heartbeat(v, pos, 0, 0.9+rng.NormFloat64()*0.05)
			} else {
				heartbeat(v, pos, -0.35, 0.45+rng.NormFloat64()*0.05)
			}
			addNoise(v, rng, 0.06)
			return v
		},
	}
}

// ECG200 mirrors ECG200: normal beats vs. ischemia-like beats with widened
// QRS and inverted T wave.
func ECG200() Generator {
	const n = 96
	return Generator{
		Spec: Spec{Name: "SynECG200", Classes: 2, TrainSize: 60, TestSize: 100, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			pos := 15 + rng.Intn(10)
			if class == 1 {
				heartbeat(v, pos, 0, 0.8)
			} else {
				fp := float64(pos)
				addBump(v, fp+8, 3, 0.25)
				addBump(v, fp+21, 3.2, 2.2) // widened, lower R
				addBump(v, fp+26, 2.4, -0.9)
				addBump(v, fp+40, 6, -0.6+rng.NormFloat64()*0.05) // inverted T
			}
			addNoise(v, rng, 0.12)
			return v
		},
	}
}

// ItalyPowerDemand mirrors the short (24-point) daily power curves:
// winter days have a pronounced evening peak, summer days a flatter,
// midday-weighted profile.
func ItalyPowerDemand() Generator {
	const n = 24
	return Generator{
		Spec: Spec{Name: "SynItalyPower", Classes: 2, TrainSize: 30, TestSize: 200, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			addBump(v, 8, 2.5, 1.5) // morning ramp-up, both classes
			if class == 1 {         // winter: evening peak
				addBump(v, 19, 2.2, 2.2+rng.NormFloat64()*0.15)
			} else { // summer: midday plateau, weak evening
				addBump(v, 13, 3.5, 1.8+rng.NormFloat64()*0.15)
				addBump(v, 19, 2.2, 0.8)
			}
			addNoise(v, rng, 0.18)
			return v
		},
	}
}

// FaceFour mirrors the four-person face-outline dataset: a shared head
// profile (low harmonics) with person-specific local features at distinct
// contour positions.
func FaceFour() Generator {
	const n = 150
	return Generator{
		Spec: Spec{Name: "SynFaceFour", Classes: 4, TrainSize: 24, TestSize: 88, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			addSine(v, n, 2, rng.NormFloat64()*0.05)
			addSine(v, float64(n)/2, 0.8, 0.3)
			jitter := rng.NormFloat64() * 2
			switch class {
			case 1: // prominent nose bump
				addBump(v, 40+jitter, 4, 2.5)
			case 2: // double chin ripple
				addBump(v, 90+jitter, 5, 1.8)
				addBump(v, 105+jitter, 5, 1.8)
			case 3: // flat brow, deep eye notch
				addBump(v, 25+jitter, 6, -2.2)
			case 4: // wide jaw plateau
				addPlateau(v, 70+int(jitter), 100+int(jitter), 8, 1.6)
			}
			addNoise(v, rng, 0.25)
			return smooth(v, 1)
		},
	}
}

// harmonicContour builds leaf-contour-like series from class-specific
// harmonic coefficients with per-instance perturbation.
func harmonicContour(rng *rand.Rand, n, class, harmonics int, scale float64, noise float64) []float64 {
	v := make([]float64, n)
	clsRng := rand.New(rand.NewSource(int64(class) * 7919))
	for k := 1; k <= harmonics; k++ {
		amp := clsRng.Float64() * scale / float64(k)
		phase := clsRng.Float64() * 2 * math.Pi
		addSine(v, float64(n)/float64(k), amp*(1+rng.NormFloat64()*0.15), phase+rng.NormFloat64()*0.08)
	}
	addNoise(v, rng, noise)
	return v
}

// SwedishLeaf mirrors the leaf-contour dataset (scaled from 15 species to
// 8): smooth closed-contour harmonics per species.
func SwedishLeaf() Generator {
	const n = 128
	return Generator{
		Spec: Spec{Name: "SynSwedishLeaf", Classes: 8, TrainSize: 80, TestSize: 120, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			return harmonicContour(rng, n, class, 6, 3, 0.15)
		},
	}
}

// OSULeaf mirrors its namesake with six species, stronger serration
// (higher harmonics) and more per-instance variation.
func OSULeaf() Generator {
	const n = 160
	return Generator{
		Spec: Spec{Name: "SynOSULeaf", Classes: 6, TrainSize: 60, TestSize: 90, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := harmonicContour(rng, n, class+100, 9, 3, 0.3)
			return v
		},
	}
}

// MoteStrain mirrors the sensor-reading dataset: a drifting baseline with
// either a sharp drop-and-recover (class 1) or a broad hump (class 2) at a
// jittered position, plus strong sensor noise.
func MoteStrain() Generator {
	const n = 84
	return Generator{
		Spec: Spec{Name: "SynMoteStrain", Classes: 2, TrainSize: 20, TestSize: 120, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			addRampBlock(v, 0, n, 0, rng.NormFloat64()*0.8)
			pos := 25 + rng.Intn(25)
			if class == 1 {
				for i := pos; i < pos+6 && i < n; i++ {
					v[i] -= 3
				}
			} else {
				addBump(v, float64(pos+3), 9, 2.2)
			}
			addNoise(v, rng, 0.4)
			return v
		},
	}
}

// Lightning2 mirrors the lightning EMP dataset: high-noise series where
// class 1 carries one dominant damped burst and class 2 a train of smaller
// bursts at random positions.
func Lightning2() Generator {
	const n = 200
	return Generator{
		Spec: Spec{Name: "SynLightning2", Classes: 2, TrainSize: 40, TestSize: 60, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			if class == 1 {
				addDampedBurst(v, 30+rng.Intn(60), 25, 7, 6)
			} else {
				k := 3 + rng.Intn(3)
				for i := 0; i < k; i++ {
					addDampedBurst(v, 15+rng.Intn(150), 8, 5, 2.5)
				}
			}
			addNoise(v, rng, 0.5)
			return v
		},
	}
}

// Wafer mirrors the highly imbalanced semiconductor dataset: normal runs
// are a stereotyped sequence of process plateaus; abnormal runs carry a
// glitch (spike or level shift) at a random position.
func Wafer() Generator {
	const n = 152
	return Generator{
		Spec:         Spec{Name: "SynWafer", Classes: 2, TrainSize: 100, TestSize: 200, Length: n},
		ClassWeights: []float64{9, 1},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			addPlateau(v, 10, 50, 5, 3)
			addPlateau(v, 70, 110, 5, 5)
			addPlateau(v, 120, 140, 4, 2)
			if class == 2 {
				pos := 15 + rng.Intn(120)
				if rng.Intn(2) == 0 {
					addBump(v, float64(pos), 2, 4+rng.Float64()*2)
				} else {
					for i := pos; i < pos+12 && i < n; i++ {
						v[i] -= 2.5
					}
				}
			}
			addNoise(v, rng, 0.2)
			return v
		},
	}
}

// Beef mirrors the five-class beef spectrogram dataset: shared spectral
// envelope with class-specific adulterant bands.
func Beef() Generator {
	const n = 200
	centers := []float64{25, 60, 95, 130, 165}
	return Generator{
		Spec: Spec{Name: "SynBeef", Classes: 5, TrainSize: 30, TestSize: 30, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			amps := []float64{3, 2.2, 2.8, 2.0, 2.5}
			amps[class-1] *= 1.6 // each class elevates its own band
			widths := []float64{8, 9, 7, 10, 8}
			return spectrum(rng, n, centers, widths, amps, 0.12)
		},
	}
}

// Symbols mirrors the pen-trajectory dataset: smooth low-frequency strokes
// with class-specific lobe patterns and onset jitter.
func Symbols() Generator {
	const n = 128
	return Generator{
		Spec: Spec{Name: "SynSymbols", Classes: 6, TrainSize: 25, TestSize: 100, Length: n},
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			shift := rng.NormFloat64() * 3
			switch class {
			case 1:
				addBump(v, 40+shift, 12, 3)
				addBump(v, 90+shift, 12, -3)
			case 2:
				addBump(v, 40+shift, 12, -3)
				addBump(v, 90+shift, 12, 3)
			case 3:
				addBump(v, 64+shift, 20, 3.5)
			case 4:
				addBump(v, 64+shift, 20, -3.5)
			case 5:
				addBump(v, 30+shift, 8, 2.5)
				addBump(v, 64+shift, 8, 2.5)
				addBump(v, 98+shift, 8, 2.5)
			case 6:
				addBump(v, 45+shift, 10, 2.5)
				addBump(v, 85+shift, 10, 2.5)
			}
			addNoise(v, rng, 0.2)
			return smooth(v, 2)
		},
	}
}
