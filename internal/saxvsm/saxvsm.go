// Package saxvsm implements the SAX-VSM classifier (Senin & Malinchik,
// ICDM 2013), one of the paper's pattern-based baselines (§5.1): each
// class is represented by a tf·idf-weighted bag of SAX words collected
// from all its training series via sliding-window discretization with
// numerosity reduction; an unlabeled series is assigned to the class whose
// weight vector has the highest cosine similarity with the series' own
// term-frequency vector.
package saxvsm

import (
	"math"
	"math/rand"
	"sort"

	"rpm/internal/sax"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

// Model is a trained SAX-VSM classifier.
type Model struct {
	params  sax.Params
	classes []int
	weights []map[string]float64 // tf·idf vector per class, same order as classes
	norms   []float64            // L2 norm of each weight vector
}

// Train builds the model with fixed SAX parameters.
func Train(train ts.Dataset, p sax.Params) *Model {
	if len(train) == 0 {
		panic("saxvsm: empty training set")
	}
	classes := train.Classes()
	bags := make([]map[string]float64, len(classes))
	for i := range bags {
		bags[i] = map[string]float64{}
	}
	classIdx := map[int]int{}
	for i, c := range classes {
		classIdx[c] = i
	}
	for _, in := range train {
		bag := bags[classIdx[in.Label]]
		for _, w := range wordsOf(in.Values, p) {
			bag[w.Word]++
		}
	}
	// document frequency over classes
	df := map[string]int{}
	for _, bag := range bags {
		for w := range bag {
			df[w]++
		}
	}
	nc := float64(len(classes))
	m := &Model{params: p, classes: classes}
	for _, bag := range bags {
		wv := make(map[string]float64, len(bag))
		var norm float64
		for w, f := range bag {
			tf := 1 + math.Log(f)
			idf := math.Log(nc / float64(df[w]))
			x := tf * idf
			if x > 0 {
				wv[w] = x
				norm += x * x
			}
		}
		m.weights = append(m.weights, wv)
		m.norms = append(m.norms, math.Sqrt(norm))
	}
	return m
}

// wordsOf discretizes one series with numerosity reduction. Series
// shorter than the window yield a single word over the whole series.
func wordsOf(v []float64, p sax.Params) []sax.WordAt {
	if p.Window > len(v) {
		q := p
		q.Window = len(v)
		if q.PAA > q.Window {
			q.PAA = q.Window
		}
		return sax.Discretize(v, q, true, nil)
	}
	return sax.Discretize(v, p, true, nil)
}

// Params returns the SAX parameters the model was trained with.
func (m *Model) Params() sax.Params { return m.params }

// Predict classifies one series by cosine similarity.
func (m *Model) Predict(query []float64) int {
	tfq := map[string]float64{}
	for _, w := range wordsOf(query, m.params) {
		tfq[w.Word]++
	}
	var qnorm float64
	for w, f := range tfq {
		tfq[w] = 1 + math.Log(f)
		qnorm += tfq[w] * tfq[w]
	}
	qnorm = math.Sqrt(qnorm)
	best := math.Inf(-1)
	label := m.classes[0]
	for k, class := range m.classes {
		var dotP float64
		for w, qf := range tfq {
			if cw, ok := m.weights[k][w]; ok {
				dotP += qf * cw
			}
		}
		sim := 0.0
		if qnorm > 0 && m.norms[k] > 0 {
			sim = dotP / (qnorm * m.norms[k])
		}
		if sim > best {
			best = sim
			label = class
		}
	}
	return label
}

// PredictBatch classifies every instance of test.
func (m *Model) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	for i, in := range test {
		out[i] = m.Predict(in.Values)
	}
	return out
}

// TrainAuto selects SAX parameters by cross-validated grid search over a
// small grid (window fractions × PAA sizes × alphabet sizes), mirroring
// the parameter optimization the SAX-VSM authors perform, then trains on
// the full training set with the winner.
func TrainAuto(train ts.Dataset, seed int64) *Model {
	p := SelectParams(train, seed)
	return Train(train, p)
}

// SelectParams runs the cross-validated grid search and returns the best
// SAX parameters for the training set.
func SelectParams(train ts.Dataset, seed int64) sax.Params {
	m := train.MinLen()
	var grid []sax.Params
	for _, wf := range []float64{0.15, 0.25, 0.4} {
		w := int(wf * float64(m))
		if w < 4 {
			w = 4
		}
		if w > m {
			w = m
		}
		for _, paa := range []int{4, 6, 8} {
			if paa > w {
				continue
			}
			for _, a := range []int{3, 4, 6} {
				grid = append(grid, sax.Params{Window: w, PAA: paa, Alphabet: a})
			}
		}
	}
	if len(grid) == 0 {
		return sax.Params{Window: m, PAA: min(4, m), Alphabet: 4}
	}
	rng := rand.New(rand.NewSource(seed))
	k := 5
	if len(train) < 20 {
		k = 2
	}
	folds := stats.KFold(train, k, rng)
	bestAcc := -1.0
	best := grid[0]
	for _, p := range grid {
		correct, total := 0, 0
		for fold := 0; fold < k; fold++ {
			var tr, va ts.Dataset
			for i, in := range train {
				if folds[i] == fold {
					va = append(va, in)
				} else {
					tr = append(tr, in)
				}
			}
			if len(tr) == 0 || len(va) == 0 || len(tr.Classes()) < 2 {
				continue
			}
			mod := Train(tr, p)
			for _, in := range va {
				if mod.Predict(in.Values) == in.Label {
					correct++
				}
				total++
			}
		}
		if total == 0 {
			continue
		}
		acc := float64(correct) / float64(total)
		if acc > bestAcc {
			bestAcc = acc
			best = p
		}
	}
	return best
}

// TopWords returns the n highest-weighted SAX words of a class, for
// interpretability dumps; it returns fewer if the class has fewer words.
func (m *Model) TopWords(class, n int) []string {
	k := -1
	for i, c := range m.classes {
		if c == class {
			k = i
		}
	}
	if k < 0 {
		return nil
	}
	type ww struct {
		w string
		x float64
	}
	var all []ww
	for w, x := range m.weights[k] {
		all = append(all, ww{w, x})
	}
	sort.Slice(all, func(i, j int) bool {
		//rpmlint:ignore floateq comparator tie-break needs exact ordering for a strict weak order
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}
