// Package errtaxonomy is a golden fixture for the errtaxonomy
// analyzer: it mirrors the public rpm package's shape — sentinels, a
// typed *Error, constructors — and exercises both compliant and
// escaping returns.
package errtaxonomy

import (
	"context"
	"errors"
	"fmt"

	"lintfix/errtaxonomy/internal/dep"
)

// ErrBadInput is the fixture sentinel.
var ErrBadInput = errors.New("bad input")

// Error is the fixture's typed error.
type Error struct {
	Op   string
	Kind error
}

func (e *Error) Error() string { return e.Op + ": " + e.Kind.Error() }

// Unwrap exposes the sentinel.
func (e *Error) Unwrap() error { return e.Kind }

// apiErr is the fixture constructor.
func apiErr(op string, kind error) *Error { return &Error{Op: op, Kind: kind} }

// GoodConstructor routes through the constructor.
func GoodConstructor(x int) error {
	if x < 0 {
		return apiErr("GoodConstructor", ErrBadInput)
	}
	return nil
}

// GoodSentinel returns a bare sentinel.
func GoodSentinel() error { return ErrBadInput }

// GoodLiteral builds the typed error inline.
func GoodLiteral() error { return &Error{Op: "GoodLiteral", Kind: ErrBadInput} }

// GoodContext passes context errors through unwrapped (documented
// contract since the cancellation PR).
func GoodContext(ctx context.Context) error { return ctx.Err() }

// GoodWrappedVar classifies the dep error before returning it.
func GoodWrappedVar() error {
	if err := dep.Do(); err != nil {
		return apiErr("GoodWrappedVar", err)
	}
	return nil
}

// GoodMulti wraps on the error path of a multi-value call.
func GoodMulti() (int, error) {
	v, err := dep.Get()
	if err != nil {
		return 0, apiErr("GoodMulti", err)
	}
	return v, nil
}

// BadNew returns a raw errors.New.
func BadNew() error {
	return errors.New("raw") // want "raw errors.New"
}

// BadErrorf returns a raw fmt.Errorf.
func BadErrorf(x int) error {
	return fmt.Errorf("x = %d", x) // want "raw fmt.Errorf"
}

// BadPassthrough leaks a dep error directly.
func BadPassthrough() error {
	return dep.Do() // want "unclassified error from lintfix/errtaxonomy/internal/dep"
}

// BadVar leaks a dep error through a local variable.
func BadVar() error {
	err := dep.Do()
	return err // want "unclassified error from lintfix/errtaxonomy/internal/dep"
}

// BadMulti leaks the error half of a multi-value call.
func BadMulti() (int, error) {
	v, err := dep.Get()
	return v, err // want "unclassified error from lintfix/errtaxonomy/internal/dep"
}

// unexportedRaw is not public surface; internal helpers are exempt.
func unexportedRaw() error { return errors.New("fine here") }

// silence unused warnings for the unexported helper
var _ = unexportedRaw
