// Package serveclient is the self-healing HTTP client for rpmserved:
// retries with capped exponential backoff and full jitter from a seeded
// source, honors Retry-After on 429/503, enforces per-attempt and
// overall deadlines, and isolates failures behind a per-model circuit
// breaker so one flapping model cannot consume the retry budget of
// healthy ones. cmd/rpmload (-retries) and cmd/rpmcli (-remote) are the
// command-line surfaces.
//
// Retry policy matrix (only requests marked idempotent are ever
// retried; Predict/PredictBatch/Ready are pure functions of their
// input, hence idempotent):
//
//	outcome               retried   breaker    backoff
//	transport error       yes       failure    jittered
//	429 overloaded        yes       —          Retry-After, else jittered
//	502/503/504           yes       failure    Retry-After (503), else jittered
//	500 internal          no        failure    —
//	400/404/413/422       no        —          —
//	200                   —         success    —
//
// A 429 is deliberately not a breaker failure: load shedding means the
// server is healthy but busy, and opening the breaker would turn
// backpressure into an outage. The breaker opens after
// FailureThreshold consecutive failures, rejects instantly while open
// (ErrBreakerOpen), and after OpenFor admits one probe at a time
// (half-open) until HalfOpenProbes successes close it again.
//
// Breaker state and retry activity are exposed through an optional
// obs.Registry (nil = instrumentation off, the repo-wide convention).
package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rpm/internal/obs"
)

// ErrBreakerOpen is returned (wrapped, naming the model) when the
// model's circuit breaker rejects the call without attempting it.
var ErrBreakerOpen = errors.New("serveclient: circuit breaker open")

// APIError is a non-2xx answer from the server, carrying the stable
// envelope code (PR-2 taxonomy: bad_input, too_short, overloaded,
// draining, deadline_exceeded, …). A response whose body is not the
// JSON envelope gets code "http_<status>".
type APIError struct {
	Status  int
	Code    string
	Message string

	// retryAfter is the server's parsed Retry-After hint — transport
	// advice consumed by the retry loop, not part of the error identity.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serveclient: server answered %d %s: %s", e.Status, e.Code, e.Message)
}

// Config configures a Client. Zero fields select the documented
// defaults.
type Config struct {
	// BaseURL is the rpmserved base URL, e.g. "http://127.0.0.1:8080".
	// Required.
	BaseURL string
	// HTTPClient is the transport; a default client with no built-in
	// timeout is used when nil (deadlines come from the per-attempt and
	// overall budgets below).
	HTTPClient *http.Client
	// MaxAttempts bounds the total tries per request, first attempt
	// included (default 3). 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; successive
	// retries double it up to MaxBackoff, and the actual wait is drawn
	// uniformly from (0, ceiling] — full jitter (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps both the exponential ceiling and an honored
	// Retry-After hint (default 2s).
	MaxBackoff time.Duration
	// PerAttemptTimeout bounds each individual HTTP exchange
	// (default 5s).
	PerAttemptTimeout time.Duration
	// OverallTimeout bounds one logical call across all attempts and
	// backoff sleeps (default 15s).
	OverallTimeout time.Duration
	// Seed seeds the jitter source; runs with the same seed draw the
	// same backoff sequence (default 1).
	Seed int64
	// Breaker configures the per-model circuit breaker.
	Breaker BreakerConfig
	// Registry receives client.* counters and breaker state gauges; nil
	// disables instrumentation (every obs handle is nil-safe).
	Registry *obs.Registry
}

// BreakerConfig tunes the per-model circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before admitting a
	// half-open probe (default 2s).
	OpenFor time.Duration
	// HalfOpenProbes is the number of consecutive successful probes that
	// close a half-open breaker (default 1).
	HalfOpenProbes int
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.PerAttemptTimeout <= 0 {
		c.PerAttemptTimeout = 5 * time.Second
	}
	if c.OverallTimeout <= 0 {
		c.OverallTimeout = 15 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Breaker.FailureThreshold <= 0 {
		c.Breaker.FailureThreshold = 5
	}
	if c.Breaker.OpenFor <= 0 {
		c.Breaker.OpenFor = 2 * time.Second
	}
	if c.Breaker.HalfOpenProbes <= 0 {
		c.Breaker.HalfOpenProbes = 1
	}
	return c
}

// PredictResult is a successful /v1/predict answer.
type PredictResult struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	Label   int    `json:"label"`
}

// BatchResult is a successful /v1/predict:batch answer.
type BatchResult struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	Labels  []int  `json:"labels"`
}

// predictRequest / predictBatchRequest mirror the server's JSON shapes.
type predictRequest struct {
	Model  string    `json:"model,omitempty"`
	Values []float64 `json:"values"`
}

type predictBatchRequest struct {
	Model  string      `json:"model,omitempty"`
	Series [][]float64 `json:"series"`
}

type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

// Client is a retrying, circuit-breaking rpmserved client. Safe for
// concurrent use. Construct with New.
type Client struct {
	cfg  Config
	base string
	hc   *http.Client
	reg  *obs.Registry

	rngMu sync.Mutex
	rng   *rand.Rand

	brMu     sync.Mutex
	breakers map[string]*breaker

	attempts *obs.Counter
	retries  *obs.Counter
	rejected *obs.Counter

	// Test seams; real clock and sleeper in production.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Client over cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if strings.TrimSpace(cfg.BaseURL) == "" {
		return nil, fmt.Errorf("serveclient: Config.BaseURL is required")
	}
	cfg = cfg.withDefaults()
	return &Client{
		cfg:      cfg,
		base:     strings.TrimRight(cfg.BaseURL, "/"),
		hc:       cfg.HTTPClient,
		reg:      cfg.Registry,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		breakers: map[string]*breaker{},
		attempts: cfg.Registry.Counter(CtrAttempts),
		retries:  cfg.Registry.Counter(CtrRetries),
		rejected: cfg.Registry.Counter(CtrBreakerRejected),
		now:      time.Now,
		sleep:    sleepCtx,
	}, nil
}

// Predict classifies one series, retrying per the policy matrix.
func (c *Client) Predict(ctx context.Context, model string, values []float64) (PredictResult, error) {
	body, err := json.Marshal(predictRequest{Model: model, Values: values})
	if err != nil {
		return PredictResult{}, fmt.Errorf("serveclient: marshal: %w", err)
	}
	data, err := c.do(ctx, model, "/v1/predict", body, true)
	if err != nil {
		return PredictResult{}, err
	}
	var out PredictResult
	if err := json.Unmarshal(data, &out); err != nil {
		return PredictResult{}, fmt.Errorf("serveclient: decoding response: %w", err)
	}
	return out, nil
}

// PredictBatch classifies a pre-assembled batch in one call.
func (c *Client) PredictBatch(ctx context.Context, model string, series [][]float64) (BatchResult, error) {
	body, err := json.Marshal(predictBatchRequest{Model: model, Series: series})
	if err != nil {
		return BatchResult{}, fmt.Errorf("serveclient: marshal: %w", err)
	}
	data, err := c.do(ctx, model, "/v1/predict:batch", body, true)
	if err != nil {
		return BatchResult{}, err
	}
	var out BatchResult
	if err := json.Unmarshal(data, &out); err != nil {
		return BatchResult{}, fmt.Errorf("serveclient: decoding response: %w", err)
	}
	return out, nil
}

// Ready probes GET /readyz once: nil when the server answers 200.
func (c *Client) Ready(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Code: "not_ready", Message: "server not ready"}
	}
	return nil
}

// WaitReady polls /readyz until it answers 200 or the budget elapses.
func (c *Client) WaitReady(ctx context.Context, budget time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var last error
	for {
		if last = c.Ready(ctx); last == nil {
			return nil
		}
		if err := c.sleep(ctx, 50*time.Millisecond); err != nil {
			return fmt.Errorf("serveclient: server not ready after %v (last: %v)", budget, last)
		}
	}
}

// BreakerState reports the named model's breaker state ("closed" when
// the model has never been called).
func (c *Client) BreakerState(model string) string {
	c.brMu.Lock()
	br := c.breakers[modelKey(model)]
	c.brMu.Unlock()
	if br == nil {
		return "closed"
	}
	return br.stateName()
}

// ---------------------------------------------------------------------------
// Core retry loop

// do runs one logical POST through the model's breaker and the retry
// policy, returning the 200 body or the terminal error.
func (c *Client) do(ctx context.Context, model, path string, body []byte, idempotent bool) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.OverallTimeout)
	defer cancel()
	br := c.breakerFor(model)
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
		}
		if !br.allow(c.now()) {
			c.rejected.Inc()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (model %q; last error: %v)", ErrBreakerOpen, model, lastErr)
			}
			return nil, fmt.Errorf("%w (model %q)", ErrBreakerOpen, model)
		}
		c.attempts.Inc()
		data, apiErr, err := c.attempt(ctx, path, body)
		switch {
		case err == nil && apiErr == nil:
			br.record(true, c.now())
			return data, nil
		case err != nil:
			// Transport failure: the server's health is unknown and the
			// request may or may not have run — retry only if idempotent.
			br.record(false, c.now())
			lastErr = err
			if !idempotent || ctx.Err() != nil {
				return nil, err
			}
		default:
			if breakerFailure(apiErr.Status) {
				br.record(false, c.now())
			} else {
				br.record(true, c.now())
			}
			lastErr = apiErr
			if !idempotent || !retryableStatus(apiErr.Status) {
				return nil, apiErr
			}
		}
		if attempt+1 >= c.cfg.MaxAttempts {
			return nil, lastErr
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfterOf(lastErr))); err != nil {
			return nil, fmt.Errorf("serveclient: giving up during backoff: %w (last error: %v)", err, lastErr)
		}
	}
	return nil, lastErr
}

// attempt runs one HTTP exchange under the per-attempt deadline.
// Returns exactly one of: data (200), apiErr (non-2xx), err (transport).
func (c *Client) attempt(ctx context.Context, path string, body []byte) ([]byte, *APIError, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, fmt.Errorf("serveclient: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("serveclient: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("serveclient: reading response: %w", err)
	}
	if resp.StatusCode == http.StatusOK {
		return data, nil, nil
	}
	apiErr := &APIError{Status: resp.StatusCode, Code: "http_" + strconv.Itoa(resp.StatusCode)}
	var env errorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
	}
	apiErr.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.now())
	return nil, apiErr, nil
}

// retryAfter is carried on APIError unexported: it is transport advice,
// not part of the error's identity.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.retryAfter
	}
	return 0
}

// backoff computes the next sleep: an honored Retry-After hint (capped
// at MaxBackoff) when the server sent one, else full jitter over the
// capped exponential ceiling base·2^attempt.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.cfg.MaxBackoff {
			return c.cfg.MaxBackoff
		}
		return retryAfter
	}
	ceiling := c.cfg.BaseBackoff << attempt
	if ceiling <= 0 || ceiling > c.cfg.MaxBackoff { // <=0: shift overflow
		ceiling = c.cfg.MaxBackoff
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(ceiling))) + 1
}

// retryableStatus: outcomes where a retry can plausibly succeed and the
// request provably did not corrupt state (shed, draining, timeout,
// proxy hiccup).
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// breakerFailure: statuses that indicate the serving path is unhealthy.
// 429 is excluded — shedding is backpressure from a healthy server.
func breakerFailure(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter handles both forms of the header: delay-seconds and
// HTTP-date. Returns 0 when absent or unparsable.
func parseRetryAfter(h string, now time.Time) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func (c *Client) breakerFor(model string) *breaker {
	key := modelKey(model)
	c.brMu.Lock()
	defer c.brMu.Unlock()
	br, ok := c.breakers[key]
	if !ok {
		br = newBreaker(c.cfg.Breaker,
			c.reg.Counter(CtrBreakerOpened),
			c.reg.Counter(CtrBreakerClosed),
			c.reg.Gauge(GaugeBreakerStatePrefix+key))
		c.breakers[key] = br
	}
	return br
}

// modelKey names the default model's breaker when requests omit the
// model field.
func modelKey(model string) string {
	if model == "" {
		return "(default)"
	}
	return model
}

// sleepCtx sleeps d or returns the context error if it fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
