package svm

import (
	"math"
	"math/rand"
	"testing"
)

func linearlySeparable(rng *rand.Rand, n int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 2
		off := -2.0
		if y[i] == 1 {
			off = 2
		}
		X[i] = []float64{off + rng.NormFloat64()*0.4, rng.NormFloat64()}
	}
	return X, y
}

func TestTrainSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := linearlySeparable(rng, 80)
	m := Train(X, y, Config{})
	errors := 0
	for i := range X {
		if m.Predict(X[i]) != y[i] {
			errors++
		}
	}
	if errors > 0 {
		t.Errorf("%d training errors on separable data", errors)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := linearlySeparable(rng, 100)
	m := Train(X, y, Config{})
	Xt, yt := linearlySeparable(rng, 200)
	errors := 0
	for i := range Xt {
		if m.Predict(Xt[i]) != yt[i] {
			errors++
		}
	}
	if frac := float64(errors) / float64(len(Xt)); frac > 0.02 {
		t.Errorf("test error %.3f too high", frac)
	}
}

func TestMulticlassOneVsRest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {6, 0}, {0, 6}, {6, 6}}
	for c := 0; c < 4; c++ {
		for i := 0; i < 40; i++ {
			X = append(X, []float64{
				centers[c][0] + rng.NormFloat64()*0.5,
				centers[c][1] + rng.NormFloat64()*0.5,
			})
			y = append(y, c+10) // non-contiguous labels
		}
	}
	m := Train(X, y, Config{})
	errors := 0
	for i := range X {
		if m.Predict(X[i]) != y[i] {
			errors++
		}
	}
	if frac := float64(errors) / float64(len(X)); frac > 0.05 {
		t.Errorf("multiclass training error %.3f", frac)
	}
	if got := m.Classes(); len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Errorf("Classes = %v", got)
	}
}

func TestBiasLearned(t *testing.T) {
	// classes separated by a threshold far from the origin: needs a bias
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		v := rng.Float64() * 10
		label := 0
		if v > 7 {
			label = 1
		}
		X = append(X, []float64{v})
		y = append(y, label)
	}
	m := Train(X, y, Config{})
	errors := 0
	for i := range X {
		if m.Predict(X[i]) != y[i] {
			errors++
		}
	}
	if errors > 3 {
		t.Errorf("%d errors; bias not learned", errors)
	}
}

func TestSingleClassAlwaysPredictsIt(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []int{7, 7}
	m := Train(X, y, Config{})
	if got := m.Predict([]float64{100, -50}); got != 7 {
		t.Errorf("Predict = %d, want 7", got)
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := linearlySeparable(rng, 60)
	for i := range X {
		X[i] = append(X[i], 3.14) // constant column
	}
	m := Train(X, y, Config{})
	errors := 0
	for i := range X {
		if m.Predict(X[i]) != y[i] {
			errors++
		}
	}
	if errors > 0 {
		t.Errorf("%d errors with constant feature", errors)
	}
}

func TestDecisionValuesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := linearlySeparable(rng, 80)
	m := Train(X, y, Config{})
	dec := m.Decision([]float64{5, 0})
	if dec[1] <= dec[0] {
		t.Errorf("decision for the right class not larger: %v", dec)
	}
}

func TestPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := linearlySeparable(rng, 40)
	m := Train(X, y, Config{})
	preds := m.PredictBatch(X)
	if len(preds) != len(X) {
		t.Fatal("batch size mismatch")
	}
	for i := range preds {
		if preds[i] != m.Predict(X[i]) {
			t.Fatal("batch and single predictions differ")
		}
	}
	_ = y
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := linearlySeparable(rng, 50)
	m1 := Train(X, y, Config{Seed: 9})
	m2 := Train(X, y, Config{Seed: 9})
	for k := range m1.weights {
		for j := range m1.weights[k] {
			if m1.weights[k][j] != m2.weights[k][j] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestTrainPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"empty", func() { Train(nil, nil, Config{}) }},
		{"label mismatch", func() { Train([][]float64{{1}}, []int{1, 2}, Config{}) }},
		{"ragged", func() { Train([][]float64{{1, 2}, {1}}, []int{0, 1}, Config{}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.f()
		})
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := linearlySeparable(rng, 20)
	m := Train(X, y, Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Predict([]float64{1, 2, 3})
}

func TestPredictIsArgmaxOfDecision(t *testing.T) {
	// Property: Predict must always return the class with the highest
	// decision value (ties toward smaller labels).
	rng := rand.New(rand.NewSource(11))
	var X [][]float64
	var y []int
	for i := 0; i < 90; i++ {
		y = append(y, i%3)
		X = append(X, []float64{rng.NormFloat64() + float64(i%3)*2, rng.NormFloat64()})
	}
	m := Train(X, y, Config{})
	for trial := 0; trial < 200; trial++ {
		q := []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		dec := m.Decision(q)
		pred := m.Predict(q)
		for c, v := range dec {
			if v > dec[pred] {
				t.Fatalf("Predict %d but class %d has higher decision (%v > %v)", pred, c, v, dec[pred])
			}
			if v == dec[pred] && c < pred {
				t.Fatalf("tie not broken toward smaller label: %d vs %d", pred, c)
			}
		}
	}
}

func TestNoisyDataStillReasonable(t *testing.T) {
	// overlapping classes: error should be near the Bayes rate, not collapse
	rng := rand.New(rand.NewSource(10))
	n := 400
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 2
		off := -1.0
		if y[i] == 1 {
			off = 1
		}
		X[i] = []float64{off + rng.NormFloat64()}
	}
	m := Train(X, y, Config{C: 1})
	errors := 0
	for i := range X {
		if m.Predict(X[i]) != y[i] {
			errors++
		}
	}
	frac := float64(errors) / float64(n)
	// Bayes rate for unit-variance gaussians 2 apart ~ 0.159
	if frac > 0.25 {
		t.Errorf("error rate %.3f too far above Bayes rate", frac)
	}
	if math.IsNaN(frac) {
		t.Error("NaN")
	}
}
