# Developer targets for the RPM reproduction. `make check` is what CI
# (and the next PR's author) should run.

GO ?= go

# Packages with concurrency: the race target runs them with the race
# detector enabled (internal/parallel plus every package it fans out).
RACE_PKGS = ./internal/core ./internal/nn ./internal/parallel ./internal/dist

# Seconds of fuzzing per target in `make fuzz`.
FUZZTIME ?= 10s

.PHONY: all build test race vet bench fuzz check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the parallel execution layer and the packages it drives.
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Parallel-stage benchmarks with the speedup metric (sequential vs
# GOMAXPROCS), at 1 and 4 procs.
bench:
	$(GO) test -run xxx -bench Parallel -cpu 1,4 ./internal/core ./internal/nn

# Boundary fuzzers: arbitrary bytes into the UCR reader and the model
# loader must yield an error or a working result, never a panic. One
# target per invocation (a Go fuzzing constraint).
fuzz:
	$(GO) test -run xxx -fuzz FuzzDatasetRead -fuzztime $(FUZZTIME) ./internal/dataset
	$(GO) test -run xxx -fuzz FuzzLoadClassifier -fuzztime $(FUZZTIME) .

check: build vet test race fuzz
