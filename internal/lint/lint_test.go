package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// fixtureConfig wires the fixture module's packages into the
// architectural roles the analyzers check.
func fixtureConfig() Config {
	return Config{
		DeterministicPkgs:   []string{"lintfix/detmap", "lintfix/nondeterm"},
		ObsPkg:              "lintfix/nondeterm/obs",
		ErrTaxonomyPkgs:     []string{"lintfix/errtaxonomy", "lintfix/errtaxonomy/second"},
		GoroutineExemptPkgs: []string{"lintfix/baregoroutine/pool"},
		FaultsPkg:           "lintfix/faultsite/faults",
		FaultsUsePkgs:       []string{"lintfix/faultsite/serve"},
		CmdPkgPrefixes:      []string{"lintfix/ctxflow/cmd/"},
	}
}

var wantRe = regexp.MustCompile(`// want "(.*)"`)

// runGolden loads the fixture packages matching pattern, runs the given
// analyzers, and matches every diagnostic against the fixtures'
// `// want "regexp"` comments: each diagnostic must be wanted on its
// exact line, and every want must be hit.
func runGolden(t *testing.T, cfg Config, pattern string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load("testdata/src", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %s", pattern)
	}

	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[wantKey][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	diags := Run(cfg, pkgs, analyzers)
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

func TestDetMapGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./detmap/...", DetMap)
}

func TestNonDetermGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./nondeterm/...", NonDeterm)
}

func TestErrTaxonomyGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./errtaxonomy/...", ErrTaxonomy)
}

func TestBareGoroutineGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./baregoroutine/...", BareGoroutine)
}

func TestNilSafeObsGolden(t *testing.T) {
	cfg := fixtureConfig()
	cfg.ObsPkg = "lintfix/nilsafeobs"
	runGolden(t, cfg, "./nilsafeobs/...", NilSafeObs)
}

func TestFloatEqGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./floateq/...", FloatEq)
}

// TestHotPathAllocGolden covers the interprocedural no-alloc proof,
// including the cross-package edge: the marked root in ./hotpathalloc
// calls dep.Scale in the sibling package and the finding lands at the
// allocation inside dep — which only works if the facts engine
// canonicalizes the export-data callee object to the source-checked
// summary.
func TestHotPathAllocGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./hotpathalloc/...", HotPathAlloc)
}

func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./ctxflow/...", CtxFlow)
}

func TestObsNamesGolden(t *testing.T) {
	cfg := fixtureConfig()
	cfg.ObsPkg = "lintfix/obsnames/obs"
	runGolden(t, cfg, "./obsnames/...", ObsNames)
}

func TestFaultSiteGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./faultsite/...", FaultSite)
}

// TestStaleIgnoreGolden runs floateq alongside staleignore so the
// fixture's live directive has something to suppress while the stale
// one is reported.
func TestStaleIgnoreGolden(t *testing.T) {
	runGolden(t, fixtureConfig(), "./staleignore", FloatEq, StaleIgnore)
}

// TestAnalyzerSuite pins the suite: eleven analyzers, unique names,
// docs present (rpmlint -list and the SARIF rule table depend on it).
func TestAnalyzerSuite(t *testing.T) {
	as := Analyzers()
	if len(as) != 11 {
		t.Fatalf("suite has %d analyzers, want 11", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"hotpathalloc", "ctxflow", "obsnames", "faultsite", "staleignore"} {
		if !seen[name] {
			t.Errorf("suite is missing %q", name)
		}
	}
}

// TestBadIgnoreDirectives pins the suppression contract: malformed
// directives (missing reason, unknown analyzer, bare) are diagnostics
// themselves and do not suppress the underlying finding.
func TestBadIgnoreDirectives(t *testing.T) {
	pkgs, err := Load("testdata/src", "./badignore")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	diags := Run(fixtureConfig(), pkgs, []*Analyzer{FloatEq})
	var directive, floateq int
	for _, d := range diags {
		switch d.Analyzer {
		case "rpmlint":
			directive++
		case "floateq":
			floateq++
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	if directive != 3 {
		t.Errorf("got %d malformed-directive diagnostics, want 3:\n%s", directive, render(diags))
	}
	if floateq != 3 {
		t.Errorf("got %d floateq diagnostics, want 3 (malformed directives must not suppress):\n%s", floateq, render(diags))
	}
	for _, needle := range []string{"missing a reason", "unknown analyzer"} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, needle) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %q:\n%s", needle, render(diags))
		}
	}
}

// TestRepoClean is the gate the Makefile/CI lint step relies on: the
// full analyzer suite over the real repository reports nothing. Every
// deliberate exception is expected to carry a reasoned
// //rpmlint:ignore directive at the site.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := Run(Defaults(), pkgs, Analyzers())
	if len(diags) != 0 {
		t.Errorf("rpmlint is not clean on the repo:\n%s", render(diags))
	}
}

// TestGoroutineExempt pins the prefix semantics of the exempt list.
func TestGoroutineExempt(t *testing.T) {
	cfg := Defaults()
	for path, want := range map[string]bool{
		"rpm/internal/parallel": true,
		"rpm/internal/serve":    true,
		"rpm/internal/obs":      true,
		"rpm/cmd/rpmserved":     true,
		"rpm/cmd/benchtab":      true,
		"rpm/internal/core":     false,
		"rpm":                   false,
		"rpm/examples/motifs":   false,
	} {
		if got := cfg.goroutineExempt(path); got != want {
			t.Errorf("goroutineExempt(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestErrTaxonomySet pins which packages are held to the typed-error
// taxonomy: the public API and the archive runner, and nothing else.
func TestErrTaxonomySet(t *testing.T) {
	cfg := Defaults()
	for path, want := range map[string]bool{
		"rpm":                              true,
		"rpm/internal/experiments/archive": true,
		"rpm/internal/core":                false,
		"rpm/internal/serve":               false,
		"rpm/internal/experiments":         false,
		"rpm/cmd/rpmarchive":               false,
	} {
		if got := cfg.errTaxonomyChecked(path); got != want {
			t.Errorf("errTaxonomyChecked(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestDeterministicSet pins the deterministic-package list against the
// paper-pipeline packages named in DESIGN.md §11.
func TestDeterministicSet(t *testing.T) {
	cfg := Defaults()
	for _, p := range []string{
		"rpm/internal/core", "rpm/internal/sax", "rpm/internal/sequitur",
		"rpm/internal/cluster", "rpm/internal/features", "rpm/internal/svm",
		"rpm/internal/direct", "rpm/internal/dist", "rpm/internal/paa",
	} {
		if !cfg.deterministic(p) {
			t.Errorf("%s should be deterministic", p)
		}
	}
	if cfg.deterministic("rpm/internal/serve") {
		t.Error("serve must not be in the deterministic set")
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
