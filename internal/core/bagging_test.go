package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/obs"
)

// baggedOpts is the shared ensemble configuration: three members, each
// mining a 0.3-rate sample of the candidate pool.
func baggedOpts(workers int) Options {
	o := sampleOpts(workers, 0.3, 7)
	o.Bags = 3
	return o
}

// TestBaggedDeterminismWorkers asserts the ensemble guarantee: members
// train sequentially with derived seeds and the vote depends only on
// member order, so Workers 1 and Workers 8 produce identical members
// and identical predictions.
func TestBaggedDeterminismWorkers(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)

	e1, err := TrainBagged(split.Train, baggedOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	e8, err := TrainBagged(split.Train, baggedOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Bags() != 3 || e8.Bags() != 3 {
		t.Fatalf("Bags() = %d / %d, want 3", e1.Bags(), e8.Bags())
	}
	for i := range e1.Members {
		if !bytes.Equal(canonBytes(t, e1.Members[i]), canonBytes(t, e8.Members[i])) {
			t.Fatalf("member %d serialization diverges between Workers 1 and 8", i)
		}
	}
	if !reflect.DeepEqual(e1.PredictBatch(split.Test), e8.PredictBatch(split.Test)) {
		t.Fatal("ensemble predictions diverge between Workers 1 and 8")
	}
}

// TestBaggedMembersDiffer asserts bagging buys diversity: with derived
// per-member seeds at Rate 0.3, at least one pair of members must mine
// different models — B identical copies would make the vote pointless.
func TestBaggedMembersDiffer(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	e, err := TrainBagged(split.Train, baggedOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	first := canonBytes(t, e.Members[0])
	diverse := false
	for _, m := range e.Members[1:] {
		if !bytes.Equal(canonBytes(t, m), first) {
			diverse = true
			break
		}
	}
	if !diverse {
		t.Fatal("all bagged members serialize identically; per-member seeds are not reaching the sampler")
	}
}

// TestBaggedSingleEqualsTrain asserts the degenerate cases: Bags 0 and
// 1 wrap exactly the classifier TrainContext would build, and member 0
// of a wider ensemble keeps the base seed (so growing Bags refines a
// run instead of reshuffling it).
func TestBaggedSingleEqualsTrain(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	o := sampleOpts(0, 0.3, 7)
	single, err := Train(split.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	want := canonBytes(t, single)
	for _, bags := range []int{0, 1} {
		bo := o
		bo.Bags = bags
		e, err := TrainBagged(split.Train, bo)
		if err != nil {
			t.Fatal(err)
		}
		if e.Bags() != 1 {
			t.Fatalf("Bags=%d ensemble has %d members, want 1", bags, e.Bags())
		}
		if !bytes.Equal(canonBytes(t, e.Members[0]), want) {
			t.Fatalf("Bags=%d member differs from TrainContext model", bags)
		}
	}
	wide, err := TrainBagged(split.Train, baggedOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonBytes(t, wide.Members[0]), want) {
		t.Fatal("member 0 of a 3-bag ensemble differs from the single sampled model")
	}
}

// TestBaggedObs asserts the shared registry carries the ensemble shape:
// the member count, one bag.member.<i> span per member under the train
// span, and a single shared parameter search.
func TestBaggedObs(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	o := baggedOpts(2)
	o.Obs = obs.NewRegistry()
	e, err := TrainBagged(split.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	s := e.TrainSnapshot()
	if s == nil {
		t.Fatal("nil snapshot with live registry")
	}
	if got := s.Counter(CtrBagMembers); got != 3 {
		t.Fatalf("%s = %d, want 3", CtrBagMembers, got)
	}
	if e.NumPatterns() <= 0 {
		t.Fatal("degenerate fixture: ensemble mined no patterns")
	}
}

// TestBaggedCancel asserts cooperative cancellation surfaces ctx.Err()
// instead of a partial ensemble.
func TestBaggedCancel(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainBaggedContext(ctx, split.Train, baggedOpts(0)); err == nil {
		t.Fatal("canceled context must fail training")
	}
}

// TestMemberSampleSeed pins the derivation rule: member 0 keeps the
// base seed, later members differ from it and from each other, and the
// reserved "derive" value 0 is never produced.
func TestMemberSampleSeed(t *testing.T) {
	if got := memberSampleSeed(7, 0); got != 7 {
		t.Fatalf("member 0 seed = %d, want base 7", got)
	}
	seen := map[int64]bool{7: true}
	for b := 1; b < 16; b++ {
		s := memberSampleSeed(7, b)
		if s == 0 {
			t.Fatalf("member %d derived the reserved seed 0", b)
		}
		if seen[s] {
			t.Fatalf("member %d seed %d collides", b, s)
		}
		seen[s] = true
	}
}

// TestMajorityLabel pins the vote rule: most frequent label wins, ties
// break toward the smaller label, independent of input order.
func TestMajorityLabel(t *testing.T) {
	cases := []struct {
		labels []int
		want   int
	}{
		{[]int{1, 1, 2}, 1},
		{[]int{2, 1, 2}, 2},
		{[]int{2, 1}, 1},       // tie → smaller label
		{[]int{1, 2}, 1},       // tie, other order
		{[]int{3, 3, 1, 1}, 1}, // tie reached late
		{[]int{-1, -1, 2, 3}, -1},
		{[]int{5}, 5},
	}
	for _, tc := range cases {
		if got := majorityLabel(tc.labels); got != tc.want {
			t.Errorf("majorityLabel(%v) = %d, want %d", tc.labels, got, tc.want)
		}
	}
}
