package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// checkpointVersion guards the on-disk checkpoint format.
const checkpointVersion = 1

// checkpointFile is the JSON shape of one per-dataset checkpoint. The
// payload is kept as raw bytes so the recorded SHA-256 can be verified
// against exactly what sits on disk, not against a re-serialization.
type checkpointFile struct {
	Version int `json:"version"`
	// ConfigHash fingerprints every result-affecting knob of the run
	// that wrote the checkpoint (see Config.hash); resume refuses to
	// splice rows produced under a different configuration.
	ConfigHash string `json:"configHash"`
	// PayloadSHA is the hex SHA-256 of the Payload bytes, verified on
	// every read so a torn or hand-edited file fails loudly instead of
	// contributing a silently wrong table row.
	PayloadSHA string          `json:"payloadSha256"`
	Payload    json.RawMessage `json:"payload"`
}

// CheckpointPath returns the checkpoint file for one dataset:
// <dir>/<name>.ckpt.json.
func CheckpointPath(dir, name string) string {
	return filepath.Join(dir, name+".ckpt.json")
}

// writeCheckpoint atomically persists one finished dataset's outcome:
// the bytes are written to a temp file in the same directory and
// renamed over the final path, so a crash at any instant leaves either
// the previous checkpoint or a complete new one — never a torn file
// the resume pass could half-trust.
func writeCheckpoint(dir, configHash string, oc Outcome) error {
	payload, err := json.Marshal(oc)
	if err != nil {
		return fmt.Errorf("encoding outcome %s: %w", oc.Dataset, err)
	}
	sum := sha256.Sum256(payload)
	// Compact marshal throughout: an indenting encoder would reformat
	// the raw payload bytes and the stored digest would no longer match
	// what a reader hashes.
	blob, err := json.Marshal(checkpointFile{
		Version:    checkpointVersion,
		ConfigHash: configHash,
		PayloadSHA: hex.EncodeToString(sum[:]),
		Payload:    payload,
	})
	if err != nil {
		return fmt.Errorf("encoding checkpoint %s: %w", oc.Dataset, err)
	}
	tmp, err := os.CreateTemp(dir, "."+oc.Dataset+".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), CheckpointPath(dir, oc.Dataset)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readCheckpoint loads and verifies one dataset's checkpoint. It
// distinguishes three non-success cases: (fs.ErrNotExist) no checkpoint
// yet, (ErrCheckpointCorrupt) a file that fails structural or byte
// verification, and (ErrCheckpointMismatch) a valid checkpoint from a
// run with different result-affecting configuration.
func readCheckpoint(dir, name, configHash string) (Outcome, error) {
	const op = "readCheckpoint"
	blob, err := os.ReadFile(CheckpointPath(dir, name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Outcome{}, err
		}
		return Outcome{}, archErr(op, ErrCheckpointCorrupt, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return Outcome{}, archErrf(op, ErrCheckpointCorrupt, "%s: %v", name, err)
	}
	if f.Version != checkpointVersion {
		return Outcome{}, archErrf(op, ErrCheckpointCorrupt, "%s: version %d (want %d)", name, f.Version, checkpointVersion)
	}
	sum := sha256.Sum256(f.Payload)
	if hex.EncodeToString(sum[:]) != f.PayloadSHA {
		return Outcome{}, archErrf(op, ErrCheckpointCorrupt, "%s: payload digest mismatch", name)
	}
	if f.ConfigHash != configHash {
		return Outcome{}, archErrf(op, ErrCheckpointMismatch, "%s: checkpoint written under config %s, current run is %s", name, f.ConfigHash, configHash)
	}
	var oc Outcome
	if err := json.Unmarshal(f.Payload, &oc); err != nil {
		return Outcome{}, archErrf(op, ErrCheckpointCorrupt, "%s: payload: %v", name, err)
	}
	if oc.Dataset != name {
		return Outcome{}, archErrf(op, ErrCheckpointCorrupt, "%s: payload names dataset %q", name, oc.Dataset)
	}
	return oc, nil
}
