// Package parallel is the repo's tiny, stdlib-only worker-pool layer. It
// exists because the paper's headline claim is *efficiency* (§5.3) and the
// RPM pipeline's hot loops — the pattern×instance transform matrix, the
// per-parameter-vector cross-validation, the 1NN baselines, and the
// pairwise candidate distances — are all embarrassingly parallel: every
// iteration writes only its own per-index result slot.
//
// Determinism contract: every helper in this package produces output that
// is byte-identical to the sequential loop it replaces, for any worker
// count. For distributes loop *indices*, not accumulators, so callers keep
// per-index result slots and fold them in index order afterwards (or use
// Map / MapReduce, which do exactly that). Nothing in this package ever
// reorders floating-point accumulation.
//
// Worker-count convention, shared by every Workers knob in the repo:
// n <= 0 means runtime.GOMAXPROCS(0) (use the whole machine), 1 means the
// exact sequential path (no goroutines are spawned at all), and any other
// value bounds the number of concurrent goroutines.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rpm/internal/obs"
)

// Workers resolves a Workers-style option to a concrete worker count:
// n <= 0 ⇒ runtime.GOMAXPROCS(0), otherwise n.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most Workers(workers)
// concurrent goroutines. With workers == 1 (or n < 2) it degrades to the
// plain sequential loop on the calling goroutine — no goroutines, no
// channels, no synchronization — so `Workers: 1` really is the exact
// sequential path.
//
// Indices are handed out dynamically (an atomic counter), which
// load-balances uneven iterations such as early-abandoning distance
// computations. fn must confine its writes to per-index state.
//
// If any fn panics, the first panic value is re-raised on the calling
// goroutine after all workers have stopped; remaining indices are
// abandoned.
func For(n, workers int, fn func(i int)) { ForPool(n, workers, nil, fn) }

// ForPool is For with per-pool observability: when pool is non-nil,
// every completed task is attributed — with its duration — to the
// worker slot that executed it, and the run's worker count and wall
// time are recorded on completion (obs.Pool derives idle time from
// them). Index scheduling, result placement and panic semantics are
// exactly For's, so outputs stay byte-identical for any worker count
// whether or not a pool is attached. A nil pool adds no work at all:
// the loop bodies below are the pre-instrumentation ones.
func ForPool(n, workers int, pool *obs.Pool, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if pool != nil {
		start := time.Now()
		defer func() { pool.RunDone(workers, time.Since(start)) }()
	}
	if workers <= 1 {
		if pool == nil {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		for i := 0; i < n; i++ {
			t0 := time.Now()
			fn(i)
			pool.WorkerTask(0, time.Since(t0))
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		once     sync.Once
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				if pool == nil {
					fn(i)
				} else {
					t0 := time.Now()
					fn(i)
					pool.WorkerTask(w, time.Since(t0))
				}
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// ForCtx is For with cooperative cancellation: once ctx is done, no new
// index is scheduled, the in-flight iterations are allowed to finish (fn
// is never interrupted mid-call), the workers drain, and ctx.Err() is
// returned. A nil ctx behaves like context.Background(). With a ctx that
// is never canceled, ForCtx runs every index and returns nil — the
// results (and their byte-identity across worker counts) are exactly
// those of For.
//
// On cancellation the set of completed indices is unspecified; callers
// must treat their result slots as incomplete and discard them.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForCtxPool(ctx, n, workers, nil, fn)
}

// ForCtxPool is ForCtx with the per-pool observability of ForPool: a
// non-nil pool receives per-worker task accounting and run totals; a
// nil pool adds no work. Cancellation and byte-identity semantics are
// exactly ForCtx's.
func ForCtxPool(ctx context.Context, n, workers int, pool *obs.Pool, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if pool != nil {
		start := time.Now()
		defer func() { pool.RunDone(workers, time.Since(start)) }()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if pool == nil {
				fn(i)
			} else {
				t0 := time.Now()
				fn(i)
				pool.WorkerTask(0, time.Since(t0))
			}
		}
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		once     sync.Once
		panicVal any
	)
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				if pool == nil {
					fn(i)
				} else {
					t0 := time.Now()
					fn(i)
					pool.WorkerTask(w, time.Since(t0))
				}
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return ctx.Err()
}

// Map computes fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. The ordered-map half of the
// map-reduce helper pair.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapCtx is Map with cooperative cancellation (see ForCtx). On a nil
// error the returned slice is complete and identical to Map's; on a
// non-nil error it is partial and must be discarded.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	return MapCtxPool(ctx, n, workers, nil, fn)
}

// MapCtxPool is MapCtx with the per-pool observability of ForPool.
func MapCtxPool[T any](ctx context.Context, n, workers int, pool *obs.Pool, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForCtxPool(ctx, n, workers, pool, func(i int) { out[i] = fn(i) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapReduceCtx is MapReduce with cooperative cancellation (see ForCtx):
// the parallel map stops scheduling once ctx is done and the (sequential,
// index-ordered) fold runs only on a complete result set, so a nil error
// guarantees the reduction is byte-identical to MapReduce's.
func MapReduceCtx[T, R any](ctx context.Context, n, workers int, fn func(i int) T, init R, reduce func(acc R, v T) R) (R, error) {
	vals, err := MapCtx(ctx, n, workers, fn)
	if err != nil {
		var zero R
		return zero, err
	}
	acc := init
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc, nil
}

// MapReduce computes fn(i) for every index in parallel, then folds the
// results strictly in index order: acc = reduce(acc, fn(0)), then fn(1),
// and so on. Because the fold is sequential and ordered, floating-point
// reductions are byte-identical to the sequential loop regardless of the
// worker count — the property the core pipeline's determinism guarantee
// rests on.
func MapReduce[T, R any](n, workers int, fn func(i int) T, init R, reduce func(acc R, v T) R) R {
	vals := Map(n, workers, fn)
	acc := init
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc
}
