package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rpm/internal/datagen"
	"rpm/internal/dist"
	"rpm/internal/sax"
	"rpm/internal/ts"
)

// randPatterns builds a pattern set with deliberately colliding lengths
// so the transformer's length groups have width > 1.
func randPatterns(rng *rand.Rand, count, maxLen int) []Pattern {
	pats := make([]Pattern, count)
	for i := range pats {
		n := 4 + rng.Intn(maxLen-4)
		if i%2 == 1 {
			n = len(pats[i-1].Values) // every odd pattern shares the previous length
		}
		v := make([]float64, n)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		pats[i] = Pattern{Values: v, Class: i % 2}
	}
	return pats
}

func randSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestTransformerKernelEquivalence pins the tentpole contract referenced
// in the transformer docs: the grouped, stats-sharing, seeded transform
// kernel produces bit-identical features to the naive per-matcher Best
// sweep — across consecutive queries on one scratch (so the carried
// seeds are exercised), with and without rotation invariance.
func TestTransformerKernelEquivalence(t *testing.T) {
	for _, rotInv := range []bool{false, true} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			pats := randPatterns(rng, 2+rng.Intn(6), 40)
			tf := newTransformer(pats, rotInv)
			sc := tf.getScratch()
			defer tf.putScratch(sc)
			got := make([]float64, len(pats))
			// Several series through the same scratch: later iterations
			// run with seeds from earlier, unrelated series.
			for trial := 0; trial < 5; trial++ {
				v := randSeries(rng, 8+rng.Intn(120))
				tf.applyInto(got, v, sc)
				for k, p := range pats {
					m := dist.NewMatcher(p.Values)
					want := m.Best(v).Dist
					if rotInv {
						if rd := m.Best(ts.RotateHalf(v)).Dist; rd < want {
							want = rd
						}
					}
					if got[k] != want {
						t.Logf("seed %d rotInv %v trial %d pattern %d: got %v want %v",
							seed, rotInv, trial, k, got[k], want)
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("rotInv=%v: %v", rotInv, err)
		}
	}
}

// TestTransformerGrouping sanity-checks the grouped ordering: groups are
// contiguous, ascending in length, and featOf is a permutation mapping
// every ordered matcher back to a matcher of the same length.
func TestTransformerGrouping(t *testing.T) {
	rng := newTestRand(5)
	pats := randPatterns(rng, 9, 30)
	tf := newTransformer(pats, false)
	if len(tf.ordered) != len(pats) || len(tf.featOf) != len(pats) {
		t.Fatalf("ordered/featOf sizes %d/%d, want %d", len(tf.ordered), len(tf.featOf), len(pats))
	}
	seen := make(map[int]bool)
	prevLen := 0
	at := 0
	for _, g := range tf.groups {
		if g.lo != at {
			t.Fatalf("group %v not contiguous at %d", g, at)
		}
		if g.n <= prevLen {
			t.Fatalf("group lengths not strictly ascending: %d after %d", g.n, prevLen)
		}
		prevLen = g.n
		for a := g.lo; a < g.hi; a++ {
			if tf.ordered[a].Len() != g.n {
				t.Fatalf("ordered[%d] length %d in group of %d", a, tf.ordered[a].Len(), g.n)
			}
			k := tf.featOf[a]
			if seen[k] {
				t.Fatalf("featOf maps slot %d twice", k)
			}
			seen[k] = true
			if tf.matchers[k].Len() != g.n {
				t.Fatalf("featOf[%d]=%d points at length %d, group is %d", a, k, tf.matchers[k].Len(), g.n)
			}
		}
		at = g.hi
	}
	if at != len(pats) {
		t.Fatalf("groups cover %d of %d matchers", at, len(pats))
	}
}

// TestPredictAllocsSteadyState is the satellite-1/2 allocation
// regression: after warm-up, Predict (pooled scratch + fused SVM) and
// applyInto (including the reused rotation buffer when rotation
// invariance is on) must not allocate per query.
func TestPredictAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector (sync.Pool drops items)")
	}
	rng := newTestRand(11)
	for _, rotInv := range []bool{false, true} {
		pats := randPatterns(rng, 6, 24)
		tf := newTransformer(pats, rotInv)
		v := randSeries(rng, 100)
		sc := tf.getScratch()
		out := make([]float64, len(pats))
		tf.applyInto(out, v, sc) // warm-up: grow stats and rotation buffers
		allocs := testing.AllocsPerRun(50, func() {
			tf.applyInto(out, v, sc)
		})
		tf.putScratch(sc)
		if allocs > 0 {
			t.Errorf("rotInv=%v: applyInto allocates %.1f per op, want 0", rotInv, allocs)
		}
	}

	// End-to-end Predict on a trained classifier with a full-length
	// query (a series shorter than a pattern routes through the swapped
	// Best path, which allocates its window buffer). The scratch pool
	// can be emptied by a GC, so allow the occasional refill but not a
	// per-call allocation pattern.
	clf, q := trainedFixture(t)
	clf.Predict(q)
	allocs := testing.AllocsPerRun(100, func() { clf.Predict(q) })
	if allocs > 1 {
		t.Errorf("Predict allocates %.2f per op, want ~0", allocs)
	}
}

// TestApplyAllSlabRows is the satellite-2 slab regression: applyAll rows
// must come from one backing slab, be full-capped (an append to one row
// cannot bleed into the next), and be byte-identical for Workers 1 vs 8.
func TestApplyAllSlabRows(t *testing.T) {
	rng := newTestRand(23)
	pats := randPatterns(rng, 5, 24)
	tf := newTransformer(pats, false)
	d := make(ts.Dataset, 40)
	for i := range d {
		d[i] = ts.Instance{Values: randSeries(rng, 64), Label: i % 2}
	}
	x1 := tf.applyAll(d, 1)
	x8 := tf.applyAll(d, 8)
	if len(x1) != len(d) || len(x8) != len(d) {
		t.Fatalf("row counts %d/%d, want %d", len(x1), len(x8), len(d))
	}
	for i := range x1 {
		for k := range x1[i] {
			if x1[i][k] != x8[i][k] {
				t.Fatalf("row %d col %d: workers 1 %v != workers 8 %v", i, k, x1[i][k], x8[i][k])
			}
		}
		if cap(x1[i]) != len(x1[i]) {
			t.Fatalf("row %d not full-capped: cap %d len %d", i, cap(x1[i]), len(x1[i]))
		}
	}
}

// trainedFixture trains a small fixed-parameter classifier for predict
// path tests and returns it with a full-length query series.
func trainedFixture(t *testing.T) (*Classifier, []float64) {
	t.Helper()
	s := datagen.MustByName("SynCBF").Generate(1)
	o := fixedOpts(sax.Params{Window: 40, PAA: 6, Alphabet: 4})
	o.Workers = 1
	clf, err := Train(s.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(clf.Patterns) == 0 {
		t.Skip("fixture selected no patterns")
	}
	return clf, s.Test[0].Values
}
