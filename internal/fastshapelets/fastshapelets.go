// Package fastshapelets implements the Fast Shapelets classifier
// (Rakthanmanon & Keogh, SDM 2013), a baseline of the paper's evaluation
// (§5.1): shapelet discovery is accelerated by projecting subsequences
// into SAX words, scoring the words by their class-discrimination power
// estimated from random-masking collision counts, and only computing real
// information gain for the few top-scoring candidates; the winning
// shapelet splits the data and a decision tree is built recursively.
package fastshapelets

import (
	"math"
	"math/rand"
	"sort"

	"rpm/internal/dist"
	"rpm/internal/sax"
	"rpm/internal/ts"
)

// Config tunes training. Zero values select the published defaults.
type Config struct {
	// Projections is the number of random-masking rounds (default 10).
	Projections int
	// MaskSize is how many word positions each round hides (default 3,
	// clamped below the word length).
	MaskSize int
	// TopK is how many SAX words per candidate length are promoted to
	// exact information-gain evaluation (default 10).
	TopK int
	// PAA and Alphabet control the SAX projection (defaults 8 and 4).
	PAA, Alphabet int
	// Lengths are the candidate shapelet lengths; default is a 10-step
	// sweep from 10 to half the series length.
	Lengths []int
	// MaxDepth caps the decision tree depth (default 8).
	MaxDepth int
	// MinLeaf stops splitting nodes smaller than this (default 2).
	MinLeaf int
	// Seed drives the random masking (default 1).
	Seed int64
}

func (c Config) withDefaults(m int) Config {
	if c.Projections <= 0 {
		c.Projections = 10
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.PAA <= 0 {
		c.PAA = 8
	}
	if c.Alphabet <= 0 {
		c.Alphabet = 4
	}
	if c.MaskSize <= 0 {
		c.MaskSize = 3
	}
	if c.MaskSize >= c.PAA {
		c.MaskSize = c.PAA - 1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Lengths) == 0 {
		lo := 10
		hi := m / 2
		if hi < lo {
			lo = 3
			if hi < lo {
				hi = lo
			}
		}
		step := (hi - lo) / 9
		if step < 1 {
			step = 1
		}
		for l := lo; l <= hi; l += step {
			c.Lengths = append(c.Lengths, l)
		}
	}
	return c
}

// node is one decision-tree node.
type node struct {
	leaf      bool
	label     int
	shapelet  []float64
	threshold float64
	left      *node // closest-match distance <= threshold
	right     *node
}

// Model is a trained Fast Shapelets decision tree.
type Model struct {
	root *node
	// NumNodes counts internal (shapelet) nodes, for reporting.
	NumNodes int
}

// Shapelets returns the shapelets used by the tree, in breadth-first
// order — the artifacts Figure 1 of the paper visualizes.
func (m *Model) Shapelets() [][]float64 {
	var out [][]float64
	queue := []*node{m.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil || n.leaf {
			continue
		}
		out = append(out, n.shapelet)
		queue = append(queue, n.left, n.right)
	}
	return out
}

// Train builds the shapelet tree.
func Train(train ts.Dataset, cfg Config) *Model {
	if len(train) == 0 {
		panic("fastshapelets: empty training set")
	}
	cfg = cfg.withDefaults(train.MinLen())
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{}
	m.root = m.build(train, cfg, rng, 0)
	return m
}

func (m *Model) build(d ts.Dataset, cfg Config, rng *rand.Rand, depth int) *node {
	if len(d) == 0 {
		return &node{leaf: true, label: 0}
	}
	maj, pure := majority(d)
	if pure || len(d) < 2*cfg.MinLeaf || depth >= cfg.MaxDepth {
		return &node{leaf: true, label: maj}
	}
	sh, thr, ok := bestShapelet(d, cfg, rng)
	if !ok {
		return &node{leaf: true, label: maj}
	}
	var left, right ts.Dataset
	for _, in := range d {
		if dist.ClosestMatch(sh, in.Values).Dist <= thr {
			left = append(left, in)
		} else {
			right = append(right, in)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{leaf: true, label: maj}
	}
	m.NumNodes++
	return &node{
		shapelet:  sh,
		threshold: thr,
		left:      m.build(left, cfg, rng, depth+1),
		right:     m.build(right, cfg, rng, depth+1),
	}
}

func majority(d ts.Dataset) (label int, pure bool) {
	counts := map[int]int{}
	for _, in := range d {
		counts[in.Label]++
	}
	best, bestC := 0, -1
	for l, c := range counts {
		if c > bestC || (c == bestC && l < best) {
			best, bestC = l, c
		}
	}
	return best, len(counts) == 1
}

// wordInfo aggregates the per-class object counts of one SAX word and
// remembers where it first occurred, to map it back to a raw subsequence.
type wordInfo struct {
	classCount map[int]int
	series     int
	offset     int
	score      float64
}

// bestShapelet runs the FS candidate generation and exact evaluation for
// one tree node and returns the winning shapelet and split threshold.
func bestShapelet(d ts.Dataset, cfg Config, rng *rand.Rand) ([]float64, float64, bool) {
	classSizes := map[int]int{}
	for _, in := range d {
		classSizes[in.Label]++
	}
	bestGain := -1.0
	bestGap := 0.0
	var bestSh []float64
	var bestThr float64
	for _, L := range cfg.Lengths {
		if L > d.MinLen() || L < 2 {
			continue
		}
		words := collectWords(d, L, cfg)
		if len(words) == 0 {
			continue
		}
		scoreWords(words, classSizes, cfg, rng)
		cands := topK(words, cfg.TopK)
		for _, wi := range cands {
			sub := d[wi.series].Values[wi.offset : wi.offset+L]
			sh := ts.ZNorm(sub)
			dists := make([]float64, len(d))
			for i, in := range d {
				dists[i] = dist.ClosestMatch(sh, in.Values).Dist
			}
			gain, thr, gap := bestSplit(dists, d.Labels())
			//rpmlint:ignore floateq deterministic tie-break between identically computed gains
			if gain > bestGain || (gain == bestGain && gap > bestGap) {
				bestGain = gain
				bestGap = gap
				bestSh = sh
				bestThr = thr
			}
		}
	}
	if bestSh == nil || bestGain <= 0 {
		return nil, 0, false
	}
	return bestSh, bestThr, true
}

// collectWords builds the word table for one candidate length: per word,
// the set of objects (by class) containing it and the first occurrence.
func collectWords(d ts.Dataset, L int, cfg Config) map[string]*wordInfo {
	p := sax.Params{Window: L, PAA: cfg.PAA, Alphabet: cfg.Alphabet}
	if p.PAA > L {
		p.PAA = L
	}
	words := map[string]*wordInfo{}
	for si, in := range d {
		seen := map[string]bool{}
		for _, w := range sax.Discretize(in.Values, p, true, nil) {
			wi, ok := words[w.Word]
			if !ok {
				wi = &wordInfo{classCount: map[int]int{}, series: si, offset: w.Offset}
				words[w.Word] = wi
			}
			if !seen[w.Word] {
				seen[w.Word] = true
				wi.classCount[in.Label]++
			}
		}
	}
	return words
}

// scoreWords estimates each word's distinguishing power with random
// masking: words that collide under a mask share their class counts; a
// word whose accumulated collision profile is skewed toward one class is
// likely discriminative.
func scoreWords(words map[string]*wordInfo, classSizes map[int]int, cfg Config, rng *rand.Rand) {
	keys := make([]string, 0, len(words))
	for w := range words {
		keys = append(keys, w)
	}
	sort.Strings(keys) // determinism of iteration under a fixed seed
	wordLen := 0
	if len(keys) > 0 {
		wordLen = len(keys[0])
	}
	proj := make(map[string]map[int]float64, len(words))
	for _, w := range keys {
		proj[w] = map[int]float64{}
	}
	masked := make([]byte, wordLen)
	for r := 0; r < cfg.Projections; r++ {
		mask := rng.Perm(wordLen)[:min(cfg.MaskSize, wordLen)]
		groups := map[string][]string{}
		for _, w := range keys {
			copy(masked, w)
			for _, i := range mask {
				masked[i] = '*'
			}
			mw := string(masked)
			groups[mw] = append(groups[mw], w)
		}
		for _, group := range groups {
			total := map[int]float64{}
			for _, w := range group {
				for c, n := range words[w].classCount {
					total[c] += float64(n)
				}
			}
			for _, w := range group {
				for c, n := range total {
					proj[w][c] += n
				}
			}
		}
	}
	for _, w := range keys {
		wi := words[w]
		// normalize by class size and score by deviation from uniform
		var fracs []float64
		var sum float64
		for c, size := range classSizes {
			f := proj[w][c] / float64(size)
			fracs = append(fracs, f)
			sum += f
		}
		mean := sum / float64(len(fracs))
		var s float64
		for _, f := range fracs {
			s += math.Abs(f - mean)
		}
		wi.score = s
	}
}

func topK(words map[string]*wordInfo, k int) []*wordInfo {
	all := make([]*wordInfo, 0, len(words))
	keys := make([]string, 0, len(words))
	for w := range words {
		keys = append(keys, w)
	}
	sort.Strings(keys)
	for _, w := range keys {
		all = append(all, words[w])
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].score > all[j].score })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// bestSplit finds the threshold on the candidate's distance vector that
// maximizes information gain; it returns the gain, the threshold (midpoint
// between the adjacent distances) and the separation gap for tie-breaking.
func bestSplit(dists []float64, labels []int) (gain, threshold, gap float64) {
	n := len(dists)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dists[idx[a]] < dists[idx[b]] })
	total := map[int]int{}
	for _, l := range labels {
		total[l]++
	}
	h := entropyOf(total, n)
	left := map[int]int{}
	bestGain, bestThr, bestGap := -1.0, 0.0, 0.0
	for i := 0; i < n-1; i++ {
		left[labels[idx[i]]]++
		//rpmlint:ignore floateq adjacent sorted values: no threshold exists strictly between equal stored values
		if dists[idx[i]] == dists[idx[i+1]] {
			continue // no valid threshold between equal distances
		}
		nl := i + 1
		nr := n - nl
		right := map[int]int{}
		for l, c := range total {
			right[l] = c - left[l]
		}
		g := h - (float64(nl)/float64(n))*entropyOf(left, nl) - (float64(nr)/float64(n))*entropyOf(right, nr)
		gp := dists[idx[i+1]] - dists[idx[i]]
		//rpmlint:ignore floateq deterministic tie-break between identically computed gains
		if g > bestGain || (g == bestGain && gp > bestGap) {
			bestGain = g
			bestThr = (dists[idx[i]] + dists[idx[i+1]]) / 2
			bestGap = gp
		}
	}
	return bestGain, bestThr, bestGap
}

func entropyOf(counts map[int]int, n int) float64 {
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// Predict classifies one series by walking the tree.
func (m *Model) Predict(query []float64) int {
	n := m.root
	for !n.leaf {
		if dist.ClosestMatch(n.shapelet, query).Dist <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// PredictBatch classifies every instance of test.
func (m *Model) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	for i, in := range test {
		out[i] = m.Predict(in.Values)
	}
	return out
}
