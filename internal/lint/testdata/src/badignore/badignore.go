// Package badignore exercises the suppression-directive contract:
// malformed directives are diagnostics themselves and do not suppress.
package badignore

// MissingReason has a directive without a reason: the directive is
// reported and the finding survives.
func MissingReason(a, b float64) bool {
	//rpmlint:ignore floateq
	return a == b
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer(a, b float64) bool {
	//rpmlint:ignore nosuchanalyzer because reasons
	return a == b
}

// Bare has neither analyzer nor reason.
func Bare(a, b float64) bool {
	//rpmlint:ignore
	return a == b
}
