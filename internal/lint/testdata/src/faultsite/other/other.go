// Package other exercises SiteDead from outside the configured use
// layer — which must NOT count as exercising it: the declared-but-dead
// finding in the faults package stands.
package other

import "lintfix/faultsite/faults"

func hit(in *faults.Injector) bool {
	return in.Fire(faults.SiteDead)
}
