// Package cluster implements agglomerative hierarchical clustering with
// complete linkage, and the iterative two-way splitting refinement RPM
// applies to the instance set of each grammar rule (paper §3.2.2): split a
// group in two; if one side holds less than a minimum fraction of the
// parent the split is rejected, otherwise both sides are split further,
// until no group can be split.
package cluster

import "math"

// CompleteLinkage clusters n items into k groups using agglomerative
// clustering with complete (maximum) linkage. d must be a symmetric n×n
// distance matrix. The result lists the item indices of each cluster;
// order within and across clusters is deterministic (by smallest member).
//
// The implementation is the straightforward O(n³) merge loop; rule
// instance sets are small (tens of subsequences), which is exactly the
// regime the paper's complexity analysis assumes (§5.3: O(u³) per rule).
func CompleteLinkage(d [][]float64, k int) [][]int {
	n := len(d)
	if k <= 0 {
		k = 1
	}
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Each cluster is a list of item indices; linkage between clusters is
	// the max pairwise item distance, maintained incrementally.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	// link[i][j] = complete linkage between clusters i and j
	link := make([][]float64, n)
	for i := range link {
		link[i] = make([]float64, n)
		copy(link[i], d[i])
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > k {
		// find the closest pair of live clusters
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if link[i][j] < best {
					best = link[i][j]
					bi, bj = i, j
				}
			}
		}
		// merge bj into bi
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		alive[bj] = false
		for t := 0; t < n; t++ {
			if !alive[t] || t == bi {
				continue
			}
			l := link[bi][t]
			if link[bj][t] > l {
				l = link[bj][t]
			}
			link[bi][t] = l
			link[t][bi] = l
		}
		remaining--
	}
	var out [][]int
	for i := 0; i < n; i++ {
		if alive[i] {
			sortInts(clusters[i])
			out = append(out, clusters[i])
		}
	}
	// deterministic cluster order: by first (smallest) member
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SplitRefine recursively partitions the items 0..n-1 (n = len(d)) as the
// paper prescribes: try a 2-way complete-linkage split; if either side
// holds fewer than minFrac of the parent's items the parent is kept whole,
// otherwise both halves are refined recursively. minFrac is the paper's
// 30% rule (pass 0.3). Groups of fewer than 4 items are never split
// (a 2-way split of 2 or 3 items always violates a 30% bound in spirit and
// would fragment motifs into singletons).
//
// The paper's stopping rule alone ("stop when no group can be further
// split") would fragment a homogeneous group all the way down, because a
// balanced split of uniform points always passes the size test. We
// therefore add the natural cohesion guard the rule implies: a split is
// accepted only when the two halves are actually separated, i.e. the
// single-linkage gap between them exceeds half the larger half's diameter.
// A genuine mixture of two motif shapes passes easily; a uniform cloud of
// instances of one motif is kept whole.
func SplitRefine(d [][]float64, minFrac float64) [][]int {
	n := len(d)
	if n == 0 {
		return nil
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var out [][]int
	var rec func(items []int)
	rec = func(items []int) {
		if len(items) < 4 {
			out = append(out, items)
			return
		}
		sub := submatrix(d, items)
		parts := CompleteLinkage(sub, 2)
		if len(parts) != 2 {
			out = append(out, items)
			return
		}
		small := len(parts[0])
		if len(parts[1]) < small {
			small = len(parts[1])
		}
		if float64(small) < minFrac*float64(len(items)) {
			out = append(out, items)
			return
		}
		// cohesion guard: require real separation between the halves
		gap := math.Inf(1)
		for _, i := range parts[0] {
			for _, j := range parts[1] {
				if sub[i][j] < gap {
					gap = sub[i][j]
				}
			}
		}
		maxDiam := 0.0
		for _, p := range parts {
			for a := 0; a < len(p); a++ {
				for b := a + 1; b < len(p); b++ {
					if sub[p[a]][p[b]] > maxDiam {
						maxDiam = sub[p[a]][p[b]]
					}
				}
			}
		}
		if gap <= 0.5*maxDiam {
			out = append(out, items)
			return
		}
		for _, p := range parts {
			mapped := make([]int, len(p))
			for i, idx := range p {
				mapped[i] = items[idx]
			}
			rec(mapped)
		}
	}
	rec(all)
	return out
}

// submatrix extracts the distance matrix restricted to the given items.
func submatrix(d [][]float64, items []int) [][]float64 {
	m := len(items)
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		for j := range out[i] {
			out[i][j] = d[items[i]][items[j]]
		}
	}
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
