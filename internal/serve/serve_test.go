package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rpm"
)

// ---------------------------------------------------------------------------
// Fixtures: two distinct trained models (cheap fixed-parameter training),
// built once per test binary.

var (
	fixOnce  sync.Once
	fixErr   error
	model1   []byte // snapshot bytes, SynCBF seed 1
	model2   []byte // snapshot bytes, SynCBF seed 2 (different content)
	fixClf1  *rpm.Classifier
	fixClf2  *rpm.Classifier
	fixProbe rpm.Dataset // queries for byte-identity checks
)

func fixtures(t testing.TB) {
	t.Helper()
	fixOnce.Do(func() {
		opts := rpm.DefaultOptions()
		opts.Mode = rpm.ParamFixed
		opts.Params = rpm.SAXParams{Window: 40, PAA: 6, Alphabet: 4}
		opts.Workers = 1
		train := func(seed int64) (*rpm.Classifier, []byte, error) {
			split := rpm.GenerateDataset("SynCBF", seed)
			clf, err := rpm.Train(split.Train, opts)
			if err != nil {
				return nil, nil, err
			}
			var buf bytes.Buffer
			if err := clf.Save(&buf); err != nil {
				return nil, nil, err
			}
			return clf, buf.Bytes(), nil
		}
		if fixClf1, model1, fixErr = train(1); fixErr != nil {
			return
		}
		if fixClf2, model2, fixErr = train(2); fixErr != nil {
			return
		}
		fixProbe = rpm.GenerateDataset("SynCBF", 1).Test[:12]
		if bytes.Equal(model1, model2) {
			fixErr = fmt.Errorf("fixture models are identical; hot-reload tests need distinct content")
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
}

// writeModel writes snapshot bytes as <dir>/<name>.json.
func writeModel(t testing.TB, dir, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// newTestServer builds a Server over a fresh model dir holding model1
// under "cbf" (unless the mutator changes cfg.ModelDir) plus an
// httptest front end. Close order on cleanup mirrors production:
// http server first, then drain.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server, string) {
	t.Helper()
	fixtures(t)
	dir := t.TempDir()
	writeModel(t, dir, "cbf", model1)
	cfg := Config{ModelDir: dir, Workers: 1}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts, dir
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func predictBody(model string, values []float64) string {
	b, _ := json.Marshal(predictRequest{Model: model, Values: values})
	return string(b)
}

// ---------------------------------------------------------------------------
// Happy path + byte identity

// TestPredictHappyPath: /v1/predict answers every probe query with
// exactly the label the in-process Classifier.Predict produces, and the
// envelope names the model and version that served it.
func TestPredictHappyPath(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	for i, in := range fixProbe {
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", in.Values))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out predictResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if want := fixClf1.Predict(in.Values); out.Label != want {
			t.Fatalf("probe %d: served label %d != direct Predict %d", i, out.Label, want)
		}
		if out.Model != "cbf" || out.Version != 1 {
			t.Fatalf("probe %d: model/version = %q/%d", i, out.Model, out.Version)
		}
	}
}

// TestPredictBatchEndpoint: /v1/predict:batch answers with the same
// labels as direct PredictBatch, bypassing the micro-batcher.
func TestPredictBatchEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	series := make([][]float64, len(fixProbe))
	for i, in := range fixProbe {
		series[i] = in.Values
	}
	req, _ := json.Marshal(predictBatchRequest{Series: series})
	resp, body := postJSON(t, ts.URL+"/v1/predict:batch", string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out predictBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	want := fixClf1.PredictBatch(fixProbe)
	if len(out.Labels) != len(want) {
		t.Fatalf("got %d labels, want %d", len(out.Labels), len(want))
	}
	for i := range want {
		if out.Labels[i] != want[i] {
			t.Fatalf("label %d: served %d != direct %d", i, out.Labels[i], want[i])
		}
	}
	snap := s.reg.Snapshot()
	if snap.Counter(CtrRequestsBatch) != 1 {
		t.Fatalf("batch request counter = %d", snap.Counter(CtrRequestsBatch))
	}
	if snap.Counter(CtrBatches) != 0 {
		t.Fatalf("the batch endpoint must bypass the micro-batcher, saw %d flushes", snap.Counter(CtrBatches))
	}
	if sum := snap.Summary(SumLatencyBatch); sum == nil || sum.Count != 1 {
		t.Fatalf("batch latency summary = %+v", sum)
	}
}

// ---------------------------------------------------------------------------
// Micro-batching

// TestBatchingAmortizes is the acceptance check: N concurrent
// single-predict requests are served by fewer than N PredictBatch calls,
// observable via the serve.batches counter, with every label still
// byte-identical to direct Predict.
func TestBatchingAmortizes(t *testing.T) {
	const n = 8
	s, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = n
		c.MaxDelay = 100 * time.Millisecond
	})
	var wg sync.WaitGroup
	labels := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fixProbe[i%len(fixProbe)]
			resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", in.Values))
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var out predictResponse
			if err := json.Unmarshal(body, &out); err != nil {
				errs[i] = err
				return
			}
			labels[i] = out.Label
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want := fixClf1.Predict(fixProbe[i%len(fixProbe)].Values); labels[i] != want {
			t.Fatalf("request %d: label %d != direct %d", i, labels[i], want)
		}
	}
	snap := s.reg.Snapshot()
	batches, items := snap.Counter(CtrBatches), snap.Counter(CtrBatchItems)
	if items != n {
		t.Fatalf("batched items = %d, want %d", items, n)
	}
	if batches >= n {
		t.Fatalf("served %d requests in %d PredictBatch calls: batching did not amortize", n, batches)
	}
	if batches < 1 {
		t.Fatalf("no batch flush recorded")
	}
	t.Logf("amortization: %d requests in %d flushes", n, batches)
	if p := snap.Summary(SumLatencyPredict); p == nil || p.Count != n {
		t.Fatalf("predict latency summary = %+v", p)
	}
	if pool := snap.Pools; len(pool) == 0 {
		t.Fatal("batch pool accounting missing")
	}
}

// TestFlushScratchReuse pins the pooled flush buffer: repeated flushes —
// including mixed-model batches through the grouped path — reuse the
// pooled dataset (serve.flush.scratch.new grows strictly slower than
// serve.batches) and still hand every request the label its own model
// produces.
func TestFlushScratchReuse(t *testing.T) {
	s, _, dir := newTestServer(t, nil)
	writeModel(t, dir, "cbf2", model2)
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	mkBatch := func(mixed bool) []*predRequest {
		batch := make([]*predRequest, 6)
		for i := range batch {
			name := "cbf"
			if mixed && i%2 == 1 {
				name = "cbf2"
			}
			batch[i] = &predRequest{
				model:  name,
				values: fixProbe[i%len(fixProbe)].Values,
				out:    make(chan predResponse, 1),
			}
		}
		return batch
	}
	for round := 0; round < 5; round++ {
		batch := mkBatch(round%2 == 1)
		s.batcher.flush(batch)
		for i, r := range batch {
			resp := <-r.out
			if resp.err != nil {
				t.Fatalf("round %d req %d: %v", round, i, resp.err)
			}
			clf := fixClf1
			if r.model == "cbf2" {
				clf = fixClf2
			}
			if want := clf.Predict(r.values); resp.label != want {
				t.Fatalf("round %d req %d (%s): label %d != direct %d", round, i, r.model, resp.label, want)
			}
		}
	}
	snap := s.reg.Snapshot()
	// A GC can empty the sync.Pool between flushes (more often under
	// -race), so pin reuse rather than an exact count: strictly fewer
	// allocations than flushes.
	got, flushes := snap.Counter(CtrFlushScratchNew), snap.Counter(CtrBatches)
	if got < 1 || got >= flushes {
		t.Errorf("flush scratch allocations = %d over %d flushes, want at least one reuse", got, flushes)
	}
}

// TestFlushBySize: with a huge MaxDelay, exactly MaxBatch concurrent
// requests trigger one size-driven flush (no timer involved).
func TestFlushBySize(t *testing.T) {
	const n = 4
	s, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = n
		c.MaxDelay = 10 * time.Second
		c.RequestTimeout = 8 * time.Second
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[i].Values))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("size-driven flush took %s; batcher waited for the timer", elapsed)
	}
	snap := s.reg.Snapshot()
	if b := snap.Counter(CtrBatches); b != 1 {
		t.Fatalf("flushes = %d, want exactly 1 size-driven flush", b)
	}
	if items := snap.Counter(CtrBatchItems); items != n {
		t.Fatalf("items = %d, want %d", items, n)
	}
}

// TestFlushByTimer: fewer requests than MaxBatch still flush once
// MaxDelay elapses.
func TestFlushByTimer(t *testing.T) {
	s, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 100
		c.MaxDelay = 30 * time.Millisecond
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[i].Values))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timer flush took %s", elapsed)
	}
	snap := s.reg.Snapshot()
	if b := snap.Counter(CtrBatches); b < 1 || b > 2 {
		t.Fatalf("flushes = %d, want 1 or 2 timer-driven flushes", b)
	}
	if items := snap.Counter(CtrBatchItems); items != 2 {
		t.Fatalf("items = %d, want 2", items)
	}
}

// ---------------------------------------------------------------------------
// Error mapping

// TestErrorMapping drives the PR-2 error taxonomy through the HTTP
// boundary: every failure mode maps to its documented status and stable
// envelope code.
func TestErrorMapping(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxBodyBytes = 2048
	})
	huge := predictBody("", make([]float64, 4096))
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed JSON", "/v1/predict", "{not json", http.StatusBadRequest, "bad_input"},
		{"empty values", "/v1/predict", `{"values":[]}`, http.StatusUnprocessableEntity, "too_short"},
		{"missing values", "/v1/predict", `{"model":"cbf"}`, http.StatusUnprocessableEntity, "too_short"},
		{"unknown model", "/v1/predict", predictBody("nope", []float64{1, 2, 3}), http.StatusNotFound, "not_found"},
		{"oversize body", "/v1/predict", huge, http.StatusRequestEntityTooLarge, "too_large"},
		{"batch empty set", "/v1/predict:batch", `{"series":[]}`, http.StatusBadRequest, "bad_input"},
		{"batch bad member", "/v1/predict:batch", `{"series":[[1,2,3],[]]}`, http.StatusUnprocessableEntity, "too_short"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, c.status, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("non-envelope error body %q: %v", body, err)
			}
			if env.Error.Code != c.code || env.Error.Status != c.status || env.Error.Message == "" {
				t.Fatalf("envelope = %+v, want code %q status %d", env.Error, c.code, c.status)
			}
		})
	}
	// The batch-member error names the offending index.
	_, body := postJSON(t, ts.URL+"/v1/predict:batch", `{"series":[[1,2,3],[]]}`)
	if !strings.Contains(string(body), "series 1") {
		t.Fatalf("batch member error should name the index: %s", body)
	}
}

// TestNoModels: a server over an empty (or all-corrupt) directory comes
// up, reports unready, and answers predictions with 503.
func TestNoModels(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{definitely not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{ModelDir: dir})
	if err != nil {
		t.Fatalf("corrupt-only dir must not fail construction: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close(context.Background())
	if s.Store().Len() != 0 {
		t.Fatalf("store has %d models", s.Store().Len())
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", resp.StatusCode)
	}
	resp2, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", []float64{1, 2, 3}))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with no models = %d: %s", resp2.StatusCode, body)
	}
	// Liveness is independent of readiness.
	if resp3, err := http.Get(ts.URL + "/healthz"); err != nil || resp3.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp3, err)
	} else {
		resp3.Body.Close()
	}
}

// ---------------------------------------------------------------------------
// Load shedding

// TestShed429: with the batcher deterministically stalled (test gate),
// a full queue sheds the next request with 429 + Retry-After while the
// queued ones are eventually served.
func TestShed429(t *testing.T) {
	s, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 1
		c.QueueSize = 1
		c.MaxDelay = time.Millisecond
		c.RequestTimeout = 10 * time.Second
	})
	gate := make(chan struct{})
	s.batcher.flushGate = gate

	type result struct {
		status int
		body   []byte
	}
	fire := func() chan result {
		ch := make(chan result, 1)
		go func() {
			resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[0].Values))
			ch <- result{resp.StatusCode, body}
		}()
		return ch
	}
	// A is popped by the loop and stalls in the gated flush (the gate's
	// announce token proves it has left the queue).
	a := fire()
	<-gate
	// B fills the one queue slot while the loop is stalled on the gate.
	b := fire()
	waitFor(t, func() bool { return len(s.batcher.queue) == 1 })
	// C finds the queue full → shed.
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[1].Values))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 must carry Retry-After")
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "overloaded" {
		t.Fatalf("shed envelope = %s (%v)", body, err)
	}
	// Release A's flush, then walk B's batch through the gate too.
	gate <- struct{}{}
	<-gate
	gate <- struct{}{}
	ra := <-a
	rb := <-b
	if ra.status != http.StatusOK || rb.status != http.StatusOK {
		t.Fatalf("queued requests must still be served: a=%d b=%d", ra.status, rb.status)
	}
	if shed := s.reg.Snapshot().Counter(CtrShed); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// ---------------------------------------------------------------------------
// Hot reload

// TestHotReload covers the registry swap semantics end to end: a changed
// snapshot bumps the version and swaps predictions atomically; a corrupt
// overwrite is rejected while the previous version keeps serving; an
// unchanged file keeps its version.
func TestHotReload(t *testing.T) {
	s, ts, dir := newTestServer(t, nil)
	probe := fixProbe[0].Values

	version := func() int {
		resp, body := postJSON(t, ts.URL+"/admin/reload", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload: %d %s", resp.StatusCode, body)
		}
		var rep ReloadReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		m, err := s.Store().Get("cbf")
		if err != nil {
			t.Fatal(err)
		}
		return m.Version
	}
	serveLabel := func() int {
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", probe))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d %s", resp.StatusCode, body)
		}
		var out predictResponse
		json.Unmarshal(body, &out)
		return out.Label
	}

	if got, want := serveLabel(), fixClf1.Predict(probe); got != want {
		t.Fatalf("v1 label %d != %d", got, want)
	}
	// Unchanged file: version stays 1.
	if v := version(); v != 1 {
		t.Fatalf("no-op reload bumped version to %d", v)
	}
	// Swap in model2: version 2, predictions follow the new model.
	writeModel(t, dir, "cbf", model2)
	if v := version(); v != 2 {
		t.Fatalf("changed snapshot gave version %d, want 2", v)
	}
	if got, want := serveLabel(), fixClf2.Predict(probe); got != want {
		t.Fatalf("v2 label %d != direct new-model label %d", got, want)
	}
	// Corrupt overwrite: rejected, v2 keeps serving.
	writeModel(t, dir, "cbf", []byte(`{"version":1,"patterns":[{"class":0,"values":[1,2]}]}`))
	resp, body := postJSON(t, ts.URL+"/admin/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload with corrupt file: %d %s", resp.StatusCode, body)
	}
	var rep ReloadReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.KeptOld) != 1 || rep.KeptOld[0].Name != "cbf" || rep.KeptOld[0].Err == "" {
		t.Fatalf("corrupt reload report = %+v", rep)
	}
	m, _ := s.Store().Get("cbf")
	if m.Version != 2 {
		t.Fatalf("corrupt reload changed the serving version to %d", m.Version)
	}
	if got, want := serveLabel(), fixClf2.Predict(probe); got != want {
		t.Fatalf("after corrupt reload label %d != old model's %d: old model must keep serving", got, want)
	}
	if rej := s.reg.Snapshot().Counter(CtrReloadRejected); rej < 1 {
		t.Fatalf("rejected counter = %d", rej)
	}
}

// TestHotReloadInFlight: a reload that lands while a batch is stalled
// mid-flight neither drops nor corrupts the in-flight request — the
// flush resolves the newest model and answers with it.
func TestHotReloadInFlight(t *testing.T) {
	s, ts, dir := newTestServer(t, func(c *Config) {
		c.MaxBatch = 1
		c.MaxDelay = time.Millisecond
		c.RequestTimeout = 10 * time.Second
	})
	gate := make(chan struct{})
	s.batcher.flushGate = gate
	done := make(chan predictResponse, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
		var out predictResponse
		json.Unmarshal(body, &out)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("in-flight request failed: %d %s", resp.StatusCode, body)
		}
		done <- out
	}()
	<-gate // the request's flush has begun and is stalled at the gate
	// Swap the model while the request sits in the stalled flush.
	writeModel(t, dir, "cbf", model2)
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // release: flush resolves the freshly swapped model
	out := <-done
	if out.Version != 2 {
		t.Fatalf("in-flight request served by version %d, want the hot-swapped 2", out.Version)
	}
	if want := fixClf2.Predict(fixProbe[0].Values); out.Label != want {
		t.Fatalf("in-flight label %d != new model's %d", out.Label, want)
	}
}

// ---------------------------------------------------------------------------
// Graceful drain

// TestGracefulDrain: requests already queued when Close is called are
// still answered; requests arriving during/after the drain get 503.
func TestGracefulDrain(t *testing.T) {
	const n = 3
	s, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxBatch = 100
		c.MaxDelay = 10 * time.Second // flush only via drain
		c.RequestTimeout = 8 * time.Second
	})
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp, _ := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[i].Values))
			results <- resp.StatusCode
		}(i)
	}
	// Wait until all n are inside the batcher (popped into the
	// assembling batch or still queued), then drain.
	waitFor(t, func() bool { return s.reg.Snapshot().Counter(CtrRequestsPredict) == n })
	time.Sleep(50 * time.Millisecond) // let the handlers reach enqueue
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < n; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("queued request drained with status %d, want 200", status)
		}
	}
	// The drained server refuses new work.
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[0].Values))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain predict = %d: %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "draining" {
		t.Fatalf("post-drain envelope = %s", body)
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %v, %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

// ---------------------------------------------------------------------------
// Models listing

func TestModelsEndpoint(t *testing.T) {
	_, ts, dir := newTestServer(t, nil)
	writeModel(t, dir, "cbf2", model2)
	if resp, body := postJSON(t, ts.URL+"/admin/reload", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Models) != 2 || out.Models[0].Name != "cbf" || out.Models[1].Name != "cbf2" {
		t.Fatalf("models = %+v", out.Models)
	}
	for _, m := range out.Models {
		if m.NumPatterns <= 0 || len(m.Classes) == 0 || m.Version != 1 {
			t.Fatalf("model info incomplete: %+v", m)
		}
	}
	// Two models ⇒ no default: an unnamed predict is a 400.
	resp2, body := postJSON(t, ts.URL+"/v1/predict", predictBody("", fixProbe[0].Values))
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous model predict = %d: %s", resp2.StatusCode, body)
	}
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under -race via the Makefile RACE_PKGS)

// TestConcurrentClients hammers the server from several goroutines with
// mixed single/batch/models traffic while reloads swap the model
// underneath; every request must succeed and every label match one of
// the two model generations.
func TestConcurrentClients(t *testing.T) {
	s, ts, dir := newTestServer(t, func(c *Config) {
		c.MaxBatch = 8
		c.MaxDelay = time.Millisecond
	})
	const clients, per = 4, 15
	want1 := fixClf1.PredictBatch(fixProbe)
	want2 := fixClf2.PredictBatch(fixProbe)
	var wg sync.WaitGroup
	for cIdx := 0; cIdx < clients; cIdx++ {
		wg.Add(1)
		go func(cIdx int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := (cIdx + i) % len(fixProbe)
				switch i % 3 {
				case 0, 1:
					resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[k].Values))
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d predict: %d %s", cIdx, resp.StatusCode, body)
						return
					}
					var out predictResponse
					json.Unmarshal(body, &out)
					if out.Label != want1[k] && out.Label != want2[k] {
						t.Errorf("client %d: label %d matches neither model generation", cIdx, out.Label)
					}
				case 2:
					req, _ := json.Marshal(predictBatchRequest{Model: "cbf", Series: [][]float64{fixProbe[k].Values}})
					resp, body := postJSON(t, ts.URL+"/v1/predict:batch", string(req))
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d batch: %d %s", cIdx, resp.StatusCode, body)
						return
					}
				}
			}
		}(cIdx)
	}
	// Reloader: swap between the two generations while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if i%2 == 0 {
				writeModel(t, dir, "cbf", model2)
			} else {
				writeModel(t, dir, "cbf", model1)
			}
			if _, err := s.Reload(); err != nil {
				t.Errorf("reload %d: %v", i, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	snap := s.reg.Snapshot()
	if snap.Counter(CtrRequests) < clients*per {
		t.Fatalf("requests counter = %d", snap.Counter(CtrRequests))
	}
}
