// Package main sits under the fixture's cmd prefix: binaries own their
// root context, so Background here is clean.
package main

import (
	"context"

	"lintfix/ctxflow"
)

func main() {
	ctx := context.Background()
	_ = ctxflow.FetchContext(ctx)
}
