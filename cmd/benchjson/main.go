// Command benchjson turns `go test -bench` output into a stable JSON
// document and compares two such documents for performance regressions.
// It is the core of the repo's benchmark-regression gate (`make
// bench-gate`, see README "Benchmark gate"): a baseline BENCH_PR4.json
// is committed, CI re-runs the gate benchmarks, and a >25% ns/op
// regression on any gated benchmark fails the build.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o bench.json
//	benchjson -compare -max-regress 25 baseline.json current.json
//
// Parse mode reads benchmark result lines ("BenchmarkX-8  100  123 ns/op
// ...") from stdin (or a file argument), strips the trailing -GOMAXPROCS
// suffix so documents from machines with different core counts stay
// comparable, and aggregates repeated samples of the same benchmark
// (e.g. from -count=3) by taking the minimum ns/op — the least-noise
// estimate of the code's true cost.
//
// Compare mode loads two documents and fails (exit 1) when any
// benchmark present in the baseline is missing from the current run or
// its ns/op regressed by more than -max-regress percent. Improvements
// and new benchmarks are reported but never fail the gate; allocs/op is
// reported for visibility but not gated (allocation counts are stable,
// timing is what the gate protects).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's aggregated result.
type Bench struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkFoo-8 → BenchmarkFoo).
	Name string `json:"name"`
	// Pkg is the import path from the preceding "pkg:" line, when present.
	Pkg string `json:"pkg,omitempty"`
	// Samples is how many result lines were folded into this entry.
	Samples int `json:"samples"`
	// Iters is b.N of the selected (fastest) sample.
	Iters int64 `json:"iters"`
	// NsPerOp is the minimum ns/op across samples.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem (minimum across
	// samples; -1 when the benchmark did not report them).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Doc is the JSON document benchjson emits and compares.
type Doc struct {
	Created    time.Time `json:"created"`
	GoVersion  string    `json:"go"`
	Benchmarks []Bench   `json:"benchmarks"`
}

func main() {
	var (
		compare    = flag.Bool("compare", false, "compare two benchjson documents: benchjson -compare baseline.json current.json")
		maxRegress = flag.Float64("max-regress", 25, "with -compare: fail when ns/op regresses by more than this percent")
		out        = flag.String("o", "", "parse mode: write JSON here instead of stdout")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: baseline.json current.json")
			os.Exit(2)
		}
		report, failed, err := compareFiles(flag.Arg(0), flag.Arg(1), *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(report)
		if failed {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: benchmark regression beyond %.0f%% (see above)\n", *maxRegress)
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchjson: parse mode takes at most one input file (default stdin)")
		os.Exit(2)
	}
	doc, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(2)
	}
	enc, _ := json.MarshalIndent(doc, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// cpuSuffix matches the trailing -GOMAXPROCS that `go test` appends to
// benchmark names (BenchmarkFoo-8, BenchmarkFoo/case-8).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output and aggregates result lines into
// a Doc. Lines that are not benchmark results (goos/pkg/PASS/ok/log
// noise) are skipped; a malformed Benchmark line is an error so a
// truncated bench run cannot silently produce a hollow baseline.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Created: time.Now().UTC(), GoVersion: runtime.Version()}
	byName := map[string]*Bench{}
	var order []string
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]"; the
		// bare "BenchmarkFoo" echo line (no fields beyond the name, or
		// no ns/op pair) is skipped.
		if len(fields) < 4 || len(fields)%2 != 0 {
			if len(fields) == 1 {
				continue // name echo before the result line
			}
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed iteration count in %q: %v", line, err)
		}
		ns, bytesOp, allocsOp := -1.0, -1.0, -1.0
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("malformed value in %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				ns = v
			case "B/op":
				bytesOp = v
			case "allocs/op":
				allocsOp = v
			}
		}
		if ns < 0 {
			return nil, fmt.Errorf("benchmark line without ns/op: %q", line)
		}
		b, ok := byName[name]
		if !ok {
			b = &Bench{Name: name, Pkg: pkg, Samples: 0, NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp, Iters: iters}
			byName[name] = b
			order = append(order, name)
		}
		b.Samples++
		if ns < b.NsPerOp {
			b.NsPerOp = ns
			b.Iters = iters
		}
		if bytesOp >= 0 && (b.BytesPerOp < 0 || bytesOp < b.BytesPerOp) {
			b.BytesPerOp = bytesOp
		}
		if allocsOp >= 0 && (b.AllocsPerOp < 0 || allocsOp < b.AllocsPerOp) {
			b.AllocsPerOp = allocsOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, n := range order {
		doc.Benchmarks = append(doc.Benchmarks, *byName[n])
	}
	return doc, nil
}

// compareFiles loads two documents and renders the regression report.
// The boolean result is true when the gate should fail.
func compareFiles(baselinePath, currentPath string, maxRegress float64) (string, bool, error) {
	baseline, err := loadDoc(baselinePath)
	if err != nil {
		return "", false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	current, err := loadDoc(currentPath)
	if err != nil {
		return "", false, fmt.Errorf("current %s: %w", currentPath, err)
	}
	return compareDocs(baseline, current, maxRegress)
}

func loadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("parsing: %w", err)
	}
	if len(d.Benchmarks) == 0 {
		return nil, fmt.Errorf("document has no benchmarks")
	}
	return &d, nil
}

// compareDocs walks the baseline benchmarks (sorted, for a stable
// report) and classifies each against the current run. Failures are
// regressions beyond maxRegress percent and benchmarks that vanished;
// everything else is informational.
func compareDocs(baseline, current *Doc, maxRegress float64) (string, bool, error) {
	cur := map[string]Bench{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	names := make([]string, 0, len(baseline.Benchmarks))
	base := map[string]Bench{}
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)

	var sb strings.Builder
	failed := false
	fmt.Fprintf(&sb, "benchmark gate: max allowed ns/op regression %.0f%%\n", maxRegress)
	for _, name := range names {
		old, now := base[name], cur[name]
		if _, ok := cur[name]; !ok {
			failed = true
			fmt.Fprintf(&sb, "  FAIL  %-40s missing from current run (baseline %s)\n", name, fmtNs(old.NsPerOp))
			continue
		}
		delta := 0.0
		if old.NsPerOp > 0 {
			delta = (now.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		}
		status := "ok  "
		if delta > maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(&sb, "  %s  %-40s %12s → %12s  %+7.1f%%  (allocs %s → %s)\n",
			status, name, fmtNs(old.NsPerOp), fmtNs(now.NsPerOp), delta,
			fmtCount(old.AllocsPerOp), fmtCount(now.AllocsPerOp))
	}
	for name, b := range cur {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(&sb, "  new   %-40s %12s (not in baseline; add with `make bench-baseline`)\n", name, fmtNs(b.NsPerOp))
		}
	}
	return sb.String(), failed, nil
}

func fmtNs(ns float64) string {
	switch {
	case ns < 0:
		return "n/a"
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtCount(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}
