package stream

import (
	"errors"
	"sort"
	"sync"
)

// Registry errors. The serve layer maps these onto the HTTP error
// taxonomy (404 / 429 / 503); inside this package they are plain
// sentinels.
var (
	// ErrTooManyStreams means the registry is at its stream capacity.
	ErrTooManyStreams = errors.New("stream: registry at stream capacity")
	// ErrClosed means the registry (or the individual stream) has been
	// closed and accepts no further work.
	ErrClosed = errors.New("stream: closed")
)

// Registry holds the live streams of a process: bounded in count and
// byte-accounted, with a two-phase shutdown (Drain wakes and detaches
// every subscriber so blocked readers exit; Close then tears the
// streams down). All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	streams    map[string]*Stream
	maxStreams int
	bytes      int64
	closed     bool
}

// NewRegistry returns an empty registry capped at maxStreams live
// streams (maxStreams <= 0 means unbounded).
func NewRegistry(maxStreams int) *Registry {
	return &Registry{
		streams:    make(map[string]*Stream),
		maxStreams: maxStreams,
	}
}

// GetOrCreate returns the stream with the given id, creating it via
// create when absent. create runs under the registry lock (it only
// builds a Detector — cheap, no I/O) and may veto creation by returning
// an error. created reports whether this call made the stream.
func (r *Registry) GetOrCreate(id string, create func() (*Detector, any, error)) (st *Stream, created bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, ErrClosed
	}
	if st, ok := r.streams[id]; ok {
		return st, false, nil
	}
	if r.maxStreams > 0 && len(r.streams) >= r.maxStreams {
		return nil, false, ErrTooManyStreams
	}
	det, tag, err := create()
	if err != nil {
		return nil, false, err
	}
	st = &Stream{ID: id, Tag: tag, det: det}
	r.streams[id] = st
	r.bytes += int64(det.Bytes())
	return st, true, nil
}

// Get returns the stream with the given id, if live.
func (r *Registry) Get(id string) (*Stream, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.streams[id]
	return st, ok
}

// Remove closes and drops the stream with the given id, returning
// whether it existed. Its subscribers are woken and detached.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	st, ok := r.streams[id]
	if ok {
		delete(r.streams, id)
		r.bytes -= int64(st.det.Bytes())
	}
	r.mu.Unlock()
	if ok {
		st.close()
	}
	return ok
}

// Len returns the number of live streams.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.streams)
}

// Bytes returns the summed fixed footprint of all live detectors — the
// gauge the serve layer exports and the soak test bounds.
func (r *Registry) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// IDs returns the live stream ids, sorted.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.streams))
	for id := range r.streams {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// snapshot returns the live streams in sorted-id order (deterministic
// teardown for Drain/Close).
func (r *Registry) snapshot() []*Stream {
	ids := r.IDs()
	out := make([]*Stream, 0, len(ids))
	r.mu.Lock()
	for _, id := range ids {
		if st, ok := r.streams[id]; ok {
			out = append(out, st)
		}
	}
	r.mu.Unlock()
	return out
}

// Drain wakes and detaches every subscriber of every live stream
// without tearing the streams down. In the serve layer this runs at the
// start of graceful shutdown so SSE handlers parked on a subscriber
// channel exit and http.Server.Shutdown can complete; the streams stay
// readable until Close.
func (r *Registry) Drain() {
	for _, st := range r.snapshot() {
		st.detachSubs()
	}
}

// Close drains and tears down every stream and marks the registry
// closed; further GetOrCreate/Append calls fail with ErrClosed.
func (r *Registry) Close() {
	streams := r.snapshot()
	r.mu.Lock()
	r.closed = true
	r.streams = make(map[string]*Stream)
	r.bytes = 0
	r.mu.Unlock()
	for _, st := range streams {
		st.close()
	}
}

// Stream is one live stream: a Detector plus the subscriber fan-out,
// serialized by its own mutex so appends from concurrent requests are
// totally ordered. Created via Registry.GetOrCreate.
type Stream struct {
	ID string
	// Tag is opaque caller state carried with the stream (the serve
	// layer stores which model version answers it).
	Tag any

	mu     sync.Mutex
	det    *Detector
	subs   []*Sub
	closed bool
}

// AppendResult is the post-append snapshot an Append observer needs:
// totals, the committed label, and copies of the events this append
// emitted.
type AppendResult struct {
	Seen    int64
	Warm    bool
	Label   int
	Started bool
	Seq     int
	Events  []Event
}

// Append feeds a chunk through the stream's detector and wakes
// subscribers if events were committed. The returned Events slice is a
// copy, safe to retain.
func (s *Stream) Append(chunk []float64) (AppendResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return AppendResult{}, ErrClosed
	}
	evs := s.det.Append(chunk)
	res := AppendResult{
		Seen: s.det.Seen(),
		Warm: s.det.Warm(),
		Seq:  s.det.EventSeq(),
	}
	res.Label, res.Started = s.det.Label()
	if len(evs) > 0 {
		res.Events = append([]Event(nil), evs...)
	}
	notify := len(evs) > 0
	var subs []*Sub
	if notify {
		subs = s.subs
	}
	if notify {
		// Wake subscribers while still holding the lock: close() also
		// runs under it, so a notify can never race a channel close.
		for _, sub := range subs {
			select {
			case sub.notify <- struct{}{}:
			default: // already pending; subscriber will catch up via EventsSince
			}
		}
	}
	s.mu.Unlock()
	return res, nil
}

// State returns the stream's current totals without mutating it.
func (s *Stream) State() AppendResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := AppendResult{
		Seen: s.det.Seen(),
		Warm: s.det.Warm(),
		Seq:  s.det.EventSeq(),
	}
	res.Label, res.Started = s.det.Label()
	return res
}

// EventsSince returns a copy of the retained events with Seq > since.
func (s *Stream) EventsSince(since int) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det.EventsSince(since)
}

// Bytes returns the detector's fixed footprint.
func (s *Stream) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det.Bytes()
}

// Subscribe registers an event subscriber. The returned Sub's Wait
// channel receives a (coalesced) token whenever the stream commits
// events, and is closed when the stream closes or the registry drains;
// consumers then read the actual events via EventsSince with their own
// cursor. Fails with ErrClosed on a closed stream.
func (s *Stream) Subscribe() (*Sub, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	sub := &Sub{stream: s, notify: make(chan struct{}, 1)}
	s.subs = append(s.subs, sub)
	return sub, nil
}

// Sub is one event subscription on a stream.
type Sub struct {
	stream *Stream
	notify chan struct{}
	done   bool // guarded by stream.mu; true once notify is closed
}

// Wait returns the notification channel: one token per wake-up
// (coalesced), closed on stream close or registry drain.
func (s *Sub) Wait() <-chan struct{} { return s.notify }

// Close detaches the subscription. Safe to call after the stream has
// already detached it.
func (s *Sub) Close() {
	st := s.stream
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, sub := range st.subs {
		if sub == s {
			st.subs = append(st.subs[:i], st.subs[i+1:]...)
			break
		}
	}
	if !s.done {
		s.done = true
		close(s.notify)
	}
}

// detachSubs wakes and detaches every subscriber (close of the notify
// channel) without closing the stream.
func (s *Stream) detachSubs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.subs {
		if !sub.done {
			sub.done = true
			close(sub.notify)
		}
	}
	s.subs = nil
}

// close marks the stream closed and detaches subscribers.
func (s *Stream) close() {
	s.mu.Lock()
	s.closed = true
	for _, sub := range s.subs {
		if !sub.done {
			sub.done = true
			close(sub.notify)
		}
	}
	s.subs = nil
	s.mu.Unlock()
}
