package paa

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTransformDivisible(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6}
	got := Transform(v, 3)
	want := []float64{1.5, 3.5, 5.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Transform = %v, want %v", got, want)
	}
}

func TestTransformSingleSegment(t *testing.T) {
	v := []float64{2, 4, 6}
	got := Transform(v, 1)
	if len(got) != 1 || math.Abs(got[0]-4) > 1e-12 {
		t.Errorf("Transform = %v, want [4]", got)
	}
}

func TestTransformIdentityWhenWGEN(t *testing.T) {
	v := []float64{1, 2, 3}
	if got := Transform(v, 3); !reflect.DeepEqual(got, v) {
		t.Errorf("w==n should be identity, got %v", got)
	}
	if got := Transform(v, 10); !reflect.DeepEqual(got, v) {
		t.Errorf("w>n should be identity, got %v", got)
	}
}

func TestTransformFractional(t *testing.T) {
	// n=3, w=2: segment 0 covers points [0,1.5), segment 1 covers [1.5,3).
	v := []float64{0, 6, 12}
	got := Transform(v, 2)
	// seg0 = (0*1 + 6*0.5)/1.5 = 2 ; seg1 = (6*0.5 + 12*1)/1.5 = 10
	want := []float64{2, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("Transform = %v, want %v", got, want)
		}
	}
}

func TestTransformEmpty(t *testing.T) {
	if got := Transform(nil, 4); len(got) != 0 {
		t.Errorf("empty input should give empty output, got %v", got)
	}
}

func TestTransformPanicsOnBadW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for w<=0")
		}
	}()
	Transform([]float64{1, 2}, 0)
}

// The overall mean must be preserved by PAA (each point's total weight is
// equal), for any series and segment count.
func TestTransformPreservesMean(t *testing.T) {
	f := func(seed int64, n, w uint8) bool {
		nn := int(n%64) + 2
		ww := int(w%16) + 1
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, nn)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		out := Transform(v, ww)
		var mv, mo float64
		for _, x := range v {
			mv += x
		}
		mv /= float64(len(v))
		for _, x := range out {
			mo += x
		}
		mo /= float64(len(out))
		if ww >= nn {
			return reflect.DeepEqual(out, v)
		}
		return math.Abs(mv-mo) < 1e-9 && len(out) == ww
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// PAA of a constant series is constant.
func TestTransformConstant(t *testing.T) {
	v := make([]float64, 17)
	for i := range v {
		v[i] = 3.25
	}
	for _, w := range []int{1, 2, 5, 7, 16} {
		out := Transform(v, w)
		for _, x := range out {
			if math.Abs(x-3.25) > 1e-9 {
				t.Errorf("w=%d: constant series PAA not constant: %v", w, out)
			}
		}
	}
}

// Monotone non-decreasing input must yield monotone non-decreasing PAA.
func TestTransformMonotone(t *testing.T) {
	v := make([]float64, 31)
	for i := range v {
		v[i] = float64(i * i)
	}
	for _, w := range []int{2, 3, 5, 10, 30} {
		out := Transform(v, w)
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1]-1e-12 {
				t.Errorf("w=%d: PAA not monotone at %d: %v", w, i, out)
			}
		}
	}
}

func TestTransformIntoReusesBuffer(t *testing.T) {
	buf := make([]float64, 0, 8)
	v := []float64{1, 2, 3, 4}
	out := TransformInto(buf, v, 2)
	if &out[0] != &buf[:1][0] {
		t.Error("TransformInto did not reuse the provided buffer")
	}
	if !reflect.DeepEqual(out, []float64{1.5, 3.5}) {
		t.Errorf("TransformInto = %v", out)
	}
}
