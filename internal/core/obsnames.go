package core

// Canonical span, counter, gauge and pool names recorded by the
// training pipeline when Options.Obs is set. They are exported so the
// public façade (rpm.TrainReport), cmd/benchtab and the tests can read
// the snapshot without string drift.
//
// How the names map to the paper:
//
//   - SpanStep1 is §3.2.1 (SAX discretization of each class's
//     concatenated series). It is an aggregate span: the per-class
//     discretization times sum into it, so under Workers > 1 its wall
//     can exceed the candidates span's wall.
//   - SpanStep2 is §3.2.2 (Sequitur/Re-Pair grammar induction, rule
//     occurrence mapping and recursive 2-way cluster refinement), the
//     same aggregate-across-classes semantics.
//   - SpanStep3 is §3.2.3 / Algorithm 2 (τ-threshold near-duplicate
//     removal, the candidate-space transform and CFS selection).
//   - SpanParamSearch is §4 / Algorithm 3 (grid or DIRECT SAX-parameter
//     search over cross-validation splits).
//   - CtrCandidates is |candidates| before pruning — the quantity the
//     paper's Table 2 cost model is driven by; CtrCandidatesClass+"<c>"
//     is its per-class breakdown.
//   - CtrClustersKept/Dropped count refined clusters that met /
//     missed the γ·|class| support bound (Algorithm 1).
//   - CtrPruneKept/Dropped count candidates surviving / removed by the
//     τ similarity threshold (Algorithm 2 lines 5–18).
//   - CtrSearchEvals counts full parameter-vector evaluations;
//     CtrSearchCacheHits/Misses split lookups of the shared
//     DIRECT/grid evaluation cache.
//   - CtrCFSExpansions counts best-first node expansions inside CFS;
//     CtrCFSSelected is the number of features (patterns) it kept.
const (
	SpanTrain       = "train"
	SpanParamSearch = "param_search"
	SpanCandidates  = "candidates"
	SpanStep1       = "step1_sax"
	SpanStep2       = "step2_grammar_cluster"
	SpanStep3       = "step3_select"
	SpanFit         = "fit"
	// SpanBagMember + member index is one bagged member's training
	// (TrainBaggedContext); the shared parameter search sits beside
	// the member spans under SpanTrain.
	SpanBagMember = "bag.member."
	// SpanSearchGrid wraps the parallel grid sweep of one parameter
	// search; SpanDirectClass + class label wraps one class's DIRECT
	// minimization.
	SpanSearchGrid  = "grid"
	SpanDirectClass = "direct.class."

	CtrCandidates      = "train.candidates"
	CtrCandidatesClass = "train.candidates.class." // + class label
	CtrClustersKept    = "train.clusters.kept"
	CtrClustersDropped = "train.clusters.dropped"
	CtrPruneKept       = "train.prune.tau.kept"
	CtrPruneDropped    = "train.prune.tau.dropped"
	CtrSearchEvals     = "search.evals"
	CtrSearchCacheHits = "search.cache.hits"
	CtrSearchCacheMiss = "search.cache.misses"
	CtrCFSExpansions   = "train.cfs.expansions"
	CtrCFSSelected     = "train.cfs.selected"

	// Sampled-training counters (DESIGN.md §15): sliding-window blocks
	// kept/skipped by the Step-1 sampler, search grid points surviving
	// the seeded thinning, and the number of bagged members trained.
	// Recorded only when Options.Sample is active (resp. Bags > 1); an
	// exhaustive run never touches them.
	CtrSampleWindowsKept    = "train.sample.windows.kept"
	CtrSampleWindowsDropped = "train.sample.windows.dropped"
	CtrSampleGridKept       = "search.sample.grid.kept"
	CtrSampleGridDropped    = "search.sample.grid.dropped"
	CtrBagMembers           = "train.bags.members"

	GaugeWorkers = "workers"

	PoolCandidates   = "pool.candidates"
	PoolTransform    = "pool.transform"
	PoolRefine       = "pool.refine"
	PoolPredict      = "pool.predict"
	PoolSearchGrid   = "pool.search.grid"
	PoolSearchSplits = "pool.search.splits"
)
