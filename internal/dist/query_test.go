package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBestQueryBitIdentical pins the tentpole contract: for random
// series and patterns, Matcher.BestQuery through shared WindowStats is
// bit-identical (Dist AND Pos) to the per-matcher Best sweep, seeded or
// not, for every seed position including invalid ones.
func TestBestQueryBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := makeSeries(rng, 24+rng.Intn(120))
		q := NewQuery(series)
		for trial := 0; trial < 4; trial++ {
			pat := makeSeries(rng, 2+rng.Intn(len(series)-2))
			m := NewMatcher(pat)
			want := m.Best(series)
			if got := m.BestQuery(q); got != want {
				t.Logf("seed %d: unseeded BestQuery %+v != Best %+v", seed, got, want)
				return false
			}
			// Every seed, valid or not, must leave the result untouched.
			for _, sp := range []int{-1, 0, 1, len(series) / 2, len(series) - len(pat), len(series) + 3, want.Pos} {
				if got := m.BestQuerySeeded(q, sp); got != want {
					t.Logf("seed %d pos %d: seeded %+v != Best %+v", seed, sp, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBestQueryAffineInvariance: closest-match distance is invariant to
// affine transforms of the query series (per-window z-normalization), so
// BestQuery over a*x+b must agree with BestQuery over x up to fp noise.
func TestBestQueryAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := makeSeries(rng, 32+rng.Intn(96))
		a := 0.5 + rng.Float64()*4
		b := rng.NormFloat64() * 10
		shifted := make([]float64, len(series))
		for i, x := range series {
			shifted[i] = a*x + b
		}
		pat := makeSeries(rng, 4+rng.Intn(24))
		m := NewMatcher(pat)
		d1 := m.BestQuery(NewQuery(series))
		d2 := m.BestQuery(NewQuery(shifted))
		if math.Abs(d1.Dist-d2.Dist) > 1e-8 {
			t.Logf("seed %d: affine shift moved distance %v -> %v", seed, d1.Dist, d2.Dist)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBestQueryAgreesWithClosestMatch: the Query path must agree with
// the package-level ClosestMatch entry point to the bit (same kernel
// arithmetic, shared stats notwithstanding).
func TestBestQueryAgreesWithClosestMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := makeSeries(rng, 16+rng.Intn(100))
		pat := makeSeries(rng, 1+rng.Intn(len(series)))
		m := NewMatcher(pat)
		got := m.BestQuery(NewQuery(series))
		want := m.Best(series)
		if got != want {
			t.Logf("seed %d: BestQuery %+v != Best %+v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBestQueryConstantWindows: series with constant stretches exercise
// the inv==0 sentinel path; the result must still match the inline
// kernel bit-for-bit and stay finite.
func TestBestQueryConstantWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	series := make([]float64, 80)
	for i := range series {
		switch {
		case i < 20, i >= 60:
			series[i] = 3 // constant head and tail
		default:
			series[i] = rng.NormFloat64()
		}
	}
	q := NewQuery(series)
	for _, n := range []int{4, 10, 19, 40} {
		m := NewMatcher(makeSeries(rng, n))
		want := m.Best(series)
		for _, sp := range []int{-1, 0, 5, 70} {
			if got := m.BestQuerySeeded(q, sp); got != want {
				t.Fatalf("n=%d seed %d: %+v != %+v", n, sp, got, want)
			}
		}
		if math.IsInf(m.BestQuery(q).Dist, 1) {
			t.Fatalf("n=%d: infinite distance on finite input", n)
		}
	}
	// Fully constant series: every window is constant.
	flat := NewQuery(make([]float64, 30))
	m := NewMatcher(makeSeries(rng, 8))
	if got, want := m.BestQuery(flat), m.Best(flat.Series()); got != want {
		t.Fatalf("constant series: %+v != %+v", got, want)
	}
}

// TestBestQueryShortQuery: a series shorter than the pattern routes
// through the swapped Best path and must agree with it exactly; Stats
// must not be consulted (it would panic on n > len(series)).
func TestBestQueryShortQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pat := makeSeries(rng, 50)
	m := NewMatcher(pat)
	short := makeSeries(rng, 12)
	q := NewQuery(short)
	if got, want := m.BestQuery(q), m.Best(short); got != want {
		t.Fatalf("short query: BestQuery %+v != Best %+v", got, want)
	}
	if got, want := m.BestQuerySeeded(q, 3), m.Best(short); got != want {
		t.Fatalf("short query seeded: %+v != %+v", got, want)
	}
	// Empty series and empty pattern degenerate cases.
	if got := m.BestQuery(NewQuery(nil)); !math.IsInf(got.Dist, 1) || got.Pos != -1 {
		t.Fatalf("empty series: %+v", got)
	}
	if got := NewMatcher(nil).BestQuery(q); !math.IsInf(got.Dist, 1) || got.Pos != -1 {
		t.Fatalf("empty pattern: %+v", got)
	}
}

// TestBestQuerySeededTieHeavy is the fixed-seed fuzz-style comparison of
// the seeded-abandon scan against the naive scan order on tie-heavy
// inputs. Two regimes: a periodic series, where many positions attain
// near-identical minima (exact ties up to rolling-sum rounding drift),
// and a series with separated constant stretches, where every constant
// window yields the bit-identical distance (the inv==0 path computes d
// from the pattern alone) so the lowest-position tie-break is genuinely
// load-bearing. Every seed — especially one pointing at a LATER copy of
// the best window — must resolve exactly as the naive scan does.
func TestBestQuerySeededTieHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	block := makeSeries(rng, 16)
	periodic := make([]float64, 0, len(block)*6)
	for r := 0; r < 6; r++ {
		periodic = append(periodic, block...)
	}
	// Constant stretches at [10,30) and [50,70): all windows inside one
	// stretch (and across both) tie exactly for any pattern.
	flatty := makeSeries(rng, 80)
	for i := 10; i < 30; i++ {
		flatty[i] = 2.5
	}
	for i := 50; i < 70; i++ {
		flatty[i] = -1.25
	}
	for _, series := range [][]float64{periodic, flatty} {
		q := NewQuery(series)
		for trial := 0; trial < 50; trial++ {
			n := 2 + rng.Intn(len(block))
			start := rng.Intn(len(series) - n)
			pat := series[start : start+n]
			m := NewMatcher(pat)
			want := m.Best(series)
			for sp := -1; sp <= len(series)-n; sp += 1 + rng.Intn(7) {
				if got := m.BestQuerySeeded(q, sp); got != want {
					t.Fatalf("trial %d seed %d: %+v != %+v", trial, sp, got, want)
				}
			}
		}
	}
	// Pin the tie-break itself: a pattern whose best match is a constant
	// window must report the FIRST constant window even when seeded with
	// a later tying position.
	m := NewMatcher(make([]float64, 8)) // constant pattern: zp is the zero vector, d=0 on constant windows
	q := NewQuery(flatty)
	want := m.Best(flatty)
	if want.Pos != 10 {
		t.Fatalf("constant pattern should match the first constant window, got %+v", want)
	}
	for _, sp := range []int{-1, 10, 15, 22, 50, 55, 62} {
		if got := m.BestQuerySeeded(q, sp); got != want {
			t.Fatalf("seed %d: %+v != %+v", sp, got, want)
		}
	}
}

// TestBestQueryGroupBitIdentical pins the group entry point: it must
// equal a hand-rolled loop of per-matcher BestQuerySeeded calls bit for
// bit (same delegation, shared stats), with nil seeds meaning all
// unseeded.
func TestBestQueryGroupBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := makeSeries(rng, 32+rng.Intn(96))
		n := 2 + rng.Intn(24)
		k := 1 + rng.Intn(6)
		ms := make([]*Matcher, k)
		seeds := make([]int, k)
		for i := range ms {
			ms[i] = NewMatcher(makeSeries(rng, n))
			seeds[i] = -1 + rng.Intn(len(series)+4) // valid, invalid and -1 seeds
		}
		q := NewQuery(series)
		want := make([]Match, k)
		for i, m := range ms {
			want[i] = m.BestQuerySeeded(q, seeds[i])
		}
		got := make([]Match, k)
		BestQueryGroup(ms, q, seeds, got)
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d matcher %d: group %+v != seeded %+v", seed, i, got[i], want[i])
				return false
			}
		}
		// nil seeds ⇒ every matcher unseeded.
		BestQueryGroup(ms, q, nil, got)
		for i, m := range ms {
			if w := m.BestQuery(q); got[i] != w {
				t.Logf("seed %d matcher %d: nil-seed group %+v != BestQuery %+v", seed, i, got[i], w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBestQueryGroupPanics pins the group preconditions: out length must
// equal the matcher count, seeds (when non-nil) likewise, and the group
// must be single-length.
func TestBestQueryGroupPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	series := makeSeries(rng, 40)
	q := NewQuery(series)
	sameLen := []*Matcher{NewMatcher(makeSeries(rng, 6)), NewMatcher(makeSeries(rng, 6))}
	mixed := []*Matcher{NewMatcher(makeSeries(rng, 6)), NewMatcher(makeSeries(rng, 7))}
	cases := []struct {
		name  string
		ms    []*Matcher
		seeds []int
		out   []Match
	}{
		{"short out", sameLen, nil, make([]Match, 1)},
		{"long out", sameLen, nil, make([]Match, 3)},
		{"short seeds", sameLen, []int{-1}, make([]Match, 2)},
		{"mixed lengths", mixed, nil, make([]Match, 2)},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: BestQueryGroup did not panic", tc.name)
				}
			}()
			BestQueryGroup(tc.ms, q, tc.seeds, tc.out)
		}()
	}
}

// TestQueryResetReuse: a Reset query recomputes stats for the new series
// (no stale cache) while reusing backing arrays; results stay identical
// to fresh queries.
func TestQueryResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := NewQuery(makeSeries(rng, 64))
	m1 := NewMatcher(makeSeries(rng, 8))
	m2 := NewMatcher(makeSeries(rng, 20))
	_ = m1.BestQuery(q)
	_ = m2.BestQuery(q)
	for i := 0; i < 10; i++ {
		series := makeSeries(rng, 32+rng.Intn(64))
		q.Reset(series)
		if got, want := m1.BestQuery(q), m1.Best(series); got != want {
			t.Fatalf("iter %d: m1 %+v != %+v", i, got, want)
		}
		if got, want := m2.BestQuery(q), m2.Best(series); got != want {
			t.Fatalf("iter %d: m2 %+v != %+v", i, got, want)
		}
	}
}

// TestQueryStatsPanics pins the Stats precondition.
func TestQueryStatsPanics(t *testing.T) {
	q := NewQuery([]float64{1, 2, 3})
	for _, n := range []int{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Stats(%d) did not panic", n)
				}
			}()
			q.Stats(n)
		}()
	}
}

// TestWindowStatsRecurrence: the cached mean/inv must be the exact
// values the inline rolling recurrence produces (bit equality), window
// by window.
func TestWindowStatsRecurrence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	series := makeSeries(rng, 96)
	for _, n := range []int{1, 2, 7, 33, 96} {
		st := NewQuery(series).Stats(n)
		var sum, sumsq float64
		for _, x := range series[:n] {
			sum += x
			sumsq += x * x
		}
		fn := float64(n)
		for i := 0; ; i++ {
			mean := sum / fn
			if st.mean[i] != mean {
				t.Fatalf("n=%d window %d: mean %v != %v", n, i, st.mean[i], mean)
			}
			if i+n >= len(series) {
				break
			}
			out := series[i]
			in := series[i+n]
			sum += in - out
			sumsq += in*in - out*out
		}
		if st.Len() != n || st.Windows() != len(series)-n+1 {
			t.Fatalf("n=%d: Len/Windows %d/%d", st.Len(), st.Windows(), n)
		}
	}
}

// BenchmarkBestQuerySeeded measures the shared-stats seeded kernel
// against the per-matcher Best sweep on the same workload: 8 patterns of
// one length matched against one series, the shape of one transform row.
func BenchmarkBestQuerySeeded(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	series := makeSeries(rng, 300)
	const k = 8
	ms := make([]*Matcher, k)
	for i := range ms {
		ms[i] = NewMatcher(makeSeries(rng, 40))
	}
	b.Run("best", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, m := range ms {
				_ = m.Best(series)
			}
		}
	})
	b.Run("query-seeded", func(b *testing.B) {
		q := NewQuery(series)
		seeds := make([]int, k)
		for i := range seeds {
			seeds[i] = -1
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Reset(series)
			for j, m := range ms {
				got := m.BestQuerySeeded(q, seeds[j])
				if got.Pos >= 0 {
					seeds[j] = got.Pos
				}
			}
		}
	})
}
