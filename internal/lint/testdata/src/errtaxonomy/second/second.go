// Package second is the multi-package fixture for the errtaxonomy
// analyzer: a second taxonomy package with its own sentinel, typed
// error, and constructor. It pins the analyzer's self-relative
// semantics — "own package" means the package under analysis, so
// second's constructors are accepted here while errors built by the
// sibling taxonomy package (lintfix/errtaxonomy) are foreign and must
// be reclassified before they leave second's exported surface.
package second

import (
	"errors"

	errtaxonomy "lintfix/errtaxonomy"
	"lintfix/errtaxonomy/internal/dep"
)

// ErrFailed is this package's sentinel.
var ErrFailed = errors.New("second failed")

// SecondError is this package's typed error.
type SecondError struct {
	Op   string
	Kind error
}

func (e *SecondError) Error() string { return e.Op + ": " + e.Kind.Error() }

// Unwrap exposes the sentinel.
func (e *SecondError) Unwrap() error { return e.Kind }

// secErr is this package's constructor.
func secErr(op string, kind error) *SecondError { return &SecondError{Op: op, Kind: kind} }

// GoodOwnConstructor routes through this package's constructor.
func GoodOwnConstructor(x int) error {
	if x < 0 {
		return secErr("GoodOwnConstructor", ErrFailed)
	}
	return nil
}

// GoodOwnLiteral builds this package's typed error inline.
func GoodOwnLiteral() error { return &SecondError{Op: "GoodOwnLiteral", Kind: ErrFailed} }

// GoodWrappedDep classifies the dep error before returning it.
func GoodWrappedDep() error {
	if err := dep.Do(); err != nil {
		return secErr("GoodWrappedDep", err)
	}
	return nil
}

// BadSiblingTaxonomy leaks an error built by the sibling taxonomy
// package: typed there, foreign here — own-package is relative to the
// package under analysis, not a fixed root.
func BadSiblingTaxonomy() error {
	return errtaxonomy.GoodConstructor(-1) // want "unclassified error from lintfix/errtaxonomy"
}

// BadDepPassthrough leaks a dep error directly.
func BadDepPassthrough() error {
	return dep.Do() // want "unclassified error from lintfix/errtaxonomy/internal/dep"
}

// BadRawNew returns a raw errors.New.
func BadRawNew() error {
	return errors.New("raw") // want "raw errors.New"
}
