// Package core implements RPM — Representative Pattern Mining — the
// paper's contribution: a time-series classifier built on class-specific
// representative patterns. Training (paper §3.2) discretizes each class's
// concatenated series with SAX, finds recurrent variable-length patterns
// with Sequitur grammar induction, refines them by hierarchical
// clustering, prunes near-duplicates and non-discriminative candidates
// with a feature-selection pass, and fits an SVM in the resulting
// closest-match distance space. Classification (§3.1) transforms a series
// into that space and applies the SVM. SAX parameters are optimized per
// class with either exhaustive grid search or the DIRECT optimizer (§4).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"rpm/internal/dist"
	"rpm/internal/obs"
	"rpm/internal/parallel"
	"rpm/internal/sax"
	"rpm/internal/svm"
	"rpm/internal/ts"
)

// ParamMode selects how SAX discretization parameters are chosen.
type ParamMode int

const (
	// ParamFixed uses Options.Params for every class (no search).
	ParamFixed ParamMode = iota
	// ParamGrid runs the exhaustive cross-validated grid search of
	// Algorithm 3.
	ParamGrid
	// ParamDIRECT runs the DIRECT-driven search of §4.2 (default).
	ParamDIRECT
)

func (m ParamMode) String() string {
	switch m {
	case ParamFixed:
		return "fixed"
	case ParamGrid:
		return "grid"
	case ParamDIRECT:
		return "direct"
	default:
		return fmt.Sprintf("ParamMode(%d)", int(m))
	}
}

// GIAlgorithm selects the grammar-induction algorithm used for candidate
// generation. The paper uses Sequitur but notes the technique "also works
// with other (context-free) GI algorithms" (§3.2.2); Re-Pair is provided
// as that alternative and ablated in bench_test.go.
type GIAlgorithm int

const (
	// GISequitur is Nevill-Manning & Witten's online algorithm (default).
	GISequitur GIAlgorithm = iota
	// GIRePair is Larsson & Moffat's offline most-frequent-digram
	// algorithm.
	GIRePair
)

func (g GIAlgorithm) String() string {
	switch g {
	case GISequitur:
		return "sequitur"
	case GIRePair:
		return "repair"
	default:
		return fmt.Sprintf("GIAlgorithm(%d)", int(g))
	}
}

// Options configures RPM training. The zero value is NOT usable; call
// DefaultOptions and override fields as needed.
type Options struct {
	// Gamma is the minimum pattern support as a fraction of the class's
	// training instances (paper §3.2, default 0.2 as in §5.2).
	Gamma float64
	// TauPercentile is the percentile of intra-cluster pairwise distances
	// used as the similar-pattern removal threshold τ (default 30, the
	// value §3.2.3 and Table 3 recommend).
	TauPercentile float64
	// SplitMinFrac is the minimum balanced-split fraction of the
	// clustering refinement (default 0.3, §3.2.2).
	SplitMinFrac float64
	// UseMedoid selects the cluster medoid instead of the centroid as the
	// candidate pattern (§3.2.2 mentions both; default false = centroid).
	UseMedoid bool
	// NumerosityReduction toggles SAX numerosity reduction (§3.2.1,
	// default true; exposed for the ablation benchmarks).
	NumerosityReduction bool
	// RotationInvariant enables the §6.1 transform: patterns are matched
	// against both the series and its midpoint rotation.
	RotationInvariant bool
	// GI selects the grammar-induction algorithm (default GISequitur).
	GI GIAlgorithm
	// Mode selects the parameter search; Params is used when Mode is
	// ParamFixed (and as a fallback when a search finds nothing).
	Mode   ParamMode
	Params sax.Params
	// Splits is the number of random train/validate splits per parameter
	// evaluation (default 5, Algorithm 3).
	Splits int
	// ValidateFrac is the fraction of the data kept for training in each
	// split (default 0.7).
	TrainFrac float64
	// MaxEvals caps objective evaluations per class for ParamDIRECT and
	// the total grid size for ParamGrid (default 60).
	MaxEvals int
	// Sample configures seeded subsampling of the candidate-mining work
	// (Step-1 sliding-window blocks, parameter-search grid points /
	// DIRECT evaluations). The zero value is exhaustive mining — the
	// path bit-identical to builds before sampling existed. See
	// DESIGN.md §15.
	Sample SampleOptions
	// Bags is the bagged-ensemble width used by TrainBaggedContext:
	// each member mines its own Sample-seeded candidate subset and the
	// ensemble classifies by majority vote (ties break toward the
	// smaller label). Ignored by TrainContext; 0 and 1 both mean a
	// single model.
	Bags int
	// SVM configures the classifier fitted on the transformed space.
	SVM svm.Config
	// VectorClassifier, when non-nil, replaces the built-in linear SVM:
	// it is called with the transformed training matrix and labels and
	// must return a predictor over transformed vectors. The paper notes
	// RPM "can work with any classifier" (§3.1); this is that hook.
	// Classifiers trained through it cannot be serialized with Save.
	VectorClassifier func(X [][]float64, y []int) VectorPredictor `json:"-"`
	// Seed drives the parameter-search splits (default 1).
	Seed int64
	// Obs, when non-nil, receives the training pipeline's
	// instrumentation: stage spans (obsnames.go), per-class candidate
	// counters, γ/τ pruning counters, parameter-search cache hit/miss
	// counters and worker-pool usage. A nil Obs (the default) is the
	// zero-overhead off switch: every record call is a nil-handle no-op
	// and training is byte-identical either way (see DESIGN.md §9).
	// Never serialized with the model.
	Obs *obs.Registry `json:"-"`
	// span handles threaded through the pipeline internals; set by
	// TrainContext/trainWithParams, always nil when Obs is nil.
	span      *obs.Span
	spanStep1 *obs.Span
	spanStep2 *obs.Span
	// Workers bounds the concurrency of every parallel stage (the
	// transform matrix, the parameter-search cross-validation, batch
	// prediction, and candidate pruning): 0 means use
	// runtime.GOMAXPROCS(0), 1 forces the exact sequential path, any
	// other value caps the worker goroutines. Results are byte-identical
	// for every setting; see DESIGN.md "Concurrency".
	Workers int
}

// VectorPredictor classifies vectors in the representative-pattern
// distance space.
type VectorPredictor interface {
	Predict(x []float64) int
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{
		Gamma:               0.2,
		TauPercentile:       30,
		SplitMinFrac:        0.3,
		NumerosityReduction: true,
		Mode:                ParamDIRECT,
		Splits:              5,
		TrainFrac:           0.7,
		MaxEvals:            60,
		SVM:                 svm.Config{C: 1},
		Seed:                1,
	}
}

// Pattern is one representative pattern: a z-normalized prototype
// subsequence owned by a class.
type Pattern struct {
	// Class is the label of the class the pattern represents.
	Class int
	// Values is the z-normalized prototype.
	Values []float64
	// Support is the number of distinct training instances of the class
	// that contained the pattern's motif cluster.
	Support int
	// Freq is the total number of subsequence occurrences in the cluster
	// the pattern was extracted from.
	Freq int
}

// Classifier is a trained RPM model.
type Classifier struct {
	// Patterns are the selected representative patterns, the features of
	// the transformed space (order matters).
	Patterns []Pattern
	// PerClassParams records the SAX parameters chosen for each class.
	PerClassParams map[int]sax.Params
	model          *svm.Model
	custom         VectorPredictor
	opts           Options
	tf             *transformer
	// tfOnce guards the lazy construction of tf: Predict/Transform on a
	// classifier that came out of Load (or was never trained) build the
	// transformer on first use, and PredictBatch calls Predict from many
	// goroutines, so the build must be once-only.
	tfOnce sync.Once
	// fallback handles the degenerate case where no patterns survive:
	// 1-nearest-neighbor on the raw training series.
	fallback ts.Dataset
}

// Options returns the options the classifier was trained with.
func (c *Classifier) Options() Options { return c.opts }

// SetWorkers re-bounds the concurrency of the classifier's predict-path
// fan-out (PredictBatch / PredictBatchContext) after training or Load:
// 0 means every core, 1 forces the sequential path. It exists for model
// servers that load snapshots trained elsewhere and want to control the
// serving machine's parallelism themselves. Not safe to call
// concurrently with prediction — configure before serving traffic.
func (c *Classifier) SetWorkers(n int) { c.opts.Workers = n }

// withoutObs returns a copy of o with every instrumentation handle
// cleared. The parameter-search evaluator trains throwaway models on
// cross-validation splits through the same trainWithParams pipeline;
// stripping the handles keeps those inner runs out of the report (the
// search's own cost is captured by SpanParamSearch and the
// search.* counters/pools instead).
func (o Options) withoutObs() Options {
	o.Obs = nil
	o.span = nil
	o.spanStep1 = nil
	o.spanStep2 = nil
	return o
}

// TrainSnapshot returns the instrumentation snapshot of the training
// run, or nil when the classifier was trained without Options.Obs (or
// was loaded from disk). The snapshot is live: calling it again after
// further PredictBatch traffic reflects the updated predict pool.
func (c *Classifier) TrainSnapshot() *obs.Snapshot { return c.opts.Obs.Snapshot() }

// NumPatterns returns the number of representative patterns.
func (c *Classifier) NumPatterns() int { return len(c.Patterns) }

// Transform maps a series into the representative-pattern distance space:
// feature k is the closest-match distance between the series and pattern k
// (paper §2.1 "Time Series Transformation"). With RotationInvariant set,
// the distance is the minimum over the series and its midpoint rotation
// (§6.1).
// Transform is safe for concurrent use.
func (c *Classifier) Transform(v []float64) []float64 {
	c.ensureTransformer()
	return c.tf.apply(v)
}

// ensureTransformer builds the cached transformer exactly once, whether
// triggered eagerly by training/Load or lazily by the first (possibly
// concurrent) Transform call.
func (c *Classifier) ensureTransformer() {
	c.tfOnce.Do(func() {
		c.tf = newTransformer(c.Patterns, c.opts.RotationInvariant)
	})
}

// transformer caches per-pattern matchers so the pattern z-normalization
// is done once, not once per (pattern, instance) pair, and groups the
// matchers by pattern length so every pattern of one length reads the
// same precomputed rolling-window statistics of the query (dist.Query) —
// one mean/variance sweep per (query, length) instead of one per
// (query, pattern). Each scan is seeded with the position the same
// matcher matched best on the previous query handled by the same
// scratch, which primes the early-abandon bound from window zero
// (DESIGN.md §12). Both reuses are bit-identical to the naive
// per-matcher sweep by construction, pinned by TestTransformerKernelEquivalence.
type transformer struct {
	matchers []*dist.Matcher
	// ordered is the matchers re-sorted into group (length) order so
	// each group is a contiguous slice; featOf[j] maps ordered[j] back
	// to its feature slot (= original pattern index).
	ordered []*dist.Matcher
	featOf  []int
	groups  []matcherGroup
	rotInv  bool
	// scratch pools per-worker query state (window stats, rotation
	// buffer, abandon seeds, feature row) so steady-state transforms
	// allocate nothing.
	scratch sync.Pool
}

// matcherGroup is one pattern length's half-open range [lo, hi) into the
// transformer's grouped ordering.
type matcherGroup struct {
	n      int
	lo, hi int
}

// transformScratch is the per-worker state of the transform kernels. It
// is pooled, never shared between concurrent queries, and carries the
// early-abandon seeds across consecutive queries on the same worker
// (any seed is correct; a recent one is merely tight). seeds, rotSeeds
// and outs are indexed in the transformer's grouped ordering.
type transformScratch struct {
	q, rq    *dist.Query
	rotated  []float64
	seeds    []int
	rotSeeds []int
	outs     []dist.Match
	feat     []float64
}

func newTransformer(patterns []Pattern, rotInv bool) *transformer {
	t := &transformer{rotInv: rotInv}
	for _, p := range patterns {
		t.matchers = append(t.matchers, dist.NewMatcher(p.Values))
	}
	// Group by length, ascending, preserving pattern order within each
	// group (output slots are per-pattern, so group order is free; the
	// sort just makes the stats-build order deterministic and cheap
	// lengths first).
	byLen := make(map[int][]int)
	for k, m := range t.matchers {
		byLen[m.Len()] = append(byLen[m.Len()], k)
	}
	lens := make([]int, 0, len(byLen))
	for n := range byLen {
		lens = append(lens, n)
	}
	sort.Ints(lens)
	for _, n := range lens {
		lo := len(t.ordered)
		for _, k := range byLen[n] {
			t.ordered = append(t.ordered, t.matchers[k])
			t.featOf = append(t.featOf, k)
		}
		t.groups = append(t.groups, matcherGroup{n: n, lo: lo, hi: len(t.ordered)})
	}
	t.scratch.New = func() any {
		k := len(t.matchers)
		sc := &transformScratch{
			q:     dist.NewQuery(nil),
			seeds: make([]int, k),
			outs:  make([]dist.Match, k),
			feat:  make([]float64, k),
		}
		for i := range sc.seeds {
			sc.seeds[i] = -1
		}
		if rotInv {
			sc.rq = dist.NewQuery(nil)
			sc.rotSeeds = make([]int, k)
			for i := range sc.rotSeeds {
				sc.rotSeeds[i] = -1
			}
		}
		return sc
	}
	return t
}

func (t *transformer) getScratch() *transformScratch { return t.scratch.Get().(*transformScratch) }
func (t *transformer) putScratch(sc *transformScratch) {
	sc.q.Reset(nil)
	if sc.rq != nil {
		sc.rq.Reset(nil)
	}
	t.scratch.Put(sc)
}

// apply transforms one series into a freshly allocated row (the public
// Transform contract: callers may retain the result).
func (t *transformer) apply(v []float64) []float64 {
	out := make([]float64, len(t.matchers))
	sc := t.getScratch()
	t.applyInto(out, v, sc)
	t.putScratch(sc)
	return out
}

// applyInto transforms one series into the caller-provided dst row
// (len(dst) must be the pattern count) using sc's pooled query state.
// This is the allocation-free predict-path kernel: one Query stats pass
// per pattern length, each matcher seeded with its previous best
// position.
//
//rpmlint:hotpath PR6 predict kernel: steady-state transform is 0-alloc
func (t *transformer) applyInto(dst []float64, v []float64, sc *transformScratch) {
	sc.q.Reset(v)
	if t.rotInv {
		sc.rotated = ts.RotateHalfInto(sc.rotated, v)
		sc.rq.Reset(sc.rotated)
	}
	for _, g := range t.groups {
		ms := t.ordered[g.lo:g.hi]
		dist.BestQueryGroup(ms, sc.q, sc.seeds[g.lo:g.hi], sc.outs[g.lo:g.hi])
		for a := g.lo; a < g.hi; a++ {
			bm := sc.outs[a]
			if bm.Pos >= 0 {
				sc.seeds[a] = bm.Pos
			}
			dst[t.featOf[a]] = bm.Dist
		}
		if t.rotInv {
			dist.BestQueryGroup(ms, sc.rq, sc.rotSeeds[g.lo:g.hi], sc.outs[g.lo:g.hi])
			for a := g.lo; a < g.hi; a++ {
				rm := sc.outs[a]
				if rm.Pos >= 0 {
					sc.rotSeeds[a] = rm.Pos
				}
				if rm.Dist < dst[t.featOf[a]] {
					dst[t.featOf[a]] = rm.Dist
				}
			}
		}
	}
}

// applyAll transforms a whole dataset on up to workers goroutines (the
// parallel.Workers convention). This is the pattern×instance closest-match
// matrix that dominates both training Step 3 and SVM input construction;
// each instance writes only its own row, so the result is byte-identical
// for every worker count.
func (t *transformer) applyAll(d ts.Dataset, workers int) [][]float64 {
	return t.applyAllPool(d, workers, nil)
}

// applyAllPool is applyAll with optional worker-pool accounting (nil
// pool ⇒ exactly applyAll). The rows are sliced out of one flat slab
// (full-capped, so appends cannot bleed across rows) — one allocation
// for the whole matrix instead of one per instance.
func (t *transformer) applyAllPool(d ts.Dataset, workers int, pool *obs.Pool) [][]float64 {
	k := len(t.matchers)
	X := make([][]float64, len(d))
	slab := make([]float64, len(d)*k)
	parallel.ForPool(len(d), workers, pool, func(i int) {
		sc := t.getScratch()
		row := slab[i*k : (i+1)*k : (i+1)*k]
		t.applyInto(row, d[i].Values, sc)
		X[i] = row
		t.putScratch(sc)
	})
	return X
}

// Predict classifies one series. It is total over its input: an empty or
// degenerate series (shorter than every pattern window, constant,
// non-finite) still yields a deterministic label — the closest-match
// kernel slides the shorter of (pattern, series) inside the longer one
// and reports +Inf only for empty input, and the SVM argmax breaks ties
// toward the smaller label. Callers that want degenerate inputs rejected
// instead should validate first (the public rpm façade does).
func (c *Classifier) Predict(v []float64) int {
	if len(c.Patterns) == 0 || len(v) == 0 {
		return c.predictFallback(v)
	}
	if c.custom != nil {
		// Custom predictors get a fresh row: their Predict contract does
		// not forbid retaining the argument, so the pooled buffer below
		// is reserved for the built-in SVM (which only reads it).
		return c.custom.Predict(c.Transform(v))
	}
	c.ensureTransformer()
	sc := c.tf.getScratch()
	c.tf.applyInto(sc.feat, v, sc)
	label := c.model.Predict(sc.feat)
	c.tf.putScratch(sc)
	return label
}

// PredictBatch classifies every instance of test, fanning the queries out
// over Options.Workers goroutines. Each query writes only its own output
// slot and Predict is read-only over the model, so the labels are
// byte-identical to the sequential path. Classifiers trained with a custom
// VectorClassifier must be goroutine-safe to use Workers != 1.
func (c *Classifier) PredictBatch(test ts.Dataset) []int {
	if len(c.Patterns) > 0 {
		c.ensureTransformer() // build once, outside the worker fan-out
	}
	out := make([]int, len(test))
	parallel.ForPool(len(test), c.opts.Workers, c.opts.Obs.Pool(PoolPredict), func(i int) {
		out[i] = c.Predict(test[i].Values)
	})
	return out
}

// PredictBatchContext is PredictBatch with cooperative cancellation:
// once ctx is done no further query is scheduled, in-flight queries
// drain, and ctx.Err() is returned. With a non-canceled ctx the labels
// are byte-identical to PredictBatch for any Workers value.
func (c *Classifier) PredictBatchContext(ctx context.Context, test ts.Dataset) ([]int, error) {
	if len(c.Patterns) > 0 {
		c.ensureTransformer() // build once, outside the worker fan-out
	}
	out := make([]int, len(test))
	if err := parallel.ForCtxPool(ctx, len(test), c.opts.Workers, c.opts.Obs.Pool(PoolPredict), func(i int) {
		out[i] = c.Predict(test[i].Values)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictVector classifies a point already in the transformed
// (pattern-distance) space: feat[k] must be the closest-match distance
// to pattern k, as produced by Transform. It exists for the streaming
// layer, which maintains the feature vector incrementally and therefore
// never has a whole series to hand to Predict. The label is computed by
// the identical decision function (custom predictor or the trained
// SVM), so PredictVector(Transform(v)) == Predict(v) for every v the
// non-degenerate path handles. It requires a model with patterns
// (NumPatterns > 0) and len(feat) == NumPatterns; the streaming layer
// validates both once at stream-creation time.
func (c *Classifier) PredictVector(feat []float64) int {
	if c.custom != nil {
		return c.custom.Predict(feat)
	}
	return c.model.Predict(feat)
}

// predictFallback is 1NN-ED over the raw training set, used only when the
// pattern pool came out empty (e.g. pathological parameters on tiny data).
func (c *Classifier) predictFallback(v []float64) int {
	best := math.Inf(1)
	label := 0
	for _, in := range c.fallback {
		if len(in.Values) != len(v) {
			continue
		}
		d := dist.SqEuclideanEarly(in.Values, v, best)
		if d < best {
			best = d
			label = in.Label
		}
	}
	if math.IsInf(best, 1) && len(c.fallback) > 0 {
		label = c.fallback[0].Label
	}
	return label
}
