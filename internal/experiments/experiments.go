// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6) on the synthetic dataset suite: Table 1
// (classification error of six methods), Table 2 (running time of LS, FS
// and RPM), Table 3 / Figure 9 (sensitivity to the similarity threshold
// τ), Table 4 (error on rotated test data), Figures 7 and 8 (pairwise
// comparison scatters with Wilcoxon p-values), and the §6.2 medical-alarm
// case study. cmd/benchtab is the command-line front end; bench_test.go
// exposes the same runs as testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"rpm/internal/bop"
	"rpm/internal/core"
	"rpm/internal/datagen"
	"rpm/internal/dataset"
	"rpm/internal/fastshapelets"
	"rpm/internal/learnshapelets"
	"rpm/internal/nn"
	"rpm/internal/obs"
	"rpm/internal/parallel"
	"rpm/internal/saxvsm"
	"rpm/internal/shapelettransform"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

// Method names, in the paper's column order. MethodST (Shapelet
// Transform) is an extension not present in the paper's tables; request it
// explicitly via Config.Methods.
const (
	MethodNNED   = "NN-ED"
	MethodNNDTWB = "NN-DTWB"
	MethodSAXVSM = "SAX-VSM"
	MethodFS     = "FS"
	MethodLS     = "LS"
	MethodRPM    = "RPM"
	MethodST     = "ST"
	MethodBOP    = "BOP"
)

// AllMethods is the paper's Table 1 column order.
func AllMethods() []string {
	return []string{MethodNNED, MethodNNDTWB, MethodSAXVSM, MethodFS, MethodLS, MethodRPM}
}

// predictor is the minimal classifier interface the harness drives.
type predictor interface {
	Predict(values []float64) int
}

// MethodResult is one classifier's outcome on one dataset.
type MethodResult struct {
	Err          float64
	TrainTime    time.Duration
	ClassifyTime time.Duration
}

// Total returns train + classify time.
func (r MethodResult) Total() time.Duration { return r.TrainTime + r.ClassifyTime }

// DatasetResult bundles every method's result on one dataset. Report is
// non-nil only under Config.Instrument: a snapshot of the dataset's obs
// registry, carrying the RPM training stage spans and counters plus the
// NN-DTWB leave-one-out sweep spans.
type DatasetResult struct {
	Name    string
	Results map[string]MethodResult
	Report  *obs.Snapshot `json:",omitempty"`
}

// Config tunes the harness.
type Config struct {
	// Seed drives data generation and every stochastic component.
	Seed int64
	// Quick shrinks the RPM parameter search (fewer splits and
	// evaluations) for fast benchmark iterations.
	Quick bool
	// Methods restricts which classifiers run (default AllMethods()).
	Methods []string
	// Datasets restricts which suite datasets run (default all).
	Datasets []string
	// Workers bounds the harness's concurrency: the per-dataset fan-out
	// of RunSuite/RunTauSweep/RunAblation and, passed through to
	// core.Options.Workers and the 1NN baselines, every parallel stage
	// inside each run (the parallel.Workers convention: 0 ⇒ GOMAXPROCS,
	// 1 ⇒ fully sequential). Result values are identical for any
	// setting; reported wall-clock timings overlap when datasets run
	// concurrently, so use Workers: 1 for paper-faithful Table 2 times.
	Workers int
	// Context, when non-nil, bounds the whole run: RunSuite stops
	// scheduling datasets, the RPM parameter search and the NN-DTWB
	// window sweep stop scheduling evaluations, and the harness returns
	// Context.Err(). nil means context.Background() (never canceled).
	// With a non-canceled context, results are identical to a run
	// without one.
	Context context.Context
	// Instrument gives every dataset run its own obs.Registry: RPM
	// training records its stage spans, counters and worker pools, and
	// the NN-DTWB window search its per-window LOOCV spans, into
	// DatasetResult.Report. Off by default (zero overhead); recording
	// never changes any result value.
	Instrument bool
	// Obs, when non-nil, is the registry the run records into. RunDataset
	// fills it per dataset under Instrument; set it directly to share one
	// registry across a custom single-dataset harness.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	if len(c.Methods) == 0 {
		c.Methods = AllMethods()
	}
	if len(c.Datasets) == 0 {
		for _, g := range datagen.Suite() {
			c.Datasets = append(c.Datasets, g.Name)
		}
	}
	return c
}

// rpmOptions returns the RPM configuration used throughout the harness.
func rpmOptions(cfg Config) core.Options {
	o := core.DefaultOptions()
	o.Seed = cfg.Seed
	if cfg.Quick {
		o.Splits = 2
		o.MaxEvals = 16
	} else {
		o.Splits = 3
		o.MaxEvals = 40
	}
	o.Workers = cfg.Workers
	o.Obs = cfg.Obs
	return o
}

// TrainMethod trains one named classifier and returns it with the elapsed
// training time. cfg.Context cancels the two long-running searches (the
// RPM parameter search, the NN-DTWB window sweep) mid-flight; the other
// baselines are checked before training starts.
func TrainMethod(name string, train ts.Dataset, cfg Config) (predictor, time.Duration, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	if err := cfg.Context.Err(); err != nil {
		return nil, time.Since(start), err
	}
	var p predictor
	var err error
	switch name {
	case MethodNNED:
		ed := nn.NewED(train)
		ed.Workers = cfg.Workers
		p = ed
	case MethodNNDTWB:
		w, werr := nn.BestWindowObs(cfg.Context, train, 0.2, cfg.Workers, cfg.Obs)
		if werr != nil {
			return nil, time.Since(start), werr
		}
		dtw := nn.NewDTW(train, w)
		dtw.Workers = cfg.Workers
		p = dtw
	case MethodSAXVSM:
		p = saxvsm.TrainAuto(train, cfg.Seed)
	case MethodFS:
		p = fastshapelets.Train(train, fastshapelets.Config{Seed: cfg.Seed})
	case MethodLS:
		lsCfg := learnshapelets.Config{Seed: cfg.Seed}
		if cfg.Quick {
			lsCfg.Epochs = 100
		}
		p = learnshapelets.Train(train, lsCfg)
	case MethodRPM:
		p, err = core.TrainContext(cfg.Context, train, rpmOptions(cfg))
	case MethodST:
		p = shapelettransform.Train(train, shapelettransform.Config{Seed: cfg.Seed})
	case MethodBOP:
		p = bop.Train(train, saxvsm.SelectParams(train, cfg.Seed))
	default:
		err = fmt.Errorf("experiments: unknown method %q", name)
	}
	return p, time.Since(start), err
}

// batchPredictor is implemented by classifiers with a native (possibly
// parallel) batch path — RPM and the 1NN baselines.
type batchPredictor interface {
	PredictBatch(test ts.Dataset) []int
}

// predictAll classifies the test set, using the classifier's parallel
// batch path when it has one and the sequential query loop otherwise.
func predictAll(p predictor, test ts.Dataset) []int {
	if bp, ok := p.(batchPredictor); ok {
		return bp.PredictBatch(test)
	}
	preds := make([]int, len(test))
	for i, in := range test {
		preds[i] = p.Predict(in.Values)
	}
	return preds
}

// RunDataset evaluates the configured methods on one dataset split.
// cfg.Context aborts between (and, for RPM and NN-DTWB, inside) methods.
func RunDataset(split dataset.Split, cfg Config) (res DatasetResult, err error) {
	cfg = cfg.withDefaults()
	if cfg.Instrument && cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry() // one registry per dataset run
	}
	res = DatasetResult{Name: split.Name, Results: map[string]MethodResult{}}
	// Named return: the snapshot is attached on every exit path, so a
	// partially evaluated dataset still reports what it measured.
	defer func() { res.Report = cfg.Obs.Snapshot() }()
	for _, m := range cfg.Methods {
		if err := cfg.Context.Err(); err != nil {
			return res, err
		}
		p, trainDur, err := TrainMethod(m, split.Train, cfg)
		if err != nil {
			return res, fmt.Errorf("%s on %s: %w", m, split.Name, err)
		}
		start := time.Now()
		preds := predictAll(p, split.Test)
		classifyDur := time.Since(start)
		res.Results[m] = MethodResult{
			Err:          stats.ErrorRate(preds, split.Test.Labels()),
			TrainTime:    trainDur,
			ClassifyTime: classifyDur,
		}
	}
	return res, nil
}

// RunSuite evaluates the configured methods on every configured dataset,
// fanning the datasets out over cfg.Workers goroutines (each dataset's
// run is fully independent: its own generated split and its own trained
// models). Results are returned in cfg.Datasets order regardless of
// completion order. progress, if non-nil, receives one line per completed
// dataset (serialized, but in completion order when Workers != 1).
func RunSuite(cfg Config, progress func(string)) ([]DatasetResult, error) {
	cfg = cfg.withDefaults()
	var progressMu sync.Mutex
	type outcome struct {
		res DatasetResult
		err error
	}
	outcomes, err := parallel.MapCtx(cfg.Context, len(cfg.Datasets), cfg.Workers, func(i int) outcome {
		name := cfg.Datasets[i]
		g, ok := datagen.ByName(name)
		if !ok {
			return outcome{err: fmt.Errorf("experiments: unknown dataset %q", name)}
		}
		split := g.Generate(cfg.Seed)
		res, err := RunDataset(split, cfg)
		if err != nil {
			return outcome{err: err}
		}
		if progress != nil {
			progressMu.Lock()
			progress(fmt.Sprintf("done %-18s %s", name, summarize(res, cfg.Methods)))
			progressMu.Unlock()
		}
		return outcome{res: res}
	})
	if err != nil {
		return nil, err
	}
	out := make([]DatasetResult, 0, len(outcomes))
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		out = append(out, o.res)
	}
	return out, nil
}

func summarize(res DatasetResult, methods []string) string {
	s := ""
	for _, m := range methods {
		r, ok := res.Results[m]
		if !ok {
			continue
		}
		s += fmt.Sprintf("%s=%.3f ", m, r.Err)
	}
	return s
}

// BestCounts returns, per method, in how many datasets it achieved the
// lowest error (ties included), the "# of best" row of Table 1.
func BestCounts(results []DatasetResult, methods []string, metric func(MethodResult) float64) map[string]int {
	counts := map[string]int{}
	for _, dr := range results {
		best := bestValue(dr, methods, metric)
		for _, m := range methods {
			if r, ok := dr.Results[m]; ok && metric(r) <= best+1e-12 {
				counts[m]++
			}
		}
	}
	return counts
}

func bestValue(dr DatasetResult, methods []string, metric func(MethodResult) float64) float64 {
	best := -1.0
	for _, m := range methods {
		if r, ok := dr.Results[m]; ok {
			v := metric(r)
			if best < 0 || v < best {
				best = v
			}
		}
	}
	return best
}

// ErrMetric and TimeMetric are the metrics Tables 1 and 2 rank by.
func ErrMetric(r MethodResult) float64  { return r.Err }
func TimeMetric(r MethodResult) float64 { return r.Total().Seconds() }

// PairedErrors extracts the aligned per-dataset error vectors of two
// methods, for Wilcoxon tests and scatter plots.
func PairedErrors(results []DatasetResult, a, b string) (va, vb []float64, names []string) {
	for _, dr := range results {
		ra, oka := dr.Results[a]
		rb, okb := dr.Results[b]
		if oka && okb {
			va = append(va, ra.Err)
			vb = append(vb, rb.Err)
			names = append(names, dr.Name)
		}
	}
	return va, vb, names
}

// Wilcoxon runs the signed-rank test on two methods' per-dataset errors.
func Wilcoxon(results []DatasetResult, a, b string) float64 {
	va, vb, _ := PairedErrors(results, a, b)
	return stats.WilcoxonSignedRank(va, vb)
}

// SortedDatasetNames returns the result names in deterministic order.
func SortedDatasetNames(results []DatasetResult) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Name
	}
	sort.Strings(out)
	return out
}
