// Package dataset reads and writes time-series datasets in the UCR archive
// text format: one instance per line, the class label first, followed by
// the observations, separated by commas or whitespace. It also bundles a
// train/test split, the unit every experiment operates on.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"rpm/internal/ts"
)

// Split is a named dataset with its train/test partition.
type Split struct {
	Name  string
	Train ts.Dataset
	Test  ts.Dataset
}

// NumClasses returns the number of distinct labels across both parts.
func (s Split) NumClasses() int {
	seen := map[int]bool{}
	for _, in := range s.Train {
		seen[in.Label] = true
	}
	for _, in := range s.Test {
		seen[in.Label] = true
	}
	return len(seen)
}

// Length returns the series length of the first training instance (UCR
// datasets are equal-length; generators guarantee it).
func (s Split) Length() int {
	if len(s.Train) == 0 {
		return 0
	}
	return len(s.Train[0].Values)
}

// ReadOptions tunes the strictness of Read. The zero value is the strict
// default: every row must have the same number of values, every value and
// label must be finite, and a row may hold at most DefaultMaxLineValues
// observations — malformed or hostile files fail at parse time with a
// line-numbered error instead of panicking later inside the distance
// kernels.
type ReadOptions struct {
	// AllowVariableLength accepts rows with differing numbers of values
	// (for variable-length collections). The strict default rejects
	// ragged datasets, the UCR convention.
	AllowVariableLength bool
	// MaxLineValues caps the number of observations per row; 0 means
	// DefaultMaxLineValues. The cap bounds memory on hostile input.
	MaxLineValues int
}

// DefaultMaxLineValues is the per-row observation cap applied when
// ReadOptions.MaxLineValues is 0 (the longest UCR series is ~3k points;
// 2^20 leaves three orders of magnitude of headroom).
const DefaultMaxLineValues = 1 << 20

// maxLabel bounds the magnitude of a parsed class label so the
// float→int conversion is always well defined.
const maxLabel = 1 << 31

// Read parses UCR-format instances from r with the strict default
// options (equal-length rows, finite values only). Labels may be written
// as floating-point numbers (several UCR files use "1.0000000e+00"); they
// are rounded to the nearest integer.
func Read(r io.Reader) (ts.Dataset, error) {
	return ReadWith(r, ReadOptions{})
}

// ReadWith parses UCR-format instances from r under the given options.
// It never panics: any malformed input yields an error naming the first
// offending line.
func ReadWith(r io.Reader, opts ReadOptions) (ts.Dataset, error) {
	maxVals := opts.MaxLineValues
	if maxVals <= 0 {
		maxVals = DefaultMaxLineValues
	}
	var out ts.Dataset
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	wantLen := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d: need a label and at least one value", lineNo)
		}
		if len(fields)-1 > maxVals {
			return nil, fmt.Errorf("dataset: line %d: %d values exceed the per-line cap %d", lineNo, len(fields)-1, maxVals)
		}
		lf, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		if math.IsNaN(lf) || math.IsInf(lf, 0) || lf < -maxLabel || lf > maxLabel {
			return nil, fmt.Errorf("dataset: line %d: non-finite or out-of-range label %q", lineNo, fields[0])
		}
		values := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad value %q: %w", lineNo, f, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: line %d: non-finite value %q", lineNo, f)
			}
			values[i] = v
		}
		if !opts.AllowVariableLength {
			if wantLen < 0 {
				wantLen = len(values)
			} else if len(values) != wantLen {
				return nil, fmt.Errorf("dataset: line %d: ragged row: %d values, want %d (set ReadOptions.AllowVariableLength for variable-length data)", lineNo, len(values), wantLen)
			}
		}
		out = append(out, ts.Instance{Label: int(math.Round(lf)), Values: values})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return out, nil
}

// splitFields splits on commas and/or runs of whitespace.
func splitFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}

// Write renders d to w in UCR format (comma-separated).
func Write(w io.Writer, d ts.Dataset) error {
	bw := bufio.NewWriter(w)
	for _, in := range d {
		if _, err := fmt.Fprintf(bw, "%d", in.Label); err != nil {
			return err
		}
		for _, v := range in.Values {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile reads one UCR-format file.
func ReadFile(path string) (ts.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes one UCR-format file.
func WriteFile(path string, d ts.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSplit loads <dir>/<name>_TRAIN and <dir>/<name>_TEST, the UCR archive
// layout.
func ReadSplit(dir, name string) (Split, error) {
	train, err := ReadFile(dir + "/" + name + "_TRAIN")
	if err != nil {
		return Split{}, err
	}
	test, err := ReadFile(dir + "/" + name + "_TEST")
	if err != nil {
		return Split{}, err
	}
	return Split{Name: name, Train: train, Test: test}, nil
}

// WriteSplit writes s in the UCR archive layout.
func WriteSplit(dir string, s Split) error {
	if err := WriteFile(dir+"/"+s.Name+"_TRAIN", s.Train); err != nil {
		return err
	}
	return WriteFile(dir+"/"+s.Name+"_TEST", s.Test)
}
