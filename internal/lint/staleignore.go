package lint

// StaleIgnore keeps the suppression ledger honest: an //rpmlint:ignore
// directive that suppressed zero diagnostics (and cut no hotpathalloc
// edge) this run is dead weight — the code it excused was fixed or
// deleted, and leaving the directive invites it to silently excuse a
// future regression. Each such directive is itself a diagnostic.
//
// The check is framework-driven: Run tracks directive use during
// suppression and emits the findings after all analyzers finish, so
// this Analyzer's Run body is intentionally empty. It still appears in
// Analyzers() so the check can be listed, enabled, and suppressed like
// any other (an //rpmlint:ignore staleignore directive works, though
// wanting one is a strong sign the underlying directive should just be
// deleted).
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc:  "//rpmlint:ignore directives that suppress nothing are themselves findings",
	Run:  func(*Pass) {},
}
