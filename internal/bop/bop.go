// Package bop implements the Bag-of-Patterns classifier (Lin, Khade & Li,
// 2012), the SAX-histogram representation that SAX-VSM (and, indirectly,
// RPM's symbolic stage) builds on — part of the local-pattern family the
// paper's related work (§2.2) surveys. Each series becomes a histogram of
// its SAX words (with numerosity reduction); classification is 1-nearest-
// neighbor under Euclidean distance between histograms.
package bop

import (
	"math"

	"rpm/internal/sax"
	"rpm/internal/ts"
)

// Model is a trained Bag-of-Patterns classifier.
type Model struct {
	params sax.Params
	// vocab maps each SAX word seen in training to its histogram index.
	vocab map[string]int
	bags  [][]float64
	y     []int
}

// Train builds the histogram index for the training set.
func Train(train ts.Dataset, p sax.Params) *Model {
	if len(train) == 0 {
		panic("bop: empty training set")
	}
	m := &Model{params: p, vocab: map[string]int{}}
	counts := make([]map[string]float64, len(train))
	for i, in := range train {
		counts[i] = bag(in.Values, p)
		for w := range counts[i] {
			if _, ok := m.vocab[w]; !ok {
				m.vocab[w] = len(m.vocab)
			}
		}
	}
	m.bags = make([][]float64, len(train))
	m.y = train.Labels()
	for i, c := range counts {
		m.bags[i] = m.vector(c)
	}
	return m
}

// bag builds the word-frequency map of one series.
func bag(v []float64, p sax.Params) map[string]float64 {
	q := p
	if q.Window > len(v) {
		q.Window = len(v)
		if q.PAA > q.Window {
			q.PAA = q.Window
		}
	}
	out := map[string]float64{}
	for _, w := range sax.Discretize(v, q, true, nil) {
		out[w.Word]++
	}
	return out
}

// vector projects a word-frequency map onto the training vocabulary
// (unknown words are dropped, as in the original formulation).
func (m *Model) vector(c map[string]float64) []float64 {
	out := make([]float64, len(m.vocab))
	for w, f := range c {
		if i, ok := m.vocab[w]; ok {
			out[i] = f
		}
	}
	return out
}

// Params returns the SAX parameters.
func (m *Model) Params() sax.Params { return m.params }

// Predict classifies one series by 1NN over histograms.
func (m *Model) Predict(v []float64) int {
	q := m.vector(bag(v, m.params))
	best := math.Inf(1)
	label := m.y[0]
	for i, b := range m.bags {
		var d float64
		for j := range q {
			diff := q[j] - b[j]
			d += diff * diff
			if d > best {
				break
			}
		}
		if d < best {
			best = d
			label = m.y[i]
		}
	}
	return label
}

// PredictBatch classifies every instance of test.
func (m *Model) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	for i, in := range test {
		out[i] = m.Predict(in.Values)
	}
	return out
}
