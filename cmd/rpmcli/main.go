// Command rpmcli trains an RPM classifier on a UCR-format training file
// and classifies a UCR-format test file, printing the error rate, the
// discovered representative patterns, and the per-class SAX parameters.
//
// Usage:
//
//	rpmcli -train Coffee_TRAIN -test Coffee_TEST
//	rpmcli -train X_TRAIN -test X_TEST -mode fixed -window 40 -paa 6 -alpha 4
//	rpmcli -train X_TRAIN -test X_TEST -rotinv -gamma 0.3 -patterns
//	rpmcli -remote http://localhost:8080 -test Coffee_TEST
//
// With -remote the test set is classified by a running rpmserved
// instance instead of a local model: series are sent in chunks through
// the resilient client (retries with backoff, circuit breaker — see
// DESIGN.md §13), so transient server hiccups do not fail the run.
// -model selects the served model (empty = server default).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rpm"
	serveclient "rpm/internal/serve/client"
)

func main() {
	trainPath := flag.String("train", "", "UCR-format training file (required)")
	testPath := flag.String("test", "", "UCR-format test file (required)")
	mode := flag.String("mode", "direct", "parameter selection: direct, grid, fixed")
	window := flag.Int("window", 0, "SAX window (fixed mode)")
	paa := flag.Int("paa", 0, "SAX PAA size (fixed mode)")
	alpha := flag.Int("alpha", 0, "SAX alphabet size (fixed mode)")
	gamma := flag.Float64("gamma", 0.2, "minimum pattern support fraction")
	tau := flag.Float64("tau", 30, "similar-pattern threshold percentile")
	rotInv := flag.Bool("rotinv", false, "rotation-invariant classification")
	medoid := flag.Bool("medoid", false, "use cluster medoids instead of centroids")
	seed := flag.Int64("seed", 1, "random seed")
	splits := flag.Int("splits", 5, "train/validate splits per parameter evaluation")
	maxEvals := flag.Int("maxevals", 60, "parameter-search evaluations per class")
	showPatterns := flag.Bool("patterns", false, "print the representative patterns")
	znorm := flag.Bool("znorm", false, "z-normalize instances before training")
	saveModel := flag.String("save", "", "write the trained model to this file")
	loadModel := flag.String("load", "", "load a trained model instead of training")
	motifsOnly := flag.Bool("motifs", false, "discover class-specific motifs only (no classifier); requires fixed -window/-paa/-alpha")
	report := flag.String("report", "", "print the training instrumentation report after classification: json or text")
	remote := flag.String("remote", "", "classify -test against a running rpmserved at this base URL instead of a local model")
	remoteModel := flag.String("model", "", "served model name for -remote (empty = server default)")
	chunk := flag.Int("chunk", 256, "series per /v1/predict:batch call with -remote")
	flag.Parse()

	if *report != "" && *report != "json" && *report != "text" {
		fatal(fmt.Errorf("unknown -report format %q (want json or text)", *report))
	}

	if *remote != "" {
		if *testPath == "" || *chunk < 1 {
			fmt.Fprintln(os.Stderr, "rpmcli: -remote requires -test and a positive -chunk")
			os.Exit(2)
		}
		test, err := loadFile(*testPath)
		if err != nil {
			fatal(err)
		}
		if *znorm {
			rpm.ZNormalize(test)
		}
		if err := classifyRemote(*remote, *remoteModel, *chunk, test); err != nil {
			fatal(err)
		}
		return
	}

	if (*trainPath == "" && *loadModel == "") || *testPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var train rpm.Dataset
	var err error
	if *trainPath != "" {
		if train, err = loadFile(*trainPath); err != nil {
			fatal(err)
		}
	}
	test, err := loadFile(*testPath)
	if err != nil {
		fatal(err)
	}
	if *znorm {
		rpm.ZNormalize(train)
		rpm.ZNormalize(test)
	}

	opts := rpm.DefaultOptions()
	opts.Gamma = *gamma
	opts.TauPercentile = *tau
	opts.RotationInvariant = *rotInv
	opts.UseMedoid = *medoid
	opts.Seed = *seed
	opts.Splits = *splits
	opts.MaxEvals = *maxEvals
	opts.Instrument = *report != ""
	switch *mode {
	case "direct":
		opts.Mode = rpm.ParamDIRECT
	case "grid":
		opts.Mode = rpm.ParamGrid
	case "fixed":
		opts.Mode = rpm.ParamFixed
		opts.Params = rpm.SAXParams{Window: *window, PAA: *paa, Alphabet: *alpha}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *motifsOnly {
		if *window == 0 || *paa == 0 || *alpha == 0 {
			fatal(fmt.Errorf("-motifs requires -window, -paa and -alpha"))
		}
		motifs := rpm.DiscoverMotifs(train, rpm.SAXParams{Window: *window, PAA: *paa, Alphabet: *alpha}, opts)
		for class, ms := range motifs {
			fmt.Printf("class %d: %d motifs\n", class, len(ms))
			for i, m := range ms {
				fmt.Printf("  motif %d: support=%d occurrences=%d prototype-length=%d\n",
					i, m.Support, len(m.Occurrences), len(m.Prototype))
			}
		}
		return
	}
	var clf *rpm.Classifier
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fatal(err)
		}
		clf, err = rpm.LoadClassifier(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		clf, err = rpm.Train(train, opts)
		if err != nil {
			fatal(err)
		}
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fatal(err)
		}
		if err := clf.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}
	preds := clf.PredictBatch(test)
	wrong := 0
	for i, p := range preds {
		if p != test[i].Label {
			wrong++
		}
	}
	fmt.Printf("instances: train=%d test=%d\n", len(train), len(test))
	fmt.Printf("patterns:  %d\n", len(clf.Patterns()))
	fmt.Printf("error:     %.4f (%d/%d wrong)\n", float64(wrong)/float64(len(test)), wrong, len(test))
	fmt.Println("per-class SAX parameters:")
	for class, p := range clf.PerClassParams() {
		fmt.Printf("  class %d: window=%d paa=%d alphabet=%d\n", class, p.Window, p.PAA, p.Alphabet)
	}
	if *showPatterns {
		for i, p := range clf.Patterns() {
			fmt.Printf("pattern %d: class=%d len=%d support=%d freq=%d\n", i, p.Class, len(p.Values), p.Support, p.Freq)
			fmt.Printf("  values: %v\n", p.Values)
		}
	}
	if *report != "" {
		tr := clf.TrainReport()
		if tr == nil {
			fmt.Println("training report: none (model was loaded, not trained)")
		} else if *report == "json" {
			b, err := tr.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(b))
		} else {
			fmt.Printf("training report:\n%s", tr)
		}
	}
}

// classifyRemote sends the test set to a running rpmserved in -chunk
// sized /v1/predict:batch calls through the resilient client and prints
// the same error-rate summary the local path does. Chunking bounds both
// request payloads and the blast radius of one failed call.
func classifyRemote(baseURL, model string, chunk int, test rpm.Dataset) error {
	c, err := serveclient.New(serveclient.Config{BaseURL: baseURL})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := c.WaitReady(ctx, 10*time.Second); err != nil {
		return err
	}
	preds := make([]int, 0, len(test))
	version := 0
	served := model
	for lo := 0; lo < len(test); lo += chunk {
		hi := min(lo+chunk, len(test))
		series := make([][]float64, 0, hi-lo)
		for _, inst := range test[lo:hi] {
			series = append(series, inst.Values)
		}
		res, err := c.PredictBatch(ctx, model, series)
		if err != nil {
			return fmt.Errorf("batch [%d:%d]: %w", lo, hi, err)
		}
		if len(res.Labels) != hi-lo {
			return fmt.Errorf("batch [%d:%d]: server answered %d labels", lo, hi, len(res.Labels))
		}
		preds = append(preds, res.Labels...)
		version = res.Version
		served = res.Model
	}
	wrong := 0
	for i, p := range preds {
		if p != test[i].Label {
			wrong++
		}
	}
	fmt.Printf("remote:    %s model=%q v%d (chunks of %d)\n", baseURL, served, version, chunk)
	fmt.Printf("instances: test=%d\n", len(test))
	fmt.Printf("error:     %.4f (%d/%d wrong)\n", float64(wrong)/float64(len(test)), wrong, len(test))
	return nil
}

func loadFile(path string) (rpm.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rpm.LoadUCR(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpmcli:", err)
	os.Exit(1)
}
