//go:build race

package core

// raceEnabled reports that this test binary was built with the race
// detector, under which sync.Pool deliberately drops items and the
// runtime allocates for instrumentation — allocation-count assertions
// are meaningless there.
const raceEnabled = true
