#!/usr/bin/env bash
# Archive smoke: the crash-resume proof for cmd/rpmarchive. Run B is
# started on a 3-dataset synthetic mini-archive and SIGKILLed as soon as
# its first checkpoint lands — the dataset list is chosen so the
# heaviest dataset (SynTrace) sorts last, leaving a wide window where
# some checkpoints exist and some datasets are still untrained. The
# resumed run must serve the surviving checkpoints from disk, train the
# rest, and produce a deterministic table byte-identical to run A,
# which ran uninterrupted at a different worker count — covering
# crash-safety and worker-independence in one diff.
#
# Usage: scripts/archive_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
cleanup() { rm -rf "$work"; }
trap cleanup EXIT

datasets="SynECG200,SynItalyPower,SynTrace"
args=(-datasets "$datasets" -mode fixed -window 12 -paa 4 -alpha 4 -seed 3 -deterministic -json)

echo "== build"
go build -o "$work/rpmarchive" ./cmd/rpmarchive

echo "== run A (uninterrupted, workers=2)"
"$work/rpmarchive" -out "$work/a" -workers 2 "${args[@]}" > "$work/a.json"

# kill_midrun starts a sequential run and SIGKILLs it once the first
# checkpoint file appears. Success: the killed run left some — but not
# all — checkpoints behind.
kill_midrun() {
    rm -rf "$work/b"
    set +e
    "$work/rpmarchive" -out "$work/b" -workers 1 "${args[@]}" > /dev/null 2>&1 &
    local bpid=$!
    for _ in $(seq 1 500); do
        if compgen -G "$work/b/*.ckpt.json" > /dev/null; then
            break
        fi
        sleep 0.01
    done
    kill -9 "$bpid" 2>/dev/null
    wait "$bpid" 2>/dev/null
    set -e
    ckpts=$(ls "$work/b"/*.ckpt.json 2>/dev/null | wc -l)
    [ "$ckpts" -ge 1 ] && [ "$ckpts" -lt 3 ]
}

echo "== run B (workers=1, killed after first checkpoint)"
killed=no
for attempt in 1 2 3 4 5; do
    if kill_midrun; then
        killed=yes
        echo "   attempt $attempt: killed at $ckpts/3 checkpoints"
        break
    fi
    echo "   attempt $attempt: kill landed at $ckpts/3 checkpoints, retrying"
done
if [ "$killed" != yes ]; then
    echo "archive smoke FAILED: could not kill run B mid-archive in 5 attempts" >&2
    exit 1
fi

echo "== run B resume"
"$work/rpmarchive" -out "$work/b" -workers 1 -resume "${args[@]}" > "$work/b.json"

echo "== diff deterministic tables"
if ! diff -u "$work/a.json" "$work/b.json"; then
    echo "archive smoke FAILED: resumed table differs from uninterrupted run" >&2
    exit 1
fi

echo "archive smoke OK (killed at $ckpts/3 checkpoints, resume byte-identical)"
