// Package dep is the sibling callee: the hotpathalloc fixture's marked
// root calls into it across the package boundary, and the finding must
// land here — proving the facts engine canonicalizes export-data and
// source-checked objects to the same summary.
package dep

// Scale doubles x through a scratch slice.
func Scale(x float64) float64 {
	tmp := []float64{x, x} // want "slice literal allocates"
	return tmp[0] + tmp[1]
}
