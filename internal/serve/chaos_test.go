package serve

// The chaos end-to-end suite (run via `make chaos`): scripted fault
// scenarios against a live server, each executed TWICE with the same
// seed. The invariants asserted in every scenario:
//
//  1. No wrong prediction is ever returned: every 200 body carries a
//     label byte-identical to direct Classifier.Predict of the model
//     version the envelope claims served it.
//  2. Every request gets exactly one terminal answer — a 200, a typed
//     error envelope, or a clean connection abort. Never a hang, never
//     a truncated success body.
//  3. A failed reload never evicts a serving model: the old version
//     keeps answering until a clean replacement loads.
//  4. The server always drains cleanly, even mid-fault.
//  5. Determinism: both runs produce identical injected-fault event
//     logs AND identical outcome transcripts — the reproducibility
//     contract of internal/faults (DESIGN.md §13).

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rpm"
	"rpm/internal/faults"
	"rpm/internal/stream"
)

// newChaosServer builds a Server with the given armed injector over a
// fresh model dir holding model1 under "cbf".
func newChaosServer(t *testing.T, seed int64, spec string) (*Server, *httptest.Server, string, *faults.Injector) {
	t.Helper()
	inj, err := faults.New(seed, spec)
	if err != nil {
		t.Fatalf("faults.New(%q): %v", spec, err)
	}
	s, ts, dir := newTestServer(t, func(c *Config) { c.Faults = inj })
	return s, ts, dir, inj
}

// rawPredict posts one predict request without failing the test on a
// transport error — injected write aborts are an EXPECTED outcome.
func rawPredict(ts *httptest.Server, body string) (int, []byte, error) {
	resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// eventsJSON renders the injected-fault log for determinism comparison.
func eventsJSON(t *testing.T, inj *faults.Injector) string {
	t.Helper()
	b, err := json.Marshal(inj.Events())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkIdentity asserts invariant 1 for a 200 predict response: the
// served label is byte-identical to direct Predict of the classifier
// the envelope's version maps to.
func checkIdentity(t *testing.T, body []byte, versionClf map[int]*rpm.Classifier, values []float64) string {
	t.Helper()
	var out predictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("200 body does not parse: %v (%s)", err, body)
	}
	clf, ok := versionClf[out.Version]
	if !ok {
		t.Fatalf("served version %d was never cleanly loaded", out.Version)
	}
	if want := clf.Predict(values); out.Label != want {
		t.Fatalf("WRONG PREDICTION: served label %d != direct Predict %d for version %d",
			out.Label, want, out.Version)
	}
	return fmt.Sprintf("ok v%d label=%d", out.Version, out.Label)
}

// errCode parses a non-2xx body's envelope code.
func errCode(t *testing.T, status int, body []byte) string {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		t.Fatalf("status %d body is not a valid error envelope: %s", status, body)
	}
	if env.Error.Status != status {
		t.Fatalf("envelope status %d != HTTP status %d", env.Error.Status, status)
	}
	return env.Error.Code
}

// runTwice executes one scenario twice with the same seed and fails if
// the injected-fault logs or the outcome transcripts differ.
func runTwice(t *testing.T, scenario func(t *testing.T, seed int64) (string, []string)) {
	t.Helper()
	const seed = 42
	ev1, tr1 := scenario(t, seed)
	ev2, tr2 := scenario(t, seed)
	if ev1 != ev2 {
		t.Fatalf("injected-fault sequences diverged across same-seed runs:\nrun1: %s\nrun2: %s", ev1, ev2)
	}
	if fmt.Sprint(tr1) != fmt.Sprint(tr2) {
		t.Fatalf("outcome transcripts diverged across same-seed runs:\nrun1: %v\nrun2: %v", tr1, tr2)
	}
	if ev1 == "null" || ev1 == "[]" {
		t.Fatal("scenario injected no faults at all — the chaos run proved nothing")
	}
}

// TestChaosCorruptReloadStorm: repeated model swaps under a 60% chance
// of an injected load failure per reload. The serving catalog must
// never go backwards: a failed load keeps the previous version
// answering (invariant 3), every predict answers 200, and every answer
// is byte-identical to the classifier of the version it claims
// (invariant 1). skip=1 exempts the initial load so the storm starts
// from a known v1.
func TestChaosCorruptReloadStorm(t *testing.T) {
	runTwice(t, func(t *testing.T, seed int64) (string, []string) {
		s, ts, dir, inj := newChaosServer(t, seed, "store.load:skip=1:p=0.6")
		var transcript []string
		versionClf := map[int]*rpm.Classifier{1: fixClf1}
		written := fixClf1
		for i := 0; i < 10; i++ {
			if i%2 == 0 {
				writeModel(t, dir, "cbf", model2)
				written = fixClf2
			} else {
				writeModel(t, dir, "cbf", model1)
				written = fixClf1
			}
			rep, err := s.Reload()
			if err != nil {
				t.Fatalf("reload %d: %v", i, err)
			}
			m, err := s.store.Get("cbf")
			if err != nil {
				t.Fatalf("reload %d evicted the serving model: %v", i, err)
			}
			if _, ok := versionClf[m.Version]; !ok {
				// A clean content change: this version serves the bytes we
				// just wrote.
				versionClf[m.Version] = written
			}
			transcript = append(transcript, fmt.Sprintf(
				"reload %d: loaded=%d unchanged=%d keptOld=%d serving=v%d",
				i, len(rep.Loaded), len(rep.Unchanged), len(rep.KeptOld), m.Version))
			for p := 0; p < 2; p++ {
				status, body, err := rawPredict(ts, predictBody("cbf", fixProbe[p].Values))
				if err != nil {
					t.Fatalf("reload %d probe %d: transport error: %v", i, p, err)
				}
				if status != http.StatusOK {
					t.Fatalf("reload %d probe %d: status %d: %s", i, p, status, body)
				}
				transcript = append(transcript, checkIdentity(t, body, versionClf, fixProbe[p].Values))
			}
		}
		return eventsJSON(t, inj), transcript
	})
}

// TestChaosLatencyStorm: every flush has a 50% chance of an injected
// 15ms stall. Latency spikes must never change answers: all requests
// still complete 200 with byte-identical labels (invariants 1+2).
func TestChaosLatencyStorm(t *testing.T) {
	runTwice(t, func(t *testing.T, seed int64) (string, []string) {
		_, ts, _, inj := newChaosServer(t, seed, "batcher.flush:p=0.5:d=15ms")
		var transcript []string
		versionClf := map[int]*rpm.Classifier{1: fixClf1}
		for i := 0; i < 12; i++ {
			in := fixProbe[i%len(fixProbe)]
			status, body, err := rawPredict(ts, predictBody("cbf", in.Values))
			if err != nil {
				t.Fatalf("probe %d: transport error: %v", i, err)
			}
			if status != http.StatusOK {
				t.Fatalf("probe %d: status %d: %s", i, status, body)
			}
			transcript = append(transcript, checkIdentity(t, body, versionClf, in.Values))
		}
		return eventsJSON(t, inj), transcript
	})
}

// TestChaosStalledFlushDrain: a flush is deterministically stalled at
// the test gate while more requests queue behind it, then the server
// begins draining WITH flush-stall faults still armed. Every queued
// request must still get exactly one terminal answer, post-drain
// arrivals get 503 draining, and Close returns cleanly (invariants 2+4).
func TestChaosStalledFlushDrain(t *testing.T) {
	runTwice(t, func(t *testing.T, seed int64) (string, []string) {
		s, ts, _, inj := newChaosServer(t, seed, "batcher.flush:p=1:d=20ms")
		gate := make(chan struct{})
		s.batcher.flushGate = gate

		type result struct {
			status int
			body   []byte
			err    error
		}
		fire := func(i int) chan result {
			ch := make(chan result, 1)
			go func() {
				status, body, err := rawPredict(ts, predictBody("cbf", fixProbe[i].Values))
				ch <- result{status, body, err}
			}()
			return ch
		}
		// A is popped by the loop and stalls at the gate (before the
		// injected delay); B and C queue up behind the stalled flush.
		a := fire(0)
		<-gate
		b, c := fire(1), fire(2)
		waitFor(t, func() bool { return len(s.batcher.queue) == 2 })

		// Drain begins while the flush is stalled mid-fault.
		s.BeginDrain()
		dStatus, dBody, err := rawPredict(ts, predictBody("cbf", fixProbe[3].Values))
		if err != nil {
			t.Fatalf("post-drain request: transport error: %v", err)
		}
		if dStatus != http.StatusServiceUnavailable || errCode(t, dStatus, dBody) != "draining" {
			t.Fatalf("post-drain request: status %d %s, want 503 draining", dStatus, dBody)
		}

		// Release the gate and keep servicing it: the flush of {B,C}
		// passes through the same handshake. The service goroutine lives
		// until the batcher's loop exits (Close below).
		released := make(chan struct{})
		go func() {
			defer close(released)
			gate <- struct{}{} // release A
			for {
				select {
				case <-gate:
					gate <- struct{}{}
				case <-s.batcher.done:
					return
				}
			}
		}()

		// Every queued request terminates exactly once, correctly, before
		// the batcher is even asked to stop.
		var transcript []string
		versionClf := map[int]*rpm.Classifier{1: fixClf1}
		for i, ch := range []chan result{a, b, c} {
			select {
			case res := <-ch:
				if res.err != nil {
					t.Fatalf("queued request %d: transport error: %v", i, res.err)
				}
				if res.status != http.StatusOK {
					t.Fatalf("queued request %d: status %d: %s", i, res.status, res.body)
				}
				transcript = append(transcript, checkIdentity(t, res.body, versionClf, fixProbe[i].Values))
			case <-time.After(10 * time.Second):
				t.Fatalf("queued request %d never got a terminal answer", i)
			}
		}
		transcript = append(transcript, "post-drain: 503 draining")

		// Invariant 4: the server drains cleanly with faults still armed.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatalf("server failed to drain cleanly under flush faults: %v", err)
		}
		<-released
		return eventsJSON(t, inj), transcript
	})
}

// TestChaosDeadlineStorm: half of all requests have their deadline
// exhausted before they are enqueued. Each must terminate exactly once:
// 504 deadline_exceeded for the hit ones, 200 byte-identical for the
// rest — and the number of 504s must equal the number of injected
// deadline faults (invariants 1+2).
func TestChaosDeadlineStorm(t *testing.T) {
	runTwice(t, func(t *testing.T, seed int64) (string, []string) {
		s, ts, _, inj := newChaosServer(t, seed, "server.deadline:p=0.5")
		var transcript []string
		versionClf := map[int]*rpm.Classifier{1: fixClf1}
		timeouts := 0
		for i := 0; i < 16; i++ {
			in := fixProbe[i%len(fixProbe)]
			status, body, err := rawPredict(ts, predictBody("cbf", in.Values))
			if err != nil {
				t.Fatalf("probe %d: transport error: %v", i, err)
			}
			switch status {
			case http.StatusOK:
				transcript = append(transcript, checkIdentity(t, body, versionClf, in.Values))
			case http.StatusGatewayTimeout:
				if code := errCode(t, status, body); code != "deadline_exceeded" {
					t.Fatalf("probe %d: 504 with code %q", i, code)
				}
				timeouts++
				transcript = append(transcript, "err 504 deadline_exceeded")
			default:
				t.Fatalf("probe %d: unexpected status %d: %s", i, status, body)
			}
		}
		if injected := len(inj.Events()); timeouts != injected {
			t.Fatalf("%d requests answered 504 but %d deadline faults injected", timeouts, injected)
		}
		if timeouts == 0 || timeouts == 16 {
			t.Fatalf("deadline storm degenerated: %d/16 hit", timeouts)
		}
		// The shed requests must eventually be counted by the queue-age
		// admission check — 504ed requests are never computed.
		waitFor(t, func() bool { return s.reg.Snapshot().Counter(CtrExpired) == int64(timeouts) })
		return eventsJSON(t, inj), transcript
	})
}

// TestChaosWriteAbortStorm: half of all success responses abort at
// write time. The client must see either a clean 200 with the correct
// label or a transport error — NEVER a truncated or wrong 200 body
// (invariants 1+2) — and the abort count must match the injected log.
func TestChaosWriteAbortStorm(t *testing.T) {
	runTwice(t, func(t *testing.T, seed int64) (string, []string) {
		s, ts, _, inj := newChaosServer(t, seed, "server.write:p=0.5")
		var transcript []string
		versionClf := map[int]*rpm.Classifier{1: fixClf1}
		aborted := 0
		for i := 0; i < 16; i++ {
			in := fixProbe[i%len(fixProbe)]
			status, body, err := rawPredict(ts, predictBody("cbf", in.Values))
			if err != nil {
				aborted++
				transcript = append(transcript, "aborted")
				continue
			}
			if status != http.StatusOK {
				t.Fatalf("probe %d: unexpected status %d: %s", i, status, body)
			}
			transcript = append(transcript, checkIdentity(t, body, versionClf, in.Values))
		}
		if injected := len(inj.Events()); aborted != injected {
			t.Fatalf("%d aborted exchanges but %d write faults injected", aborted, injected)
		}
		if aborted == 0 || aborted == 16 {
			t.Fatalf("write-abort storm degenerated: %d/16 hit", aborted)
		}
		// Aborts must not leak through the panic guard as 500s.
		if n := s.reg.Snapshot().Counter(CtrErrPrefix + "internal"); n != 0 {
			t.Fatalf("write aborts surfaced as %d internal errors", n)
		}
		return eventsJSON(t, inj), transcript
	})
}

// TestChaosStreamAppendStorm (scenario 6): a stream-append storm under
// three armed stream faults at once — injected 429 sheds on append,
// connection aborts mid-SSE-feed, and flush stalls. The invariants:
// a shed append consumes no samples and commits no events (the client
// retry converges on exactly the reference event sequence), an SSE
// client that reconnects with Last-Event-ID after every abort receives
// every event exactly once — no duplicates, no losses — and the server
// drains cleanly with a feed still open (invariants 2, 4, 5).
func TestChaosStreamAppendStorm(t *testing.T) {
	fixtures(t)
	cfg := Config{StreamConfirm: 1}
	series, wantEvents := eventfulSeries(t, fixClf1, cfg, 3)
	runTwice(t, func(t *testing.T, seed int64) (string, []string) {
		inj, err := faults.New(seed,
			"stream.append:p=0.3;stream.sse.write:p=0.35;stream.sse.flush:p=0.5:d=2ms")
		if err != nil {
			t.Fatal(err)
		}
		s, ts, _ := newTestServer(t, func(c *Config) {
			c.Faults = inj
			c.StreamConfirm = 1
		})
		var transcript []string

		// Phase 1 — append storm. Each shed append answers 429 overloaded
		// and must be side-effect free: the retry that follows lands on
		// the exact sample count the previous success left, and the final
		// event list is byte-for-byte the reference detector's.
		var served []stream.Event
		var seen int64
		sheds := 0
		for i := 0; i < len(series); {
			n := 29
			if i+n > len(series) {
				n = len(series) - i
			}
			resp, body := postJSON(t, ts.URL+"/v1/streams/storm", streamBody("cbf", series[i:i+n]))
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if code := errCode(t, resp.StatusCode, body); code != "overloaded" {
					t.Fatalf("shed append: code %q", code)
				}
				sheds++
				continue // retry the SAME chunk: the shed consumed nothing
			case http.StatusOK:
				var out streamAppendResponse
				if err := json.Unmarshal(body, &out); err != nil {
					t.Fatal(err)
				}
				if out.Seen != seen+int64(n) {
					t.Fatalf("append at %d: seen %d, want %d — a shed append consumed samples",
						i, out.Seen, seen+int64(n))
				}
				seen = out.Seen
				served = append(served, out.NewEvents...)
				i += n
			default:
				t.Fatalf("append at %d: status %d: %s", i, resp.StatusCode, body)
			}
		}
		if fmt.Sprint(served) != fmt.Sprint(wantEvents) {
			t.Fatalf("storm events diverged from reference:\n%+v\nvs\n%+v", served, wantEvents)
		}
		transcript = append(transcript, fmt.Sprintf("storm: %d events, %d sheds", len(served), sheds))

		// Phase 2 — SSE replay under aborts and stalls. A client that
		// reconnects with Last-Event-ID after every connection abort must
		// assemble the full event list exactly once.
		var got []stream.Event
		cursor := -1
		reconnects := 0
		for len(got) < len(wantEvents) {
			req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/streams/storm/events", nil)
			if err != nil {
				t.Fatal(err)
			}
			if cursor >= 0 {
				req.Header.Set("Last-Event-ID", fmt.Sprint(cursor))
			}
			feed, err := ts.Client().Do(req)
			if err != nil {
				reconnects++ // aborted before headers committed
				continue
			}
			if feed.StatusCode != http.StatusOK {
				t.Fatalf("SSE connect: %d", feed.StatusCode)
			}
			sc := bufio.NewScanner(feed.Body)
			for len(got) < len(wantEvents) {
				ev, ok, err := readSSE(sc)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					reconnects++ // injected mid-feed abort: resume at cursor
					break
				}
				if ev.event.Seq != cursor+1 && !(cursor == -1 && ev.event.Seq == 0) {
					t.Fatalf("SSE delivered seq %d after cursor %d — duplicate or gap", ev.event.Seq, cursor)
				}
				got = append(got, ev.event)
				cursor = ev.event.Seq
			}
			feed.Body.Close()
		}
		if fmt.Sprint(got) != fmt.Sprint(wantEvents) {
			t.Fatalf("SSE reassembly diverged from reference:\n%+v\nvs\n%+v", got, wantEvents)
		}
		transcript = append(transcript, fmt.Sprintf("sse: %d events after %d reconnects", len(got), reconnects))

		// Phase 3 — drain with an open feed. A fresh feed parked one event
		// before the end replays that event (proving it is live), then
		// BeginDrain must end it promptly; post-drain appends answer 503
		// and Close is clean (invariant 4).
		var tail *http.Response
		for tail == nil {
			req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/streams/storm/events", nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Last-Event-ID", fmt.Sprint(wantEvents[len(wantEvents)-2].Seq))
			feed, err := ts.Client().Do(req)
			if err != nil {
				continue
			}
			sc := bufio.NewScanner(feed.Body)
			ev, ok, err := readSSE(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !ok { // aborted before the tail event arrived: reconnect
				feed.Body.Close()
				continue
			}
			if want := wantEvents[len(wantEvents)-1]; ev.event != want {
				t.Fatalf("tail feed replayed %+v, want %+v", ev.event, want)
			}
			tail = feed
		}
		defer tail.Body.Close()
		ended := make(chan struct{})
		go func() {
			defer close(ended)
			io.Copy(io.Discard, tail.Body) // blocks until the feed ends
		}()
		s.BeginDrain()
		select {
		case <-ended:
		case <-time.After(10 * time.Second):
			t.Fatal("SSE feed still open 10s after BeginDrain")
		}
		resp, body := postJSON(t, ts.URL+"/v1/streams/storm", streamBody("", []float64{1}))
		if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, resp.StatusCode, body) != "draining" {
			t.Fatalf("post-drain append: %d %s", resp.StatusCode, body)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Fatalf("server failed to drain cleanly under stream faults: %v", err)
		}
		transcript = append(transcript, "post-drain: 503 draining; closed clean")
		return eventsJSON(t, inj), transcript
	})
}
