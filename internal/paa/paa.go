// Package paa implements Piecewise Aggregate Approximation (Keogh et al.
// 2001), the dimensionality-reduction step of SAX: a series of length n is
// reduced to w segment means.
//
// When w does not divide n the implementation uses fractional weighting:
// each original point contributes to the segments it overlaps in proportion
// to the overlap, which is the exact formulation (equivalent to up-sampling
// the series by w and down-sampling by n) rather than the truncation
// shortcut.
package paa

import "fmt"

// Transform reduces v to w segment means. It panics if w <= 0; if
// w >= len(v) it returns a copy of v (no reduction possible).
func Transform(v []float64, w int) []float64 {
	out := make([]float64, 0, w)
	return TransformInto(out, v, w)
}

// TransformInto appends the w segment means of v to dst and returns the
// extended slice. It exists so hot loops can reuse a buffer.
func TransformInto(dst, v []float64, w int) []float64 {
	if w <= 0 {
		panic(fmt.Sprintf("paa: non-positive segment count %d", w))
	}
	n := len(v)
	if n == 0 {
		return dst
	}
	if w >= n {
		return append(dst, v...)
	}
	if n%w == 0 {
		// fast path: equal integer-sized segments
		seg := n / w
		inv := 1 / float64(seg)
		for i := 0; i < w; i++ {
			var s float64
			for _, x := range v[i*seg : (i+1)*seg] {
				s += x
			}
			dst = append(dst, s*inv)
		}
		return dst
	}
	// general path: fractional weighting. Segment i covers the real
	// interval [i*n/w, (i+1)*n/w) of point indices.
	fw := float64(w)
	fn := float64(n)
	segLen := fn / fw
	for i := 0; i < w; i++ {
		lo := float64(i) * segLen
		hi := float64(i+1) * segLen
		var s float64
		j := int(lo)
		for float64(j) < hi && j < n {
			l := lo
			if float64(j) > l {
				l = float64(j)
			}
			h := hi
			if float64(j+1) < h {
				h = float64(j + 1)
			}
			if h > l {
				s += v[j] * (h - l)
			}
			j++
		}
		dst = append(dst, s/segLen)
	}
	return dst
}
