package parallel

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rpm/internal/obs"
)

// TestForPoolAttribution: every completed task is attributed to exactly
// one worker slot, and the run totals land in the pool.
func TestForPoolAttribution(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := obs.NewRegistry()
		p := r.Pool("p")
		const n = 50
		got := make([]int, n)
		ForPool(n, workers, p, func(i int) {
			got[i] = i * i
			time.Sleep(time.Microsecond)
		})
		for i := range got {
			if got[i] != i*i {
				t.Fatalf("workers=%d: slot %d not computed", workers, i)
			}
		}
		s := r.Snapshot()
		ps := s.Pools[0]
		if ps.Tasks != n {
			t.Fatalf("workers=%d: tasks = %d, want %d", workers, ps.Tasks, n)
		}
		if ps.Runs != 1 {
			t.Fatalf("workers=%d: runs = %d", workers, ps.Runs)
		}
		if ps.MaxWorkers != workers {
			t.Fatalf("workers=%d: maxWorkers = %d", workers, ps.MaxWorkers)
		}
		var attributed int64
		for _, v := range ps.TasksPerWorker {
			attributed += v
		}
		if attributed != n {
			t.Fatalf("workers=%d: per-worker attribution sums to %d, want %d", workers, attributed, n)
		}
		if ps.BusyNS <= 0 || ps.WallNS <= 0 {
			t.Fatalf("workers=%d: zero busy/wall: %+v", workers, ps)
		}
	}
}

// TestForPoolNilIdentical: a nil pool must not change results — the
// instrumented helpers with pool == nil are the plain For/ForCtx paths.
func TestForPoolNilIdentical(t *testing.T) {
	const n = 40
	a := make([]int, n)
	b := make([]int, n)
	For(n, 4, func(i int) { a[i] = 3 * i })
	ForPool(n, 4, nil, func(i int) { b[i] = 3 * i })
	if !reflect.DeepEqual(a, b) {
		t.Fatal("nil-pool ForPool diverges from For")
	}
}

// TestMapCtxPoolCancel: cancellation with a pool attached still returns
// the context error and drains cleanly; the pool keeps whatever partial
// accounting happened (never negative idle).
func TestMapCtxPoolCancel(t *testing.T) {
	r := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtxPool(ctx, 100, 4, r.Pool("p"), func(i int) int { return i })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := r.Snapshot(); len(s.Pools) == 1 && s.Pools[0].IdleNS < 0 {
		t.Fatalf("negative idle: %+v", s.Pools[0])
	}
}

// TestForCtxPoolComplete: with a never-canceled ctx the pooled variant
// is byte-identical to the plain one.
func TestForCtxPoolComplete(t *testing.T) {
	r := obs.NewRegistry()
	const n = 30
	got := make([]int, n)
	if err := ForCtxPool(context.Background(), n, 3, r.Pool("p"), func(i int) { got[i] = i + 1 }); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i+1 {
			t.Fatalf("slot %d missing", i)
		}
	}
	if ps := r.Snapshot().Pools[0]; ps.Tasks != n {
		t.Fatalf("tasks = %d, want %d", ps.Tasks, n)
	}
}
