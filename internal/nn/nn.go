// Package nn implements the two nearest-neighbor baselines of the paper's
// evaluation (§5.1): 1NN with Euclidean distance (NN-ED) and 1NN with
// dynamic time warping using the best warping window learned from the
// training data by leave-one-out cross-validation (NN-DTWB), accelerated
// with the LB_Keogh lower bound and early-abandoning DTW.
package nn

import (
	"context"
	"fmt"
	"math"

	"rpm/internal/dist"
	"rpm/internal/obs"
	"rpm/internal/parallel"
	"rpm/internal/ts"
)

// EDClassifier is a 1-nearest-neighbor classifier under Euclidean distance.
type EDClassifier struct {
	train ts.Dataset
	// Workers bounds PredictBatch's fan-out over queries (the
	// parallel.Workers convention: 0 ⇒ GOMAXPROCS, 1 ⇒ sequential).
	// Each query is an independent scan with its own early-abandon
	// best-so-far, so predictions are identical for any setting.
	Workers int
}

// NewED builds the classifier; the training data is referenced, not copied.
func NewED(train ts.Dataset) *EDClassifier {
	if len(train) == 0 {
		panic("nn: empty training set")
	}
	return &EDClassifier{train: train}
}

// Predict returns the label of the nearest training instance, with early
// abandoning on the squared distance.
func (c *EDClassifier) Predict(query []float64) int {
	best := math.Inf(1)
	label := c.train[0].Label
	for _, in := range c.train {
		d := dist.SqEuclideanEarly(in.Values, query, best)
		if d < best {
			best = d
			label = in.Label
		}
	}
	return label
}

// PredictBatch classifies every instance of test, fanning the queries out
// over c.Workers goroutines; the label slice is identical to the
// sequential path.
func (c *EDClassifier) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	parallel.For(len(test), c.Workers, func(i int) {
		out[i] = c.Predict(test[i].Values)
	})
	return out
}

// PredictBatchContext is PredictBatch with cooperative cancellation: once
// ctx is done no further query is scheduled and ctx.Err() is returned.
func (c *EDClassifier) PredictBatchContext(ctx context.Context, test ts.Dataset) ([]int, error) {
	out := make([]int, len(test))
	if err := parallel.ForCtx(ctx, len(test), c.Workers, func(i int) {
		out[i] = c.Predict(test[i].Values)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// DTWClassifier is a 1-nearest-neighbor classifier under band-constrained
// DTW. Envelopes of every training instance are precomputed for LB_Keogh
// pruning.
type DTWClassifier struct {
	train  ts.Dataset
	window int
	upper  [][]float64
	lower  [][]float64
	// Workers bounds the fan-out of PredictBatch (over queries) and of
	// the BestWindow leave-one-out scan (over held-out instances). All
	// LB_Keogh pruning state — the best-so-far threshold — lives per
	// query, i.e. per worker, so predictions are identical for any
	// setting (the parallel.Workers convention: 0 ⇒ GOMAXPROCS, 1 ⇒
	// sequential).
	Workers int
}

// NewDTW builds the classifier with the given Sakoe-Chiba half-width (in
// points, not percent).
func NewDTW(train ts.Dataset, window int) *DTWClassifier {
	if len(train) == 0 {
		panic("nn: empty training set")
	}
	if window < 0 {
		window = 0
	}
	c := &DTWClassifier{train: train, window: window}
	c.upper = make([][]float64, len(train))
	c.lower = make([][]float64, len(train))
	for i, in := range train {
		c.upper[i], c.lower[i] = dist.Envelope(in.Values, window)
	}
	return c
}

// Window returns the classifier's Sakoe-Chiba half-width.
func (c *DTWClassifier) Window() int { return c.window }

// Predict returns the label of the DTW-nearest training instance. The
// LB_Keogh bound skips candidates that cannot beat the best-so-far, and
// the DTW computation itself abandons rows exceeding it.
func (c *DTWClassifier) Predict(query []float64) int {
	return c.predictSkip(query, -1)
}

// predictSkip is Predict that ignores training index skip (for LOOCV).
func (c *DTWClassifier) predictSkip(query []float64, skip int) int {
	best := math.Inf(1)
	label := 0
	haveLabel := false
	for i, in := range c.train {
		if i == skip {
			continue
		}
		if len(query) == len(in.Values) {
			if lb := dist.LBKeogh(query, c.upper[i], c.lower[i], best); math.IsInf(lb, 1) {
				continue
			}
		}
		d := dist.DTWEarly(in.Values, query, c.window, best)
		if d < best || !haveLabel {
			if !math.IsInf(d, 1) || !haveLabel {
				best = d
				label = in.Label
				haveLabel = true
			}
		}
	}
	return label
}

// PredictBatch classifies every instance of test, fanning the queries out
// over c.Workers goroutines; the label slice is identical to the
// sequential path.
func (c *DTWClassifier) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	parallel.For(len(test), c.Workers, func(i int) {
		out[i] = c.Predict(test[i].Values)
	})
	return out
}

// PredictBatchContext is PredictBatch with cooperative cancellation: once
// ctx is done no further query is scheduled and ctx.Err() is returned.
func (c *DTWClassifier) PredictBatchContext(ctx context.Context, test ts.Dataset) ([]int, error) {
	out := make([]int, len(test))
	if err := parallel.ForCtx(ctx, len(test), c.Workers, func(i int) {
		out[i] = c.Predict(test[i].Values)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// BestWindow learns the best warping window on the training set by
// leave-one-out cross-validation over windows from 0 to maxFrac of the
// series length in 1% steps, as is standard for the UCR baselines. Ties
// prefer the smaller window (cheaper and less prone to pathological
// warping). maxFrac <= 0 defaults to 0.2 (20%). It uses every core; use
// BestWindowWorkers to bound the fan-out.
func BestWindow(train ts.Dataset, maxFrac float64) int {
	return BestWindowWorkers(train, maxFrac, 0)
}

// BestWindowWorkers is BestWindow with an explicit worker bound for the
// leave-one-out scan (the dominant cost: |train|² band-constrained DTWs
// per window). Each held-out instance is an independent 1NN query, and
// the correct-count is an integer sum, so the selected window is
// identical for any worker count.
func BestWindowWorkers(train ts.Dataset, maxFrac float64, workers int) int {
	w, _ := BestWindowCtx(context.Background(), train, maxFrac, workers)
	return w
}

// BestWindowCtx is BestWindowWorkers with cooperative cancellation: the
// LOOCV scan stops scheduling held-out instances once ctx is done, drains
// its workers, and returns ctx.Err() — a stuck window sweep aborts within
// one 1NN query. With a non-canceled ctx the selected window is identical
// to BestWindowWorkers for any worker count.
func BestWindowCtx(ctx context.Context, train ts.Dataset, maxFrac float64, workers int) (int, error) {
	return BestWindowObs(ctx, train, maxFrac, workers, nil)
}

// BestWindowObs is BestWindowCtx with optional instrumentation: with a
// non-nil registry the whole sweep runs under the SpanLOOCV span, every
// candidate window gets a SpanLOOCVWindow child recording its wall time,
// and the per-held-out-instance fan-out is attributed to PoolLOOCV. A nil
// registry yields nil handles whose methods are no-ops, so the selected
// window is identical with or without instrumentation (recording never
// feeds back into the scan).
func BestWindowObs(ctx context.Context, train ts.Dataset, maxFrac float64, workers int, reg *obs.Registry) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(train) == 0 {
		panic("nn: empty training set")
	}
	if maxFrac <= 0 {
		maxFrac = 0.2
	}
	sweep := reg.StartSpan(SpanLOOCV)
	defer sweep.End()
	pool := reg.Pool(PoolLOOCV)
	m := train.MinLen()
	maxW := int(maxFrac * float64(m))
	step := m / 100
	if step < 1 {
		step = 1
	}
	bestW := 0
	bestAcc := -1.0
	for w := 0; w <= maxW; w += step {
		wSpan := sweep.Start(fmt.Sprintf("%s%d", SpanLOOCVWindow, w))
		c := NewDTW(train, w)
		counts, err := parallel.MapCtxPool(ctx, len(train), workers, pool,
			func(i int) int {
				if c.predictSkip(train[i].Values, i) == train[i].Label {
					return 1
				}
				return 0
			})
		wSpan.End()
		if err != nil {
			return 0, err
		}
		correct := 0
		for _, v := range counts {
			correct += v
		}
		acc := float64(correct) / float64(len(train))
		if acc > bestAcc {
			bestAcc = acc
			bestW = w
		}
	}
	return bestW, nil
}

// NewDTWBest is the NN-DTWB baseline: learn the window, build the
// classifier.
func NewDTWBest(train ts.Dataset) *DTWClassifier {
	return NewDTW(train, BestWindow(train, 0.2))
}
