// Package direct implements the DIRECT (DIviding RECTangles) algorithm of
// Jones, Perttunen and Stuckman (1993), the derivative-free global
// optimizer RPM uses to search the SAX discretization parameter space
// (paper §4.2). The search domain is scaled to the unit hypercube;
// iterations identify potentially-optimal hyper-rectangles via a
// lower-convex-hull test over (size, value) pairs and trisect them along
// their longest dimensions, sampling the new centers.
package direct

import (
	"math"
	"sort"
)

// epsilonDefault is the standard Jones ε balancing local vs global search.
const epsilonDefault = 1e-4

// Result reports the best point found.
type Result struct {
	// X is the best sample, in original (unscaled) coordinates.
	X []float64
	// F is the objective value at X.
	F float64
	// Evals is the number of objective evaluations performed.
	Evals int
}

// Options tunes the optimizer.
type Options struct {
	// MaxEvals caps objective evaluations (default 100·dim).
	MaxEvals int
	// Epsilon is the potential-optimality slack (default 1e-4).
	Epsilon float64
}

// rect is a hyper-rectangle: its center (unit-cube coordinates), the
// per-dimension number of trisections (level), and the objective value at
// the center.
type rect struct {
	center []float64
	levels []int
	f      float64
	size   float64 // half-diagonal, cached
}

// halfDiag computes the rectangle's half-diagonal from its levels: each
// trisection divides the side length by 3.
func halfDiag(levels []int) float64 {
	var s float64
	for _, l := range levels {
		side := math.Pow(3, -float64(l))
		s += side * side / 4
	}
	return math.Sqrt(s)
}

// Minimize searches for the minimum of f over the box [lo, hi]. The
// objective receives points in original coordinates. Evaluation results
// may be any finite float; NaN is treated as +Inf.
func Minimize(f func([]float64) float64, lo, hi []float64, opt Options) Result {
	dim := len(lo)
	if dim == 0 || len(hi) != dim {
		panic("direct: bad bounds")
	}
	for i := range lo {
		if hi[i] < lo[i] {
			panic("direct: hi < lo")
		}
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 100 * dim
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = epsilonDefault
	}

	unscale := func(u []float64) []float64 {
		x := make([]float64, dim)
		for i := range x {
			x[i] = lo[i] + u[i]*(hi[i]-lo[i])
		}
		return x
	}
	evals := 0
	eval := func(u []float64) float64 {
		evals++
		v := f(unscale(u))
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	center := make([]float64, dim)
	for i := range center {
		center[i] = 0.5
	}
	first := &rect{center: center, levels: make([]int, dim)}
	first.f = eval(first.center)
	first.size = halfDiag(first.levels)
	rects := []*rect{first}
	best := first

	for evals < opt.MaxEvals {
		po := potentiallyOptimal(rects, best.f, opt.Epsilon)
		if len(po) == 0 {
			break
		}
		progressed := false
		for _, ri := range po {
			if evals >= opt.MaxEvals {
				break
			}
			r := rects[ri]
			newRects, nEvals := divide(r, eval, opt.MaxEvals-evals)
			if nEvals == 0 {
				continue
			}
			progressed = true
			rects = append(rects, newRects...)
			for _, nr := range newRects {
				if nr.f < best.f {
					best = nr
				}
			}
			if r.f < best.f {
				best = r
			}
		}
		if !progressed {
			break
		}
	}
	return Result{X: unscale(best.center), F: best.f, Evals: evals}
}

// divide trisects r along its longest dimensions (Jones' scheme): sample
// c ± δe_i for every longest dimension i, then split in order of
// increasing min(f⁺, f⁻) so better samples end up in larger rectangles.
// The budget limits how many evaluations may be spent; division is
// skipped entirely (returning 0 evals) if the full set of samples does
// not fit, keeping the rectangle intact for a later iteration.
func divide(r *rect, eval func([]float64) float64, budget int) ([]*rect, int) {
	minLevel := r.levels[0]
	for _, l := range r.levels[1:] {
		if l < minLevel {
			minLevel = l
		}
	}
	var longDims []int
	for i, l := range r.levels {
		if l == minLevel {
			longDims = append(longDims, i)
		}
	}
	need := 2 * len(longDims)
	if need > budget {
		return nil, 0
	}
	delta := math.Pow(3, -float64(minLevel)) / 3
	type sample struct {
		dim         int
		plus, minus *rect
		bestF       float64
	}
	samples := make([]sample, 0, len(longDims))
	nEvals := 0
	for _, i := range longDims {
		cp := append([]float64{}, r.center...)
		cm := append([]float64{}, r.center...)
		cp[i] += delta
		cm[i] -= delta
		rp := &rect{center: cp, levels: append([]int{}, r.levels...)}
		rm := &rect{center: cm, levels: append([]int{}, r.levels...)}
		rp.f = eval(rp.center)
		rm.f = eval(rm.center)
		nEvals += 2
		bf := rp.f
		if rm.f < bf {
			bf = rm.f
		}
		samples = append(samples, sample{dim: i, plus: rp, minus: rm, bestF: bf})
	}
	sort.SliceStable(samples, func(a, b int) bool { return samples[a].bestF < samples[b].bestF })
	// Split dimension by dimension: the current rectangle (and all later
	// samples' rects) shrink along each split dimension.
	var out []*rect
	split := make([]int, 0, len(samples))
	for si, s := range samples {
		split = append(split, s.dim)
		for _, d := range split {
			if d == s.dim {
				s.plus.levels[d]++
				s.minus.levels[d]++
			}
		}
		// later samples' rectangles shrink along this dimension too
		for sj := si + 1; sj < len(samples); sj++ {
			samples[sj].plus.levels[s.dim]++
			samples[sj].minus.levels[s.dim]++
		}
		r.levels[s.dim]++
		s.plus.size = 0 // computed below
		out = append(out, s.plus, s.minus)
	}
	r.size = halfDiag(r.levels)
	for _, nr := range out {
		nr.size = halfDiag(nr.levels)
	}
	return out, nEvals
}

// potentiallyOptimal returns the indices of rectangles on the lower-right
// convex hull of the (size, f) cloud satisfying Jones' ε condition.
func potentiallyOptimal(rects []*rect, fmin, epsilon float64) []int {
	// group by size: keep only the best f per size
	bestBySize := map[float64]int{}
	for i, r := range rects {
		if j, ok := bestBySize[r.size]; !ok || r.f < rects[j].f {
			bestBySize[r.size] = i
		}
	}
	type pt struct {
		size float64
		f    float64
		idx  int
	}
	pts := make([]pt, 0, len(bestBySize))
	for _, i := range bestBySize {
		pts = append(pts, pt{size: rects[i].size, f: rects[i].f, idx: i})
	}
	sort.Slice(pts, func(a, b int) bool {
		//rpmlint:ignore floateq comparator tie-break needs exact ordering for a strict weak order
		if pts[a].size != pts[b].size {
			return pts[a].size < pts[b].size
		}
		return pts[a].f < pts[b].f
	})
	// lower convex hull scanning from small to large size
	var hull []pt
	for _, p := range pts {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// b must be below segment a-p
			cross := (b.size-a.size)*(p.f-a.f) - (p.size-a.size)*(b.f-a.f)
			if cross <= 0 {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}
	// drop hull points that cannot satisfy the ε-improvement condition
	var out []int
	for i, p := range hull {
		// slope to the next hull point bounds the achievable improvement
		var k float64
		if i+1 < len(hull) {
			k = (hull[i+1].f - p.f) / (hull[i+1].size - p.size)
		} else {
			k = 0
		}
		// potential value at this rectangle: f - K·size where K is the
		// max slope of segments leaving p to larger sizes
		potential := p.f - k*p.size
		bound := fmin - epsilon*math.Abs(fmin)
		if fmin == 0 {
			bound = -epsilon
		}
		if potential <= bound || i == len(hull)-1 {
			out = append(out, p.idx)
		}
	}
	if len(out) == 0 && len(hull) > 0 {
		out = append(out, hull[len(hull)-1].idx)
	}
	return out
}
