// Package dist implements the distance computations used by RPM and the
// baseline classifiers: Euclidean distance with early abandoning, the
// closest-match (best subsequence match) distance that drives the
// pattern-space transformation (paper §2.1, §3.1), dynamic time warping
// with a Sakoe-Chiba band, and the LB_Keogh lower bound used to prune
// 1NN-DTW searches.
package dist

import (
	"math"

	"rpm/internal/ts"
)

// Euclidean returns the Euclidean distance between equal-length a and b.
// It panics on length mismatch.
func Euclidean(a, b []float64) float64 { return math.Sqrt(SqEuclidean(a, b)) }

// SqEuclidean returns the squared Euclidean distance between equal-length
// a and b.
func SqEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dist: length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SqEuclideanEarly accumulates the squared Euclidean distance and abandons
// as soon as the partial sum exceeds limit, returning +Inf in that case
// (paper §5.3 uses early abandoning to speed up subsequence matching).
func SqEuclideanEarly(a, b []float64, limit float64) float64 {
	if len(a) != len(b) {
		panic("dist: length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
		if s > limit {
			return math.Inf(1)
		}
	}
	return s
}

// Match is the result of a closest-match search: the length-normalized
// distance and the start position of the best-matching window.
type Match struct {
	Dist float64
	Pos  int
}

// Matcher performs repeated closest-match searches with one fixed pattern.
// It z-normalizes the pattern once at construction, which matters in the
// transform stage where every pattern is matched against every instance.
type Matcher struct {
	zp []float64
	// zpSq is Σzp², accumulated in index order — the exact distance the
	// kernel's constant-window branch computes, precomputed once so the
	// Query path (bestMatchZStats) can compare it without re-summing.
	zpSq float64
}

// NewMatcher prepares a matcher for the given pattern (which is copied and
// z-normalized).
func NewMatcher(pattern []float64) *Matcher {
	m := &Matcher{zp: ts.ZNorm(pattern)}
	for _, x := range m.zp {
		m.zpSq += x * x
	}
	return m
}

// Len returns the pattern length.
func (m *Matcher) Len() int { return len(m.zp) }

// Best returns the closest match of the pattern in series, with the same
// semantics as ClosestMatch. If the series is shorter than the pattern
// the roles are swapped: the z-normalized query slides over the
// precomputed z-normalized pattern directly, without routing through
// ClosestMatch's general path (which would redo the role swap and its
// length checks per call — a cost the serving layer exposes to arbitrary
// query lengths). Per-window z-normalization makes the swapped search
// invariant to the pattern's global normalization, so sliding over the
// stored zp is equivalent to sliding over the raw pattern.
func (m *Matcher) Best(series []float64) Match {
	if len(m.zp) == 0 || len(series) == 0 {
		return Match{Dist: math.Inf(1), Pos: -1}
	}
	if len(m.zp) > len(series) {
		// Short query: hoisted swap — zp is reused as the haystack.
		return bestMatchZ(ts.ZNorm(series), m.zp)
	}
	return bestMatchZ(m.zp, series)
}

// ClosestMatch slides pattern over series and returns the minimal
// z-normalized, length-normalized Euclidean distance and its position. Each
// window of series is z-normalized before comparison (the pattern is
// z-normalized internally as well), so the match is offset- and
// scale-invariant, as in the shapelet literature. The reported distance is
// sqrt(squaredED / n) with n = len(pattern), which makes distances
// comparable across patterns of different lengths — required both by the
// pattern-space transform and by the similar-pattern removal step, which
// compares candidates of unequal length (paper Alg. 2 line 9).
//
// If the pattern is longer than the series, the roles are swapped: the
// shorter sequence is always slid over the longer one. An empty pattern or
// series yields {+Inf, -1}.
func ClosestMatch(pattern, series []float64) Match {
	if len(pattern) > len(series) {
		pattern, series = series, pattern
	}
	if len(pattern) == 0 || len(series) == 0 {
		return Match{Dist: math.Inf(1), Pos: -1}
	}
	return bestMatchZ(ts.ZNorm(pattern), series)
}

// bestMatchZ is the closest-match core: zp is already z-normalized and no
// longer than series.
func bestMatchZ(zp, series []float64) Match {
	n := len(zp)
	best := math.Inf(1)
	bestPos := -1
	// Running sums for O(1) per-window mean/std.
	var sum, sumsq float64
	for _, x := range series[:n] {
		sum += x
		sumsq += x * x
	}
	fn := float64(n)
	for i := 0; ; i++ {
		mean := sum / fn
		variance := sumsq/fn - mean*mean
		var d float64
		if variance < ts.ZNormThreshold*ts.ZNormThreshold {
			// constant window: z-norm is the zero vector
			d = 0
			for _, x := range zp {
				d += x * x
				if d > best {
					d = math.Inf(1)
					break
				}
			}
		} else {
			inv := 1 / math.Sqrt(variance)
			d = 0
			w := series[i : i+n]
			for j, x := range w {
				diff := (x-mean)*inv - zp[j]
				d += diff * diff
				if d > best {
					d = math.Inf(1)
					break
				}
			}
		}
		if d < best {
			best = d
			bestPos = i
		}
		if i+n >= len(series) {
			break
		}
		out := series[i]
		in := series[i+n]
		sum += in - out
		sumsq += in*in - out*out
	}
	return Match{Dist: math.Sqrt(best / fn), Pos: bestPos}
}

// ClosestMatchRaw is ClosestMatch without per-window z-normalization: the
// pattern and the windows are compared as-is. Used where the caller has
// already normalized the data or wants amplitude sensitivity.
func ClosestMatchRaw(pattern, series []float64) Match {
	n := len(pattern)
	if n == 0 || n > len(series) {
		return Match{Dist: math.Inf(1), Pos: -1}
	}
	best := math.Inf(1)
	bestPos := -1
	for i := 0; i+n <= len(series); i++ {
		d := SqEuclideanEarly(pattern, series[i:i+n], best)
		if d < best {
			best = d
			bestPos = i
		}
	}
	return Match{Dist: math.Sqrt(best / float64(n)), Pos: bestPos}
}

// DTW returns the dynamic-time-warping distance between a and b constrained
// to a Sakoe-Chiba band of half-width window (window < 0 means
// unconstrained). The returned value is the square root of the summed
// squared point costs, matching the convention under which DTW with
// window 0 equals the Euclidean distance for equal-length inputs.
func DTW(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	w := window
	if w < 0 || w > max(n, m) {
		w = max(n, m)
	}
	// band must be at least |n-m| wide for a path to exist
	if d := n - m; d < 0 {
		if -d > w {
			w = -d
		}
	} else if d > w {
		w = d
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			c := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

// DTWEarly is DTW with row-wise early abandoning: if every cell of a row
// exceeds limit² the computation stops and +Inf is returned. limit is
// expressed in the same (root) units as DTW's return value.
func DTWEarly(a, b []float64, window int, limit float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	sqLimit := limit * limit
	w := window
	if w < 0 || w > max(n, m) {
		w = max(n, m)
	}
	if d := n - m; d < 0 {
		if -d > w {
			w = -d
		}
	} else if d > w {
		w = d
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > m {
			hi = m
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			c := d * d
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = c + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > sqLimit {
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	if prev[m] > sqLimit {
		return math.Inf(1)
	}
	return math.Sqrt(prev[m])
}

// Envelope computes the upper and lower DTW envelopes of v for a
// Sakoe-Chiba half-width w: upper[i] = max(v[i-w..i+w]), lower[i] =
// min(v[i-w..i+w]).
func Envelope(v []float64, w int) (upper, lower []float64) {
	n := len(v)
	upper = make([]float64, n)
	lower = make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi := i + w
		if hi > n-1 {
			hi = n - 1
		}
		u, l := v[lo], v[lo]
		for _, x := range v[lo+1 : hi+1] {
			if x > u {
				u = x
			}
			if x < l {
				l = x
			}
		}
		upper[i] = u
		lower[i] = l
	}
	return upper, lower
}

// LBKeogh returns the LB_Keogh lower bound between query q and a candidate
// whose envelopes (upper, lower) were computed with the same band width.
// The bound is returned in root units: LBKeogh(q, U, L) <= DTW(q, c, w).
// Early abandoning against limit (root units) returns +Inf.
func LBKeogh(q, upper, lower []float64, limit float64) float64 {
	if len(q) != len(upper) || len(q) != len(lower) {
		panic("dist: LBKeogh length mismatch")
	}
	sqLimit := limit * limit
	var s float64
	for i, x := range q {
		switch {
		case x > upper[i]:
			d := x - upper[i]
			s += d * d
		case x < lower[i]:
			d := x - lower[i]
			s += d * d
		}
		if s > sqLimit {
			return math.Inf(1)
		}
	}
	return math.Sqrt(s)
}
