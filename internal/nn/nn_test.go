package nn

import (
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

func TestEDOnSeparableData(t *testing.T) {
	s := datagen.MustByName("SynCoffee").Generate(1)
	c := NewED(s.Train)
	preds := c.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.1 {
		t.Errorf("NN-ED error on SynCoffee = %v", e)
	}
}

func TestEDExactMatchWins(t *testing.T) {
	train := ts.Dataset{
		{Label: 1, Values: []float64{0, 0, 0}},
		{Label: 2, Values: []float64{5, 5, 5}},
	}
	c := NewED(train)
	if got := c.Predict([]float64{0.1, 0, 0}); got != 1 {
		t.Errorf("Predict = %d", got)
	}
	if got := c.Predict([]float64{4, 5, 5}); got != 2 {
		t.Errorf("Predict = %d", got)
	}
}

func TestEDPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewED(nil)
}

func TestDTWBeatsEDOnWarpedData(t *testing.T) {
	// Build train/test where the class pattern is time-shifted between
	// train and test; DTW with a window should absorb the shift.
	mk := func(shift int, label int) ts.Instance {
		v := make([]float64, 60)
		base := 10
		if label == 2 {
			base = 35
		}
		for i := 0; i < 8; i++ {
			v[base+shift+i] = 1
		}
		return ts.Instance{Label: label, Values: ts.ZNorm(v)}
	}
	var train, test ts.Dataset
	for s := 0; s < 4; s++ {
		train = append(train, mk(s, 1), mk(s, 2))
	}
	for s := 5; s < 9; s++ {
		test = append(test, mk(s, 1), mk(s, 2))
	}
	dtw := NewDTW(train, 10)
	preds := dtw.PredictBatch(test)
	if e := stats.ErrorRate(preds, test.Labels()); e > 0 {
		t.Errorf("DTW error on warped data = %v", e)
	}
}

func TestDTWWindowAccessor(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(2)
	c := NewDTW(s.Train, -5)
	if c.Window() != 0 {
		t.Errorf("negative window should clamp to 0, got %d", c.Window())
	}
}

func TestBestWindowOnAlignedDataIsSmall(t *testing.T) {
	// SynCoffee patterns are aligned; window 0 (ED) should already be
	// optimal or near-optimal, so the learned window must be small.
	s := datagen.MustByName("SynCoffee").Generate(3)
	w := BestWindow(s.Train, 0.2)
	if w > s.Length()/5 {
		t.Errorf("BestWindow = %d, suspiciously large", w)
	}
}

func TestDTWBestClassifies(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(4)
	c := NewDTWBest(s.Train)
	preds := c.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.25 {
		t.Errorf("NN-DTWB error on SynGunPoint = %v", e)
	}
}

func TestDTWPredictConsistentWithPredictSkip(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(5)
	c := NewDTW(s.Train, 3)
	for _, in := range s.Test[:10] {
		if c.Predict(in.Values) != c.predictSkip(in.Values, -1) {
			t.Fatal("Predict != predictSkip(-1)")
		}
	}
}

func TestBestWindowPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BestWindow(nil, 0.2)
}
