// Command benchtab regenerates the paper's evaluation artifacts — every
// table and figure of §5–§6 — on the synthetic dataset suite and prints
// them to stdout (see EXPERIMENTS.md for the index).
//
// Usage:
//
//	benchtab -exp table1            # Table 1: error of all six methods
//	benchtab -exp table2            # Table 2: runtime of LS/FS/RPM
//	benchtab -exp table3            # Table 3: τ sensitivity aggregate
//	benchtab -exp table4            # Table 4: rotated-test error
//	benchtab -exp fig7|fig8|fig9    # figure data
//	benchtab -exp alarm             # §6.2 medical-alarm case study
//	benchtab -exp all               # everything
//	benchtab -exp table1 -datasets SynCBF,SynCoffee -quick -seed 7
//	benchtab -exp table1 -workers 0 # fan out across every core
//
// -workers controls the harness's concurrency: datasets fan out across
// worker goroutines and every parallel stage inside RPM and the 1NN
// baselines uses the same bound (0 = all cores, the default; 1 = fully
// sequential). Result values are identical for any setting; pass
// -workers 1 when the per-method wall-clock times themselves are the
// experiment (Table 2), since concurrent datasets share the machine.
//
// -report json|text instruments every dataset run and appends the
// per-dataset training reports (stage timings, pipeline counters,
// worker-pool usage) after the experiment output. -debug-addr starts an
// HTTP debug server for the duration of the run serving /debug/pprof/*
// (CPU, heap, goroutine profiles), /debug/vars (expvar, including the
// live instrumentation snapshot under "rpm_obs") and /debug/obs (the
// live snapshot directly; ?format=text for a human view). With
// -debug-addr all datasets share one registry, so per-dataset reports
// show cumulative-to-date values.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"strings"

	"rpm/internal/experiments"
	"rpm/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1,table2,table3,table4,fig7,fig8,fig9,alarm,ablate,all")
	seed := flag.Int64("seed", 1, "random seed for data generation and training")
	quick := flag.Bool("quick", false, "use reduced parameter-search budgets")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: full suite)")
	workers := flag.Int("workers", 0, "worker goroutines for dataset fan-out and RPM/1NN internals (0 = all cores, 1 = sequential)")
	svgDir := flag.String("svg", "", "also render the figures as SVG files into this directory")
	verbose := flag.Bool("v", true, "print per-dataset progress to stderr")
	report := flag.String("report", "", "print per-dataset instrumentation reports after the run: json or text")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	if *report != "" && *report != "json" && *report != "text" {
		fmt.Fprintf(os.Stderr, "benchtab: unknown -report format %q (want json or text)\n", *report)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *report != "" {
		cfg.Instrument = true
	}
	if *debugAddr != "" {
		// One shared live registry for the whole run: the debug endpoints
		// watch training progress while it happens.
		shared := obs.NewRegistry()
		cfg.Instrument = true
		cfg.Obs = shared
		http.Handle("/debug/obs", obs.Handler(shared))
		expvar.Publish("rpm_obs", expvar.Func(func() any { return shared.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "benchtab: debug server on http://%s/debug/pprof/ (also /debug/vars, /debug/obs)\n", *debugAddr)
	}
	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	if err := run(*exp, cfg, *svgDir, *report, progress); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// emitReports prints the per-dataset instrumentation snapshots in the
// requested format ("" = off).
func emitReports(results []experiments.DatasetResult, format string) error {
	switch format {
	case "":
		return nil
	case "json":
		type item struct {
			Dataset string        `json:"dataset"`
			Report  *obs.Snapshot `json:"report"`
		}
		items := make([]item, 0, len(results))
		for _, r := range results {
			items = append(items, item{Dataset: r.Name, Report: r.Report})
		}
		b, err := json.MarshalIndent(items, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	case "text":
		for _, r := range results {
			fmt.Printf("== %s ==\n%s", r.Name, r.Report.Text())
		}
		return nil
	default:
		return fmt.Errorf("unknown report format %q (want json or text)", format)
	}
}

func run(exp string, cfg experiments.Config, svgDir, reportFmt string, progress func(string)) error {
	emitSVG := func(write func() ([]string, error)) error {
		if svgDir == "" {
			return nil
		}
		paths, err := write()
		if err != nil {
			return err
		}
		for _, p := range paths {
			progress("wrote " + p)
		}
		return nil
	}
	needSuite := map[string]bool{"table1": true, "table2": true, "fig7": true, "fig8": true, "all": true, "main": true}
	var suite []experiments.DatasetResult
	var err error
	if needSuite[exp] {
		suite, err = experiments.RunSuite(cfg, progress)
		if err != nil {
			return err
		}
		defer func() {
			// Reports print after the experiment's own artifacts.
			if err := emitReports(suite, reportFmt); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: reports:", err)
			}
		}()
	}
	switch exp {
	case "main":
		// the four suite-driven artifacts from a single run
		fmt.Println(experiments.FormatTable1(suite, experiments.AllMethods()))
		fmt.Println(experiments.FormatTable2(suite))
		fmt.Println(experiments.FormatFig7(suite, experiments.AllMethods()))
		fmt.Println(experiments.FormatFig8(suite))
		if err := emitSVG(func() ([]string, error) {
			p1, err := experiments.WriteFig7SVG(svgDir, suite, experiments.AllMethods())
			if err != nil {
				return p1, err
			}
			p2, err := experiments.WriteFig8SVG(svgDir, suite)
			return append(p1, p2...), err
		}); err != nil {
			return err
		}
	case "table1":
		fmt.Println(experiments.FormatTable1(suite, experiments.AllMethods()))
	case "table2":
		fmt.Println(experiments.FormatTable2(suite))
	case "fig7":
		fmt.Println(experiments.FormatFig7(suite, experiments.AllMethods()))
		if err := emitSVG(func() ([]string, error) {
			return experiments.WriteFig7SVG(svgDir, suite, experiments.AllMethods())
		}); err != nil {
			return err
		}
	case "fig8":
		fmt.Println(experiments.FormatFig8(suite))
		if err := emitSVG(func() ([]string, error) {
			return experiments.WriteFig8SVG(svgDir, suite)
		}); err != nil {
			return err
		}
	case "table3", "fig9":
		sweep, err := experiments.RunTauSweep(cfg, progress)
		if err != nil {
			return err
		}
		if exp == "table3" {
			fmt.Println(experiments.FormatTable3(sweep))
		} else {
			fmt.Println(experiments.FormatFig9(sweep))
			if err := emitSVG(func() ([]string, error) {
				return experiments.WriteFig9SVG(svgDir, sweep)
			}); err != nil {
				return err
			}
		}
	case "table4":
		rot, err := experiments.RunTable4(cfg, progress)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable4(rot))
	case "alarm":
		res, err := experiments.RunAlarmCase(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAlarmCase(res, experiments.AllMethods()))
	case "ablate":
		abl, err := experiments.RunAblation(cfg, progress)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAblation(abl))
	case "all":
		fmt.Println(experiments.FormatTable1(suite, experiments.AllMethods()))
		fmt.Println(experiments.FormatTable2(suite))
		fmt.Println(experiments.FormatFig7(suite, experiments.AllMethods()))
		fmt.Println(experiments.FormatFig8(suite))
		sweep, err := experiments.RunTauSweep(cfg, progress)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(sweep))
		fmt.Println(experiments.FormatFig9(sweep))
		rot, err := experiments.RunTable4(cfg, progress)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable4(rot))
		alarm, err := experiments.RunAlarmCase(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAlarmCase(alarm, experiments.AllMethods()))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
