package stream_test

// The streaming-equivalence property battery (ISSUE 8 satellite 1):
// sample-by-sample (and arbitrary-chunk) feeding must be unobservable —
// bit-identical per-pattern distances AND argmin positions versus the
// batch dist.Matcher.Best sweep, across smooth, constant-window,
// NaN-bearing, and short-tail regimes; and against a real trained
// classifier, the streaming raw label at every prefix must equal batch
// Predict over the assembled prefix, at Workers 1 and 8 alike.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpm"
	"rpm/internal/dist"
	"rpm/internal/stream"
)

// argminPred mirrors the unit-test predictor: index of the smallest
// feature under strict <.
type argminPred struct{}

func (argminPred) PredictVector(feat []float64) int {
	best, arg := math.Inf(1), 0
	for k, f := range feat {
		if f < best {
			best, arg = f, k
		}
	}
	return arg
}

// genSeries reproduces the hostile-regime generator of the dist-level
// streaming tests: random walks, jumps, constant stretches (the inv==0
// sentinel), exact repeats (tie fodder), and — when nan is set — NaN
// runs.
func genSeries(rng *rand.Rand, n int, nan bool) []float64 {
	v := make([]float64, n)
	x := rng.NormFloat64()
	hold := 0
	for i := range v {
		if hold > 0 {
			hold--
			v[i] = x
			continue
		}
		switch rng.Intn(8) {
		case 0:
			hold = 1 + rng.Intn(8)
			v[i] = x
		case 1:
			x = rng.NormFloat64() * 10
			v[i] = x
		case 2:
			if i > 0 {
				v[i] = v[rng.Intn(i)]
				x = v[i]
			} else {
				v[i] = x
			}
		case 3:
			if nan && rng.Intn(4) == 0 {
				v[i] = math.NaN()
			} else {
				x += rng.NormFloat64()
				v[i] = x
			}
		default:
			x += rng.NormFloat64()
			v[i] = x
		}
	}
	return v
}

// chunked splits series into random chunks (possibly empty appends).
func chunked(rng *rand.Rand, series []float64) [][]float64 {
	var out [][]float64
	for i := 0; i < len(series); {
		n := rng.Intn(24)
		if n == 0 {
			out = append(out, nil) // empty append must be a no-op
			n = 1 + rng.Intn(8)
		}
		if i+n > len(series) {
			n = len(series) - i
		}
		out = append(out, series[i:i+n])
		i += n
	}
	return out
}

// TestDetectorBitIdenticalToBatch is the core equivalence property:
// for random multi-length pattern sets and hostile series fed in random
// chunks, every pattern's streaming Match is bit-identical (Dist bits
// AND Pos) to dist.Matcher.Best over the assembled series, and the
// streaming raw label equals the predictor applied to the batch
// feature vector. Patterns shorter than the stream-so-far report the
// streaming short-tail contract {+Inf, -1} via warm-up gating.
func TestDetectorBitIdenticalToBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func() bool {
		k := 1 + rng.Intn(5)
		patterns := make([][]float64, k)
		maxLen := 0
		for i := range patterns {
			n := 2 + rng.Intn(20)
			patterns[i] = genSeries(rng, n, false)
			if n > maxLen {
				maxLen = n
			}
		}
		series := genSeries(rng, maxLen+rng.Intn(150), true)
		m, err := stream.NewModel(patterns, argminPred{})
		if err != nil {
			t.Fatal(err)
		}
		d := m.NewDetector(stream.Config{})
		for _, c := range chunked(rng, series) {
			d.Append(c)
		}
		got := make([]dist.Match, k)
		d.Matches(got)
		batch := make([]float64, k)
		for i, p := range patterns {
			want := dist.NewMatcher(p).Best(series)
			batch[i] = want.Dist
			if got[i].Pos != want.Pos {
				t.Logf("pattern %d: pos %d != batch %d", i, got[i].Pos, want.Pos)
				return false
			}
			if math.Float64bits(got[i].Dist) != math.Float64bits(want.Dist) {
				t.Logf("pattern %d: dist bits %x != %x", i,
					math.Float64bits(got[i].Dist), math.Float64bits(want.Dist))
				return false
			}
		}
		if raw, ok := d.Raw(); ok {
			if want := (argminPred{}).PredictVector(batch); raw != want {
				t.Logf("raw label %d != batch argmin %d", raw, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// trainFixture trains one cheap fixed-parameter classifier on the
// synthetic CBF generator — the same recipe the serve tests use.
func trainFixture(t *testing.T, workers int) (*rpm.Classifier, rpm.Dataset) {
	t.Helper()
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 40, PAA: 6, Alphabet: 4}
	opts.Workers = workers
	split := rpm.GenerateDataset("SynCBF", 1)
	clf, err := rpm.Train(split.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if clf.NumPatterns() == 0 {
		t.Fatal("fixture degenerated to a pattern-free model")
	}
	return clf, split.Test
}

// streamModelOf builds the streaming model over a classifier's
// patterns, with the classifier itself as the predictor.
func streamModelOf(t *testing.T, clf *rpm.Classifier) *stream.Model {
	t.Helper()
	if err := clf.ValidateStreamingFeatures(clf.NumPatterns()); err != nil {
		t.Fatal(err)
	}
	pats := clf.Patterns()
	raw := make([][]float64, len(pats))
	for i, p := range pats {
		raw[i] = p.Values
	}
	m, err := stream.NewModel(raw, clf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStreamEqualsBatchPredictPrefixes is the end-to-end equivalence
// proof against the real predict path: feeding a test series one
// sample at a time, the streaming raw label after sample t equals
// batch Predict over the assembled prefix series[:t+1], for EVERY
// prefix past warm-up — at Workers 1 and at Workers 8 (the parallel
// transform kernel must be as unobservable as the chunking).
func TestStreamEqualsBatchPredictPrefixes(t *testing.T) {
	for _, workers := range []int{1, 8} {
		clf, test := trainFixture(t, workers)
		clf.SetWorkers(workers)
		m := streamModelOf(t, clf)
		for s := 0; s < 3; s++ {
			series := test[s].Values
			d := m.NewDetector(stream.Config{})
			for i, x := range series {
				d.Append([]float64{x})
				raw, ok := d.Raw()
				if !ok {
					if i+1 >= m.MaxPatternLen() {
						t.Fatalf("workers=%d series=%d: not warm at prefix %d (maxLen %d)",
							workers, s, i+1, m.MaxPatternLen())
					}
					continue
				}
				if want := clf.Predict(series[:i+1]); raw != want {
					t.Fatalf("workers=%d series=%d prefix=%d: streaming label %d != batch Predict %d",
						workers, s, i+1, raw, want)
				}
			}
		}
	}
}

// TestStreamFeaturesEqualTransform pins the feature-vector identity
// underneath the label identity: past warm-up the streaming feature
// vector is bit-identical to Classifier.Transform of the assembled
// prefix, so PredictVector(streamFeat) and Predict(prefix) are the
// same computation, not merely the same answer.
func TestStreamFeaturesEqualTransform(t *testing.T) {
	clf, test := trainFixture(t, 1)
	m := streamModelOf(t, clf)
	series := test[0].Values
	d := m.NewDetector(stream.Config{})
	feat := make([]float64, m.NumPatterns())
	for i, x := range series {
		d.Append([]float64{x})
		if !d.Warm() {
			continue
		}
		d.Features(feat)
		batch := clf.Transform(series[:i+1])
		for k := range feat {
			if math.Float64bits(feat[k]) != math.Float64bits(batch[k]) {
				t.Fatalf("prefix %d feature %d: streaming %v != Transform %v",
					i+1, k, feat[k], batch[k])
			}
		}
	}
}
