#!/usr/bin/env bash
# Load smoke: train a small model end to end, serve it with rpmserved,
# and drive it with rpmload for 2 seconds of closed-loop traffic. The
# run fails (rpmload -strict) when nothing completed or any request came
# back as an error envelope or transport error — the whole predict path
# (HTTP decode → batcher → pooled transform kernel → SVM → encode) has
# to hold up under sustained concurrent load, not just unit tests.
#
# Usage: scripts/load_smoke.sh [duration] [concurrency]
set -euo pipefail

duration="${1:-2s}"
concurrency="${2:-4}"
port="${LOAD_SMOKE_PORT:-18080}"

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
served_pid=""
cleanup() {
    [ -n "$served_pid" ] && kill "$served_pid" 2>/dev/null || true
    [ -n "$served_pid" ] && wait "$served_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/ucrgen ./cmd/rpmcli ./cmd/rpmserved ./cmd/rpmload

echo "== train"
"$work/bin/ucrgen" -dir "$work/data" -name SynCBF -seed 1
mkdir -p "$work/models"
"$work/bin/rpmcli" \
    -train "$work/data/SynCBF_TRAIN" -test "$work/data/SynCBF_TEST" \
    -mode fixed -window 40 -paa 6 -alpha 4 \
    -save "$work/models/cbf.json"

echo "== serve"
"$work/bin/rpmserved" -addr "127.0.0.1:$port" -models "$work/models" &
served_pid=$!

echo "== load ($duration, $concurrency workers)"
"$work/bin/rpmload" \
    -addr "http://127.0.0.1:$port" -model cbf \
    -duration "$duration" -concurrency "$concurrency" \
    -wait 10s -strict

echo "load smoke OK"
