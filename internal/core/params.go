package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"rpm/internal/direct"
	"rpm/internal/parallel"
	"rpm/internal/sax"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

// splitPair is one random stratified train/validate split (Algorithm 3
// line 7).
type splitPair struct {
	train    ts.Dataset
	validate ts.Dataset
}

// evaluator scores SAX parameter vectors by the per-class F-measure
// obtained on repeated train/validate splits. Evaluations are cached by
// the (integer) parameter triple, so the per-class DIRECT searches share
// work, mirroring the paper's observation that one full evaluation yields
// F-measures for all classes at once.
type evaluator struct {
	opts    Options
	classes []int
	splits  []splitPair
	// mu guards cache and evals: grid mode evaluates parameter vectors
	// from several goroutines at once.
	mu    sync.Mutex
	cache map[sax.Params]map[int]float64
	evals int
}

func newEvaluator(train ts.Dataset, opts Options) *evaluator {
	rng := rand.New(rand.NewSource(opts.Seed))
	e := &evaluator{
		opts:    opts,
		classes: train.Classes(),
		cache:   map[sax.Params]map[int]float64{},
	}
	for s := 0; s < opts.Splits; s++ {
		tr, va := stats.StratifiedSplit(train, opts.TrainFrac, rng)
		if len(tr) == 0 || len(va) == 0 {
			continue
		}
		e.splits = append(e.splits, splitPair{train: tr, validate: va})
	}
	return e
}

// fmeasures returns the mean per-class F-measure of the parameter vector
// over the splits. A split where no candidate survives contributes 0 for
// every class (the paper's pruning: such a combination cannot win).
//
// The splits are scored concurrently — each runs an independent full
// mine-and-classify pipeline — and the per-split scores are folded in
// split order, so the means are byte-identical to the sequential path.
// Safe for concurrent callers (grid mode fans out over parameter
// vectors); the cache is shared under e.mu.
//
// Cancellation: when ctx is done, fmeasures stops scheduling splits,
// drains, and returns (nil, ctx.Err()); a partially evaluated vector is
// never cached, so a later retry re-evaluates it from scratch.
func (e *evaluator) fmeasures(ctx context.Context, p sax.Params) (map[int]float64, error) {
	e.mu.Lock()
	if f, ok := e.cache[p]; ok {
		e.mu.Unlock()
		e.opts.Obs.Counter(CtrSearchCacheHits).Inc()
		return f, nil
	}
	e.mu.Unlock()
	e.opts.Obs.Counter(CtrSearchCacheMiss).Inc()
	// Inner split trainings run the full pipeline; strip the
	// instrumentation handles so the report reflects the final training
	// only (the search cost is on SpanParamSearch and the search.*
	// counters/pools).
	fixed := e.opts.withoutObs()
	fixed.Mode = ParamFixed
	perSplit, err := parallel.MapCtxPool(ctx, len(e.splits), e.opts.Workers, e.opts.Obs.Pool(PoolSearchSplits), func(s int) []stats.ClassF1 {
		sp := e.splits[s]
		perClass := map[int]sax.Params{}
		for _, c := range e.classes {
			perClass[c] = p
		}
		clf, err := trainWithParams(ctx, sp.train, perClass, fixed)
		if err != nil || len(clf.Patterns) == 0 {
			return nil // canceled or no candidate: contributes 0 to every class
		}
		preds, err := clf.PredictBatchContext(ctx, sp.validate)
		if err != nil {
			return nil // canceled mid-validate; MapCtxPool reports it
		}
		return stats.FMeasures(preds, sp.validate.Labels())
	})
	if err != nil {
		return nil, err
	}
	acc := map[int]float64{}
	for _, c := range e.classes {
		acc[c] = 0
	}
	for _, ms := range perSplit {
		for _, m := range ms {
			if _, ok := acc[m.Class]; ok {
				acc[m.Class] += m.F1
			}
		}
	}
	n := float64(len(e.splits))
	if n > 0 {
		for c := range acc {
			acc[c] /= n
		}
	}
	e.mu.Lock()
	if f, ok := e.cache[p]; ok { // lost a duplicate-evaluation race
		e.mu.Unlock()
		return f, nil
	}
	e.evals++
	e.cache[p] = acc
	e.mu.Unlock()
	e.opts.Obs.Counter(CtrSearchEvals).Inc()
	return acc, nil
}

// paramBounds returns the search box for series of length m: window in
// [lo, hi], PAA size in [2,12], alphabet in [2,12] (§4's SAXParams vector).
func paramBounds(m int) (wLo, wHi, paaLo, paaHi, aLo, aHi int) {
	wLo = 10
	if m < 40 {
		wLo = 5
	}
	if wLo > m {
		wLo = m
	}
	wHi = 2 * m / 3
	if wHi < wLo+1 {
		wHi = wLo + 1
	}
	if wHi > m {
		wHi = m
	}
	return wLo, wHi, 2, 12, 2, 12
}

// clampParams rounds a continuous DIRECT sample to a valid parameter
// triple.
func clampParams(x []float64, m int) sax.Params {
	wLo, wHi, paaLo, paaHi, aLo, aHi := paramBounds(m)
	w := int(math.Round(x[0]))
	paa := int(math.Round(x[1]))
	a := int(math.Round(x[2]))
	w = clampInt(w, wLo, wHi)
	paa = clampInt(paa, paaLo, paaHi)
	a = clampInt(a, aLo, aHi)
	if paa > w {
		paa = w
	}
	return sax.Params{Window: w, PAA: paa, Alphabet: a}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// selectParams learns the best SAX parameters per class with either the
// exhaustive grid (Algorithm 3) or per-class DIRECT searches (§4.2).
//
// Cancellation: both modes observe ctx at parameter-evaluation
// granularity. Grid mode stops scheduling grid points once ctx is done;
// DIRECT's objective short-circuits to the worst value for every sample
// after cancellation (the optimizer's own evaluation sequence is serial
// and cheap once the objective no longer mines), so selectParams returns
// ctx.Err() within roughly one full evaluation of the cancel.
func selectParams(ctx context.Context, train ts.Dataset, opts Options) (map[int]sax.Params, error) {
	e := newEvaluator(train, opts)
	m := train.MinLen()
	bestF := map[int]float64{}
	bestP := map[int]sax.Params{}
	for _, c := range e.classes {
		bestF[c] = -1
		bestP[c] = HeuristicParams(m)
	}
	consider := func(p sax.Params, fs map[int]float64) {
		for _, c := range e.classes {
			if f := fs[c]; f > bestF[c] {
				bestF[c] = f
				bestP[c] = p
			}
		}
	}
	switch opts.Mode {
	case ParamGrid:
		// The grid points are independent full evaluations (~60 of
		// them): score them concurrently, then apply consider in grid
		// order so ties resolve exactly as in the sequential loop.
		grid := paramGrid(m, opts.MaxEvals)
		if opts.Sample.active() {
			// Seeded grid thinning (DESIGN.md §15): a hash-ranked
			// subsequence of the exhaustive grid, so the consider()
			// tie-break below sees the surviving points in their
			// original order.
			kept, dropped := sampleGrid(grid, resolveSampleSeed(opts), opts.Sample.Rate)
			grid = kept
			opts.Obs.Counter(CtrSampleGridKept).Add(int64(len(kept)))
			opts.Obs.Counter(CtrSampleGridDropped).Add(int64(dropped))
		}
		gridSpan := opts.span.Start(SpanSearchGrid)
		scores, err := parallel.MapCtxPool(ctx, len(grid), opts.Workers, opts.Obs.Pool(PoolSearchGrid), func(i int) map[int]float64 {
			fs, _ := e.fmeasures(ctx, grid[i]) // nil on cancel; MapCtx reports it
			return fs
		})
		gridSpan.End()
		if err != nil {
			return nil, err
		}
		for i, p := range grid {
			consider(p, scores[i])
		}
	default: // ParamDIRECT
		wLo, wHi, paaLo, paaHi, aLo, aHi := paramBounds(m)
		lo := []float64{float64(wLo), float64(paaLo), float64(aLo)}
		hi := []float64{float64(wHi), float64(paaHi), float64(aHi)}
		maxEvals := opts.MaxEvals
		if opts.Sample.active() {
			// DIRECT's analogue of grid thinning: scale the per-class
			// evaluation budget by the sampling rate (floor 8 so the
			// optimizer can still subdivide the box).
			maxEvals = sampledMaxEvals(maxEvals, opts.Sample.Rate)
		}
		for _, c := range e.classes {
			class := c
			classSpan := opts.span.Start(fmt.Sprintf("%s%d", SpanDirectClass, class))
			direct.Minimize(func(x []float64) float64 {
				if ctx.Err() != nil {
					return 1 // worst objective; evaluation is now O(1)
				}
				p := clampParams(x, m)
				fs, err := e.fmeasures(ctx, p)
				if err != nil {
					return 1
				}
				consider(p, fs)
				return 1 - fs[class]
			}, lo, hi, direct.Options{MaxEvals: maxEvals})
			classSpan.End()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return bestP, nil
}

// paramGrid builds the exhaustive grid, thinned evenly if it exceeds the
// evaluation budget.
func paramGrid(m, maxEvals int) []sax.Params {
	wLo, wHi, _, _, _, _ := paramBounds(m)
	var windows []int
	for _, f := range []float64{0.1, 0.15, 0.2, 0.3, 0.4, 0.55} {
		w := clampInt(int(f*float64(m)), wLo, wHi)
		windows = appendUnique(windows, w)
	}
	var grid []sax.Params
	for _, w := range windows {
		for _, paa := range []int{3, 5, 7, 9} {
			if paa > w {
				continue
			}
			for _, a := range []int{3, 4, 6, 8} {
				grid = append(grid, sax.Params{Window: w, PAA: paa, Alphabet: a})
			}
		}
	}
	if maxEvals > 0 && len(grid) > maxEvals {
		step := float64(len(grid)) / float64(maxEvals)
		var thin []sax.Params
		for i := 0.0; int(i) < len(grid) && len(thin) < maxEvals; i += step {
			thin = append(thin, grid[int(i)])
		}
		grid = thin
	}
	return grid
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
