package core

import (
	"context"
	"errors"
	"fmt"

	"rpm/internal/parallel"
	"rpm/internal/sax"
	"rpm/internal/svm"
	"rpm/internal/ts"
)

// Train learns an RPM classifier from the training set. The training data
// should be per-instance z-normalized (the UCR convention); the SAX
// transform z-normalizes windows regardless.
func Train(train ts.Dataset, opts Options) (*Classifier, error) {
	return TrainContext(context.Background(), train, opts)
}

// TrainContext is Train with cooperative cancellation: when ctx is
// canceled (or its deadline passes) mid-search, training stops scheduling
// new work — within one parameter evaluation for the grid and DIRECT
// searches — drains its workers, and returns ctx.Err(). With a ctx that
// is never canceled the trained classifier is byte-identical to Train's
// for any Options.Workers value.
func TrainContext(ctx context.Context, train ts.Dataset, opts Options) (*Classifier, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(train) == 0 {
		return nil, errors.New("core: empty training set")
	}
	if opts.Gamma <= 0 || opts.Gamma > 1 {
		return nil, fmt.Errorf("core: gamma %v outside (0,1]", opts.Gamma)
	}
	if opts.Splits <= 0 {
		opts.Splits = 5
	}
	if opts.TrainFrac <= 0 || opts.TrainFrac >= 1 {
		opts.TrainFrac = 0.7
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 60
	}
	// Instrumentation (no-ops when opts.Obs is nil): the whole run lives
	// under SpanTrain; recording never feeds back into the computation,
	// so the trained model is byte-identical with or without a registry.
	opts.span = opts.Obs.StartSpan(SpanTrain)
	defer opts.span.End()
	opts.Obs.Gauge(GaugeWorkers).Set(int64(parallel.Workers(opts.Workers)))
	classes := train.Classes()
	perClass, err := chooseParams(ctx, train, classes, opts)
	if err != nil {
		return nil, err
	}
	c, err := trainWithParams(ctx, train, perClass, opts)
	if err != nil {
		return nil, err
	}
	if len(c.Patterns) == 0 && opts.Mode != ParamFixed {
		// The searched parameters can fail to generalize from the
		// evaluation splits to the full training set (tiny datasets).
		// Retry once with the heuristic defaults before accepting the
		// 1NN fallback.
		retry := map[int]sax.Params{}
		for _, cl := range classes {
			retry[cl] = HeuristicParams(train.MinLen())
		}
		c2, err := trainWithParams(ctx, train, retry, opts)
		if err != nil {
			return nil, err
		}
		if len(c2.Patterns) > 0 {
			return c2, nil
		}
	}
	return c, nil
}

// chooseParams resolves the per-class SAX parameters for the
// configured Mode: the fixed triple (or the heuristic default) for
// ParamFixed, otherwise the grid/DIRECT search of §4 under its own
// SpanParamSearch span. Shared by TrainContext and TrainBaggedContext —
// a bagged ensemble searches once and re-mines per member.
func chooseParams(ctx context.Context, train ts.Dataset, classes []int, opts Options) (map[int]sax.Params, error) {
	switch opts.Mode {
	case ParamFixed:
		p := opts.Params
		if p == (sax.Params{}) {
			p = HeuristicParams(train.MinLen())
		}
		perClass := map[int]sax.Params{}
		for _, c := range classes {
			perClass[c] = p
		}
		return perClass, nil
	case ParamGrid, ParamDIRECT:
		searchOpts := opts
		searchOpts.span = opts.span.Start(SpanParamSearch)
		perClass, err := selectParams(ctx, train, searchOpts)
		searchOpts.span.End()
		if err != nil {
			return nil, err
		}
		return perClass, nil
	default:
		return nil, fmt.Errorf("core: unknown parameter mode %v", opts.Mode)
	}
}

// HeuristicParams returns sensible fixed SAX parameters for series of
// length m: a quarter-length window, 6 PAA segments and a 4-letter
// alphabet, each clamped to validity.
func HeuristicParams(m int) sax.Params {
	w := m / 4
	if w < 8 {
		w = 8
	}
	if w > m {
		w = m
	}
	paa := 6
	if paa > w {
		paa = w
	}
	return sax.Params{Window: w, PAA: paa, Alphabet: 4}
}

// trainWithParams runs the candidate/refine/select pipeline with known
// per-class SAX parameters and fits the SVM (§4.3: candidates from every
// class's own parameter set are pooled, then pruned together). Candidate
// generation fans out across classes on Options.Workers goroutines; the
// per-class slices are concatenated in class order, so the pooled
// candidate list is identical to the sequential path. The only possible
// error is ctx.Err(): cancellation is checked between pipeline stages
// (and inside the per-class fan-out), so a canceled context aborts
// between stages rather than mid-computation.
func trainWithParams(ctx context.Context, train ts.Dataset, perClass map[int]sax.Params, opts Options) (*Classifier, error) {
	byClass := train.ByClass()
	classes := train.Classes()
	for _, class := range classes {
		if _, ok := perClass[class]; !ok {
			perClass[class] = HeuristicParams(train.MinLen())
		}
	}
	// Candidate generation (Steps 1+2): the candidates span measures the
	// fan-out's wall; the two aggregate stage spans accumulate each
	// class's SAX vs. grammar/cluster time from inside findMotifGroups.
	candSpan := opts.span.Start(SpanCandidates)
	opts.spanStep1 = candSpan.Child(SpanStep1)
	opts.spanStep2 = candSpan.Child(SpanStep2)
	perClassCands, err := parallel.MapCtxPool(ctx, len(classes), opts.Workers, opts.Obs.Pool(PoolCandidates), func(i int) []candidate {
		class := classes[i]
		return findCandidates(byClass[class], class, perClass[class], opts)
	})
	candSpan.End()
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		total := opts.Obs.Counter(CtrCandidates)
		for i, cc := range perClassCands {
			total.Add(int64(len(cc)))
			opts.Obs.Counter(fmt.Sprintf("%s%d", CtrCandidatesClass, classes[i])).Add(int64(len(cc)))
		}
	}
	var cands []candidate
	for _, cc := range perClassCands {
		cands = append(cands, cc...)
	}
	step3 := opts.span.Start(SpanStep3)
	patterns := findDistinct(train, cands, opts)
	step3.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := &Classifier{
		Patterns:       patterns,
		PerClassParams: perClass,
		opts:           opts,
		fallback:       train,
	}
	if len(patterns) == 0 {
		return c, nil
	}
	fit := opts.span.Start(SpanFit)
	defer fit.End()
	c.ensureTransformer()
	X := c.tf.applyAllPool(train, opts.Workers, opts.Obs.Pool(PoolTransform))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.VectorClassifier != nil {
		c.custom = opts.VectorClassifier(X, train.Labels())
		return c, nil
	}
	cfg := opts.SVM
	if cfg.Seed == 0 {
		cfg.Seed = opts.Seed
	}
	c.model = svm.Train(X, train.Labels(), cfg)
	return c, nil
}
