package dist

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests: randomized (fixed-seed, so reproducible) checks of the
// metric identities the pipeline's correctness rests on — symmetry,
// non-negativity, the z-normalization invariances, and the two pruning
// bounds (early abandoning, LB_Keogh ≤ DTW).

func randSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestPropEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 200; it++ {
		n := 2 + rng.Intn(64)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		c := randSeries(rng, n)
		dab := Euclidean(a, b)
		if dab < 0 || math.IsNaN(dab) {
			t.Fatalf("it %d: d(a,b) = %v", it, dab)
		}
		if dba := Euclidean(b, a); dab != dba {
			t.Fatalf("it %d: asymmetric: %v vs %v", it, dab, dba)
		}
		if daa := Euclidean(a, a); daa != 0 {
			t.Fatalf("it %d: d(a,a) = %v", it, daa)
		}
		// triangle inequality
		if dac, dcb := Euclidean(a, c), Euclidean(c, b); dab > dac+dcb+1e-9 {
			t.Fatalf("it %d: triangle violated: %v > %v + %v", it, dab, dac, dcb)
		}
	}
}

// TestPropSqEuclideanEarly: the early-abandoning variant must agree with
// the exact distance below the limit and report +Inf (never a wrong
// finite value) at or above it.
func TestPropSqEuclideanEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 300; it++ {
		n := 1 + rng.Intn(48)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		exact := SqEuclidean(a, b)
		if got := SqEuclideanEarly(a, b, math.Inf(1)); got != exact {
			t.Fatalf("it %d: unlimited early %v != exact %v", it, got, exact)
		}
		limit := exact * rng.Float64() * 2
		got := SqEuclideanEarly(a, b, limit)
		if exact < limit && got != exact {
			t.Fatalf("it %d: under limit, early %v != exact %v", it, got, exact)
		}
		if math.IsInf(got, 1) && exact < limit {
			t.Fatalf("it %d: abandoned below the limit (exact %v, limit %v)", it, exact, limit)
		}
		if !math.IsInf(got, 1) && got != exact {
			t.Fatalf("it %d: finite but wrong: %v vs %v", it, got, exact)
		}
	}
}

// TestPropClosestMatchAffineInvariance: ClosestMatch z-normalizes both
// the pattern and every window, so scaling and shifting the pattern (or
// the series) must not move the match.
func TestPropClosestMatchAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for it := 0; it < 150; it++ {
		np := 4 + rng.Intn(16)
		ns := np + rng.Intn(64)
		p := randSeries(rng, np)
		s := randSeries(rng, ns)
		base := ClosestMatch(p, s)
		if base.Dist < 0 || math.IsNaN(base.Dist) {
			t.Fatalf("it %d: dist = %v", it, base.Dist)
		}
		scale := 0.5 + 4*rng.Float64()
		shift := 10 * rng.NormFloat64()
		tp := make([]float64, np)
		for i := range tp {
			tp[i] = scale*p[i] + shift
		}
		moved := ClosestMatch(tp, s)
		if moved.Pos != base.Pos || math.Abs(moved.Dist-base.Dist) > 1e-9 {
			t.Fatalf("it %d: affine pattern moved the match: %+v vs %+v", it, moved, base)
		}
	}
}

// TestPropMatcherAgreesWithClosestMatch: the reusable Matcher is an
// optimization, never a semantic change.
func TestPropMatcherAgreesWithClosestMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for it := 0; it < 150; it++ {
		np := 3 + rng.Intn(12)
		ns := np + rng.Intn(40)
		p := randSeries(rng, np)
		s := randSeries(rng, ns)
		want := ClosestMatch(p, s)
		got := NewMatcher(p).Best(s)
		if got != want {
			t.Fatalf("it %d: Matcher %+v != ClosestMatch %+v", it, got, want)
		}
	}
}

func TestPropDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for it := 0; it < 100; it++ {
		n := 4 + rng.Intn(40)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		// window 0 degenerates to Euclidean for equal lengths
		if d0, ed := DTW(a, b, 0), Euclidean(a, b); math.Abs(d0-ed) > 1e-9 {
			t.Fatalf("it %d: DTW(w=0) %v != ED %v", it, d0, ed)
		}
		if daa := DTW(a, a, rng.Intn(n)); daa != 0 {
			t.Fatalf("it %d: DTW(a,a) = %v", it, daa)
		}
		// symmetry and monotone non-increasing in the band width
		prev := math.Inf(1)
		for _, w := range []int{0, 1, n / 4, n / 2, n} {
			d := DTW(a, b, w)
			if ds := DTW(b, a, w); math.Abs(d-ds) > 1e-9 {
				t.Fatalf("it %d w=%d: asymmetric %v vs %v", it, w, d, ds)
			}
			if d > prev+1e-9 {
				t.Fatalf("it %d: widening the band increased DTW: %v > %v", it, d, prev)
			}
			prev = d
			if e := DTWEarly(a, b, w, math.Inf(1)); math.Abs(e-d) > 1e-9 {
				t.Fatalf("it %d w=%d: DTWEarly(+Inf) %v != DTW %v", it, w, e, d)
			}
		}
	}
}

// TestPropLBKeoghLowerBoundsDTW is the pruning-soundness property the
// NN-DTWB baseline depends on: if LB_Keogh overestimated, 1NN could
// discard the true nearest neighbor.
func TestPropLBKeoghLowerBoundsDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for it := 0; it < 150; it++ {
		n := 8 + rng.Intn(48)
		c := randSeries(rng, n)
		q := randSeries(rng, n)
		w := rng.Intn(n / 2)
		upper, lower := Envelope(c, w)
		lb := LBKeogh(q, upper, lower, math.Inf(1))
		d := DTW(c, q, w)
		if lb > d+1e-9 {
			t.Fatalf("it %d (n=%d w=%d): LB_Keogh %v exceeds DTW %v", it, n, w, lb, d)
		}
	}
}

// TestPropEnvelope: the envelope must bracket the series, with width
// monotone in w.
func TestPropEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for it := 0; it < 100; it++ {
		n := 4 + rng.Intn(40)
		v := randSeries(rng, n)
		w := rng.Intn(n)
		upper, lower := Envelope(v, w)
		for i := range v {
			if lower[i] > v[i] || v[i] > upper[i] {
				t.Fatalf("it %d: envelope does not bracket at %d: [%v, %v] vs %v", it, i, lower[i], upper[i], v[i])
			}
		}
		u2, l2 := Envelope(v, w+1)
		for i := range v {
			if u2[i] < upper[i]-1e-12 || l2[i] > lower[i]+1e-12 {
				t.Fatalf("it %d: envelope narrowed as w grew at %d", it, i)
			}
		}
	}
}

// TestPropClosestMatchSelf: a pattern cut out of the series matches
// itself exactly (z-normalized distance 0 at its own offset).
func TestPropClosestMatchSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for it := 0; it < 100; it++ {
		n := 6 + rng.Intn(30)
		s := randSeries(rng, n)
		np := 3 + rng.Intn(n-3)
		p := append([]float64(nil), s[:np]...)
		m := ClosestMatch(p, s)
		// the pattern literally occurs at offset 0: its z-normalized
		// distance there is 0, so the best is 0 too
		if m.Dist > 1e-9 {
			t.Fatalf("it %d: self-match dist = %v at pos %d", it, m.Dist, m.Pos)
		}
	}
}
