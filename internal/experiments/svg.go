package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rpm/internal/svgplot"
)

// WriteFig7SVG renders the Figure 7 pairwise error scatters (one file per
// rival method) into dir, returning the written paths.
func WriteFig7SVG(dir string, results []DatasetResult, methods []string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, m := range methods {
		if m == MethodRPM {
			continue
		}
		va, vb, _ := PairedErrors(results, m, MethodRPM)
		if len(va) == 0 {
			continue
		}
		chart := svgplot.ScatterChart{
			Title:    fmt.Sprintf("Fig. 7: %s vs RPM (p=%.3f)", m, Wilcoxon(results, MethodRPM, m)),
			XLabel:   m + " error",
			YLabel:   "RPM error",
			Diagonal: true,
			Groups:   []svgplot.Points{{Name: "datasets", X: va, Y: vb}},
		}
		path := filepath.Join(dir, fmt.Sprintf("fig7_rpm_vs_%s.svg", sanitize(m)))
		if err := writeChart(path, chart); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// WriteFig8SVG renders the Figure 8 log-log runtime scatters into dir.
func WriteFig8SVG(dir string, results []DatasetResult) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, m := range []string{MethodLS, MethodFS} {
		var xs, ys []float64
		for _, dr := range results {
			rm, ok1 := dr.Results[m]
			rr, ok2 := dr.Results[MethodRPM]
			if !ok1 || !ok2 {
				continue
			}
			xs = append(xs, rm.Total().Seconds())
			ys = append(ys, rr.Total().Seconds())
		}
		if len(xs) == 0 {
			continue
		}
		chart := svgplot.ScatterChart{
			Title:    fmt.Sprintf("Fig. 8: runtime, %s vs RPM (log-log)", m),
			XLabel:   m + " seconds",
			YLabel:   "RPM seconds",
			Diagonal: true,
			LogLog:   true,
			Groups:   []svgplot.Points{{Name: "datasets", X: xs, Y: ys}},
		}
		path := filepath.Join(dir, fmt.Sprintf("fig8_rpm_vs_%s.svg", sanitize(m)))
		if err := writeChart(path, chart); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// WriteFig9SVG renders the Figure 9 τ sweeps (runtime and error vs τ, one
// series per dataset) into dir.
func WriteFig9SVG(dir string, sweep []TauSeries) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	timeChart := svgplot.LineChart{
		Title:  "Fig. 9: running time vs τ percentile",
		XLabel: "τ percentile",
		YLabel: "seconds",
	}
	errChart := svgplot.LineChart{
		Title:  "Fig. 9: classification error vs τ percentile",
		XLabel: "τ percentile",
		YLabel: "error",
	}
	for _, s := range sweep {
		var xs, times, errs []float64
		for _, p := range s.Points {
			xs = append(xs, p.Percentile)
			times = append(times, p.Time.Seconds())
			errs = append(errs, p.Err)
		}
		timeChart.Series = append(timeChart.Series, svgplot.Series{Name: s.Dataset, X: xs, Y: times})
		errChart.Series = append(errChart.Series, svgplot.Series{Name: s.Dataset, X: xs, Y: errs})
	}
	var paths []string
	for name, chart := range map[string]svgplot.LineChart{
		"fig9_time.svg":  timeChart,
		"fig9_error.svg": errChart,
	} {
		path := filepath.Join(dir, name)
		if err := writeChart(path, chart); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// chartRenderer is satisfied by both svgplot chart types.
type chartRenderer interface {
	Render(w io.Writer) error
}

func writeChart(path string, chart chartRenderer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chart.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
