package core

import (
	"reflect"
	"testing"

	"rpm/internal/datagen"
)

// workersOpts is the shared small-budget configuration of the
// determinism tests: real DIRECT search, but few splits/evals so the
// test stays fast.
func workersOpts(workers int) Options {
	o := DefaultOptions()
	o.Splits = 2
	o.MaxEvals = 8
	o.Workers = workers
	return o
}

// TestWorkersDeterminismDIRECT asserts the tentpole guarantee: Workers: 1
// (the exact sequential path) and Workers: 8 produce byte-identical
// selected parameters, patterns, transform matrices, and batch
// predictions.
func TestWorkersDeterminismDIRECT(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)

	c1, err := Train(split.Train, workersOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Train(split.Train, workersOpts(8))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(c1.PerClassParams, c8.PerClassParams) {
		t.Fatalf("selected params diverge:\n  w=1: %v\n  w=8: %v", c1.PerClassParams, c8.PerClassParams)
	}
	if !reflect.DeepEqual(c1.Patterns, c8.Patterns) {
		t.Fatalf("patterns diverge: %d vs %d (or values differ)", len(c1.Patterns), len(c8.Patterns))
	}
	if len(c1.Patterns) == 0 {
		t.Fatal("degenerate fixture: no patterns selected")
	}

	// Transform matrix over the test set, computed at both worker counts
	// on both classifiers: all four must match exactly.
	X1 := c1.tf.applyAll(split.Test, 1)
	X8 := c8.tf.applyAll(split.Test, 8)
	if !reflect.DeepEqual(X1, X8) {
		t.Fatal("transform matrices diverge between worker counts")
	}

	p1 := c1.PredictBatch(split.Test)
	p8 := c8.PredictBatch(split.Test)
	if !reflect.DeepEqual(p1, p8) {
		t.Fatalf("predictions diverge:\n  w=1: %v\n  w=8: %v", p1, p8)
	}
}

// TestWorkersDeterminismGrid covers the grid search, whose parameter
// evaluations fan out concurrently but must resolve ties in grid order.
func TestWorkersDeterminismGrid(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(5)

	o1 := workersOpts(1)
	o1.Mode = ParamGrid
	o8 := workersOpts(8)
	o8.Mode = ParamGrid

	c1, err := Train(split.Train, o1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Train(split.Train, o8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1.PerClassParams, c8.PerClassParams) {
		t.Fatalf("grid-selected params diverge:\n  w=1: %v\n  w=8: %v", c1.PerClassParams, c8.PerClassParams)
	}
	if !reflect.DeepEqual(c1.Patterns, c8.Patterns) {
		t.Fatal("grid patterns diverge")
	}
	if !reflect.DeepEqual(c1.PredictBatch(split.Test), c8.PredictBatch(split.Test)) {
		t.Fatal("grid predictions diverge")
	}
}

// TestConcurrentTransformAfterLoad locks in the sync.Once fix: a loaded
// (or never-trained) classifier builds its transformer lazily, and many
// goroutines hitting Predict at once must not race. Run under -race to
// see the old bug.
func TestConcurrentTransformAfterLoad(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	o := workersOpts(0)
	o.Mode = ParamFixed
	clf, err := Train(split.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(clf.Patterns) == 0 {
		t.Skip("no patterns with fixed heuristic params")
	}
	// Simulate a freshly deserialized classifier: same state, no tf yet.
	loaded := &Classifier{
		Patterns:       clf.Patterns,
		PerClassParams: clf.PerClassParams,
		model:          clf.model,
		opts:           clf.opts,
		fallback:       clf.fallback,
	}
	want := clf.PredictBatch(split.Test)
	got := loaded.PredictBatch(split.Test) // fans out; builds tf concurrently
	if !reflect.DeepEqual(want, got) {
		t.Fatal("lazy transformer predictions diverge from trained classifier")
	}
}
