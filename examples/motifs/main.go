// Motif exploration: the paper's Figure 4 workflow — discover the
// class-specific subspace motifs of one class of a leaf-contour dataset
// and show where each motif occurs across the training instances,
// including the variable occurrence lengths that grammar induction
// produces. This uses DiscoverMotifs, the exploratory API that skips the
// discrimination-based pruning of full RPM training.
package main

import (
	"fmt"
	"sort"

	"rpm"
)

func main() {
	split := rpm.GenerateDataset("SynSwedishLeaf", 1)
	params := rpm.SAXParams{Window: 32, PAA: 6, Alphabet: 4}
	opts := rpm.DefaultOptions()
	opts.Gamma = 0.3

	motifs := rpm.DiscoverMotifs(split.Train, params, opts)
	var classes []int
	for c := range motifs {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	fmt.Printf("dataset %s: %d classes, motif discovery with window=%d paa=%d alpha=%d gamma=%.1f\n\n",
		split.Name, len(classes), params.Window, params.PAA, params.Alphabet, opts.Gamma)
	total := 0
	for _, c := range classes {
		total += len(motifs[c])
		fmt.Printf("class %d: %d motif(s)\n", c, len(motifs[c]))
	}
	fmt.Printf("total: %d class-specific motifs\n", total)

	// Deep dive into one class, as the paper's Fig. 4 does for Class 4 of
	// SwedishLeaf: occurrences, their instances, and their length spread.
	const focus = 4
	fmt.Printf("\n=== class %d in detail ===\n", focus)
	for i, m := range motifs[focus] {
		if i >= 3 {
			fmt.Printf("... and %d more motifs\n", len(motifs[focus])-3)
			break
		}
		minL, maxL := len(m.Occurrences[0].Values), 0
		perSeries := map[int]int{}
		for _, o := range m.Occurrences {
			if len(o.Values) < minL {
				minL = len(o.Values)
			}
			if len(o.Values) > maxL {
				maxL = len(o.Values)
			}
			perSeries[o.Series]++
		}
		fmt.Printf("\nmotif %d: support %d instances, %d occurrences, lengths %d..%d (prototype %d)\n",
			i, m.Support, len(m.Occurrences), minL, maxL, len(m.Prototype))
		var series []int
		for s := range perSeries {
			series = append(series, s)
		}
		sort.Ints(series)
		for _, s := range series {
			n := perSeries[s]
			note := ""
			if n > 1 {
				note = fmt.Sprintf(" (appears %d times)", n)
			}
			fmt.Printf("  instance %2d%s\n", s, note)
		}
	}
	fmt.Println("\nNote: as in the paper's Fig. 4, occurrences vary in length, some")
	fmt.Println("instances contain a motif more than once, and some not at all.")
}
