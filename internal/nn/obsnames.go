package nn

// Observability names of the 1NN baselines (rpmlint obsnames
// convention: every recorded series is declared here).
//
// SpanLOOCV is the span recorded by BestWindowObs around the whole
// leave-one-out window sweep; each candidate window w gets a child span
// named SpanLOOCVWindow + strconv.Itoa(w).
const (
	SpanLOOCV       = "nn.loocv"
	SpanLOOCVWindow = "nn.loocv.window." // + window half-width
	PoolLOOCV       = "pool.nn.loocv"
)
