package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

func sampleDiags(t *testing.T) []Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	return []Diagnostic{
		{
			Analyzer: "hotpathalloc",
			Pos:      token.Position{Filename: filepath.Join(abs, "internal", "dist", "query.go"), Line: 42, Column: 7},
			Message:  "make allocates",
		},
		{
			Analyzer: "rpmlint",
			Pos:      token.Position{Filename: filepath.Join(abs, "rpm.go"), Line: 3, Column: 1},
			Message:  "malformed ignore directive",
		},
	}
}

// TestSARIF pins the shape GitHub code scanning requires: schema and
// version strings, a rule per analyzer (plus the rpmlint pseudo-rule),
// results whose ruleIndex points back into the rule table, and
// repo-relative forward-slash URIs.
func TestSARIF(t *testing.T) {
	raw, err := SARIF(sampleDiags(t), Analyzers(), ".")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "rpmlint" {
		t.Errorf("driver name %q, want rpmlint", run.Tool.Driver.Name)
	}
	if want := len(Analyzers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d (analyzers + rpmlint pseudo-rule)", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	for _, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result level %q, want error", r.Level)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex %d does not resolve to ruleId %q", r.RuleIndex, r.RuleID)
		}
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/dist/query.go" {
		t.Errorf("uri %q, want repo-relative internal/dist/query.go", uri)
	}
	if line := run.Results[0].Locations[0].PhysicalLocation.Region.StartLine; line != 42 {
		t.Errorf("startLine %d, want 42", line)
	}
}

// TestJSONFormat pins the -format json report shape.
func TestJSONFormat(t *testing.T) {
	raw, err := JSON(sampleDiags(t), ".")
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	if report.Count != 2 || len(report.Diagnostics) != 2 {
		t.Fatalf("count %d / %d diagnostics, want 2 / 2", report.Count, len(report.Diagnostics))
	}
	d := report.Diagnostics[0]
	if d.Analyzer != "hotpathalloc" || d.File != "internal/dist/query.go" || d.Line != 42 || d.Column != 7 || d.Message != "make allocates" {
		t.Errorf("unexpected first diagnostic: %+v", d)
	}
}
