package rpm

import (
	"rpm/internal/core"
	"rpm/internal/sax"
)

// MotifOccurrence is one appearance of a class-specific motif.
type MotifOccurrence struct {
	// Series indexes the instance within the class's training instances
	// (in dataset order, counting only that class).
	Series int
	// Start is the occurrence's offset within that instance.
	Start int
	// Values is the raw subsequence.
	Values []float64
}

// Motif is a class-specific subspace motif: a variable-length pattern
// occurring in at least Gamma of one class's training instances, with all
// of its occurrences. Motif discovery is the exploratory capability the
// paper highlights beyond classification (§1): representative patterns are
// the discriminative subset of these motifs.
type Motif struct {
	Class       int
	Prototype   []float64
	Support     int
	Occurrences []MotifOccurrence
}

// DiscoverMotifs runs RPM's candidate-generation stage (SAX discretization
// + grammar induction + cluster refinement) and returns each class's
// motifs sorted by support, without any discrimination-based pruning.
// params are the SAX parameters; opts controls gamma, numerosity
// reduction, the GI algorithm and the prototype choice — its parameter-
// search fields are ignored.
func DiscoverMotifs(train Dataset, params SAXParams, opts Options) map[int][]Motif {
	copts := toCoreOptions(opts)
	copts.Mode = core.ParamFixed
	p := sax.Params{Window: params.Window, PAA: params.PAA, Alphabet: params.Alphabet}
	raw := core.DiscoverMotifs(toInternal(train), p, copts)
	out := map[int][]Motif{}
	for class, motifs := range raw {
		for _, m := range motifs {
			pub := Motif{Class: m.Class, Prototype: m.Prototype, Support: m.Support}
			for _, o := range m.Occurrences {
				pub.Occurrences = append(pub.Occurrences, MotifOccurrence(o))
			}
			out[class] = append(out[class], pub)
		}
	}
	return out
}
