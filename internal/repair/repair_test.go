package repair

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func toks(s string) []int {
	out := make([]int, len(s))
	for i := range s {
		out[i] = int(s[i])
	}
	return out
}

func TestExpandReproducesInput(t *testing.T) {
	inputs := []string{
		"", "a", "ab", "abab", "abcabc", "aaa", "aaaa", "aaaaaaaa",
		"abcdbcabcdbc", "mississippi", "aabaaab",
	}
	for _, in := range inputs {
		g := Infer(toks(in))
		got := g.Expand()
		want := toks(in)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %q: expand = %v, want %v", in, got, want)
		}
	}
}

func TestSimpleRepeat(t *testing.T) {
	g := Infer(toks("abcabc"))
	if g.NumRules() < 1 {
		t.Fatal("no rules created")
	}
	found := false
	for _, r := range g.Rules() {
		if reflect.DeepEqual(r.Yield, toks("abc")) {
			found = true
			want := []int{0, 3}
			for i, s := range r.Spans {
				if s.Start != want[i] || s.Len() != 3 {
					t.Errorf("span %d = %+v", i, s)
				}
			}
		}
	}
	if !found {
		t.Error("no rule yields abc")
	}
}

func TestDigramUniquenessAtEnd(t *testing.T) {
	// After Re-Pair, no digram may have two non-overlapping occurrences
	// in the final sequence (overlapping pairs inside a run of identical
	// symbols don't count, exactly as the algorithm counts them).
	g := Infer(toks("abcabcabcxyzxyz"))
	if _, count := mostFrequentDigram(g.final); count >= 2 {
		t.Fatalf("final sequence %v still has a repeating digram", g.final)
	}
}

func TestSpansMatchYields(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ln := int(n)%120 + 2
		in := make([]int, ln)
		for i := range in {
			in[i] = rng.Intn(4)
		}
		g := Infer(in)
		if !reflect.DeepEqual(g.Expand(), in) {
			return false
		}
		for _, r := range g.Rules() {
			if len(r.Spans) == 0 {
				return false
			}
			for _, s := range r.Spans {
				if s.Start < 0 || s.End >= len(in) || s.Len() != len(r.Yield) {
					return false
				}
				if !reflect.DeepEqual(in[s.Start:s.End+1], r.Yield) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRunsOfIdenticalSymbols(t *testing.T) {
	// "aaaa" must compress without counting overlapping pairs twice.
	g := Infer(toks("aaaa"))
	if !reflect.DeepEqual(g.Expand(), toks("aaaa")) {
		t.Fatalf("expand = %v", g.Expand())
	}
	if g.NumRules() == 0 {
		t.Error("run input should create at least one rule")
	}
}

func TestNoRulesForUniqueInput(t *testing.T) {
	g := Infer([]int{1, 2, 3, 4, 5})
	if g.NumRules() != 0 {
		t.Errorf("%d rules for repeat-free input", g.NumRules())
	}
	if len(g.Rules()) != 0 {
		t.Error("Rules() nonempty")
	}
}

func TestDeterministic(t *testing.T) {
	in := toks("abracadabraabracadabra")
	a := Infer(in)
	b := Infer(in)
	if !reflect.DeepEqual(a.final, b.final) || a.NumRules() != b.NumRules() {
		t.Error("Re-Pair not deterministic")
	}
}

func TestPanicsOnNegativeToken(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Infer([]int{1, -1})
}
