package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the error contract (PR 2) on every package in
// Config.ErrTaxonomyPkgs: each of those packages declares its own
// sentinels, typed *Error, and constructors, and every error leaving
// one of its exported functions must be built by those own-package
// declarations, be a sentinel, or be an unwrapped context error —
// never a raw errors.New/fmt.Errorf and never an error from another
// package passed through unclassified.
//
// The check is intraprocedural and self-relative: a returned error
// expression is accepted when it is nil, a package-level Err* sentinel
// of the analyzed package, an own-package &Error{...} literal, a call
// back into the analyzed package itself (constructors and helpers are
// checked at their own definition sites), or a context error. Returned
// variables are traced through their assignments within the function;
// an assignment from a call into any other package flags the return.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "exported functions of taxonomy packages must return own typed *Error values",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) {
	if !pass.Config.errTaxonomyChecked(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !receiverExported(fd) {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			errIdx := errorResultIndex(sig)
			if errIdx < 0 {
				continue
			}
			pass.checkReturns(fd, sig, errIdx)
		}
	}
}

// receiverExported reports whether fd is a plain function or a method
// on an exported named type (methods on unexported types are not part
// of the public surface).
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// errorResultIndex returns the index of the (last) result of type
// error, or -1.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return i
		}
	}
	return -1
}

// checkReturns validates the error expression of every return statement
// directly inside fd (nested function literals return to the closure,
// not the public caller, and are skipped).
func (p *Pass) checkReturns(fd *ast.FuncDecl, sig *types.Signature, errIdx int) {
	inspectShallow(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return // naked return: named results, not traceable here
		}
		if len(ret.Results) == 1 && sig.Results().Len() > 1 {
			// return f(...) — multi-value passthrough.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if bad, why := p.errExprViolates(call, fd); bad {
					p.Reportf(ret.Pos(), "exported %s returns %s; route errors through the package's own *Error constructors or sentinels", fd.Name.Name, why)
				}
			}
			return
		}
		if errIdx >= len(ret.Results) {
			return
		}
		if bad, why := p.errExprViolates(ret.Results[errIdx], fd); bad {
			p.Reportf(ret.Pos(), "exported %s returns %s; route errors through the package's own *Error constructors or sentinels", fd.Name.Name, why)
		}
	})
}

// errExprViolates classifies an expression in error-return position.
// It returns (true, reason) when the expression escapes the taxonomy.
func (p *Pass) errExprViolates(e ast.Expr, fd *ast.FuncDecl) (bool, string) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return false, ""
		}
		obj := p.Info.Uses[e]
		if obj == nil {
			return false, ""
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Pkg().Path() == p.Pkg.Path() && v.Parent() == v.Pkg().Scope() {
				if strings.HasPrefix(v.Name(), "Err") || strings.HasPrefix(v.Name(), "err") {
					return false, "" // sentinel
				}
				return true, "a non-sentinel package variable"
			}
			// Local variable: trace its assignments.
			return p.varAssignViolates(v, fd)
		}
		return false, ""
	case *ast.CallExpr:
		pkg := p.calleePkgPath(e)
		switch pkg {
		case "":
			return false, "" // builtin / conversion / func-typed var: out of scope
		case p.Pkg.Path(), "context":
			return false, ""
		case "errors":
			if p.calleeOf(e).Name() == "Join" {
				return false, "" // joining already-typed errors
			}
			return true, "a raw errors." + p.calleeOf(e).Name() + " error"
		case "fmt":
			return true, "a raw fmt." + p.calleeOf(e).Name() + " error"
		default:
			if fn := p.calleeOf(e); fn != nil {
				if sigOf, ok := fn.Type().(*types.Signature); ok && sigOf.Recv() != nil {
					if named, ok := derefNamed(sigOf.Recv().Type()); ok {
						if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == p.Pkg.Path() {
							return false, "" // method on an own-package type
						}
					}
				}
			}
			return true, "an unclassified error from " + pkg
		}
	case *ast.UnaryExpr:
		if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			return p.compositeErrViolates(lit)
		}
		return false, ""
	case *ast.CompositeLit:
		return p.compositeErrViolates(e)
	case *ast.SelectorExpr:
		return false, "" // field read: out of scope for the static check
	default:
		return false, ""
	}
}

// compositeErrViolates accepts composite literals of own-package types
// (e.g. &Error{...}) and flags everything else.
func (p *Pass) compositeErrViolates(lit *ast.CompositeLit) (bool, string) {
	t := p.TypeOf(lit)
	if named, ok := derefNamed(t); ok {
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == p.Pkg.Path() {
			return false, ""
		}
		return true, "a foreign error literal"
	}
	return false, ""
}

// varAssignViolates traces every assignment to v inside fd; the
// variable is clean when no assignment stores an error produced
// outside the analyzed package (or context).
func (p *Pass) varAssignViolates(v *types.Var, fd *ast.FuncDecl) (bool, string) {
	bad := false
	why := ""
	check := func(rhs ast.Expr) {
		if bad {
			return
		}
		if b, w := p.errExprViolates(rhs, fd); b {
			bad, why = true, w
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != v {
					continue
				}
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					check(s.Rhs[0]) // v, err := call(...)
				} else if i < len(s.Rhs) {
					check(s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if p.Info.Defs[name] != v {
					continue
				}
				if len(s.Values) == 1 && len(s.Names) > 1 {
					check(s.Values[0])
				} else if i < len(s.Values) {
					check(s.Values[i])
				}
			}
		}
		return true
	})
	return bad, why
}

// derefNamed unwraps pointers down to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt, true
		default:
			return nil, false
		}
	}
}
