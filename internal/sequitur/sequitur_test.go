package sequitur

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// toks converts a string to one token per byte, for readable tests.
func toks(s string) []int {
	out := make([]int, len(s))
	for i := range s {
		out[i] = int(s[i])
	}
	return out
}

func TestExpandReproducesInput(t *testing.T) {
	inputs := []string{
		"",
		"a",
		"ab",
		"abab",
		"abcabc",
		"aaa",
		"aaaa",
		"aaaaaaaa",
		"abcdbcabcdbc",
		"ababababab",
		"xabcabcy",
		"mississippi",
		"aabaaab",
	}
	for _, in := range inputs {
		g := Infer(toks(in))
		if got := g.Expand(); !reflect.DeepEqual(got, toks(in)) && !(len(got) == 0 && len(in) == 0) {
			t.Errorf("input %q: expand = %v, want %v\n%s", in, got, toks(in), g)
		}
		if g.Len() != len(in) {
			t.Errorf("input %q: Len = %d", in, g.Len())
		}
	}
}

func TestInvariantsOnFixedInputs(t *testing.T) {
	inputs := []string{
		"abab", "abcabc", "aaaa", "abcdbcabcdbc", "mississippi",
		"aabaaab", "abcabcabcabc", "xyxyxzxyxyxz",
	}
	for _, in := range inputs {
		g := Infer(toks(in))
		if err := g.checkInvariants(); err != nil {
			t.Errorf("input %q: %v\n%s", in, err, g)
		}
	}
}

func TestSimpleRepeatCreatesRule(t *testing.T) {
	g := Infer(toks("abcabc"))
	if g.NumRules() < 1 {
		t.Fatalf("expected at least one rule\n%s", g)
	}
	rules := g.Rules()
	// some rule must yield "abc" and occur at spans [0,2] and [3,5]
	found := false
	for _, r := range rules {
		if reflect.DeepEqual(r.Yield, toks("abc")) {
			found = true
			want := []Span{{0, 2}, {3, 5}}
			if !reflect.DeepEqual(r.Spans, want) {
				t.Errorf("abc rule spans = %v, want %v", r.Spans, want)
			}
		}
	}
	if !found {
		t.Errorf("no rule yields abc\n%s", g)
	}
}

func TestPaperExample(t *testing.T) {
	// Paper §3.2.2: S1 = aba bac cab acc bac cab produces a rule for
	// [bac cab] occurring twice. Tokens: aba=0 bac=1 cab=2 acc=3.
	in := []int{0, 1, 2, 3, 1, 2}
	g := Infer(in)
	rules := g.Rules()
	if len(rules) != 1 {
		t.Fatalf("expected exactly 1 rule, got %d\n%s", len(rules), g)
	}
	r := rules[0]
	if !reflect.DeepEqual(r.Yield, []int{1, 2}) {
		t.Errorf("rule yield = %v, want [1 2]", r.Yield)
	}
	want := []Span{{1, 2}, {4, 5}}
	if !reflect.DeepEqual(r.Spans, want) {
		t.Errorf("rule spans = %v, want %v", r.Spans, want)
	}
}

func TestNestedRules(t *testing.T) {
	// abcdbc: bc repeats inside; then abcdbc abcdbc repeats wholly.
	in := toks("abcdbcabcdbc")
	g := Infer(in)
	rules := g.Rules()
	// find the rule yielding the full half
	var half *Rule
	for _, r := range rules {
		if reflect.DeepEqual(r.Yield, toks("abcdbc")) {
			half = r
		}
	}
	if half == nil {
		t.Fatalf("no rule yields abcdbc\n%s", g)
	}
	if !reflect.DeepEqual(half.Spans, []Span{{0, 5}, {6, 11}}) {
		t.Errorf("half spans = %v", half.Spans)
	}
	// the bc rule occurs 4 times in the derivation
	for _, r := range rules {
		if reflect.DeepEqual(r.Yield, toks("bc")) {
			if len(r.Spans) != 4 {
				t.Errorf("bc rule occurs %d times, want 4: %v", len(r.Spans), r.Spans)
			}
			for _, s := range r.Spans {
				got := string([]byte{byte(in[s.Start]), byte(in[s.End])})
				if got != "bc" || s.Len() != 2 {
					t.Errorf("bc span %v covers %q", s, got)
				}
			}
		}
	}
}

func TestSpansMatchYields(t *testing.T) {
	// Property: for random inputs over a small alphabet, every reported
	// span's input slice equals the rule's yield, and invariants hold.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ln := int(n)%120 + 2
		in := make([]int, ln)
		for i := range in {
			in[i] = rng.Intn(4)
		}
		g := Infer(in)
		if !reflect.DeepEqual(g.Expand(), in) {
			t.Logf("expand mismatch for %v", in)
			return false
		}
		if err := g.checkInvariants(); err != nil {
			t.Logf("invariants: %v for %v\n%s", err, in, g)
			return false
		}
		for _, r := range g.Rules() {
			if len(r.Spans) < 2 {
				t.Logf("rule with <2 spans for %v\n%s", in, g)
				return false
			}
			for _, s := range r.Spans {
				if s.Start < 0 || s.End >= len(in) || s.Len() != len(r.Yield) {
					return false
				}
				if !reflect.DeepEqual(in[s.Start:s.End+1], r.Yield) {
					t.Logf("span %v != yield %v in %v", s, r.Yield, in)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLongPeriodicInput(t *testing.T) {
	// Long periodic input should compress into deep hierarchy but still
	// expand correctly.
	var in []int
	for i := 0; i < 500; i++ {
		in = append(in, i%7)
	}
	g := Infer(in)
	if !reflect.DeepEqual(g.Expand(), in) {
		t.Fatal("expand mismatch on periodic input")
	}
	if err := g.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.NumRules() == 0 {
		t.Fatal("periodic input produced no rules")
	}
	// Hierarchy should compress: number of symbols in root far below input length.
	n := 0
	for s := g.root.first(); !s.isGuard(); s = s.next {
		n++
	}
	if n >= len(in)/2 {
		t.Errorf("root has %d symbols for input of %d; no compression", n, len(in))
	}
}

func TestNoRulesForUniqueInput(t *testing.T) {
	in := []int{1, 2, 3, 4, 5, 6, 7, 8}
	g := Infer(in)
	if g.NumRules() != 0 {
		t.Errorf("unique input produced %d rules\n%s", g.NumRules(), g)
	}
	if got := g.Rules(); len(got) != 0 {
		t.Errorf("Rules() = %v", got)
	}
}

func TestAppendNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative token")
		}
	}()
	New().Append(-1)
}

func TestRuleStringRendering(t *testing.T) {
	g := Infer(toks("abcabc"))
	s := g.String()
	if s == "" {
		t.Error("empty String()")
	}
	for _, r := range g.Rules() {
		if r.RHS == "" {
			t.Error("empty RHS")
		}
	}
}

func TestIncrementalEqualsOneShot(t *testing.T) {
	in := toks("abracadabraabracadabra")
	g1 := Infer(in)
	g2 := New()
	for _, tk := range in {
		g2.Append(tk)
	}
	if !reflect.DeepEqual(g1.Expand(), g2.Expand()) {
		t.Error("incremental construction differs from one-shot")
	}
	if g1.String() != g2.String() {
		t.Error("grammars differ between incremental and one-shot")
	}
}
