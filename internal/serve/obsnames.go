package serve

// Canonical observability names the serving layer records into its
// obs.Registry, exported so cmd/rpmserved and the tests read the
// snapshot without string drift (the same convention internal/core uses
// for the training pipeline).
//
//   - CtrRequests / CtrRequestsPredict / CtrRequestsBatch count accepted
//     HTTP requests (total and per endpoint).
//   - CtrBatches counts micro-batch flushes — the number of underlying
//     PredictBatch calls the batcher issued. CtrBatchItems counts the
//     requests those flushes carried, so CtrBatchItems / CtrBatches is
//     the achieved batch amortization factor.
//   - CtrShed counts requests rejected with 429 because the batch queue
//     was full (load shedding).
//   - CtrErrPrefix+<code> counts error responses by envelope code
//     (bad_input, too_short, not_found, corrupt_model, …).
//   - CtrReloads counts reload passes; CtrReloadRejected counts files
//     that failed to load during them (corrupt snapshots).
//   - SumLatencyPredict / SumLatencyBatch are per-endpoint latency
//     summaries (count, mean, approximate p50/p90/p99, max).
//   - PoolBatch accounts the batcher as a one-worker pool: tasks are
//     flushes, busy time is time spent inside PredictBatch.
//   - SpanServe is the root span (its wall is server uptime); per-
//     endpoint aggregate child spans fold in request handling time.
const (
	CtrRequests        = "serve.requests"
	CtrRequestsPredict = "serve.requests.predict"
	CtrRequestsBatch   = "serve.requests.batch"
	CtrBatches         = "serve.batches"
	CtrBatchItems      = "serve.batches.items"
	CtrShed            = "serve.shed"
	CtrReloads         = "serve.reloads"
	CtrReloadRejected  = "serve.reloads.rejected"
	CtrErrPrefix       = "serve.errors."
	// CtrFlushScratchNew counts flush-scratch pool misses (fresh dataset
	// allocations); CtrBatches minus this is the achieved buffer reuse.
	CtrFlushScratchNew = "serve.flush.scratch.new"
	// CtrExpired counts requests shed by the flush's queue-age admission
	// check: their context expired while queued, so they were answered
	// 504 and excluded from the PredictBatch call (never computed).
	CtrExpired = "serve.flush.expired"
	// CtrFaultsInjected counts faults the chaos injector actually fired
	// across every site (0 in production, where the injector is nil).
	CtrFaultsInjected = "serve.faults.injected"

	// Streaming counters: CtrRequestsStream counts accepted stream
	// appends, CtrStreamSamples the samples those appends carried,
	// CtrStreamEvents the committed class-change events, and
	// CtrStreamsCreated / CtrStreamsClosed the stream lifecycle (their
	// difference is GaugeStreams).
	CtrRequestsStream = "serve.requests.stream"
	CtrStreamSamples  = "serve.stream.samples"
	CtrStreamEvents   = "serve.stream.events"
	CtrStreamsCreated = "serve.streams.created"
	CtrStreamsClosed  = "serve.streams.closed"

	GaugeModels     = "serve.models"
	GaugeQueueDepth = "serve.queue.depth"
	// GaugeStreams is the number of live streams; GaugeStreamBytes their
	// summed fixed detector footprint (the per-stream memory budget,
	// DESIGN.md §14).
	GaugeStreams     = "serve.streams"
	GaugeStreamBytes = "serve.streams.bytes"

	PoolBatch = "serve.pool.batch"

	SumLatencyPredict = "serve.latency.predict"
	SumLatencyBatch   = "serve.latency.predict_batch"
	// SumLatencyStream is the per-append latency summary of the
	// streaming path.
	SumLatencyStream = "serve.latency.stream_append"

	SpanServe        = "serve"
	SpanPredict      = "predict"
	SpanPredictBatch = "predict_batch"
	SpanReload       = "reload"
	SpanStream       = "stream_append"
)
