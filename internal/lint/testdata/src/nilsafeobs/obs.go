// Package nilsafeobs is a golden fixture: exported pointer-receiver
// methods here (the fixture's obs package) must open with a nil guard.
package nilsafeobs

// Counter is a nil-safe handle.
type Counter struct{ n int64 }

// GoodAdd guards first.
func (c *Counter) GoodAdd(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// GoodNilLeft accepts the reversed comparison.
func (c *Counter) GoodNilLeft() int64 {
	if nil == c {
		return 0
	}
	return c.n
}

// GoodOrChain guards via the left-most disjunct of an || chain
// (short-circuit evaluation reaches the nil test first).
func (c *Counter) GoodOrChain() int64 {
	if c == nil || c.n < 0 {
		return 0
	}
	return c.n
}

// BadInc has no guard at all.
func (c *Counter) BadInc() { // want "must begin with"
	c.n++
}

// BadGuardLate guards after already touching the receiver.
func (c *Counter) BadGuardLate() { // want "must begin with"
	c.n++
	if c == nil {
		return
	}
}

// BadWrongOp guards with != (the then-branch is the live path, so a
// nil receiver falls through).
func (c *Counter) BadWrongOp() { // want "must begin with"
	if c != nil {
		c.n++
	}
}

// ValueCopy has a value receiver: exempt.
func (c Counter) ValueCopy() int64 { return c.n }

// unexported methods are not part of the handle contract.
func (c *Counter) unexported() { c.n++ }

// silence unused warning
var _ = (*Counter).unexported
