package main

import (
	"strings"
	"testing"
)

// sample mimics real `go test -bench -benchmem` output, including the
// speedup custom metric, name echo lines, per-package headers, repeated
// samples (-count=2), and trailing PASS/ok noise.
const sample = `goos: linux
goarch: amd64
pkg: rpm
cpu: Intel(R) Xeon(R)
BenchmarkRPMTrainFixed
BenchmarkRPMTrainFixed-4   	      13	  88123456 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkRPMTrainFixed-4   	      14	  86000000 ns/op	 1234500 B/op	   12345 allocs/op
BenchmarkRPMPredict-4      	   20000	     52000 ns/op	    4096 B/op	      12 allocs/op
PASS
ok  	rpm	12.3s
pkg: rpm/internal/core
BenchmarkTransformParallel-4 	     100	   1234567 ns/op	         3.21 speedup
ok  	rpm/internal/core	2.1s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	train := doc.Benchmarks[0]
	if train.Name != "BenchmarkRPMTrainFixed" {
		t.Fatalf("cpu suffix not stripped: %q", train.Name)
	}
	if train.Pkg != "rpm" {
		t.Fatalf("pkg = %q, want rpm", train.Pkg)
	}
	if train.Samples != 2 || train.NsPerOp != 86000000 {
		t.Fatalf("sample aggregation must keep the min ns/op: %+v", train)
	}
	if train.AllocsPerOp != 12345 || train.BytesPerOp != 1234500 {
		t.Fatalf("benchmem fields wrong: %+v", train)
	}
	tp := doc.Benchmarks[2]
	if tp.Name != "BenchmarkTransformParallel" || tp.Pkg != "rpm/internal/core" {
		t.Fatalf("per-package header not tracked: %+v", tp)
	}
	if tp.NsPerOp != 1234567 {
		t.Fatalf("speedup metric confused the ns/op parse: %+v", tp)
	}
	if tp.AllocsPerOp != -1 {
		t.Fatalf("missing -benchmem must record -1 allocs, got %v", tp.AllocsPerOp)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4\t100\tns/op\n",          // value missing
		"BenchmarkX-4 100 12e ns/op\n",        // unparsable value
		"BenchmarkX-4 100 7 B/op 3 allocs/op", // no ns/op at all
	} {
		if _, err := parse(strings.NewReader(bad)); err == nil {
			t.Errorf("parse(%q) accepted malformed input", bad)
		}
	}
}

func docOf(benches ...Bench) *Doc { return &Doc{Benchmarks: benches} }

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := docOf(Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10})
	cur := docOf(Bench{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 10})
	report, failed, err := compareDocs(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("+20%% within a 25%% budget must pass:\n%s", report)
	}
	if !strings.Contains(report, "+20.0%") {
		t.Fatalf("report must show the delta:\n%s", report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := docOf(Bench{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10})
	cur := docOf(Bench{Name: "BenchmarkA", NsPerOp: 2000, AllocsPerOp: 10}) // 2x slowdown
	report, failed, err := compareDocs(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("2x slowdown must fail a 25%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") || !strings.Contains(report, "+100.0%") {
		t.Fatalf("report must flag the regression:\n%s", report)
	}
}

func TestCompareMissingBenchFails(t *testing.T) {
	base := docOf(
		Bench{Name: "BenchmarkA", NsPerOp: 1000},
		Bench{Name: "BenchmarkGone", NsPerOp: 500},
	)
	cur := docOf(Bench{Name: "BenchmarkA", NsPerOp: 900})
	report, failed, err := compareDocs(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("a vanished baseline benchmark must fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkGone") || !strings.Contains(report, "missing") {
		t.Fatalf("report must name the missing benchmark:\n%s", report)
	}
}

func TestCompareNewBenchInformational(t *testing.T) {
	base := docOf(Bench{Name: "BenchmarkA", NsPerOp: 1000})
	cur := docOf(
		Bench{Name: "BenchmarkA", NsPerOp: 1000},
		Bench{Name: "BenchmarkNew", NsPerOp: 5},
	)
	report, failed, err := compareDocs(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("a new benchmark must not fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "BenchmarkNew") {
		t.Fatalf("report should mention the new benchmark:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := docOf(Bench{Name: "BenchmarkA", NsPerOp: 1000})
	cur := docOf(Bench{Name: "BenchmarkA", NsPerOp: 100}) // 10x faster
	_, failed, err := compareDocs(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("an improvement must never fail the gate")
	}
}
