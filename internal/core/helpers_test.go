package core

import "math/rand"

// newTestRand gives tests a seeded random source without importing
// math/rand in every file.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
