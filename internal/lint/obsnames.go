package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
)

// ObsNames enforces the PR-3/PR-6 metric-name discipline: every name
// handed to an obs recording entry point (Registry.Counter/Gauge/Pool/
// Summary/StartSpan, Span.Start/Child) must trace to a string constant
// declared in an obsnames.go file, so the package's observable surface
// is readable in one place. Three findings:
//
//   - a recording call whose name argument references no obsnames.go
//     constant (raw literal, or a dynamically built name with no
//     declared prefix constant);
//   - two obsnames.go constants in one package with the same value;
//   - an obsnames.go constant that no recording call anywhere in the
//     analyzed tree ever references (dead name — the dashboard lies).
//
// The obs package itself is exempt: its methods receive names, they do
// not mint them.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "obs metric/span names must be obsnames.go constants: no raw literals, duplicates, or dead names",
	Run:  runObsNames,
}

func runObsNames(pass *Pass) {
	facts := pass.Facts
	if facts == nil || pass.PkgPath == pass.Config.ObsPkg {
		return
	}

	// Rule 1: every recording call in this package names a declared
	// constant.
	for _, rec := range facts.obsRecords {
		if rec.PkgPath != pass.PkgPath {
			continue
		}
		ok := false
		for _, c := range constsIn(pass.Info, rec.Name) {
			if facts.declaredInObsNames(c) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(rec.Pos, "obs %s name does not reference any obsnames.go constant; declare the name (or its prefix) there", rec.Kind)
		}
	}

	// Rules 2+3 over this package's own obsnames.go declarations.
	seen := map[string]types.Object{}
	for _, file := range pass.Files {
		pos := pass.Fset.Position(file.Pos())
		if filepath.Base(pos.Filename) != "obsnames.go" {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					basic, ok := c.Type().Underlying().(*types.Basic)
					if !ok || basic.Info()&types.IsString == 0 {
						continue
					}
					val := constant.StringVal(c.Val())
					if prev, dup := seen[val]; dup {
						pass.Reportf(name.Pos(), "duplicate obs name %q (already declared as %s)", val, prev.Name())
					} else {
						seen[val] = c
					}
					if !facts.recordedConsts[canonKey(c)] {
						pass.Reportf(name.Pos(), "obs name constant %s is never recorded; delete it or record it", name.Name)
					}
				}
			}
		}
	}
}
