// Package parallel is the repo's tiny, stdlib-only worker-pool layer. It
// exists because the paper's headline claim is *efficiency* (§5.3) and the
// RPM pipeline's hot loops — the pattern×instance transform matrix, the
// per-parameter-vector cross-validation, the 1NN baselines, and the
// pairwise candidate distances — are all embarrassingly parallel: every
// iteration writes only its own per-index result slot.
//
// Determinism contract: every helper in this package produces output that
// is byte-identical to the sequential loop it replaces, for any worker
// count. For distributes loop *indices*, not accumulators, so callers keep
// per-index result slots and fold them in index order afterwards (or use
// Map / MapReduce, which do exactly that). Nothing in this package ever
// reorders floating-point accumulation.
//
// Worker-count convention, shared by every Workers knob in the repo:
// n <= 0 means runtime.GOMAXPROCS(0) (use the whole machine), 1 means the
// exact sequential path (no goroutines are spawned at all), and any other
// value bounds the number of concurrent goroutines.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Workers-style option to a concrete worker count:
// n <= 0 ⇒ runtime.GOMAXPROCS(0), otherwise n.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most Workers(workers)
// concurrent goroutines. With workers == 1 (or n < 2) it degrades to the
// plain sequential loop on the calling goroutine — no goroutines, no
// channels, no synchronization — so `Workers: 1` really is the exact
// sequential path.
//
// Indices are handed out dynamically (an atomic counter), which
// load-balances uneven iterations such as early-abandoning distance
// computations. fn must confine its writes to per-index state.
//
// If any fn panics, the first panic value is re-raised on the calling
// goroutine after all workers have stopped; remaining indices are
// abandoned.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		once     sync.Once
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Map computes fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. The ordered-map half of the
// map-reduce helper pair.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapReduce computes fn(i) for every index in parallel, then folds the
// results strictly in index order: acc = reduce(acc, fn(0)), then fn(1),
// and so on. Because the fold is sequential and ordered, floating-point
// reductions are byte-identical to the sequential loop regardless of the
// worker count — the property the core pipeline's determinism guarantee
// rests on.
func MapReduce[T, R any](n, workers int, fn func(i int) T, init R, reduce func(acc R, v T) R) R {
	vals := Map(n, workers, fn)
	acc := init
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc
}
