// Command rpmlint runs the repo's project-specific static analyzers
// (internal/lint) over the given package patterns and reports
// violations of the determinism, error-taxonomy, concurrency,
// nil-safe-obs, and interprocedural hot-path/context/obs-name/fault-
// site invariants.
//
// Usage:
//
//	rpmlint [-C dir] [-list] [-format text|json|sarif] [-o file] [packages...]
//
// With no patterns it analyzes ./... . The default text format renders
// diagnostics as file:line:col: message [analyzer]; -format json emits
// a machine-readable report and -format sarif a SARIF 2.1.0 log for
// GitHub code scanning (-json is shorthand for -format json).
// Deliberate exceptions are annotated in the source:
//
//	//rpmlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
//
// Exit codes: 0 — clean; 1 — diagnostics reported (any format); 2 —
// usage or load error (unparseable package, type-check failure).
package main

import (
	"flag"
	"fmt"
	"os"

	"rpm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rpmlint", flag.ContinueOnError)
	dir := fs.String("C", ".", "directory to run in (module root)")
	list := fs.Bool("list", false, "list analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	jsonShort := fs.Bool("json", false, "shorthand for -format json")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: rpmlint [-C dir] [-list] [-format text|json|sarif] [-o file] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonShort {
		*format = "json"
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpmlint: %v\n", err)
		return 2
	}
	diags := lint.Run(lint.Defaults(), pkgs, analyzers)

	var report []byte
	switch *format {
	case "text":
		for _, d := range diags {
			report = append(report, d.Render(*dir)...)
			report = append(report, '\n')
		}
	case "json":
		report, err = lint.JSON(diags, *dir)
		report = append(report, '\n')
	case "sarif":
		report, err = lint.SARIF(diags, analyzers, *dir)
		report = append(report, '\n')
	default:
		fmt.Fprintf(os.Stderr, "rpmlint: unknown format %q\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpmlint: %v\n", err)
		return 2
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, report, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rpmlint: %v\n", err)
			return 2
		}
	} else {
		os.Stdout.Write(report)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rpmlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}
