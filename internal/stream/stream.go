// Package stream is the streaming inference subsystem: per-stream
// incremental classification of an append-only signal against a trained
// model's representative patterns (the paper's §6 alarm-suppression case
// study is exactly this shape — a live waveform matched per timepoint,
// not a whole series classified at rest).
//
// The layering mirrors the batch predict path. A Model is the shared,
// immutable per-classifier state: one z-normalized dist.Matcher per
// representative pattern, grouped by pattern length, plus the vector
// predictor that turns a feature vector into a label. A Detector is the
// cheap per-stream state: one sliding sample buffer of the longest
// pattern length, one dist.RollingStats per distinct pattern length
// (O(1) rolling mean/variance per sample), and one two-word
// dist.StreamScan per pattern — tens of bytes per matcher, the budget
// that lets a single process hold the detectors of 100k+ live streams.
//
// Correctness contract (pinned by the property tests): after feeding
// any series through a Detector — sample by sample or in arbitrary
// chunks — every pattern's (distance, argmin position) is bit-identical
// to the batch dist.Matcher.Best sweep over the assembled series, and
// the per-sample raw label equals the batch classifier's Predict over
// the assembled prefix, for every prefix past warm-up. The throughput
// story is only allowed on top of that equivalence.
//
// Events: each appended sample (past warm-up) yields a raw label; a
// hysteresis gate — ConfirmWindows consecutive agreeing samples, then a
// Refractory dead time — turns the raw label flutter into committed
// class-change events with bounded retained history. Events carry
// sample indices, never wall-clock times: the package is fully
// deterministic (it is in rpmlint's deterministic set) and a replayed
// stream reproduces its event log bit for bit.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"rpm/internal/dist"
)

// Predictor turns a feature vector (closest-match distance per pattern,
// in pattern order) into a class label. rpm.Classifier.PredictVector is
// the production implementation; tests substitute trivial ones.
type Predictor interface {
	PredictVector(feat []float64) int
}

// Model is the shared immutable streaming state of one classifier:
// matchers grouped by pattern length (every pattern of one length reads
// the same rolling window stats, the streaming analogue of
// dist.BestQueryGroup) and the vector predictor. One Model serves any
// number of concurrent Detectors.
type Model struct {
	pred Predictor
	// ordered are the matchers re-sorted into group (length) order;
	// featOf[a] maps ordered[a] back to its feature slot.
	ordered []*dist.Matcher
	featOf  []int
	groups  []group
	maxLen  int
	k       int
}

// group is one pattern length's half-open range [lo, hi) into the
// grouped matcher ordering.
type group struct {
	n      int
	lo, hi int
}

// NewModel builds the shared streaming state over the given patterns
// (pattern k feeds feature slot k) and predictor. Every pattern must be
// non-empty and there must be at least one; pred must be non-nil.
func NewModel(patterns [][]float64, pred Predictor) (*Model, error) {
	if len(patterns) == 0 {
		return nil, errors.New("stream: model has no patterns")
	}
	if pred == nil {
		return nil, errors.New("stream: nil predictor")
	}
	m := &Model{pred: pred, k: len(patterns)}
	matchers := make([]*dist.Matcher, len(patterns))
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("stream: pattern %d is empty", i)
		}
		matchers[i] = dist.NewMatcher(p)
		if len(p) > m.maxLen {
			m.maxLen = len(p)
		}
	}
	// Group by length ascending, preserving pattern order within each
	// group (the transformer's idiom: output slots are per-pattern, so
	// group order is free; sorting just makes it deterministic).
	byLen := make(map[int][]int)
	for k, mt := range matchers {
		byLen[mt.Len()] = append(byLen[mt.Len()], k)
	}
	lens := make([]int, 0, len(byLen))
	for n := range byLen {
		lens = append(lens, n)
	}
	sort.Ints(lens)
	for _, n := range lens {
		lo := len(m.ordered)
		for _, k := range byLen[n] {
			m.ordered = append(m.ordered, matchers[k])
			m.featOf = append(m.featOf, k)
		}
		m.groups = append(m.groups, group{n: n, lo: lo, hi: len(m.ordered)})
	}
	return m, nil
}

// NumPatterns returns the model's pattern count (the feature dimension).
func (m *Model) NumPatterns() int { return m.k }

// MaxPatternLen returns the longest pattern length — the minimum
// warm-up and the sliding-buffer size every Detector carries.
func (m *Model) MaxPatternLen() int { return m.maxLen }

// Event kinds.
const (
	// KindStart is the one-time event committing the first label after
	// warm-up (Prev == Label).
	KindStart = "start"
	// KindChange is a committed class change that survived the
	// hysteresis gate.
	KindChange = "change"
)

// Event is one committed label event of a stream. All fields are
// deterministic functions of the sample stream: Seq is the 0-based
// per-stream event index, Sample the index of the sample that committed
// the event.
type Event struct {
	Seq    int    `json:"seq"`
	Sample int64  `json:"sample"`
	Label  int    `json:"label"`
	Prev   int    `json:"prev"`
	Kind   string `json:"kind"`
}

// Config tunes a Detector. The zero value of each field selects the
// documented default.
type Config struct {
	// ConfirmWindows is the hysteresis depth K: a label change commits
	// only after K consecutive samples classify to the same new label
	// (default 3; 1 commits immediately).
	ConfirmWindows int
	// Refractory is the dead time after a committed change, in samples,
	// during which no further change may commit — the alarm-suppression
	// knob that stops a boundary from re-firing (default 0).
	Refractory int
	// Warmup is how many samples must arrive before classification (and
	// event emission) begins. It is clamped up to the longest pattern
	// length — before that, some feature is not yet a real window
	// distance (default: exactly the longest pattern length, the
	// earliest sound point).
	Warmup int
	// MaxEvents bounds the retained event history per stream
	// (EventsSince replay window; default 256, minimum 1).
	MaxEvents int
}

func (c Config) withDefaults(maxLen int) Config {
	if c.ConfirmWindows <= 0 {
		c.ConfirmWindows = 3
	}
	if c.Refractory < 0 {
		c.Refractory = 0
	}
	if c.Warmup < maxLen {
		c.Warmup = maxLen
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 256
	}
	return c
}

// Detector is the per-stream incremental inference state. It is NOT
// safe for concurrent use; the Registry's Stream wrapper serializes
// access. All state is allocated at construction — steady-state Append
// allocates nothing per sample (pinned by the soak test's
// AllocsPerRun).
type Detector struct {
	m   *Model
	cfg Config

	// buf is the sliding window over the stream's tail: the last
	// keep = maxLen+1 samples stay contiguous (windows of every length
	// slice directly out of it; the +1 retains the sample leaving the
	// longest window for the rolling-stats slide). Capacity 2*keep turns
	// the slide into an amortized-O(1) compaction instead of a per-sample
	// copy.
	buf  []float64
	keep int

	stats []dist.RollingStats // one per group (distinct pattern length)
	scans []dist.StreamScan   // one per matcher, grouped ordering
	feat  []float64           // feature vector, pattern order
	seen  int64

	started        bool
	label          int // committed label
	raw            int // last raw (per-sample) label
	cand           int
	candRun        int
	refractoryLeft int

	seq     int     // next event sequence number
	ring    []Event // retained events; cap cfg.MaxEvents
	scratch []Event // events emitted by the Append in progress
}

// NewDetector builds a fresh detector over the model.
func (m *Model) NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults(m.maxLen)
	keep := m.maxLen + 1
	d := &Detector{
		m:       m,
		cfg:     cfg,
		buf:     make([]float64, 0, 2*keep),
		keep:    keep,
		stats:   make([]dist.RollingStats, len(m.groups)),
		scans:   make([]dist.StreamScan, len(m.ordered)),
		feat:    make([]float64, m.k),
		ring:    make([]Event, 0, cfg.MaxEvents),
		scratch: make([]Event, 0, 4),
	}
	for gi := range d.stats {
		d.stats[gi] = dist.NewRollingStats(m.groups[gi].n)
	}
	for a := range d.scans {
		d.scans[a].Reset()
	}
	for k := range d.feat {
		d.feat[k] = math.Inf(1)
	}
	return d
}

// Append feeds a chunk of samples through the detector and returns the
// events it committed, in order. The returned slice is scratch — valid
// until the next Append; callers that retain events must copy them
// (Registry.Stream does).
//
//rpmlint:hotpath PR8 stream path: 0 allocs/sample at steady state
func (d *Detector) Append(chunk []float64) []Event {
	d.scratch = d.scratch[:0]
	for _, x := range chunk {
		d.push(x)
	}
	return d.scratch
}

// push consumes one sample: slide the buffer, advance every length's
// rolling stats, fold the completed windows into the per-pattern scans
// (the bit-identical streaming Best), then classify and run the
// hysteresis gate.
func (d *Detector) push(x float64) {
	t := d.seen
	if len(d.buf) == cap(d.buf) {
		copy(d.buf[:d.keep], d.buf[len(d.buf)-d.keep:])
		d.buf = d.buf[:d.keep]
	}
	d.buf = append(d.buf, x) //rpmlint:ignore hotpathalloc never grows: the ring slide above caps len at keep < cap
	bl := len(d.buf)
	for gi := range d.m.groups {
		g := &d.m.groups[gi]
		rs := &d.stats[gi]
		var out float64
		if rs.Full() {
			out = d.buf[bl-g.n-1] // the sample leaving this length's window
		}
		mean, inv, ok := rs.Push(x, out)
		if !ok {
			continue // this length's first window is still filling
		}
		pos := int(t) + 1 - g.n
		w := d.buf[bl-g.n : bl]
		for a := g.lo; a < g.hi; a++ {
			d.m.ordered[a].StreamEval(&d.scans[a], w, mean, inv, pos)
		}
	}
	d.seen = t + 1
	if d.seen < int64(d.cfg.Warmup) {
		return
	}
	for a, mt := range d.m.ordered {
		d.feat[d.m.featOf[a]] = mt.StreamMatch(&d.scans[a]).Dist
	}
	//rpmlint:ignore hotpathalloc Predictor is the svm adapter; svm.Model.Predict carries its own hotpath proof
	raw := d.m.pred.PredictVector(d.feat)
	d.raw = raw
	if !d.started {
		d.started = true
		d.label = raw
		d.cand = raw
		d.emit(KindStart, t, raw, raw)
		return
	}
	if d.refractoryLeft > 0 {
		// Dead time: observe but never accumulate toward a change, so a
		// just-committed boundary cannot immediately re-fire.
		d.refractoryLeft--
		d.cand = d.label
		d.candRun = 0
		return
	}
	if raw == d.label {
		d.cand = d.label
		d.candRun = 0
		return
	}
	if raw == d.cand {
		d.candRun++
	} else {
		d.cand = raw
		d.candRun = 1
	}
	if d.candRun >= d.cfg.ConfirmWindows {
		d.emit(KindChange, t, raw, d.label)
		d.label = raw
		d.cand = raw
		d.candRun = 0
		d.refractoryLeft = d.cfg.Refractory
	}
}

// emit appends an event to the retained ring and the Append scratch.
func (d *Detector) emit(kind string, sample int64, label, prev int) {
	e := Event{Seq: d.seq, Sample: sample, Label: label, Prev: prev, Kind: kind}
	d.seq++
	if len(d.ring) < cap(d.ring) {
		d.ring = append(d.ring, e) //rpmlint:ignore hotpathalloc guarded by len < cap: fills the preallocated ring, never grows it
	} else {
		d.ring[e.Seq%cap(d.ring)] = e
	}
	d.scratch = append(d.scratch, e) //rpmlint:ignore hotpathalloc grows to the per-Append event high-water mark, then reused
}

// Seen returns the number of samples consumed.
func (d *Detector) Seen() int64 { return d.seen }

// Warm reports whether classification has begun.
func (d *Detector) Warm() bool { return d.seen >= int64(d.cfg.Warmup) }

// Label returns the committed (hysteresis-gated) label; ok is false
// until warm-up completes.
func (d *Detector) Label() (label int, ok bool) { return d.label, d.started }

// Raw returns the last per-sample label before hysteresis; ok is false
// until warm-up completes.
func (d *Detector) Raw() (label int, ok bool) { return d.raw, d.started }

// EventSeq returns the next event sequence number (== events committed
// so far).
func (d *Detector) EventSeq() int { return d.seq }

// EventsSince returns a copy of the retained events with Seq > since,
// in order. since -1 replays the full retained window. Events older
// than the MaxEvents ring have been discarded; callers needing a
// lossless horizon size the ring accordingly.
func (d *Detector) EventsSince(since int) []Event {
	lo := d.seq - len(d.ring)
	if lo <= since {
		lo = since + 1
	}
	if lo >= d.seq {
		return nil
	}
	out := make([]Event, 0, d.seq-lo)
	for s := lo; s < d.seq; s++ {
		out = append(out, d.ring[s%cap(d.ring)])
	}
	return out
}

// Matches writes each pattern's current streaming Match (distance and
// argmin position over all complete windows so far) into out, which
// must have NumPatterns entries. It exists for the equivalence tests.
func (d *Detector) Matches(out []dist.Match) {
	if len(out) != d.m.k {
		panic("stream: Matches out length mismatch")
	}
	for a, mt := range d.m.ordered {
		out[d.m.featOf[a]] = mt.StreamMatch(&d.scans[a])
	}
}

// Features writes the current feature vector (per-pattern streaming
// distances, +Inf where no window is complete) into out, which must
// have NumPatterns entries.
func (d *Detector) Features(out []float64) {
	if len(out) != d.m.k {
		panic("stream: Features out length mismatch")
	}
	for a, mt := range d.m.ordered {
		out[d.m.featOf[a]] = mt.StreamMatch(&d.scans[a]).Dist
	}
}

// Bytes returns the detector's fixed memory footprint in bytes: every
// buffer is sized at construction, so this is also the steady-state
// footprint (the per-stream budget the Registry's byte gauge sums).
func (d *Detector) Bytes() int {
	const (
		f64   = int(unsafe.Sizeof(float64(0)))
		stat  = int(unsafe.Sizeof(dist.RollingStats{}))
		scan  = int(unsafe.Sizeof(dist.StreamScan{}))
		event = int(unsafe.Sizeof(Event{}))
	)
	return int(unsafe.Sizeof(*d)) +
		cap(d.buf)*f64 +
		len(d.stats)*stat +
		len(d.scans)*scan +
		len(d.feat)*f64 +
		cap(d.ring)*event +
		cap(d.scratch)*event
}
