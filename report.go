package rpm

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"rpm/internal/core"
	"rpm/internal/obs"
)

// Canonical stage (span) and counter names appearing in TrainReport,
// re-exported from the training pipeline so callers can look values up
// without string drift. See DESIGN.md §9 for the full glossary and the
// mapping back to the paper's sections.
const (
	// Stages (the span tree under StageTrain).
	StageTrain       = core.SpanTrain       // whole training run
	StageParamSearch = core.SpanParamSearch // §4 / Algorithm 3 SAX-parameter search
	StageCandidates  = core.SpanCandidates  // per-class candidate generation fan-out
	StageStep1       = core.SpanStep1       // §3.2.1 SAX discretization (aggregate)
	StageStep2       = core.SpanStep2       // §3.2.2 grammar induction + clustering (aggregate)
	StageStep3       = core.SpanStep3       // §3.2.3 τ-pruning, transform, CFS
	StageFit         = core.SpanFit         // final transform + SVM fit

	// Counters.
	CounterCandidates      = core.CtrCandidates      // candidates before pruning (Table 2's driver)
	CounterCandidatesClass = core.CtrCandidatesClass // + class label: per-class breakdown
	CounterClustersKept    = core.CtrClustersKept    // refined clusters meeting the γ support bound
	CounterClustersDropped = core.CtrClustersDropped // refined clusters below it
	CounterPruneKept       = core.CtrPruneKept       // candidates surviving the τ threshold
	CounterPruneDropped    = core.CtrPruneDropped    // near-duplicates removed by it
	CounterSearchEvals     = core.CtrSearchEvals     // full parameter-vector evaluations
	CounterCacheHits       = core.CtrSearchCacheHits // parameter-cache hits
	CounterCacheMisses     = core.CtrSearchCacheMiss // parameter-cache misses
	CounterCFSExpansions   = core.CtrCFSExpansions   // CFS best-first node expansions
	CounterCFSSelected     = core.CtrCFSSelected     // patterns CFS kept
)

// StageTiming is one node of the training timing tree. Wall is the
// node's accumulated wall-clock time; for aggregate stages (StageStep1,
// StageStep2) it is the summed per-class work, which under Workers > 1
// can exceed the parent's wall. Count is the number of intervals folded
// in (e.g. classes, for aggregate stages).
type StageTiming struct {
	Name     string        `json:"name"`
	Wall     time.Duration `json:"wallNS"`
	Busy     time.Duration `json:"busyNS,omitempty"`
	Count    int64         `json:"count,omitempty"`
	Children []StageTiming `json:"children,omitempty"`
}

// PoolUsage is one worker pool's cumulative accounting: how many tasks
// ran, how the busy time compares to the scheduled capacity (Idle =
// workers×wall − busy), and how evenly tasks spread over worker slots.
type PoolUsage struct {
	Name           string        `json:"name"`
	Runs           int64         `json:"runs"`
	Tasks          int64         `json:"tasks"`
	Busy           time.Duration `json:"busyNS"`
	Wall           time.Duration `json:"wallNS"`
	Idle           time.Duration `json:"idleNS"`
	MaxWorkers     int           `json:"maxWorkers"`
	TasksPerWorker []int64       `json:"tasksPerWorker,omitempty"`
}

// TrainReport is the instrumentation record of one training run:
// the stage timing tree, the pipeline counters (see the Counter*
// constants), gauges, and per-pool worker usage. Produced by
// Classifier.TrainReport after training with Options.Instrument.
//
// The report is a passive record — reading it, rendering it, or
// discarding it never affects the classifier.
type TrainReport struct {
	Stages   []StageTiming    `json:"stages,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	Pools    []PoolUsage      `json:"pools,omitempty"`
}

// TrainReport returns the instrumentation gathered while this classifier
// trained, or nil when training ran without Options.Instrument (or the
// model was loaded from a snapshot — reports are not serialized).
func (c *Classifier) TrainReport() *TrainReport {
	return reportFromSnapshot(c.inner.TrainSnapshot())
}

// Counter returns a counter's value by name (see the Counter*
// constants); 0 when absent or on a nil report.
func (r *TrainReport) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.Counters[name]
}

// Gauge returns a gauge's value by name (e.g. the worker bound recorded
// under "workers"); 0 when absent or on a nil report.
func (r *TrainReport) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	return r.Gauges[name]
}

// Stage returns the first stage with the given name (depth-first over
// the timing tree), or nil.
func (r *TrainReport) Stage(name string) *StageTiming {
	if r == nil {
		return nil
	}
	for i := range r.Stages {
		if f := findStage(&r.Stages[i], name); f != nil {
			return f
		}
	}
	return nil
}

func findStage(s *StageTiming, name string) *StageTiming {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if f := findStage(&s.Children[i], name); f != nil {
			return f
		}
	}
	return nil
}

// JSON renders the report as indented JSON with a stable field order
// (stages in creation order, counters/gauges name-sorted by Go's map
// marshaling, pools name-sorted).
func (r *TrainReport) JSON() ([]byte, error) {
	if r == nil {
		return []byte("null"), nil
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A TrainReport is plain data; marshaling it cannot fail unless
		// an invariant broke, so classify as internal.
		return nil, apiErr("TrainReport.JSON", ErrInternal, err)
	}
	return b, nil
}

// String renders the report for humans: the stage tree with durations,
// then counters, gauges and pool usage.
func (r *TrainReport) String() string {
	if r == nil {
		return "(not instrumented)\n"
	}
	var b strings.Builder
	if len(r.Stages) > 0 {
		b.WriteString("stages:\n")
		for _, s := range r.Stages {
			writeStage(&b, s, 1)
		}
	}
	if len(r.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(r.Counters) {
			fmt.Fprintf(&b, "  %-36s %d\n", name, r.Counters[name])
		}
	}
	if len(r.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(r.Gauges) {
			fmt.Fprintf(&b, "  %-36s %d\n", name, r.Gauges[name])
		}
	}
	if len(r.Pools) > 0 {
		b.WriteString("pools:\n")
		for _, p := range r.Pools {
			fmt.Fprintf(&b, "  %-28s runs=%d tasks=%d busy=%s idle=%s maxWorkers=%d\n",
				p.Name, p.Runs, p.Tasks, p.Busy.Round(time.Microsecond),
				p.Idle.Round(time.Microsecond), p.MaxWorkers)
		}
	}
	return b.String()
}

func writeStage(b *strings.Builder, s StageTiming, depth int) {
	fmt.Fprintf(b, "%s%-*s wall=%s", strings.Repeat("  ", depth), 36-2*depth, s.Name,
		s.Wall.Round(time.Microsecond))
	if s.Count > 1 {
		fmt.Fprintf(b, " n=%d", s.Count)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeStage(b, c, depth+1)
	}
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort: maps here hold a handful of entries
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// reportFromSnapshot converts the internal snapshot into the public,
// self-contained report type. Nil in, nil out.
func reportFromSnapshot(s *obs.Snapshot) *TrainReport {
	if s == nil {
		return nil
	}
	r := &TrainReport{}
	for _, sp := range s.Spans {
		r.Stages = append(r.Stages, stageFromSpan(sp))
	}
	if len(s.Counters) > 0 {
		r.Counters = make(map[string]int64, len(s.Counters))
		for _, c := range s.Counters {
			r.Counters[c.Name] = c.Value
		}
	}
	if len(s.Gauges) > 0 {
		r.Gauges = make(map[string]int64, len(s.Gauges))
		for _, g := range s.Gauges {
			r.Gauges[g.Name] = g.Value
		}
	}
	for _, p := range s.Pools {
		r.Pools = append(r.Pools, PoolUsage{
			Name:           p.Name,
			Runs:           p.Runs,
			Tasks:          p.Tasks,
			Busy:           time.Duration(p.BusyNS),
			Wall:           time.Duration(p.WallNS),
			Idle:           time.Duration(p.IdleNS),
			MaxWorkers:     p.MaxWorkers,
			TasksPerWorker: p.TasksPerWorker,
		})
	}
	return r
}

func stageFromSpan(s obs.SpanSnapshot) StageTiming {
	out := StageTiming{
		Name:  s.Name,
		Wall:  time.Duration(s.WallNS),
		Busy:  time.Duration(s.BusyNS),
		Count: s.Count,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, stageFromSpan(c))
	}
	return out
}
