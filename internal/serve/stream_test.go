package serve

// End-to-end tests of the streaming endpoints (DESIGN.md §14): happy
// path with equivalence against an in-process detector, the per-stream
// error taxonomy (404/413/429/400/503), the SSE event feed with
// Last-Event-ID resume, and drain semantics with open feeds.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rpm"
	"rpm/internal/stream"
)

type sseEvent struct {
	id    int
	kind  string
	event stream.Event
}

// readSSE consumes one SSE event (id/event/data frame group) from the
// feed. ok=false means the feed ended; a non-nil error means a frame
// did not parse. No *testing.T here: this runs on reader goroutines.
func readSSE(sc *bufio.Scanner) (ev sseEvent, ok bool, err error) {
	got := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if got {
				return ev, true, nil
			}
		case strings.HasPrefix(line, "id: "):
			if _, err := fmt.Sscanf(line, "id: %d", &ev.id); err != nil {
				return ev, false, fmt.Errorf("bad id frame %q: %v", line, err)
			}
			got = true
		case strings.HasPrefix(line, "event: "):
			ev.kind = strings.TrimPrefix(line, "event: ")
			got = true
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.event); err != nil {
				return ev, false, fmt.Errorf("bad data frame %q: %v", line, err)
			}
			got = true
		}
	}
	return ev, false, nil
}

// streamBody marshals a stream append request.
func streamBody(model string, values []float64) string {
	b, _ := json.Marshal(streamAppendRequest{Model: model, Values: values})
	return string(b)
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func doDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// referenceDetector builds the in-process twin of a served stream:
// same model snapshot, same gate configuration as a server running cfg.
func referenceDetector(t *testing.T, clf *rpm.Classifier, cfg Config) *stream.Detector {
	t.Helper()
	pats := clf.Patterns()
	raw := make([][]float64, len(pats))
	for i, p := range pats {
		raw[i] = p.Values
	}
	m, err := stream.NewModel(raw, clf)
	if err != nil {
		t.Fatal(err)
	}
	return m.NewDetector(stream.Config{
		ConfirmWindows: cfg.StreamConfirm,
		Refractory:     cfg.StreamRefractory,
		MaxEvents:      cfg.StreamEvents,
	})
}

// eventfulSeries finds a probe signal that commits at least minEvents
// events under the given gate: concatenations of test instances from
// different classes, searched deterministically. The expected events
// come from the in-process reference detector.
func eventfulSeries(t *testing.T, clf *rpm.Classifier, cfg Config, minEvents int) ([]float64, []stream.Event) {
	t.Helper()
	test := rpm.GenerateDataset("SynCBF", 1).Test
	for a := 0; a < len(test) && a < 8; a++ {
		for b := 0; b < len(test) && b < 8; b++ {
			if test[a].Label == test[b].Label {
				continue
			}
			var series []float64
			series = append(series, test[a].Values...)
			series = append(series, test[b].Values...)
			series = append(series, test[a].Values...)
			d := referenceDetector(t, clf, cfg)
			evs := d.Append(series)
			if len(evs) >= minEvents {
				return series, append([]stream.Event(nil), evs...)
			}
		}
	}
	t.Fatal("no probe concatenation commits enough events; gate config too strict for the fixture")
	return nil, nil
}

// TestStreamHappyPathEquivalence drives a stream over HTTP in chunks
// and asserts the served state and events are identical to the
// in-process reference detector fed the same samples — the serving
// layer adds transport, not semantics.
func TestStreamHappyPathEquivalence(t *testing.T) {
	cfg := Config{StreamConfirm: 1}
	_, ts, _ := newTestServer(t, func(c *Config) { c.StreamConfirm = 1 })
	series, wantEvents := eventfulSeries(t, fixClf1, cfg, 2)
	ref := referenceDetector(t, fixClf1, cfg)

	var gotEvents []stream.Event
	var last streamAppendResponse
	for i := 0; i < len(series); {
		n := 37 // deliberately unaligned chunking
		if i+n > len(series) {
			n = len(series) - i
		}
		chunk := series[i : i+n]
		resp, body := postJSON(t, ts.URL+"/v1/streams/s1", streamBody("cbf", chunk))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append at %d: status %d: %s", i, resp.StatusCode, body)
		}
		last = streamAppendResponse{}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		if (i == 0) != last.Created {
			t.Fatalf("append at %d: created=%v", i, last.Created)
		}
		if last.Appended != n {
			t.Fatalf("append at %d: appended=%d, want %d", i, last.Appended, n)
		}
		refEvs := ref.Append(chunk)
		if len(refEvs) != len(last.NewEvents) {
			t.Fatalf("append at %d: %d events served, reference committed %d", i, len(last.NewEvents), len(refEvs))
		}
		gotEvents = append(gotEvents, last.NewEvents...)
		i += n
	}
	if last.Seen != int64(len(series)) || last.Model != "cbf" || last.Version != 1 {
		t.Fatalf("final state %+v", last.streamState)
	}
	refLabel, started := ref.Label()
	if !started || last.Label == nil || *last.Label != refLabel {
		t.Fatalf("served label %v != reference committed label %d", last.Label, refLabel)
	}
	if fmt.Sprint(gotEvents) != fmt.Sprint(wantEvents) {
		t.Fatalf("served events diverged from reference:\n%+v\nvs\n%+v", gotEvents, wantEvents)
	}

	// GET state agrees with the last append; the list includes the stream.
	resp, body := getJSON(t, ts.URL+"/v1/streams/s1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: %d %s", resp.StatusCode, body)
	}
	var st streamState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Seen != last.Seen || st.Events != last.Events || st.Label == nil || *st.Label != *last.Label {
		t.Fatalf("GET state %+v != append state %+v", st, last.streamState)
	}
	resp, body = getJSON(t, ts.URL+"/v1/streams")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"s1"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	// DELETE ends the stream; state reads 404 afterwards.
	resp, body = doDelete(t, ts.URL+"/v1/streams/s1")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"deleted":true`) {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/streams/s1")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete: %d %s", resp.StatusCode, body)
	}
}

// TestStreamErrorTaxonomy walks the per-stream error surface: every
// failure is a typed envelope with the documented status and code.
func TestStreamErrorTaxonomy(t *testing.T) {
	// MaxStreams 2 leaves one slot of headroom: capacity is checked
	// before model resolution (shed before work), so the unknown-model
	// case needs a free slot to reach the 404.
	s, ts, _ := newTestServer(t, func(c *Config) {
		c.MaxStreams = 2
		c.MaxStreamChunk = 4
	})
	// Seed the one allowed stream.
	resp, body := postJSON(t, ts.URL+"/v1/streams/only", streamBody("cbf", []float64{1, 2, 3}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed append: %d %s", resp.StatusCode, body)
	}
	cases := []struct {
		name   string
		do     func(t *testing.T) (*http.Response, []byte)
		status int
		code   string
	}{
		{"unknown stream GET", func(t *testing.T) (*http.Response, []byte) {
			return getJSON(t, ts.URL+"/v1/streams/ghost")
		}, http.StatusNotFound, "not_found"},
		{"unknown stream DELETE", func(t *testing.T) (*http.Response, []byte) {
			return doDelete(t, ts.URL+"/v1/streams/ghost")
		}, http.StatusNotFound, "not_found"},
		{"unknown stream events", func(t *testing.T) (*http.Response, []byte) {
			return getJSON(t, ts.URL+"/v1/streams/ghost/events")
		}, http.StatusNotFound, "not_found"},
		{"unknown model on create", func(t *testing.T) (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/streams/only2", streamBody("ghost", []float64{1}))
		}, http.StatusNotFound, "not_found"},
		{"chunk too large", func(t *testing.T) (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/streams/only", streamBody("", []float64{1, 2, 3, 4, 5}))
		}, http.StatusRequestEntityTooLarge, "too_large"},
		{"empty chunk", func(t *testing.T) (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/streams/only", streamBody("", nil))
		}, http.StatusBadRequest, "bad_input"},
		{"malformed JSON", func(t *testing.T) (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/streams/only", `{"values":[1,`)
		}, http.StatusBadRequest, "bad_input"},
		{"non-finite value", func(t *testing.T) (*http.Response, []byte) {
			// 1e999 overflows float64 at decode time; the decoder rejects it
			// before validateChunk ever runs — still a typed 400.
			return postJSON(t, ts.URL+"/v1/streams/only", `{"values":[1e999]}`)
		}, http.StatusBadRequest, "bad_input"},
		{"bound-model mismatch", func(t *testing.T) (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/streams/only", streamBody("other", []float64{1}))
		}, http.StatusBadRequest, "bad_input"},
		{"capacity shed", func(t *testing.T) (*http.Response, []byte) {
			if resp, body := postJSON(t, ts.URL+"/v1/streams/filler", streamBody("cbf", []float64{1})); resp.StatusCode != http.StatusOK {
				t.Fatalf("filler stream: %d %s", resp.StatusCode, body)
			}
			resp, body := postJSON(t, ts.URL+"/v1/streams/extra", streamBody("cbf", []float64{1}))
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			return resp, body
		}, http.StatusTooManyRequests, "overloaded"},
		{"bad since", func(t *testing.T) (*http.Response, []byte) {
			return getJSON(t, ts.URL+"/v1/streams/only/events?since=nope")
		}, http.StatusBadRequest, "bad_input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := tc.do(t)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("body is not the error envelope: %s", body)
			}
			if env.Error.Code != tc.code || env.Error.Status != tc.status {
				t.Fatalf("envelope %+v, want code %q status %d", env.Error, tc.code, tc.status)
			}
		})
	}

	// Draining: stream appends answer 503 like every other endpoint.
	s.BeginDrain()
	resp, body = postJSON(t, ts.URL+"/v1/streams/only", streamBody("", []float64{1}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append while draining: %d %s", resp.StatusCode, body)
	}
}

// TestValidateChunkNonFinite exercises the non-finite branch of
// validateChunk directly: JSON cannot carry NaN/Inf (the decoder
// rejects them first), so the guard is defense-in-depth for any future
// binary ingest path — it must stay a typed bad_input.
func TestValidateChunkNonFinite(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	for _, v := range []float64{nan(), inf()} {
		err := s.validateChunk([]float64{1, v, 3})
		if err == nil {
			t.Fatalf("non-finite chunk value %v accepted", v)
		}
		status, code := errorStatus(err)
		if status != http.StatusBadRequest || code != "bad_input" {
			t.Fatalf("non-finite chunk: status %d code %q", status, code)
		}
	}
	if err := s.validateChunk([]float64{1, 2, 3}); err != nil {
		t.Fatalf("finite chunk rejected: %v", err)
	}
}

func nan() float64 { f := 0.0; return f / f }
func inf() float64 { f := 1.0; return f / 0.0 }

// TestStreamRejectsUnstreamableModel pins stream creation against a
// model that cannot stream: the rotation-invariant transform needs the
// whole series, so creation answers 400 bad_input with the reason —
// while /v1/predict on the same model keeps working.
func TestStreamRejectsUnstreamableModel(t *testing.T) {
	fixtures(t)
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 40, PAA: 6, Alphabet: 4}
	opts.Workers = 1
	opts.RotationInvariant = true
	clf, err := rpm.Train(rpm.GenerateDataset("SynCBF", 1).Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, ts, dir := newTestServer(t, nil)
	writeModel(t, dir, "rot", buf.Bytes())
	if _, body := postJSON(t, ts.URL+"/admin/reload", ""); !strings.Contains(string(body), "rot") {
		t.Fatalf("reload did not pick up the rotation model: %s", body)
	}
	resp, body := postJSON(t, ts.URL+"/v1/streams/r1", streamBody("rot", []float64{1, 2, 3}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rotation-invariant stream create: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "rotation") {
		t.Fatalf("error does not explain the rejection: %s", body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictBody("rot", fixProbe[0].Values))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict on rotation model: %d %s", resp.StatusCode, body)
	}
}

// TestStreamSSEFeedAndResume subscribes to a stream's SSE feed,
// verifies the live events match the reference detector, then
// reconnects with Last-Event-ID and verifies the resume replays
// exactly the missed tail — no duplicates, no losses.
func TestStreamSSEFeedAndResume(t *testing.T) {
	cfg := Config{StreamConfirm: 1}
	_, ts, _ := newTestServer(t, func(c *Config) { c.StreamConfirm = 1 })
	series, wantEvents := eventfulSeries(t, fixClf1, cfg, 3)

	// Create the stream with the first half, then subscribe, then feed
	// the rest: the feed must first replay retained history, then deliver
	// live events as they commit.
	half := len(series) / 2
	resp, body := postJSON(t, ts.URL+"/v1/streams/sse", streamBody("cbf", series[:half]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first half: %d %s", resp.StatusCode, body)
	}
	feed, err := http.Get(ts.URL + "/v1/streams/sse/events")
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Body.Close()
	if feed.StatusCode != http.StatusOK || !strings.HasPrefix(feed.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("SSE connect: %d %q", feed.StatusCode, feed.Header.Get("Content-Type"))
	}
	type recv struct {
		ev  sseEvent
		ok  bool
		err error
	}
	events := make(chan recv, 64)
	go func() {
		sc := bufio.NewScanner(feed.Body)
		for {
			ev, ok, err := readSSE(sc)
			events <- recv{ev, ok, err}
			if !ok {
				return
			}
		}
	}()
	for i := half; i < len(series); {
		n := 23
		if i+n > len(series) {
			n = len(series) - i
		}
		if resp, body := postJSON(t, ts.URL+"/v1/streams/sse", streamBody("", series[i:i+n])); resp.StatusCode != http.StatusOK {
			t.Fatalf("append at %d: %d %s", i, resp.StatusCode, body)
		}
		i += n
	}
	var got []stream.Event
	for len(got) < len(wantEvents) {
		select {
		case r := <-events:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if !r.ok {
				t.Fatalf("feed ended after %d/%d events", len(got), len(wantEvents))
			}
			got = append(got, r.ev.event)
			if r.ev.id != r.ev.event.Seq || r.ev.kind != r.ev.event.Kind {
				t.Fatalf("SSE framing disagrees with payload: %+v", r.ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d/%d events", len(got), len(wantEvents))
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(wantEvents) {
		t.Fatalf("SSE events diverged from reference:\n%+v\nvs\n%+v", got, wantEvents)
	}

	// Resume from the middle: a reconnect with Last-Event-ID replays
	// exactly the events after the cursor — the no-dup/no-loss contract.
	cut := len(wantEvents) / 2
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/streams/sse/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(wantEvents[cut].Seq))
	feed2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer feed2.Body.Close()
	sc := bufio.NewScanner(feed2.Body)
	for _, want := range wantEvents[cut+1:] {
		ev, ok, err := readSSE(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("resume feed ended early")
		}
		if ev.event != want {
			t.Fatalf("resume replayed %+v, want %+v", ev.event, want)
		}
	}

	// DELETE ends the live feed.
	if resp, body := doDelete(t, ts.URL+"/v1/streams/sse"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	waitFor(t, func() bool {
		select {
		case r := <-events:
			return !r.ok
		default:
			return false
		}
	})
}

// TestStreamDrainWithOpenSSE pins the shutdown ordering: BeginDrain
// must end open SSE feeds (they would otherwise hold
// http.Server.Shutdown hostage), post-drain appends answer 503, and
// Close completes within its budget with the registry emptied.
func TestStreamDrainWithOpenSSE(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/streams/d1", streamBody("cbf", []float64{1, 2, 3}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	feed, err := http.Get(ts.URL + "/v1/streams/d1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Body.Close()
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(feed.Body) // blocks until the feed ends
		done <- err
	}()
	s.BeginDrain()
	select {
	case <-done: // clean EOF (or transport close): the handler exited
	case <-time.After(5 * time.Second):
		t.Fatal("SSE feed still open 5s after BeginDrain")
	}
	resp, body = postJSON(t, ts.URL+"/v1/streams/d1", streamBody("", []float64{4}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append while draining: %d %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close with (formerly) open SSE: %v", err)
	}
	if s.Streams().Len() != 0 {
		t.Fatalf("streams survived Close: %d", s.Streams().Len())
	}
}

// TestStreamObsAccounting pins the streaming observability: request,
// sample, and lifecycle counters plus the live-stream gauges reflect
// what actually happened.
func TestStreamObsAccounting(t *testing.T) {
	s, ts, _ := newTestServer(t, func(c *Config) { c.StreamConfirm = 1 })
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+fmt.Sprintf("/v1/streams/o%d", i), streamBody("cbf", []float64{1, 2, 3, 4}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: %d %s", i, resp.StatusCode, body)
		}
	}
	snap := s.Obs().Snapshot()
	if got := snap.Counter(CtrRequestsStream); got != 3 {
		t.Fatalf("%s = %d, want 3", CtrRequestsStream, got)
	}
	if got := snap.Counter(CtrStreamSamples); got != 12 {
		t.Fatalf("%s = %d, want 12", CtrStreamSamples, got)
	}
	if got := snap.Counter(CtrStreamsCreated); got != 3 {
		t.Fatalf("%s = %d, want 3", CtrStreamsCreated, got)
	}
	if got := snap.Gauge(GaugeStreams); got != 3 {
		t.Fatalf("%s = %d, want 3", GaugeStreams, got)
	}
	if got := snap.Gauge(GaugeStreamBytes); got != s.Streams().Bytes() || got <= 0 {
		t.Fatalf("%s = %d, registry says %d", GaugeStreamBytes, got, s.Streams().Bytes())
	}
	if sum := snap.Summary(SumLatencyStream); sum == nil || sum.Count != 3 {
		t.Fatalf("%s missing or wrong count: %+v", SumLatencyStream, sum)
	}
	if resp, body := doDelete(t, ts.URL+"/v1/streams/o0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	snap = s.Obs().Snapshot()
	if got := snap.Counter(CtrStreamsClosed); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrStreamsClosed, got)
	}
	if got := snap.Gauge(GaugeStreams); got != 2 {
		t.Fatalf("%s = %d, want 2", GaugeStreams, got)
	}
}
