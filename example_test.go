package rpm_test

import (
	"bytes"
	"fmt"

	"rpm"
)

// ExampleTrain shows the minimal train/predict loop on a built-in
// synthetic dataset with fixed SAX parameters.
func ExampleTrain() {
	split := rpm.GenerateDataset("SynCBF", 1)
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 40, PAA: 6, Alphabet: 4}
	clf, err := rpm.Train(split.Train, opts)
	if err != nil {
		panic(err)
	}
	preds := clf.PredictBatch(split.Test)
	wrong := 0
	for i, p := range preds {
		if p != split.Test[i].Label {
			wrong++
		}
	}
	fmt.Println("patterns found:", len(clf.Patterns()) > 0)
	fmt.Println("error below 10%:", float64(wrong)/float64(len(preds)) < 0.10)
	// Output:
	// patterns found: true
	// error below 10%: true
}

// ExampleDiscoverMotifs runs the exploratory motif-discovery stage only.
func ExampleDiscoverMotifs() {
	split := rpm.GenerateDataset("SynCBF", 1)
	motifs := rpm.DiscoverMotifs(split.Train,
		rpm.SAXParams{Window: 40, PAA: 6, Alphabet: 4}, rpm.DefaultOptions())
	fmt.Println("classes with motifs:", len(motifs))
	allSupported := true
	for _, ms := range motifs {
		for _, m := range ms {
			if m.Support < 2 {
				allSupported = false
			}
		}
	}
	fmt.Println("every motif supported by >=2 instances:", allSupported)
	// Output:
	// classes with motifs: 3
	// every motif supported by >=2 instances: true
}

// ExampleClassifier_Save round-trips a trained model through its JSON
// serialization.
func ExampleClassifier_Save() {
	split := rpm.GenerateDataset("SynGunPoint", 1)
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 30, PAA: 6, Alphabet: 4}
	clf, err := rpm.Train(split.Train, opts)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		panic(err)
	}
	loaded, err := rpm.LoadClassifier(&buf)
	if err != nil {
		panic(err)
	}
	same := true
	for _, in := range split.Test[:10] {
		if loaded.Predict(in.Values) != clf.Predict(in.Values) {
			same = false
		}
	}
	fmt.Println("loaded model predicts identically:", same)
	// Output:
	// loaded model predicts identically: true
}

// ExamplePredictAll compares RPM with a nearest-neighbor baseline through
// the shared Model interface.
func ExamplePredictAll() {
	split := rpm.GenerateDataset("SynItalyPower", 1)
	nn, err := rpm.NewNNEuclidean(split.Train)
	if err != nil {
		panic(err)
	}
	preds := rpm.PredictAll(nn, split.Test)
	fmt.Println("predictions:", len(preds) == len(split.Test))
	// Output:
	// predictions: true
}
