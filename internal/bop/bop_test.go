package bop

import (
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/sax"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

func TestTrainPredictCBF(t *testing.T) {
	s := datagen.MustByName("SynCBF").Generate(1)
	m := Train(s.Train, sax.Params{Window: 40, PAA: 6, Alphabet: 4})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.25 {
		t.Errorf("BOP error on SynCBF = %v", e)
	}
}

func TestTrainPredictGunPoint(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(2)
	m := Train(s.Train, sax.Params{Window: 30, PAA: 6, Alphabet: 4})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.2 {
		t.Errorf("BOP error on SynGunPoint = %v", e)
	}
}

func TestUnknownWordsDropped(t *testing.T) {
	train := ts.Dataset{
		{Label: 1, Values: []float64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}},
		{Label: 2, Values: []float64{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}},
	}
	m := Train(train, sax.Params{Window: 6, PAA: 3, Alphabet: 3})
	// A wildly different series still gets some valid label.
	q := []float64{9, -9, 9, -9, 9, -9, 9, -9, 9, -9, 9, -9}
	if got := m.Predict(q); got != 1 && got != 2 {
		t.Errorf("Predict = %d", got)
	}
}

func TestWindowLargerThanSeries(t *testing.T) {
	train := ts.Dataset{
		{Label: 1, Values: []float64{0, 1, 2, 3}},
		{Label: 2, Values: []float64{3, 2, 1, 0}},
	}
	m := Train(train, sax.Params{Window: 100, PAA: 4, Alphabet: 3})
	if got := m.Predict([]float64{0, 1, 2, 3}); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Train(nil, sax.Params{Window: 10, PAA: 4, Alphabet: 4})
}

func TestParamsAccessor(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(3)
	p := sax.Params{Window: 10, PAA: 4, Alphabet: 4}
	if got := Train(s.Train, p).Params(); got != p {
		t.Errorf("Params = %v", got)
	}
}
