package serveclient

// Observability names recorded into the registry (rpmlint obsnames
// convention; aggregate across models — the per-model breaker state
// rides GaugeBreakerStatePrefix).
const (
	CtrAttempts        = "client.attempts"
	CtrRetries         = "client.retries"
	CtrBreakerRejected = "client.breaker.rejected"
	CtrBreakerOpened   = "client.breaker.opened"
	CtrBreakerClosed   = "client.breaker.closed"
	// GaugeBreakerStatePrefix + model key holds the breaker state of one
	// model: 0 closed, 1 open, 2 half-open.
	GaugeBreakerStatePrefix = "client.breaker.state."
)
