// Package stats provides the evaluation machinery used across the
// repository: error rate, per-class precision/recall/F-measure (the
// objective of RPM's parameter search, paper §4.1), stratified splits and
// k-fold cross-validation, percentiles (the τ threshold of §3.2.3), and the
// Wilcoxon signed-rank test used to compare classifiers in the paper's
// Figure 7.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rpm/internal/ts"
)

// ErrorRate returns the fraction of mismatching positions between
// predicted and truth. It panics on length mismatch and returns 0 for
// empty input.
func ErrorRate(predicted, truth []int) float64 {
	if len(predicted) != len(truth) {
		panic(fmt.Sprintf("stats: %d predictions for %d labels", len(predicted), len(truth)))
	}
	if len(truth) == 0 {
		return 0
	}
	wrong := 0
	for i := range truth {
		if predicted[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(truth))
}

// ClassF1 holds the per-class classification quality measures.
type ClassF1 struct {
	Class     int
	Precision float64
	Recall    float64
	F1        float64
}

// FMeasures computes per-class precision, recall and F1 from predictions.
// Classes absent from both predictions and truth are omitted. A class with
// no predicted positives has precision 0; with no actual positives, recall
// 0; F1 is 0 whenever precision+recall is 0.
func FMeasures(predicted, truth []int) []ClassF1 {
	if len(predicted) != len(truth) {
		panic(fmt.Sprintf("stats: %d predictions for %d labels", len(predicted), len(truth)))
	}
	classes := map[int]bool{}
	tp := map[int]int{}
	fp := map[int]int{}
	fn := map[int]int{}
	for i := range truth {
		classes[truth[i]] = true
		classes[predicted[i]] = true
		if predicted[i] == truth[i] {
			tp[truth[i]]++
		} else {
			fp[predicted[i]]++
			fn[truth[i]]++
		}
	}
	var ids []int
	for c := range classes {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	out := make([]ClassF1, 0, len(ids))
	for _, c := range ids {
		var p, r, f float64
		if tp[c]+fp[c] > 0 {
			p = float64(tp[c]) / float64(tp[c]+fp[c])
		}
		if tp[c]+fn[c] > 0 {
			r = float64(tp[c]) / float64(tp[c]+fn[c])
		}
		if p+r > 0 {
			f = 2 * p * r / (p + r)
		}
		out = append(out, ClassF1{Class: c, Precision: p, Recall: r, F1: f})
	}
	return out
}

// MacroF1 returns the unweighted mean F1 over classes.
func MacroF1(predicted, truth []int) float64 {
	ms := FMeasures(predicted, truth)
	if len(ms) == 0 {
		return 0
	}
	var s float64
	for _, m := range ms {
		s += m.F1
	}
	return s / float64(len(ms))
}

// StratifiedSplit randomly partitions d into a training part holding
// trainFrac of each class (rounded, but at least 1 instance per class on
// each side when the class has >= 2 instances) and a validation part. The
// split is driven by rng for reproducibility.
func StratifiedSplit(d ts.Dataset, trainFrac float64, rng *rand.Rand) (train, validate ts.Dataset) {
	for _, class := range d.Classes() {
		idx := classIndices(d, class)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		k := int(math.Round(trainFrac * float64(len(idx))))
		if len(idx) >= 2 {
			if k < 1 {
				k = 1
			}
			if k > len(idx)-1 {
				k = len(idx) - 1
			}
		} else if k > len(idx) {
			k = len(idx)
		}
		for i, id := range idx {
			if i < k {
				train = append(train, d[id])
			} else {
				validate = append(validate, d[id])
			}
		}
	}
	return train, validate
}

// KFold returns stratified k-fold index assignments: fold[i] is the fold
// (0..k-1) of instance i. Each class's instances are spread round-robin
// over the folds after shuffling.
func KFold(d ts.Dataset, k int, rng *rand.Rand) []int {
	if k < 2 {
		k = 2
	}
	fold := make([]int, len(d))
	for _, class := range d.Classes() {
		idx := classIndices(d, class)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, id := range idx {
			fold[id] = i % k
		}
	}
	return fold
}

func classIndices(d ts.Dataset, class int) []int {
	var idx []int
	for i, in := range d {
		if in.Label == class {
			idx = append(idx, i)
		}
	}
	return idx
}

// Percentile returns the p-th percentile (0..100) of values using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(values []float64, p float64) float64 {
	n := len(values)
	if n == 0 {
		return math.NaN()
	}
	v := make([]float64, n)
	copy(v, values)
	sort.Float64s(v)
	if p <= 0 {
		return v[0]
	}
	if p >= 100 {
		return v[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return v[n-1]
	}
	return v[lo]*(1-frac) + v[lo+1]*frac
}

// WilcoxonSignedRank performs the two-sided Wilcoxon signed-rank test on
// paired samples a and b and returns the p-value. Zero differences are
// dropped (Wilcoxon's original treatment); tied absolute differences get
// average ranks. For n <= 25 non-zero pairs the exact null distribution is
// enumerated by dynamic programming (exactness holds when there are no
// ties); larger samples use the normal approximation with tie and
// continuity corrections. With fewer than 2 usable pairs the test is
// uninformative and p = 1 is returned.
func WilcoxonSignedRank(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Wilcoxon sample length mismatch")
	}
	type pair struct{ abs, sign float64 }
	var ps []pair
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		s := 1.0
		if d < 0 {
			s = -1
		}
		ps = append(ps, pair{math.Abs(d), s})
	}
	n := len(ps)
	if n < 2 {
		return 1
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].abs < ps[j].abs })
	ranks := make([]float64, n)
	hasTies := false
	for i := 0; i < n; {
		j := i
		//rpmlint:ignore floateq Wilcoxon rank ties are defined by exact equality of stored values
		for j < n && ps[j].abs == ps[i].abs {
			j++
		}
		if j-i > 1 {
			hasTies = true
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var wPlus float64
	for i, p := range ps {
		if p.sign > 0 {
			wPlus += ranks[i]
		}
	}
	if n <= 25 && !hasTies {
		return wilcoxonExactP(n, wPlus)
	}
	// normal approximation with tie correction
	fn := float64(n)
	mean := fn * (fn + 1) / 4
	variance := fn * (fn + 1) * (2*fn + 1) / 24
	// tie correction: subtract sum(t^3 - t)/48 per tie group
	for i := 0; i < n; {
		j := i
		//rpmlint:ignore floateq Wilcoxon rank ties are defined by exact equality of stored values
		for j < n && ps[j].abs == ps[i].abs {
			j++
		}
		t := float64(j - i)
		variance -= (t*t*t - t) / 48
		i = j
	}
	if variance <= 0 {
		return 1
	}
	z := (wPlus - mean)
	// continuity correction toward the mean
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p := 2 * (1 - normalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return p
}

// wilcoxonExactP computes the exact two-sided p-value of the signed-rank
// statistic by enumerating the null distribution of W+ over all 2^n sign
// assignments via DP over integer rank sums (valid without ties).
func wilcoxonExactP(n int, wPlus float64) float64 {
	maxW := n * (n + 1) / 2
	counts := make([]float64, maxW+1)
	counts[0] = 1
	for r := 1; r <= n; r++ {
		for w := maxW; w >= r; w-- {
			counts[w] += counts[w-r]
		}
	}
	total := math.Pow(2, float64(n))
	// two-sided: P(W+ <= min(w, maxW-w)) + P(W+ >= max(...)) by symmetry
	w := wPlus
	lowTail := w
	if float64(maxW)-w < lowTail {
		lowTail = float64(maxW) - w
	}
	var cum float64
	for i := 0; float64(i) <= lowTail; i++ {
		cum += counts[i]
	}
	p := 2 * cum / total
	if p > 1 {
		p = 1
	}
	return p
}

// normalCDF is the standard normal CDF.
func normalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 { return ts.Mean(v) }

// Std returns the population standard deviation of v.
func Std(v []float64) float64 { return ts.Std(v) }
