# Developer targets for the RPM reproduction. `make check` is what CI
# (and the next PR's author) should run.

GO ?= go

# Packages with concurrency: the race target runs them with the race
# detector enabled (internal/parallel plus every package it fans out).
RACE_PKGS = ./internal/core ./internal/nn ./internal/parallel ./internal/dist

.PHONY: all build test race vet bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the parallel execution layer and the packages it drives.
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

# Parallel-stage benchmarks with the speedup metric (sequential vs
# GOMAXPROCS), at 1 and 4 procs.
bench:
	$(GO) test -run xxx -bench Parallel -cpu 1,4 ./internal/core ./internal/nn

check: build vet test race
