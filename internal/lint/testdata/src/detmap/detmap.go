// Package detmap is a golden fixture for the detmap analyzer: map
// ranges in a deterministic package whose bodies are order-sensitive
// must be reported; the sort-the-keys idiom and commutative integer
// accumulation must not.
package detmap

import "sort"

// BadCollectNoSort leaks iteration order into the returned slice.
func BadCollectNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is random"
		out = append(out, k)
	}
	return out
}

// BadFloatAccum accumulates floats: addition order changes the result.
func BadFloatAccum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration order is random"
		s += v
	}
	return s
}

// BadTieBreak tracks an argmax whose winner depends on visit order.
func BadTieBreak(m map[string]int) string {
	best := ""
	bestV := -1
	for k, v := range m { // want "map iteration order is random"
		if v > bestV {
			bestV = v
			best = k
		}
	}
	return best
}

// BadCall invokes arbitrary code per element.
func BadCall(m map[string]int, f func(string)) {
	for k := range m { // want "map iteration order is random"
		f(k)
	}
}

// GoodSortedKeys is the canonical deterministic idiom.
func GoodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSortSlice collects values and sorts them with sort.Slice.
func GoodSortSlice(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// GoodIntCount accumulates integers: commutative and exact.
func GoodIntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n += v
		}
		n++
	}
	return n
}

// GoodDelete prunes entries; keyed deletes commute.
func GoodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// GoodIgnored is order-free in a way the analyzer cannot prove, so it
// carries a reasoned suppression.
func GoodIgnored(m map[string]bool) bool {
	any := false
	//rpmlint:ignore detmap boolean OR over all values is order-free
	for _, v := range m {
		any = any || v
	}
	return any
}
