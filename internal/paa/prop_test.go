package paa

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the PAA transform: the mean-preservation and
// lower-bounding identities (Keogh et al. 2001) that make SAX's MINDIST
// guarantee sound, checked for both the integer-segment fast path and
// the fractional-weighting general path.

func randSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestPropPAAMeanPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for it := 0; it < 300; it++ {
		n := 2 + rng.Intn(100)
		w := 1 + rng.Intn(n)
		v := randSeries(rng, n)
		p := Transform(v, w)
		var mv, mp float64
		for _, x := range v {
			mv += x
		}
		mv /= float64(n)
		for _, x := range p {
			mp += x
		}
		mp /= float64(len(p))
		if math.Abs(mv-mp) > 1e-9 {
			t.Fatalf("it %d (n=%d w=%d): PAA mean %v != series mean %v", it, n, w, mp, mv)
		}
	}
}

func TestPropPAAIdentityAndConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for it := 0; it < 100; it++ {
		n := 1 + rng.Intn(40)
		v := randSeries(rng, n)
		// w >= n: identity
		p := Transform(v, n+rng.Intn(3))
		if len(p) != n {
			t.Fatalf("it %d: identity path length %d != %d", it, len(p), n)
		}
		for i := range v {
			if p[i] != v[i] {
				t.Fatalf("it %d: identity path altered values", it)
			}
		}
		// constant series: every segment mean equals the constant
		c := 1 + rng.NormFloat64()
		cv := make([]float64, n)
		for i := range cv {
			cv[i] = c
		}
		w := 1 + rng.Intn(n)
		for i, x := range Transform(cv, w) {
			if math.Abs(x-c) > 1e-9 {
				t.Fatalf("it %d: constant series segment %d = %v, want %v", it, i, x, c)
			}
		}
	}
}

// TestPropPAALowerBound is the dimensionality-reduction contract:
// sqrt(n/w)·‖PAA(a)−PAA(b)‖ ≤ ‖a−b‖. It holds for the fractional
// weighting too (per-segment Jensen: the squared difference of weighted
// means is at most the weighted mean of squared differences, and each
// point's weights across segments sum to one).
func TestPropPAALowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for it := 0; it < 400; it++ {
		n := 2 + rng.Intn(100)
		w := 1 + rng.Intn(n)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		pa := Transform(a, w)
		pb := Transform(b, w)
		lhs := float64(n) / float64(len(pa)) * sqDist(pa, pb)
		rhs := sqDist(a, b)
		if lhs > rhs+1e-9 {
			t.Fatalf("it %d (n=%d w=%d): PAA bound violated: %v > %v", it, n, w, lhs, rhs)
		}
	}
}

// TestPropPAATransformIntoReuse: the buffer-reusing variant is
// byte-identical to the allocating one, for any prior buffer contents.
func TestPropPAATransformIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	buf := make([]float64, 0, 64)
	for it := 0; it < 200; it++ {
		n := 1 + rng.Intn(60)
		w := 1 + rng.Intn(n+4)
		v := randSeries(rng, n)
		want := Transform(v, w)
		buf = TransformInto(buf[:0], v, w)
		if len(buf) != len(want) {
			t.Fatalf("it %d: length %d != %d", it, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("it %d: reused buffer diverges at %d", it, i)
			}
		}
	}
}
