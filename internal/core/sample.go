package core

import "math"

// Seeded, deterministic subsampling of the candidate-mining work
// (ROADMAP item 4, after Raza & Kramer's randomized shapelet
// ensembles): instead of discretizing every sliding window and scoring
// every parameter-search point, a sampled training run keeps a seeded
// fraction of both. Every keep/drop decision is a pure function of
// (seed, coordinate) — no shared RNG stream, no draw ordering — so the
// sampled pipeline is byte-identical for any Options.Workers value and
// for any interleaving of the per-class fan-out, the same hygiene the
// rpmlint nondeterm analyzer enforces for the rest of the package.
// With Rate 0 or 1 no sampling code runs at all: the exhaustive path is
// bit-identical to a build without this file.

// SampleOptions configures candidate-pool subsampling. The zero value
// (and Rate 1) disable sampling entirely.
type SampleOptions struct {
	// Rate is the fraction of mining work kept, in (0,1): Step 1 keeps
	// ~Rate of the SAX sliding-window blocks of each class's
	// concatenated series, and the parameter search keeps ~Rate of its
	// grid points (grid mode) or objective evaluations (DIRECT mode).
	// 0 and 1 both mean exhaustive mining (the unsampled path).
	Rate float64
	// Seed drives every keep/drop decision. 0 means derive from
	// Options.Seed. Bagged ensembles give each member its own derived
	// seed (see TrainBaggedContext).
	Seed int64
}

// active reports whether sampling changes anything. Rate outside (0,1)
// — including the zero value and the exhaustive Rate 1 — is inactive.
func (s SampleOptions) active() bool { return s.Rate > 0 && s.Rate < 1 }

// resolveSampleSeed pins the effective sampling seed: explicit
// Sample.Seed wins, otherwise the training seed, otherwise 1 — so two
// runs with identical Options sample identically whether or not they
// spelled the seed out.
func resolveSampleSeed(o Options) int64 {
	if o.Sample.Seed != 0 {
		return o.Sample.Seed
	}
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix
// good enough to turn (seed, coordinate) pairs into independent uniform
// decisions. Stateless by design — decision k never depends on whether
// decision k-1 was ever evaluated.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps (seed, coordinate) to a uniform float64 in [0,1).
// The top 53 bits keep the conversion exact, so the comparison against
// Rate is identical on every IEEE-754 platform.
func hashUnit(seed uint64, coord uint64) float64 {
	return float64(splitmix64(seed^splitmix64(coord))>>11) * (1.0 / (1 << 53))
}

// windowSampler decides which SAX sliding-window start positions of one
// class's concatenated series are discretized. Positions are sampled in
// contiguous blocks of one window length rather than independently:
// grammar induction discovers motifs as repeated word *sequences*, and
// independent per-position sampling would give the two occurrences of a
// motif different surviving offsets, destroying exactly the repeats
// Step 2 exists to find. Block sampling keeps whole word runs intact
// (a kept block contributes the same local word sequence it would
// contribute to an exhaustive run) while still skipping ~1-Rate of all
// discretization and downstream clustering work.
type windowSampler struct {
	seed  uint64
	block int
	rate  float64
}

// newWindowSampler derives the per-class sampler. The class label is
// folded into the seed so classes sample independently but
// reproducibly, regardless of the per-class fan-out order.
func newWindowSampler(seed int64, class int, window int, rate float64) windowSampler {
	if window < 1 {
		window = 1
	}
	return windowSampler{
		seed:  splitmix64(uint64(seed)) ^ splitmix64(0xc1a55e5+uint64(int64(class))),
		block: window,
		rate:  rate,
	}
}

// keep reports whether the window starting at start survives sampling.
func (ws windowSampler) keep(start int) bool {
	return hashUnit(ws.seed, uint64(start/ws.block)) < ws.rate
}

// sampleGrid thins a parameter grid to ceil(rate·len) points, chosen by
// hash rank over the point index (seeded, order-free) with the original
// grid order preserved — so the thinned grid is a deterministic
// subsequence of the exhaustive one and the sequential tie-break
// semantics of selectParams carry over unchanged. At least one point
// always survives.
func sampleGrid[T any](grid []T, seed int64, rate float64) (kept []T, dropped int) {
	n := len(grid)
	if n == 0 {
		return grid, 0
	}
	want := int(float64(n)*rate + 0.999999)
	if want < 1 {
		want = 1
	}
	if want >= n {
		return grid, 0
	}
	s := splitmix64(uint64(seed)) ^ 0x9d1db
	rk := make([]rankedIdx, n)
	for i := range grid {
		rk[i] = rankedIdx{idx: i, h: hashUnit(s, uint64(i))}
	}
	// Selection by hash rank: the want smallest hashes win. Ties are
	// impossible for practical purposes (53-bit hashes) but break by
	// index for full determinism anyway.
	sortRanked(rk)
	chosen := make([]bool, n)
	for i := 0; i < want; i++ {
		chosen[rk[i].idx] = true
	}
	kept = make([]T, 0, want)
	for i, g := range grid {
		if chosen[i] {
			kept = append(kept, g)
		}
	}
	return kept, n - len(kept)
}

// rankedIdx pairs a grid index with its sampling hash.
type rankedIdx struct {
	idx int
	h   float64
}

// sortRanked is an insertion sort over the (hash, index) pairs — grids
// are ≤ a few hundred points, and avoiding sort.Slice keeps the
// comparator trivially deterministic.
func sortRanked(rk []rankedIdx) {
	for i := 1; i < len(rk); i++ {
		for j := i; j > 0; j-- {
			a, b := rk[j-1], rk[j]
			if a.h < b.h || (a.h == b.h && a.idx < b.idx) { //rpmlint:ignore floateq exact-hash tie-break, equality means identical 53-bit hashes
				break
			}
			rk[j-1], rk[j] = b, a
		}
	}
}

// sampledMaxEvals scales the DIRECT evaluation budget by the square
// root of the sampling rate, floored at 8 so the optimizer can still
// triangulate the box. Square root, not the rate itself: each
// objective evaluation already costs ~Rate of its exhaustive self via
// window sampling, so scaling evals linearly too would square the
// total search discount and starve the optimizer — the measured
// outcome was parameter picks bad enough to cost several accuracy
// points (EXPERIMENTS.md). √Rate splits the discount between fewer
// evals and cheaper evals.
func sampledMaxEvals(maxEvals int, rate float64) int {
	v := int(float64(maxEvals)*math.Sqrt(rate) + 0.999999)
	if v < 8 {
		v = 8
	}
	if v > maxEvals {
		v = maxEvals
	}
	return v
}

// sampledMinSupport rescales the γ-derived support floor when window
// sampling is active: block sampling keeps ~Rate of each motif's
// occurrences, so a motif present in every instance of the class only
// surfaces in ~Rate·|class| of them. Scaling the floor by Rate keeps
// γ's *relative* meaning; the absolute minimum of 2 distinct instances
// still applies (a "pattern" seen once is noise).
func sampledMinSupport(minSupport int, rate float64) int {
	v := int(float64(minSupport)*rate + 0.999999)
	if v < 2 {
		v = 2
	}
	return v
}
