// Command rpmload is a load generator for rpmserved: it drives the
// /v1/predict endpoint with synthetic queries in either a closed loop
// (-concurrency workers, each issuing the next request as soon as the
// previous one returns — measures capacity) or an open loop (-rate
// requests/sec on a fixed schedule regardless of responses — measures
// latency under a target arrival rate, the methodology that avoids
// coordinated omission). Latencies accumulate into an obs.Summary, the
// same power-of-two-bucket histogram the server reports, so client- and
// server-side percentiles are directly comparable.
//
// A 429 (load shed) is not a failure: it is the server's backpressure
// working as designed, so it is counted separately as "shed" and, in
// the closed loop, the worker honors the response's Retry-After hint
// before issuing its next request. With -retries N each request goes
// through the resilient serveclient (capped exponential backoff with
// full jitter, per-model circuit breaker) instead of raw one-shot HTTP,
// which is how a well-behaved production caller would drive the server.
//
// Stream mode (-streams N) drives the streaming subsystem instead of
// /v1/predict: the generator maintains N live streams and each request
// appends a pre-marshaled chunk (-stream-chunk samples) to the next
// stream round-robin via POST /v1/streams/{id}, measuring sustained
// samples-per-second ingest across many concurrent detectors. Closed
// and open loop work unchanged; -retries is predict-only.
//
// Exit status: 0 on a clean run; 1 under -strict when nothing completed
// or any request failed (non-200 envelope or transport error — shed
// requests do not fail strict); 2 on usage errors.
//
//	rpmload -addr http://localhost:8080 -duration 10s -concurrency 8
//	rpmload -rate 200 -duration 30s -strict
//	rpmload -duration 10s -retries 3 -strict
//	rpmload -streams 64 -stream-chunk 128 -duration 10s -strict
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rpm/internal/obs"
	serveclient "rpm/internal/serve/client"
)

// predictRequest / errorEnvelope mirror the serving layer's public JSON
// shapes (kept in sync by the load-smoke CI run).
type predictRequest struct {
	Model  string    `json:"model,omitempty"`
	Values []float64 `json:"values"`
}

type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// maxRetryAfter caps how long a closed-loop worker honors a 429's
// Retry-After hint, so a confused server cannot park the whole run.
const maxRetryAfter = 2 * time.Second

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "rpmserved base URL")
		model       = flag.String("model", "", "model name (empty = server default)")
		duration    = flag.Duration("duration", 10*time.Second, "measured run length")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers (also the open-loop in-flight cap multiplier)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		seriesLen   = flag.Int("series-len", 128, "length of each synthetic query series")
		queries     = flag.Int("queries", 64, "distinct synthetic series cycled through")
		seed        = flag.Int64("seed", 1, "query-generation seed")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		wait        = flag.Duration("wait", 0, "poll /readyz this long for the server to come up before loading")
		strict      = flag.Bool("strict", false, "exit 1 when nothing completed or any request failed (shed requests do not fail strict)")
		jsonOut     = flag.Bool("json", false, "emit the summary as JSON instead of text")
		retries     = flag.Int("retries", 0, "route requests through the resilient client with this many attempts each (0 = raw one-shot HTTP)")
		retrySeed   = flag.Int64("retry-seed", 1, "backoff-jitter seed for -retries")
		streams     = flag.Int("streams", 0, "stream mode: maintain this many live streams and append chunks round-robin (0 = predict mode)")
		streamChunk = flag.Int("stream-chunk", 64, "samples per stream append in -streams mode")
	)
	flag.Parse()
	if *concurrency < 1 || *seriesLen < 1 || *queries < 1 || *duration <= 0 || *rate < 0 {
		fmt.Fprintln(os.Stderr, "rpmload: -concurrency, -series-len, -queries and -duration must be positive; -rate non-negative")
		os.Exit(2)
	}
	if *streams < 0 || *streamChunk < 1 {
		fmt.Fprintln(os.Stderr, "rpmload: -streams must be non-negative and -stream-chunk positive")
		os.Exit(2)
	}
	if *streams > 0 && *retries > 0 {
		fmt.Fprintln(os.Stderr, "rpmload: -retries applies to predict mode only, not -streams")
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4 * *concurrency,
			MaxIdleConnsPerHost: 4 * *concurrency,
		},
	}
	if *wait > 0 {
		if err := waitReady(client, *addr, *wait); err != nil {
			fmt.Fprintf(os.Stderr, "rpmload: %v\n", err)
			os.Exit(1)
		}
	}

	// Pre-generate the queries and pre-marshal the raw-path request
	// bodies: the generator must not spend its loop on JSON encoding.
	// Stream mode marshals chunks instead of whole series; both shapes
	// are the same JSON (model + values).
	rng := rand.New(rand.NewSource(*seed))
	chunkLen := *seriesLen
	if *streams > 0 {
		chunkLen = *streamChunk
	}
	values := make([][]float64, *queries)
	bodies := make([][]byte, *queries)
	for i := range bodies {
		v := make([]float64, chunkLen)
		x := 0.0
		for j := range v {
			x += rng.NormFloat64()
			v[j] = x
		}
		values[i] = v
		b, err := json.Marshal(predictRequest{Model: *model, Values: v})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpmload: marshal: %v\n", err)
			os.Exit(2)
		}
		bodies[i] = b
	}

	reg := obs.NewRegistry()
	var streamURLs []string
	for k := 0; k < *streams; k++ {
		streamURLs = append(streamURLs, fmt.Sprintf("%s/v1/streams/load-%04d", *addr, k))
	}
	g := &loadgen{
		client:     client,
		url:        *addr + "/v1/predict",
		streamURLs: streamURLs,
		model:      *model,
		bodies:     bodies,
		values:     values,
		ok:         reg.Counter(ctrOK),
		errs:       reg.Counter(ctrErrors),
		trans:      reg.Counter(ctrTransport),
		shed:       reg.Counter(ctrShed),
		drops:      reg.Counter(ctrDropped),
		lat:        reg.Summary(sumLatency),
		errsBy:     reg,
	}
	if *retries > 0 {
		sc, err := serveclient.New(serveclient.Config{
			BaseURL:           *addr,
			HTTPClient:        client,
			MaxAttempts:       *retries,
			PerAttemptTimeout: *timeout,
			OverallTimeout:    time.Duration(*retries+1) * *timeout,
			Seed:              *retrySeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpmload: %v\n", err)
			os.Exit(2)
		}
		g.sc = sc
	}

	start := time.Now()
	if *rate > 0 {
		g.openLoop(*rate, *duration, *concurrency)
	} else {
		g.closedLoop(*duration, *concurrency)
	}
	elapsed := time.Since(start)

	report(os.Stdout, reg, *rate, *concurrency, *streams, *streamChunk, elapsed, *jsonOut)
	if *strict {
		snap := reg.Snapshot()
		if snap.Counter(ctrOK) == 0 || snap.Counter(ctrErrors) > 0 || snap.Counter(ctrTransport) > 0 {
			os.Exit(1)
		}
	}
}

// waitReady polls GET /readyz until it answers 200 or the budget runs out.
func waitReady(client *http.Client, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %v", budget, err)
			}
			return fmt.Errorf("server not ready after %v", budget)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// loadgen issues requests and classifies outcomes into the registry.
type loadgen struct {
	client *http.Client
	sc     *serveclient.Client // non-nil with -retries: the resilient path
	url    string
	// streamURLs, when non-empty, switch the generator into stream mode:
	// each request appends the next pre-marshaled chunk to the next
	// stream round-robin.
	streamURLs []string
	model      string
	bodies     [][]byte
	values     [][]float64
	next       atomic.Int64

	ok     *obs.Counter
	errs   *obs.Counter
	trans  *obs.Counter
	shed   *obs.Counter
	drops  *obs.Counter
	lat    *obs.Summary
	errsBy *obs.Registry
}

// one issues a single request and records its outcome. The latency of
// every completed exchange (success or error envelope) is observed;
// transport failures have no meaningful service time and are only
// counted. A 429 counts as shed (not an error) and the worker honors
// the Retry-After hint, capped, before its next request — backpressure
// a closed loop must propagate, not ignore.
func (g *loadgen) one() {
	i := int(g.next.Add(1) - 1)
	url := g.url
	if len(g.streamURLs) > 0 {
		url = g.streamURLs[i%len(g.streamURLs)]
	}
	i %= len(g.bodies)
	if g.sc != nil {
		g.oneRetrying(i)
		return
	}
	start := time.Now()
	resp, err := g.client.Post(url, "application/json", bytes.NewReader(g.bodies[i]))
	if err != nil {
		g.trans.Inc()
		return
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	g.lat.Observe(time.Since(start))
	if err != nil {
		g.trans.Inc()
		return
	}
	if resp.StatusCode == http.StatusOK {
		g.ok.Inc()
		return
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		g.shed.Inc()
		time.Sleep(retryAfterDelay(resp.Header.Get("Retry-After")))
		return
	}
	g.errs.Inc()
	var env errorEnvelope
	code := "http_" + strconv.Itoa(resp.StatusCode)
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		code = env.Error.Code
	}
	g.errsBy.Counter(ctrErrPrefix + code).Inc()
}

// oneRetrying issues one request through the resilient client; its
// latency spans all attempts (what the caller actually waited).
func (g *loadgen) oneRetrying(i int) {
	start := time.Now()
	_, err := g.sc.Predict(context.Background(), g.model, g.values[i])
	g.lat.Observe(time.Since(start))
	if err == nil {
		g.ok.Inc()
		return
	}
	var apiErr *serveclient.APIError
	switch {
	case errors.As(err, &apiErr):
		// The client already retried per policy; what is left is the
		// terminal answer. A final 429 is still a shed, not a failure.
		if apiErr.Status == http.StatusTooManyRequests {
			g.shed.Inc()
			return
		}
		g.errs.Inc()
		g.errsBy.Counter(ctrErrPrefix + apiErr.Code).Inc()
	case errors.Is(err, serveclient.ErrBreakerOpen):
		g.errs.Inc()
		g.errsBy.Counter(ctrErrPrefix + "breaker_open").Inc()
	default:
		g.trans.Inc()
	}
}

// retryAfterDelay parses a 429's Retry-After (delay-seconds form) and
// caps it at maxRetryAfter; absent or unparsable hints back off 50ms so
// a shedding server is never hammered in a zero-delay spin.
func retryAfterDelay(h string) time.Duration {
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > maxRetryAfter {
			return maxRetryAfter
		}
		return d
	}
	return 50 * time.Millisecond
}

// closedLoop runs workers goroutines, each issuing back-to-back requests
// until the deadline.
func (g *loadgen) closedLoop(d time.Duration, workers int) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				g.one()
			}
		}()
	}
	wg.Wait()
}

// openLoop fires requests on a fixed schedule (rate per second) for d,
// each in its own goroutine so a slow response never delays the next
// arrival. In-flight requests are capped at 256×workers; an arrival that
// finds the cap exhausted is dropped AND counted — silently skipping it
// would hide the very overload the open loop exists to expose.
func (g *loadgen) openLoop(rate float64, d time.Duration, workers int) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, 256*workers)
	deadline := time.Now().Add(d)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				g.one()
			}()
		default:
			g.drops.Inc()
		}
	}
	wg.Wait()
}

// report prints the run summary: mode, throughput, outcome counts and
// the latency distribution.
func report(w io.Writer, reg *obs.Registry, rate float64, workers, streams, streamChunk int, elapsed time.Duration, asJSON bool) {
	snap := reg.Snapshot()
	ok := snap.Counter(ctrOK)
	errs := snap.Counter(ctrErrors)
	trans := snap.Counter(ctrTransport)
	shed := snap.Counter(ctrShed)
	drops := snap.Counter(ctrDropped)
	mode := fmt.Sprintf("closed-loop, %d workers", workers)
	if rate > 0 {
		mode = fmt.Sprintf("open-loop, %.0f req/s target", rate)
	}
	if streams > 0 {
		mode += fmt.Sprintf(", %d streams × %d-sample chunks", streams, streamChunk)
	}
	throughput := float64(ok) / elapsed.Seconds()
	lat := snap.Summary(sumLatency)
	if asJSON {
		out := map[string]any{
			"mode":       mode,
			"elapsed":    elapsed.String(),
			"completed":  ok,
			"errors":     errs,
			"transport":  trans,
			"shed":       shed,
			"dropped":    drops,
			"throughput": throughput,
		}
		if streams > 0 {
			out["samplesPerSec"] = throughput * float64(streamChunk)
		}
		if lat != nil {
			out["latency"] = lat
		}
		json.NewEncoder(w).Encode(out)
		return
	}
	fmt.Fprintf(w, "rpmload: %s, %v elapsed\n", mode, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "completed %d (%.1f req/s)  errors %d  transport-errors %d  shed %d  dropped %d\n",
		ok, throughput, errs, trans, shed, drops)
	if streams > 0 {
		fmt.Fprintf(w, "ingest %.0f samples/s across %d streams\n", throughput*float64(streamChunk), streams)
	}
	if lat != nil && lat.Count > 0 {
		fmt.Fprintf(w, "latency  mean %v  p50 %v  p90 %v  p99 %v  max %v\n",
			time.Duration(lat.MeanNS).Round(10*time.Microsecond),
			time.Duration(lat.P50NS).Round(10*time.Microsecond),
			time.Duration(lat.P90NS).Round(10*time.Microsecond),
			time.Duration(lat.P99NS).Round(10*time.Microsecond),
			time.Duration(lat.MaxNS).Round(10*time.Microsecond))
	}
	for _, c := range snap.Counters {
		if len(c.Name) > len("load.errors.") && c.Name[:len("load.errors.")] == "load.errors." && c.Name != ctrTransport {
			fmt.Fprintf(w, "  %s: %d\n", c.Name, c.Value)
		}
	}
}
