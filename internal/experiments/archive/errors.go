// Package archive is the resumable sharded archive runner behind
// cmd/rpmarchive (DESIGN.md §15): it trains and evaluates an RPM
// classifier (or bagged ensemble) on every dataset of a source,
// checkpointing each finished dataset to an atomic, byte-verified file
// so a killed run resumes exactly where it stopped, and emits a
// correctness+efficiency table whose deterministic projection is
// byte-identical between an interrupted-and-resumed run and an
// uninterrupted one.
package archive

import (
	"errors"
	"fmt"
)

// Sentinel errors. Every error returned by the package's exported
// functions wraps exactly one of these (or an unwrapped context error),
// the same taxonomy discipline the rpmlint errtaxonomy analyzer
// enforces for package rpm.
var (
	// ErrBadConfig marks Run configurations rejected up front: missing
	// output directory or source, an out-of-range shard index, a dataset
	// name that is not filesystem-safe.
	ErrBadConfig = errors.New("bad archive config")
	// ErrCheckpointCorrupt marks checkpoint files that fail structural
	// or byte verification: undecodable JSON, an unknown version, or a
	// payload whose SHA-256 disagrees with the recorded digest.
	ErrCheckpointCorrupt = errors.New("corrupt checkpoint")
	// ErrCheckpointMismatch marks a structurally valid checkpoint written by
	// a run with different result-affecting configuration; resuming over
	// it would splice incomparable rows into one table.
	ErrCheckpointMismatch = errors.New("checkpoint config mismatch")
	// ErrRunFailed marks dataset failures surfaced in strict mode (by
	// default per-dataset failures are captured in their Outcome rows
	// and Run itself succeeds).
	ErrRunFailed = errors.New("archive run failed")
)

// Error is the typed error of the package. It records the failing
// operation, the sentinel category, and the underlying cause;
// errors.Is matches both.
type Error struct {
	// Op is the operation that failed, e.g. "Run" or "ReadCheckpoint".
	Op string
	// Kind is the sentinel category the error belongs to.
	Kind error
	// Err is the underlying cause; may be nil when Kind plus the message
	// carries everything.
	Err error
}

func (e *Error) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("archive: %s: %v", e.Op, e.Kind)
	}
	return fmt.Sprintf("archive: %s: %v: %v", e.Op, e.Kind, e.Err)
}

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (e *Error) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Err}
}

// archErr builds a typed *Error.
func archErr(op string, kind error, err error) *Error {
	return &Error{Op: op, Kind: kind, Err: err}
}

// archErrf builds a typed *Error from a formatted message.
func archErrf(op string, kind error, format string, args ...any) *Error {
	return &Error{Op: op, Kind: kind, Err: fmt.Errorf(format, args...)}
}
