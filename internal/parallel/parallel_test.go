package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForZeroItems(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		n := 137
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForWorkersExceedItems(t *testing.T) {
	n := 3
	counts := make([]int32, n)
	For(n, 16, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestForSequentialInOrder pins the workers==1 contract: the exact
// sequential path, i.e. indices strictly ascending with no concurrency.
func TestForSequentialInOrder(t *testing.T) {
	var seen []int
	For(100, 1, func(i int) { seen = append(seen, i) })
	for i, v := range seen {
		if v != i {
			t.Fatalf("sequential order broken at %d: %v", i, v)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("visited %d of 100", len(seen))
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: unexpected panic value %v", workers, r)
				}
			}()
			For(50, workers, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 5} {
		got := Map(10, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", workers, i, v)
			}
		}
	}
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map over empty range returned %v", got)
	}
}

// TestMapReduceOrderedFold asserts the fold visits results in index order
// — the property the float-determinism guarantee depends on.
func TestMapReduceOrderedFold(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var seen []int
		MapReduce(20, workers,
			func(i int) int { return i },
			0,
			func(acc, v int) int {
				seen = append(seen, v)
				return acc + v
			})
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: fold order %v", workers, seen)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d", Workers(0))
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d", Workers(-1))
	}
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
}
