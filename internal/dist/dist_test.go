package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpm/internal/ts"
)

func TestEuclideanBasics(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("ED = %v, want 5", d)
	}
	if d := Euclidean(nil, nil); d != 0 {
		t.Errorf("ED(empty) = %v", d)
	}
	if d := SqEuclidean([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Errorf("SqED identical = %v", d)
	}
}

func TestEuclideanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestSqEuclideanEarly(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	if d := SqEuclideanEarly(a, b, 10); d != 4 {
		t.Errorf("no-abandon = %v, want 4", d)
	}
	if d := SqEuclideanEarly(a, b, 2.5); !math.IsInf(d, 1) {
		t.Errorf("abandon = %v, want +Inf", d)
	}
	// limit exactly equal to the distance is not abandoned (> not >=)
	if d := SqEuclideanEarly(a, b, 4); d != 4 {
		t.Errorf("boundary = %v, want 4", d)
	}
}

func TestEuclideanMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		dab, dba := Euclidean(a, b), Euclidean(b, a)
		dac, dbc := Euclidean(a, c), Euclidean(b, c)
		return dab == dba && dab >= 0 && dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func makeSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestClosestMatchFindsEmbeddedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	series := makeSeries(rng, 200)
	// Embed a distinctive pattern at position 120.
	pattern := make([]float64, 25)
	for i := range pattern {
		pattern[i] = 10 * math.Sin(float64(i)*2*math.Pi/25)
	}
	copy(series[120:], pattern)
	m := ClosestMatch(pattern, series)
	if m.Pos != 120 {
		t.Errorf("best match at %d, want 120 (dist %v)", m.Pos, m.Dist)
	}
	if m.Dist > 1e-9 {
		t.Errorf("exact-match distance = %v, want ~0", m.Dist)
	}
}

func TestClosestMatchScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	series := makeSeries(rng, 150)
	pattern := make([]float64, 20)
	for i := range pattern {
		pattern[i] = math.Sin(float64(i) / 3)
	}
	// Embed a scaled+offset version: z-normalized matching must find it.
	at := 77
	for i, x := range pattern {
		series[at+i] = 5*x + 100
	}
	m := ClosestMatch(pattern, series)
	if m.Pos != at {
		t.Errorf("best match at %d, want %d", m.Pos, at)
	}
	if m.Dist > 1e-9 {
		t.Errorf("scaled-match distance = %v, want ~0", m.Dist)
	}
}

func TestClosestMatchBruteForceAgreement(t *testing.T) {
	// Oracle: naive z-normalized scan must agree with the optimized version.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := makeSeries(rng, 60)
		pat := makeSeries(rng, 1+rng.Intn(20))
		got := ClosestMatch(pat, series)
		n := len(pat)
		zp := ts.ZNorm(pat)
		best := math.Inf(1)
		bestPos := -1
		for i := 0; i+n <= len(series); i++ {
			zw := ts.ZNorm(series[i : i+n])
			d := SqEuclidean(zp, zw)
			if d < best {
				best = d
				bestPos = i
			}
		}
		want := math.Sqrt(best / float64(n))
		if math.Abs(got.Dist-want) >= 1e-6 {
			return false
		}
		// Ties (common for tiny patterns) may be broken differently by the
		// running-sum implementation; require only that the reported
		// position is itself an optimal match.
		_ = bestPos
		atGot := math.Sqrt(SqEuclidean(zp, ts.ZNorm(series[got.Pos:got.Pos+n])) / float64(n))
		return math.Abs(atGot-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClosestMatchSwapsWhenPatternLonger(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	short := makeSeries(rng, 10)
	long := makeSeries(rng, 50)
	a := ClosestMatch(long, short)
	b := ClosestMatch(short, long)
	if a.Dist != b.Dist || a.Pos != b.Pos {
		t.Errorf("swap mismatch: %v vs %v", a, b)
	}
}

func TestClosestMatchDegenerate(t *testing.T) {
	if m := ClosestMatch(nil, []float64{1, 2}); !math.IsInf(m.Dist, 1) || m.Pos != -1 {
		t.Errorf("empty pattern: %v", m)
	}
	if m := ClosestMatch([]float64{1, 2}, nil); !math.IsInf(m.Dist, 1) || m.Pos != -1 {
		t.Errorf("empty series: %v", m)
	}
	// constant window in series must not blow up
	series := []float64{5, 5, 5, 5, 5, 1, 2, 3}
	m := ClosestMatch([]float64{1, 2, 3}, series)
	if m.Pos != 5 || m.Dist > 1e-9 {
		t.Errorf("constant-window handling: %v", m)
	}
}

func TestClosestMatchRaw(t *testing.T) {
	series := []float64{0, 0, 1, 2, 3, 0, 0}
	m := ClosestMatchRaw([]float64{1, 2, 3}, series)
	if m.Pos != 2 || m.Dist != 0 {
		t.Errorf("raw match: %v", m)
	}
	if m := ClosestMatchRaw(make([]float64, 10), make([]float64, 3)); !math.IsInf(m.Dist, 1) {
		t.Errorf("pattern longer than series should be +Inf, got %v", m)
	}
}

func TestMatcherAgreesWithClosestMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := makeSeries(rng, 80)
		pat := makeSeries(rng, 1+rng.Intn(30))
		want := ClosestMatch(pat, series)
		got := NewMatcher(pat).Best(series)
		return got.Pos == want.Pos && math.Abs(got.Dist-want.Dist) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatcherSwapsWhenSeriesShorter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	long := makeSeries(rng, 50)
	short := makeSeries(rng, 10)
	m := NewMatcher(long)
	got := m.Best(short)
	// the matcher's pattern is z-normalized, so compare against the
	// equivalent explicit call
	want := ClosestMatch(ts.ZNorm(long), short)
	if math.Abs(got.Dist-want.Dist) > 1e-12 {
		t.Errorf("swap path: %v vs %v", got, want)
	}
	if m.Len() != 50 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMatcherDegenerate(t *testing.T) {
	if got := NewMatcher(nil).Best([]float64{1, 2}); !math.IsInf(got.Dist, 1) {
		t.Errorf("empty pattern: %v", got)
	}
	if got := NewMatcher([]float64{1, 2}).Best(nil); !math.IsInf(got.Dist, 1) {
		t.Errorf("empty series: %v", got)
	}
}

func TestDTWEqualsEDAtZeroWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		a, b := makeSeries(rng, n), makeSeries(rng, n)
		return math.Abs(DTW(a, b, 0)-Euclidean(a, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDTWWarpingHandlesShift(t *testing.T) {
	// A pulse shifted by 3 samples: ED is large, DTW with enough window ~ 0.
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := 0; i < 5; i++ {
		a[10+i] = 1
		b[13+i] = 1
	}
	ed := Euclidean(a, b)
	dtw := DTW(a, b, 5)
	if dtw >= ed {
		t.Errorf("DTW %v not better than ED %v", dtw, ed)
	}
	if dtw > 1e-9 {
		t.Errorf("DTW on shifted pulse = %v, want ~0", dtw)
	}
}

func TestDTWMonotoneInWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := makeSeries(rng, 50), makeSeries(rng, 50)
	prev := math.Inf(1)
	for _, w := range []int{0, 1, 2, 5, 10, 25, 50} {
		d := DTW(a, b, w)
		if d > prev+1e-9 {
			t.Errorf("DTW increased when window grew to %d: %v > %v", w, d, prev)
		}
		prev = d
	}
	// unconstrained must equal the largest window
	if un := DTW(a, b, -1); math.Abs(un-DTW(a, b, 50)) > 1e-9 {
		t.Errorf("unconstrained DTW %v != full-window DTW", un)
	}
}

func TestDTWUnequalLengths(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 0, 1, 1, 2, 2, 3, 3}
	d := DTW(a, b, -1)
	if d != 0 {
		t.Errorf("DTW of stretched copy = %v, want 0", d)
	}
	// tiny window is widened to |n-m| so a path always exists
	if d := DTW(a, b, 0); math.IsInf(d, 1) {
		t.Error("DTW with narrow window returned +Inf; band should be widened")
	}
}

func TestDTWEmpty(t *testing.T) {
	if d := DTW(nil, nil, 0); d != 0 {
		t.Errorf("DTW(empty,empty) = %v", d)
	}
	if d := DTW(nil, []float64{1}, 0); !math.IsInf(d, 1) {
		t.Errorf("DTW(empty,x) = %v, want +Inf", d)
	}
}

func TestDTWEarlyMatchesDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		a, b := makeSeries(rng, 30), makeSeries(rng, 30)
		w := rng.Intn(10)
		full := DTW(a, b, w)
		if got := DTWEarly(a, b, w, math.Inf(1)); math.Abs(got-full) > 1e-9 {
			t.Fatalf("DTWEarly(inf) = %v, DTW = %v", got, full)
		}
		if got := DTWEarly(a, b, w, full+1); math.Abs(got-full) > 1e-9 {
			t.Fatalf("DTWEarly(limit>d) = %v, DTW = %v", got, full)
		}
		if got := DTWEarly(a, b, w, full*0.5); !math.IsInf(got, 1) && got > full*0.5 {
			t.Fatalf("DTWEarly(limit<d) = %v should abandon or be within limit", got)
		}
	}
}

func TestLBKeoghLowerBoundsDTW(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		q, c := makeSeries(rng, n), makeSeries(rng, n)
		w := rng.Intn(8)
		u, l := Envelope(c, w)
		lb := LBKeogh(q, u, l, math.Inf(1))
		return lb <= DTW(q, c, w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeContainsSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	v := makeSeries(rng, 60)
	for _, w := range []int{0, 1, 3, 10} {
		u, l := Envelope(v, w)
		for i := range v {
			if v[i] > u[i] || v[i] < l[i] {
				t.Fatalf("w=%d: envelope does not contain series at %d", w, i)
			}
		}
	}
	// w=0 envelopes are the series itself
	u, l := Envelope(v, 0)
	for i := range v {
		if u[i] != v[i] || l[i] != v[i] {
			t.Fatal("w=0 envelope should equal the series")
		}
	}
}

func TestLBKeoghEarlyAbandon(t *testing.T) {
	q := []float64{10, 10, 10}
	u := []float64{0, 0, 0}
	l := []float64{-1, -1, -1}
	if d := LBKeogh(q, u, l, 1); !math.IsInf(d, 1) {
		t.Errorf("expected abandon, got %v", d)
	}
}

func TestResample(t *testing.T) {
	v := []float64{0, 1, 2, 3}
	if got := ts.Resample(v, 4); !almostEqualSlice(got, v) {
		t.Errorf("identity resample = %v", got)
	}
	if got := ts.Resample(v, 7); !almostEqualSlice(got, []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}) {
		t.Errorf("upsample = %v", got)
	}
	if got := ts.Resample(v, 2); !almostEqualSlice(got, []float64{0, 3}) {
		t.Errorf("downsample = %v", got)
	}
	if got := ts.Resample(v, 1); !almostEqualSlice(got, []float64{1.5}) {
		t.Errorf("single-point resample = %v", got)
	}
	if got := ts.Resample([]float64{7}, 3); !almostEqualSlice(got, []float64{7, 7, 7}) {
		t.Errorf("single-input resample = %v", got)
	}
	if got := ts.Resample(v, 0); got != nil {
		t.Errorf("n=0 should be nil, got %v", got)
	}
}

func almostEqualSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}
