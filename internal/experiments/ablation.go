package experiments

import (
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"rpm/internal/core"
	"rpm/internal/datagen"
	"rpm/internal/parallel"
	"rpm/internal/sax"
	"rpm/internal/stats"
)

// AblationResult is one RPM variant's outcome on one dataset.
type AblationResult struct {
	Dataset string
	Variant string
	Err     float64
	Time    time.Duration
	// Patterns is the number of representative patterns selected.
	Patterns int
}

// AblationVariant names one configuration knob setting.
type AblationVariant struct {
	Name   string
	Mutate func(*core.Options)
}

// AblationVariants returns the design-choice sweep DESIGN.md calls out:
// the paper's defaults against each single-knob change.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "default", Mutate: func(o *core.Options) {}},
		{Name: "no-numerosity", Mutate: func(o *core.Options) { o.NumerosityReduction = false }},
		{Name: "medoid", Mutate: func(o *core.Options) { o.UseMedoid = true }},
		{Name: "repair-gi", Mutate: func(o *core.Options) { o.GI = core.GIRePair }},
		{Name: "rot-invariant", Mutate: func(o *core.Options) { o.RotationInvariant = true }},
		{Name: "gamma-0.1", Mutate: func(o *core.Options) { o.Gamma = 0.1 }},
		{Name: "gamma-0.4", Mutate: func(o *core.Options) { o.Gamma = 0.4 }},
		{Name: "grid-search", Mutate: func(o *core.Options) { o.Mode = core.ParamGrid }},
		{Name: "fixed-params", Mutate: func(o *core.Options) { o.Mode = core.ParamFixed }},
	}
}

// RunAblation evaluates every variant on the configured datasets,
// fanning the datasets out over cfg.Workers goroutines. Variants within a
// dataset stay sequential (their times are compared against each other);
// results come back in (dataset, variant) order as before.
func RunAblation(cfg Config, progress func(string)) ([]AblationResult, error) {
	cfg = cfg.withDefaults()
	var progressMu sync.Mutex
	type outcome struct {
		results []AblationResult
		err     error
	}
	outcomes := parallel.Map(len(cfg.Datasets), cfg.Workers, func(i int) outcome {
		name := cfg.Datasets[i]
		g, ok := datagen.ByName(name)
		if !ok {
			return outcome{err: fmt.Errorf("experiments: unknown dataset %q", name)}
		}
		split := g.Generate(cfg.Seed)
		var results []AblationResult
		for _, v := range AblationVariants() {
			o := rpmOptions(cfg)
			if o.Mode == core.ParamFixed {
				o.Params = sax.Params{} // heuristic defaults
			}
			v.Mutate(&o)
			start := time.Now()
			clf, err := core.Train(split.Train, o)
			if err != nil {
				return outcome{err: fmt.Errorf("variant %s on %s: %w", v.Name, name, err)}
			}
			preds := clf.PredictBatch(split.Test)
			results = append(results, AblationResult{
				Dataset:  name,
				Variant:  v.Name,
				Err:      stats.ErrorRate(preds, split.Test.Labels()),
				Time:     time.Since(start),
				Patterns: clf.NumPatterns(),
			})
			if progress != nil {
				progressMu.Lock()
				progress(fmt.Sprintf("ablation %-14s %-14s err=%.3f", name, v.Name, results[len(results)-1].Err))
				progressMu.Unlock()
			}
		}
		return outcome{results: results}
	})
	var out []AblationResult
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		out = append(out, o.results...)
	}
	return out, nil
}

// FormatAblation renders the ablation study grouped by dataset.
func FormatAblation(results []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation study: RPM design choices (error / seconds / #patterns)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Dataset\tVariant\tError\tTime (s)\t#Patterns\n")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.2f\t%d\n", r.Dataset, r.Variant, r.Err, r.Time.Seconds(), r.Patterns)
	}
	w.Flush()
	return b.String()
}
