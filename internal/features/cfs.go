// Package features implements Correlation-based Feature Selection (Hall,
// 1999), the feature-selection algorithm RPM cites for picking the most
// representative patterns out of the candidate pool (paper §3.2.3, [8]).
//
// CFS scores a feature subset S by the merit
//
//	Merit(S) = k·r̄cf / sqrt(k + k(k-1)·r̄ff)
//
// where k = |S|, r̄cf is the mean feature-class correlation and r̄ff the
// mean feature-feature inter-correlation — subsets of features highly
// correlated with the class yet uncorrelated with each other score best.
// Correlations are symmetrical uncertainties computed on equal-frequency
// discretized features, as in Hall's thesis. Subset search is best-first
// with a fixed non-improvement budget.
package features

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"rpm/internal/obs"
)

// maxStale is Hall's best-first stopping criterion: abandon the search
// after this many consecutive expansions that fail to improve the best
// merit.
const maxStale = 5

// defaultBins is the number of equal-frequency bins used to discretize
// continuous features before computing symmetrical uncertainty.
const defaultBins = 10

// Select runs CFS on the n×d feature matrix X with class labels y and
// returns the indices of the selected features in increasing order. It
// always returns at least one feature (the one with the highest
// feature-class correlation) when d > 0 and n > 1; it returns nil for
// degenerate input.
func Select(X [][]float64, y []int) []int {
	return SelectObs(X, y, nil)
}

// SelectObs is Select with an optional expansion counter: each best-first
// node expansion increments expansions (a nil counter is a no-op, so
// Select(X, y) and SelectObs(X, y, nil) are the same code path). The
// selected subset never depends on the counter.
func SelectObs(X [][]float64, y []int, expansions *obs.Counter) []int {
	n := len(X)
	if n == 0 || len(y) != n {
		return nil
	}
	d := len(X[0])
	if d == 0 {
		return nil
	}
	for i := range X {
		if len(X[i]) != d {
			panic(fmt.Sprintf("features: row %d has %d columns, want %d", i, len(X[i]), d))
		}
	}
	if n < 2 {
		return []int{0}
	}
	sc := newSUCache(X, y)
	return bestFirst(sc, d, expansions)
}

// suCache lazily computes the symmetrical uncertainties the merit
// function needs: feature-class (rcf) and feature-feature (rff). The rff
// cache is a dense matrix (NaN = not yet computed): merit is evaluated for
// thousands of subsets during best-first search, so the per-pair lookup
// must be a slice index, not a map access.
type suCache struct {
	disc [][]int // disc[f][i]: discretized value of feature f for instance i
	y    []int
	rcf  []float64
	rff  [][]float64
}

func newSUCache(X [][]float64, y []int) *suCache {
	n := len(X)
	d := len(X[0])
	sc := &suCache{
		disc: make([][]int, d),
		y:    denseCodes(y),
		rcf:  make([]float64, d),
		rff:  make([][]float64, d),
	}
	col := make([]float64, n)
	for f := 0; f < d; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		sc.disc[f] = discretize(col, defaultBins)
		sc.rcf[f] = symmetricalUncertainty(sc.disc[f], sc.y)
		sc.rff[f] = make([]float64, d)
		for j := range sc.rff[f] {
			sc.rff[f][j] = math.NaN()
		}
	}
	return sc
}

// denseCodes remaps arbitrary integer labels to 0..k-1 so entropy
// computations can use slice-indexed counters.
func denseCodes(y []int) []int {
	next := 0
	seen := map[int]int{}
	out := make([]int, len(y))
	for i, v := range y {
		c, ok := seen[v]
		if !ok {
			c = next
			seen[v] = c
			next++
		}
		out[i] = c
	}
	return out
}

func (sc *suCache) featureFeature(a, b int) float64 {
	if v := sc.rff[a][b]; !math.IsNaN(v) {
		return v
	}
	v := symmetricalUncertainty(sc.disc[a], sc.disc[b])
	sc.rff[a][b] = v
	sc.rff[b][a] = v
	return v
}

// merit computes the CFS merit of the subset (indices must be distinct).
func (sc *suCache) merit(subset []int) float64 {
	k := float64(len(subset))
	if k == 0 {
		return 0
	}
	var rcf float64
	for _, f := range subset {
		rcf += sc.rcf[f]
	}
	rcf /= k
	var rff float64
	pairs := 0
	for i := 0; i < len(subset); i++ {
		for j := i + 1; j < len(subset); j++ {
			rff += sc.featureFeature(subset[i], subset[j])
			pairs++
		}
	}
	if pairs > 0 {
		rff /= float64(pairs)
	}
	den := math.Sqrt(k + k*(k-1)*rff)
	if den == 0 {
		return 0
	}
	return k * rcf / den
}

// searchNode is a subset on the best-first open list. The running rcf and
// rff sums let a child's merit be computed in O(k) rather than O(k²).
type searchNode struct {
	subset []int // sorted
	merit  float64
	rcfSum float64
	rffSum float64 // sum over unordered feature pairs
}

// meritFromSums evaluates the CFS merit from the subset's running sums.
func meritFromSums(k int, rcfSum, rffSum float64) float64 {
	if k == 0 {
		return 0
	}
	fk := float64(k)
	rcf := rcfSum / fk
	rff := 0.0
	if k > 1 {
		rff = rffSum / (fk * (fk - 1) / 2)
	}
	den := math.Sqrt(fk + fk*(fk-1)*rff)
	if den == 0 {
		return 0
	}
	return fk * rcf / den
}

type nodeHeap []searchNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].merit > h[j].merit } // max-heap
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(searchNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func subsetKey(s []int) string {
	b := make([]byte, 0, len(s)*3)
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

// bestFirst runs Hall's best-first forward search over feature subsets.
// expansions, when non-nil, counts popped-and-expanded nodes.
func bestFirst(sc *suCache, d int, expansions *obs.Counter) []int {
	open := &nodeHeap{}
	heap.Init(open)
	visited := map[string]bool{}
	start := searchNode{subset: nil, merit: 0}
	heap.Push(open, start)
	visited[subsetKey(nil)] = true
	best := start
	stale := 0
	for open.Len() > 0 && stale < maxStale {
		cur := heap.Pop(open).(searchNode)
		expansions.Inc()
		improved := false
		for f := 0; f < d; f++ {
			if containsInt(cur.subset, f) {
				continue
			}
			child := append(append([]int{}, cur.subset...), f)
			sort.Ints(child)
			k := subsetKey(child)
			if visited[k] {
				continue
			}
			visited[k] = true
			rcfSum := cur.rcfSum + sc.rcf[f]
			rffSum := cur.rffSum
			for _, g := range cur.subset {
				rffSum += sc.featureFeature(f, g)
			}
			m := meritFromSums(len(child), rcfSum, rffSum)
			node := searchNode{subset: child, merit: m, rcfSum: rcfSum, rffSum: rffSum}
			heap.Push(open, node)
			if m > best.merit+1e-12 {
				best = node
				improved = true
			}
		}
		if improved {
			stale = 0
		} else {
			stale++
		}
	}
	if len(best.subset) == 0 {
		// fall back to the single best feature by class correlation
		bi := 0
		for f := 1; f < d; f++ {
			if sc.rcf[f] > sc.rcf[bi] {
				bi = f
			}
		}
		return []int{bi}
	}
	return best.subset
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// discretize maps values to equal-frequency bins (at most bins distinct
// codes). Ties at bin boundaries collapse into the lower bin, so constant
// features become a single code.
func discretize(values []float64, bins int) []int {
	n := len(values)
	if bins < 1 {
		bins = 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	out := make([]int, n)
	per := float64(n) / float64(bins)
	for rank, i := range idx {
		b := int(float64(rank) / per)
		if b >= bins {
			b = bins - 1
		}
		out[i] = b
	}
	// merge bins that share boundary values: equal inputs must get equal codes
	codeOf := map[float64]int{}
	for _, i := range idx {
		if c, ok := codeOf[values[i]]; ok {
			out[i] = c
		} else {
			codeOf[values[i]] = out[i]
		}
	}
	return out
}

// entropy computes the Shannon entropy (nats) of the code sequence.
// Codes must be dense (0..k-1), which discretize and denseCodes guarantee.
func entropy(codes []int) float64 {
	counts := make([]int, maxCode(codes)+1)
	for _, c := range codes {
		counts[c]++
	}
	return entropyCounts(counts, len(codes))
}

// jointEntropy computes H(A,B) of two aligned dense code sequences.
func jointEntropy(a, b []int) float64 {
	w := maxCode(b) + 1
	counts := make([]int, (maxCode(a)+1)*w)
	for i := range a {
		counts[a[i]*w+b[i]]++
	}
	return entropyCounts(counts, len(a))
}

func entropyCounts(counts []int, n int) float64 {
	fn := float64(n)
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log(p)
	}
	return h
}

func maxCode(codes []int) int {
	m := 0
	for _, c := range codes {
		if c > m {
			m = c
		}
	}
	return m
}

// symmetricalUncertainty returns SU(A,B) = 2·I(A;B)/(H(A)+H(B)), in [0,1];
// 0 when either variable is constant.
func symmetricalUncertainty(a, b []int) float64 {
	ha, hb := entropy(a), entropy(b)
	if ha+hb == 0 {
		return 0
	}
	mi := ha + hb - jointEntropy(a, b)
	if mi < 0 {
		mi = 0
	}
	return 2 * mi / (ha + hb)
}
