package datagen

import (
	"math"
	"math/rand"
)

// ABP synthesizes the medical-alarm case study data (paper §6.2). The
// paper used arterial-blood-pressure segments from the MIMIC-II ICU
// database, which cannot be shipped; this generator produces the same kind
// of signal — a quasi-periodic beat train with systolic upstroke, dicrotic
// notch and diastolic decay — where only local beat morphology separates
// the classes:
//
//	class 1 (normal):  regular beats, systolic ~120 / diastolic ~75 mmHg
//	class 2 (alarm):   hypotensive beats (low systolic, narrowed pulse
//	                   pressure) or damped/artifact beats, the morphologies
//	                   that trigger ICU ABP alarms
//
// Series are NOT z-normalized: absolute pressure level is part of the
// signal, as in the source data.
func ABP() Generator {
	const n = 256
	return Generator{
		Spec:    Spec{Name: "SynABPAlarm", Classes: 2, TrainSize: 40, TestSize: 120, Length: n},
		NoZNorm: true,
		Gen: func(rng *rand.Rand, class int) []float64 {
			v := make([]float64, n)
			period := 32 + rng.Intn(6) // beat-to-beat interval in samples
			phase := rng.Intn(period)
			sys := 120.0 + rng.NormFloat64()*5
			dia := 75.0 + rng.NormFloat64()*4
			damped := false
			if class == 2 {
				if rng.Intn(2) == 0 { // hypotension with narrowed pulse pressure
					sys = 78 + rng.NormFloat64()*4
					dia = 55 + rng.NormFloat64()*3
				} else { // damped waveform / catheter artifact
					damped = true
				}
			}
			for beat := -1; ; beat++ {
				start := beat*period + phase
				if start >= n {
					break
				}
				writeBeat(v, start, period, sys, dia, damped, rng)
			}
			addNoise(v, rng, 1.2)
			return v
		},
	}
}

// writeBeat renders one ABP pulse starting at start: fast systolic
// upstroke, rounded peak, dicrotic notch at ~40% of the cycle, then
// exponential diastolic decay toward the diastolic pressure.
func writeBeat(v []float64, start, period int, sys, dia float64, damped bool, rng *rand.Rand) {
	pulse := sys - dia
	if damped {
		pulse *= 0.35 // damping attenuates the pulse and blurs the notch
	}
	notchAt := int(0.4 * float64(period))
	for i := 0; i < period; i++ {
		t := start + i
		if t < 0 || t >= len(v) {
			continue
		}
		frac := float64(i) / float64(period)
		var x float64
		switch {
		case frac < 0.12: // upstroke
			x = dia + pulse*(frac/0.12)
		case frac < 0.3: // systolic peak, slightly rounded
			x = dia + pulse*(1-0.5*(frac-0.12)/0.18*0.3)
		case i == notchAt || i == notchAt+1: // dicrotic notch
			depth := 0.35
			if damped {
				depth = 0.1
			}
			x = dia + pulse*(0.55-depth*0.5)
		default: // diastolic decay
			x = dia + pulse*0.6*math.Exp(-3*(frac-0.3))
		}
		v[t] += x
	}
	// tiny per-beat variability
	if start >= 0 && start < len(v) {
		v[start] += rng.NormFloat64() * 0.5
	}
}
