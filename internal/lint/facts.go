package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is pass 1 of the two-pass facts engine (DESIGN.md §16): one
// walk over every analyzed package computes a per-function summary — the
// facts — and pass-2 analyzers (hotpathalloc, ctxflow, obsnames,
// faultsite) consume them across package boundaries.
//
// Facts are keyed by types.Object, canonicalized through a stable
// (package path, receiver, name) key: the loader type-checks each target
// package from source but resolves its imports from export data, so the
// *types.Func a call site names and the *types.Func of the callee's own
// declaration are distinct objects describing the same function. The
// canonical key makes them hit the same fact, which is what lets an
// analyzer follow a call from internal/serve into rpm and onward into
// internal/core without golang.org/x/tools-style facts serialization.

// AllocSite is one syntactic construct that may allocate, recorded where
// it appears in a function body.
type AllocSite struct {
	Pos  token.Pos
	What string // human-readable kind: "make", "append may grow", ...
}

// ResolvedCall is a statically resolved call to a named function or
// method (possibly in another, or an unanalyzed, package).
type ResolvedCall struct {
	Pos token.Pos
	Fn  *types.Func
}

// DynamicCall is a call whose callee cannot be resolved statically: a
// func-typed value or an interface method.
type DynamicCall struct {
	Pos  token.Pos
	Desc string
}

// ObsRecord is one obs-recording call site: a metric/span registration
// whose first argument names the series being recorded.
type ObsRecord struct {
	Pos     token.Pos
	PkgPath string
	Kind    string   // "Counter", "Gauge", "Pool", "Summary", "StartSpan", "Start", "Child"
	Name    ast.Expr // the name argument
	pkg     *Package
}

// FaultCall is one fault-injection decision site: a call to the
// injector's Fire/Err/Sleep with the site name as first argument.
type FaultCall struct {
	Pos     token.Pos
	PkgPath string
	Fn      string   // "Fire", "Err" or "Sleep"
	Arg     ast.Expr // the site-name argument
	pkg     *Package
}

// FuncFact is the pass-1 summary of one function declaration.
type FuncFact struct {
	Fn      *types.Func
	PkgPath string
	Decl    *ast.FuncDecl
	pkg     *Package

	// Hotpath is set when the declaration carries a //rpmlint:hotpath
	// marker: the function (and everything it calls) must be
	// allocation-free.
	Hotpath    bool
	HotpathPos token.Pos

	// AcceptsCtx reports a context.Context parameter in the signature.
	AcceptsCtx bool
	// CtxVariant is the sibling <Name>Context / <Name>Ctx function (same
	// package, same receiver type) that accepts a context, when one
	// exists. A caller holding a ctx must prefer the variant.
	CtxVariant *types.Func

	// RecordsObs / HitsFaults report whether the body directly contains
	// an obs-recording or fault-injection call site.
	RecordsObs bool
	HitsFaults bool

	// Allocs are the body's own potentially-allocating constructs;
	// Calls/Dynamic the outgoing edges hotpathalloc walks.
	Allocs  []AllocSite
	Calls   []ResolvedCall
	Dynamic []DynamicCall
}

// Facts is the pass-1 result over all analyzed packages.
type Facts struct {
	cfg  Config
	fset *token.FileSet

	funcs map[string]*FuncFact // canonical key -> fact
	// roots are the hotpath-marked functions in deterministic order
	// (package path, then position).
	roots []*FuncFact

	// obsRecords / faultCalls are every recording / injection site seen.
	obsRecords []ObsRecord
	faultCalls []FaultCall

	// recordedConsts holds the canonical keys of string constants
	// referenced inside the name argument of at least one obs-recording
	// call (the "is this obsnames.go constant actually recorded?" index).
	recordedConsts map[string]bool

	// usedFaultSites holds, per canonical constant key, the package
	// paths whose injection sites reference it.
	usedFaultSites map[string][]string

	// hotpathReported dedupes hotpathalloc diagnostics across the
	// per-package passes (one finding per site, whichever root reaches
	// it first).
	hotpathReported map[token.Pos]bool
}

// canonKey builds the cross-package identity of a function or constant:
// import path, receiver type name (for methods), and name. Export-data
// objects and source-checked objects of the same symbol agree on it.
func canonKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	recv := ""
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				recv = named.Obj().Name()
			}
		}
	}
	return obj.Pkg().Path() + "\x00" + recv + "\x00" + obj.Name()
}

// FuncFact returns the summary of the function obj resolves to, or nil.
// obj may come from either side of an import boundary.
func (f *Facts) FuncFact(obj types.Object) *FuncFact {
	if f == nil {
		return nil
	}
	return f.funcs[canonKey(obj)]
}

// HotpathRoots returns the //rpmlint:hotpath-marked functions in
// deterministic order.
func (f *Facts) HotpathRoots() []*FuncFact { return f.roots }

const hotpathMarker = "//rpmlint:hotpath"

// ComputeFacts runs pass 1 over pkgs.
func ComputeFacts(cfg Config, pkgs []*Package) *Facts {
	f := &Facts{
		cfg:             cfg,
		funcs:           map[string]*FuncFact{},
		recordedConsts:  map[string]bool{},
		usedFaultSites:  map[string][]string{},
		hotpathReported: map[token.Pos]bool{},
	}
	if len(pkgs) > 0 {
		f.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FuncFact{Fn: obj, PkgPath: pkg.ImportPath, Decl: fd, pkg: pkg}
				ff.Hotpath, ff.HotpathPos = hotpathMarked(fd)
				ff.AcceptsCtx = acceptsCtx(obj)
				f.collectBody(pkg, ff)
				f.funcs[canonKey(obj)] = ff
				if ff.Hotpath {
					f.roots = append(f.roots, ff)
				}
			}
		}
	}
	f.linkCtxVariants(pkgs)
	f.collectRecordSites(pkgs)
	sort.Slice(f.roots, func(i, j int) bool {
		a, b := f.roots[i], f.roots[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	return f
}

// hotpathMarked reports whether the declaration's doc comment carries
// the //rpmlint:hotpath marker.
func hotpathMarked(fd *ast.FuncDecl) (bool, token.Pos) {
	if fd.Doc == nil {
		return false, token.NoPos
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true, c.Pos()
		}
	}
	return false, token.NoPos
}

// acceptsCtx reports a context.Context parameter anywhere in the
// signature.
func acceptsCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// linkCtxVariants pairs each analyzed function F (no ctx parameter) with
// its sibling <F>Context / <F>Ctx declaration when one exists in the
// same package with the same receiver type. The pair fact is what lets
// ctxflow flag a ctx-holding caller that drops its context by calling
// the plain variant — across package boundaries.
func (f *Facts) linkCtxVariants(pkgs []*Package) {
	for key, ff := range f.funcs {
		if ff.AcceptsCtx {
			continue
		}
		for _, suffix := range []string{"Context", "Ctx"} {
			// The canonical key ends in \x00<name>; the variant shares
			// everything but the name.
			vkey := key + suffix
			if vf, ok := f.funcs[vkey]; ok && vf.AcceptsCtx {
				ff.CtxVariant = vf.Fn
				break
			}
		}
	}
}

// obsRecordMethod maps obs receiver type -> method -> true for the
// recording entry points whose first argument is a metric/span name.
var obsRecordMethods = map[string]map[string]bool{
	"Registry": {"Counter": true, "Gauge": true, "Pool": true, "Summary": true, "StartSpan": true},
	"Span":     {"Start": true, "Child": true},
}

// faultDecisionMethods are the injector entry points whose first
// argument is a site name.
var faultDecisionMethods = map[string]bool{"Fire": true, "Err": true, "Sleep": true}

// recvTypeName returns the name of fn's receiver's named type ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// collectRecordSites walks every file for obs-recording and
// fault-injection call sites, filling the global indexes the obsnames
// and faultsite analyzers consume.
func (f *Facts) collectRecordSites(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				recv := recvTypeName(fn)
				switch fn.Pkg().Path() {
				case f.cfg.ObsPkg:
					if m := obsRecordMethods[recv]; m != nil && m[fn.Name()] {
						f.obsRecords = append(f.obsRecords, ObsRecord{
							Pos: call.Pos(), PkgPath: pkg.ImportPath,
							Kind: fn.Name(), Name: call.Args[0], pkg: pkg,
						})
						for _, c := range constsIn(pkg.Info, call.Args[0]) {
							f.recordedConsts[canonKey(c)] = true
						}
					}
				case f.cfg.FaultsPkg:
					if recv == "Injector" && faultDecisionMethods[fn.Name()] {
						fc := FaultCall{
							Pos: call.Pos(), PkgPath: pkg.ImportPath,
							Fn: fn.Name(), Arg: call.Args[0], pkg: pkg,
						}
						f.faultCalls = append(f.faultCalls, fc)
						for _, c := range constsIn(pkg.Info, call.Args[0]) {
							key := canonKey(c)
							f.usedFaultSites[key] = append(f.usedFaultSites[key], pkg.ImportPath)
						}
					}
				}
				return true
			})
		}
	}
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// constsIn returns the string constants referenced anywhere inside e.
func constsIn(info *types.Info, e ast.Expr) []*types.Const {
	var out []*types.Const
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := info.Uses[id].(*types.Const); ok {
			if basic, ok := c.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// declaredInObsNames reports whether the constant's declaration sits in
// a file named obsnames.go. For source-checked packages the position is
// exact; for export-data imports it is best-effort (an unknown filename
// is accepted — running over ./... makes every repo package source-
// checked, so the lenient path only triggers on exotic subset runs).
func (f *Facts) declaredInObsNames(c *types.Const) bool {
	pos := f.fset.Position(c.Pos())
	if pos.Filename == "" {
		return true
	}
	return filepath.Base(pos.Filename) == "obsnames.go"
}

// collectBody fills the allocation and call-edge summary of one
// function body. Closure bodies are not descended into for allocation
// facts: the closure literal itself is already an allocation site, and
// annotating (or removing) it is the hot-path-relevant decision.
func (f *Facts) collectBody(pkg *Package, ff *FuncFact) {
	info := pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			ff.Allocs = append(ff.Allocs, AllocSite{Pos: v.Pos(), What: "closure literal allocates"})
			return false
		case *ast.GoStmt:
			ff.Allocs = append(ff.Allocs, AllocSite{Pos: v.Pos(), What: "go statement allocates a goroutine"})
		case *ast.CompositeLit:
			switch info.TypeOf(v).Underlying().(type) {
			case *types.Slice:
				ff.Allocs = append(ff.Allocs, AllocSite{Pos: v.Pos(), What: "slice literal allocates"})
			case *types.Map:
				ff.Allocs = append(ff.Allocs, AllocSite{Pos: v.Pos(), What: "map literal allocates"})
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					ff.Allocs = append(ff.Allocs, AllocSite{Pos: v.Pos(), What: "&composite literal escapes to the heap"})
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isNonConstString(info, v) {
				ff.Allocs = append(ff.Allocs, AllocSite{Pos: v.Pos(), What: "string concatenation allocates"})
			}
		case *ast.CallExpr:
			return f.collectCall(pkg, ff, v, walk)
		}
		return true
	}
	ast.Inspect(ff.Decl.Body, walk)

	// RecordsObs / HitsFaults: a cheap re-scan keyed off the callee's
	// package (the global site indexes are built separately with full
	// argument context).
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case f.cfg.ObsPkg:
			if m := obsRecordMethods[recvTypeName(fn)]; m != nil && m[fn.Name()] {
				ff.RecordsObs = true
			}
		case f.cfg.FaultsPkg:
			if recvTypeName(fn) == "Injector" && faultDecisionMethods[fn.Name()] {
				ff.HitsFaults = true
			}
		}
		return true
	})
}

// collectCall classifies one call expression inside a summarized body,
// returning whether the walker should descend into the arguments.
func (f *Facts) collectCall(pkg *Package, ff *FuncFact, call *ast.CallExpr, walk func(ast.Node) bool) bool {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversion? string<->[]byte/[]rune copies; conversion into an
	// interface boxes non-pointer-shaped values.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		f.collectConversion(info, ff, call, tv.Type)
		return true
	}

	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}

	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "make":
			ff.Allocs = append(ff.Allocs, AllocSite{Pos: call.Pos(), What: "make allocates"})
		case "new":
			ff.Allocs = append(ff.Allocs, AllocSite{Pos: call.Pos(), What: "new allocates"})
		case "append":
			if !isRecycledAppend(call) {
				ff.Allocs = append(ff.Allocs, AllocSite{Pos: call.Pos(), What: "append may grow its backing array"})
			}
		case "panic":
			// Failure path by definition: what it allocates never runs in
			// a healthy hot loop. Skip the argument subtree too, so
			// panic(fmt.Sprintf(...)) guards stay unflagged.
			return false
		}
		return true
	case *types.Func:
		ff.Calls = append(ff.Calls, ResolvedCall{Pos: call.Pos(), Fn: o})
		f.collectBoxing(info, ff, call, o)
		return true
	case nil:
		// Func-typed value or an unresolvable expression.
		ff.Dynamic = append(ff.Dynamic, DynamicCall{Pos: call.Pos(), Desc: describeDynamic(info, fun)})
		return true
	default:
		// *types.Var: calling through a func-typed variable or field;
		// interface methods resolve to *types.Func via Uses, so this is
		// the func-value case.
		ff.Dynamic = append(ff.Dynamic, DynamicCall{Pos: call.Pos(), Desc: describeDynamic(info, fun)})
		return true
	}
}

// collectConversion records allocating type conversions.
func (f *Facts) collectConversion(info *types.Info, ff *FuncFact, call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isStringSliceConv(toU, fromU) || isStringSliceConv(fromU, toU) {
		ff.Allocs = append(ff.Allocs, AllocSite{Pos: call.Pos(), What: "string/slice conversion copies"})
		return
	}
	if types.IsInterface(toU) && !types.IsInterface(fromU) && !pointerShaped(fromU) {
		ff.Allocs = append(ff.Allocs, AllocSite{Pos: call.Pos(), What: "interface conversion boxes a value"})
	}
}

// collectBoxing flags call arguments implicitly boxed into interface
// parameters (the fmt.Println(x) shape without naming fmt).
func (f *Facts) collectBoxing(info *types.Info, ff *FuncFact, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at.Underlying()) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			// Constants box through read-only static data in practice
			// (and a constant argument is a deliberate choice, not a
			// per-iteration allocation).
			continue
		}
		if basicUntypedNil(at) {
			continue
		}
		ff.Allocs = append(ff.Allocs, AllocSite{Pos: arg.Pos(), What: "argument boxed into interface parameter"})
	}
}

func basicUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit in an interface word
// without a heap box.
func pointerShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// isStringSliceConv reports a string <-> []byte/[]rune conversion pair.
func isStringSliceConv(to, from types.Type) bool {
	tb, ok := to.(*types.Basic)
	if !ok || tb.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := from.(*types.Slice)
	if !ok {
		return false
	}
	eb, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (eb.Kind() == types.Byte || eb.Kind() == types.Rune || eb.Kind() == types.Uint8 || eb.Kind() == types.Int32)
}

// isRecycledAppend recognizes the canonical buffer-reuse idiom
// append(x[:0], ...): growth is bounded by the high-water mark of a
// pooled buffer, which is the repo's accepted steady-state-zero pattern.
func isRecycledAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.High == nil || sl.Slice3 {
		return false
	}
	lit, ok := sl.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// isNonConstString reports whether e is a non-constant string-typed
// expression (constant folding happens at compile time and allocates
// nothing).
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// describeDynamic renders an unresolvable callee for diagnostics.
func describeDynamic(info *types.Info, fun ast.Expr) string {
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv().Underlying()) {
				return "interface method " + sel.Sel.Name
			}
		}
		return "func value " + sel.Sel.Name
	}
	if id, ok := fun.(*ast.Ident); ok {
		return "func value " + id.Name
	}
	return "dynamic call"
}
