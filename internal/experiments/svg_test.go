package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fakeResults() []DatasetResult {
	return []DatasetResult{
		{Name: "a", Results: map[string]MethodResult{
			MethodNNED: {Err: 0.3, TrainTime: time.Second},
			MethodLS:   {Err: 0.1, TrainTime: 4 * time.Second},
			MethodFS:   {Err: 0.2, TrainTime: time.Second / 2},
			MethodRPM:  {Err: 0.05, TrainTime: 2 * time.Second},
		}},
		{Name: "b", Results: map[string]MethodResult{
			MethodNNED: {Err: 0.4, TrainTime: time.Second},
			MethodLS:   {Err: 0.3, TrainTime: 6 * time.Second},
			MethodFS:   {Err: 0.25, TrainTime: time.Second},
			MethodRPM:  {Err: 0.2, TrainTime: 3 * time.Second},
		}},
		{Name: "c", Results: map[string]MethodResult{
			MethodNNED: {Err: 0.1, TrainTime: time.Second},
			MethodLS:   {Err: 0.15, TrainTime: 5 * time.Second},
			MethodFS:   {Err: 0.3, TrainTime: time.Second},
			MethodRPM:  {Err: 0.1, TrainTime: time.Second},
		}},
	}
}

func TestWriteFig7SVG(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteFig7SVG(dir, fakeResults(), []string{MethodNNED, MethodRPM})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	content, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "<svg") || !strings.Contains(string(content), "circle") {
		t.Error("fig7 SVG malformed")
	}
}

func TestWriteFig8SVG(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteFig8SVG(dir, fakeResults())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s", p)
		}
	}
}

func TestWriteFig9SVG(t *testing.T) {
	dir := t.TempDir()
	sweep := []TauSeries{{
		Dataset: "x",
		Points: []TauPoint{
			{Percentile: 10, Err: 0.1, Time: time.Second},
			{Percentile: 30, Err: 0.12, Time: 800 * time.Millisecond},
			{Percentile: 50, Err: 0.12, Time: 700 * time.Millisecond},
		},
	}}
	paths, err := WriteFig9SVG(dir, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	want := map[string]bool{"fig9_time.svg": true, "fig9_error.svg": true}
	for _, p := range paths {
		if !want[filepath.Base(p)] {
			t.Errorf("unexpected file %s", p)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("NN-ED/2"); got != "NN_ED_2" {
		t.Errorf("sanitize = %q", got)
	}
}
