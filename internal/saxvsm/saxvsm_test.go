package saxvsm

import (
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/sax"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

func TestTrainPredictCBF(t *testing.T) {
	s := datagen.MustByName("SynCBF").Generate(1)
	m := Train(s.Train, sax.Params{Window: 40, PAA: 6, Alphabet: 4})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.15 {
		t.Errorf("SAX-VSM error on SynCBF = %v", e)
	}
}

func TestTrainAutoImprovesOrMatches(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(2)
	auto := TrainAuto(s.Train, 7)
	preds := auto.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.35 {
		t.Errorf("auto-tuned SAX-VSM error = %v", e)
	}
	if err := auto.Params().Validate(s.Length()); err != nil {
		t.Errorf("selected invalid params: %v", err)
	}
}

func TestPredictOnTrainingInstances(t *testing.T) {
	s := datagen.MustByName("SynCoffee").Generate(3)
	m := Train(s.Train, sax.Params{Window: 60, PAA: 8, Alphabet: 4})
	preds := m.PredictBatch(s.Train)
	if e := stats.ErrorRate(preds, s.Train.Labels()); e > 0.1 {
		t.Errorf("training error = %v", e)
	}
}

func TestShortSeriesHandled(t *testing.T) {
	train := ts.Dataset{
		{Label: 1, Values: []float64{0, 1, 0, 1, 0, 1, 0, 1}},
		{Label: 2, Values: []float64{0, 0, 0, 1, 1, 1, 0, 0}},
	}
	// window exceeds series length: must degrade gracefully
	m := Train(train, sax.Params{Window: 50, PAA: 4, Alphabet: 3})
	if got := m.Predict(train[0].Values); got != 1 && got != 2 {
		t.Errorf("Predict = %d", got)
	}
}

func TestSharedWordsGetZeroWeight(t *testing.T) {
	// Identical training series in both classes: every word is shared,
	// all idf = 0, prediction must still return a valid label.
	v := []float64{0, 1, 2, 3, 2, 1, 0, 1, 2, 3, 2, 1, 0, 1, 2, 3}
	train := ts.Dataset{
		{Label: 1, Values: v},
		{Label: 2, Values: v},
	}
	m := Train(train, sax.Params{Window: 8, PAA: 4, Alphabet: 3})
	for k := range m.weights {
		if len(m.weights[k]) != 0 {
			t.Errorf("class %d has nonzero weights for fully shared vocabulary", k)
		}
	}
	got := m.Predict(v)
	if got != 1 && got != 2 {
		t.Errorf("Predict = %d", got)
	}
}

func TestTopWords(t *testing.T) {
	s := datagen.MustByName("SynCBF").Generate(4)
	m := Train(s.Train, sax.Params{Window: 40, PAA: 5, Alphabet: 4})
	words := m.TopWords(1, 3)
	if len(words) == 0 {
		t.Fatal("no top words")
	}
	for _, w := range words {
		if len(w) != 5 {
			t.Errorf("word %q has wrong length", w)
		}
	}
	if got := m.TopWords(99, 3); got != nil {
		t.Errorf("unknown class TopWords = %v", got)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Train(nil, sax.Params{Window: 10, PAA: 4, Alphabet: 4})
}

func TestSelectParamsDeterministic(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(5)
	p1 := SelectParams(s.Train, 3)
	p2 := SelectParams(s.Train, 3)
	if p1 != p2 {
		t.Errorf("same seed selected %v and %v", p1, p2)
	}
}
