package datagen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rpm/internal/dist"
	"rpm/internal/ts"
)

func TestSuiteSpecsConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range Suite() {
		if g.Name == "" || g.Classes < 2 || g.Length < 16 || g.TrainSize < g.Classes || g.TestSize < g.Classes {
			t.Errorf("%s: bad spec %+v", g.Name, g.Spec)
		}
		if seen[g.Name] {
			t.Errorf("duplicate dataset name %s", g.Name)
		}
		seen[g.Name] = true
	}
	if len(Suite()) < 15 {
		t.Errorf("suite has only %d datasets", len(Suite()))
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, g := range append(Suite(), ABP()) {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			s := g.Generate(1)
			if len(s.Train) != g.TrainSize || len(s.Test) != g.TestSize {
				t.Fatalf("sizes %d/%d, want %d/%d", len(s.Train), len(s.Test), g.TrainSize, g.TestSize)
			}
			for _, in := range append(s.Train.Clone(), s.Test.Clone()...) {
				if len(in.Values) != g.Length {
					t.Fatalf("instance length %d, want %d", len(in.Values), g.Length)
				}
				if in.Label < 1 || in.Label > g.Classes {
					t.Fatalf("label %d outside 1..%d", in.Label, g.Classes)
				}
				for _, x := range in.Values {
					if math.IsNaN(x) || math.IsInf(x, 0) {
						t.Fatal("non-finite value generated")
					}
				}
			}
			// every class must be represented in both parts
			if got := len(s.Train.Classes()); got != g.Classes {
				t.Errorf("train has %d classes, want %d", got, g.Classes)
			}
			if got := len(s.Test.Classes()); got != g.Classes {
				t.Errorf("test has %d classes, want %d", got, g.Classes)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := CBF()
	a := g.Generate(42)
	b := g.Generate(42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different data")
	}
	c := g.Generate(43)
	if reflect.DeepEqual(a.Train[0].Values, c.Train[0].Values) {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateZNormalized(t *testing.T) {
	s := GunPoint().Generate(7)
	for i, in := range s.Train {
		if math.Abs(ts.Mean(in.Values)) > 1e-9 || math.Abs(ts.Std(in.Values)-1) > 1e-9 {
			t.Fatalf("train[%d] not z-normalized", i)
		}
	}
}

func TestABPNotNormalizedAndPlausible(t *testing.T) {
	s := ABP().Generate(11)
	for _, in := range s.Train {
		m := ts.Mean(in.Values)
		if m < 40 || m > 140 {
			t.Fatalf("ABP mean %v outside physiologic range", m)
		}
	}
	// alarm class must have visibly lower mean pressure for the
	// hypotensive subtype; check the class means differ
	by := s.Train.ByClass()
	m1 := 0.0
	for _, in := range by[1] {
		m1 += ts.Mean(in.Values)
	}
	m1 /= float64(len(by[1]))
	m2 := 0.0
	for _, in := range by[2] {
		m2 += ts.Mean(in.Values)
	}
	m2 /= float64(len(by[2]))
	if m2 >= m1 {
		t.Errorf("alarm mean %v not below normal mean %v", m2, m1)
	}
}

func TestWaferImbalance(t *testing.T) {
	s := Wafer().Generate(3)
	by := s.Train.ByClass()
	if len(by[1]) <= len(by[2])*4 {
		t.Errorf("Wafer should be heavily imbalanced, got %d vs %d", len(by[1]), len(by[2]))
	}
	if len(by[2]) == 0 {
		t.Error("minority class absent")
	}
}

// Classes must be structurally separable: the mean intra-class closest-match
// distance of a class-discriminative prototype should be smaller within the
// class than across classes, for at least the pattern-driven datasets.
func TestClassesAreSeparable(t *testing.T) {
	for _, name := range []string{"SynCBF", "SynGunPoint", "SynCoffee", "SynECGFiveDays"} {
		g := MustByName(name)
		s := g.Generate(5)
		by := s.Train.ByClass()
		// 1NN-ED on train instances: leave-one-out accuracy must beat chance
		correct := 0
		for i, in := range s.Train {
			best := math.Inf(1)
			bestLabel := -1
			for j, other := range s.Train {
				if i == j {
					continue
				}
				d := dist.Euclidean(in.Values, other.Values)
				if d < best {
					best = d
					bestLabel = other.Label
				}
			}
			if bestLabel == in.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(s.Train))
		chance := 1 / float64(g.Classes)
		if acc < chance+0.2 {
			t.Errorf("%s: LOO 1NN accuracy %.2f barely above chance %.2f — classes not separable", name, acc, chance)
		}
		_ = by
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("SynCBF"); !ok {
		t.Error("SynCBF not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unexpected dataset found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic on unknown name")
		}
	}()
	MustByName("nope")
}

func TestAllocate(t *testing.T) {
	g := Generator{Spec: Spec{Name: "x", Classes: 3, Length: 16}}
	counts := g.allocate(10)
	total := 0
	for _, c := range counts {
		if c < 1 {
			t.Errorf("class starved: %v", counts)
		}
		total += c
	}
	if total != 10 {
		t.Errorf("allocated %d, want 10", total)
	}
	// weighted
	g.ClassWeights = []float64{8, 1, 1}
	counts = g.allocate(20)
	if counts[0] <= counts[1] || counts[0] <= counts[2] {
		t.Errorf("weights ignored: %v", counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 20 {
		t.Errorf("weighted total %d", sum)
	}
}

func TestWarpProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := make([]float64, 100)
	for i := range v {
		v[i] = math.Sin(float64(i) / 7)
	}
	w := warp(v, rng, 0.8)
	if len(w) != len(v) {
		t.Fatal("warp changed length")
	}
	// endpoints are (approximately) pinned
	if math.Abs(w[0]-v[0]) > 1e-9 {
		t.Errorf("warp moved the first point: %v vs %v", w[0], v[0])
	}
	// warped values stay within the original range (interpolation)
	lo, hi := v[0], v[0]
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	for i, x := range w {
		if x < lo-1e-9 || x > hi+1e-9 {
			t.Fatalf("warped value %v at %d outside [%v,%v]", x, i, lo, hi)
		}
	}
	// zero strength and short input are identity copies
	if got := warp(v, rng, 0); !reflect.DeepEqual(got, v) {
		t.Error("strength 0 must be identity")
	}
	short := []float64{1, 2}
	if got := warp(short, rng, 1); !reflect.DeepEqual(got, short) {
		t.Error("short input must be copied unchanged")
	}
	// must not alias the input
	w[3] = 999
	if v[3] == 999 {
		t.Error("warp aliased its input")
	}
}

func TestSmoothAndShapesHelpers(t *testing.T) {
	v := []float64{0, 0, 10, 0, 0}
	sm := smooth(v, 1)
	if sm[2] >= 10 || sm[1] <= 0 {
		t.Errorf("smooth = %v", sm)
	}
	if got := smooth(v, 0); !reflect.DeepEqual(got, v) {
		t.Errorf("smooth k=0 should copy, got %v", got)
	}
	// addPlateau ramps must be bounded by the plateau amplitude
	p := make([]float64, 30)
	addPlateau(p, 10, 20, 3, 2)
	for i, x := range p {
		if x < 0 || x > 2+1e-12 {
			t.Errorf("plateau out of range at %d: %v", i, x)
		}
	}
	if p[15] != 2 {
		t.Errorf("plateau top = %v", p[15])
	}
}
