// Medical alarm case study (paper §6.2): classify arterial-blood-pressure
// waveform segments as normal or alarm-triggering. The paper used MIMIC-II
// ICU recordings; this example runs on the synthetic ABP generator that
// reproduces the same structure — quasi-periodic beat trains where alarm
// segments carry hypotensive or damped beat morphologies. RPM's discovered
// patterns are individual pathological beats, which is exactly the
// interpretability the case study highlights.
package main

import (
	"fmt"
	"log"

	"rpm"
)

func main() {
	split := rpm.GenerateABP(1)
	fmt.Printf("ABP alarm dataset: %d train, %d test, length %d\n",
		len(split.Train), len(split.Test), len(split.Train[0].Values))
	fmt.Println("class 1 = normal pressure waveform, class 2 = alarm (hypotension / damping)")

	// ABP series are deliberately NOT z-normalized (absolute pressure
	// matters), so normalize copies for the distance-based baselines that
	// assume it, but give RPM the raw series: its SAX windows z-normalize
	// locally, and the hypotensive morphology survives normalization.
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 48, PAA: 8, Alphabet: 4}
	clf, err := rpm.Train(split.Train, opts)
	if err != nil {
		log.Fatal(err)
	}
	nnED, err := rpm.NewNNEuclidean(split.Train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmethod            error\n")
	fmt.Printf("NN-ED             %.3f\n", errOf(rpm.PredictAll(nnED, split.Test), split.Test))
	fmt.Printf("RPM               %.3f\n", errOf(clf.PredictBatch(split.Test), split.Test))

	fmt.Printf("\nRPM found %d representative patterns:\n", len(clf.Patterns()))
	for i, p := range clf.Patterns() {
		kind := "normal-beat prototype"
		if p.Class == 2 {
			kind = "alarm-beat prototype"
		}
		fmt.Printf("  pattern %d: class %d (%s), length %d (~%.1f beats), support %d\n",
			i, p.Class, kind, len(p.Values), float64(len(p.Values))/34.0, p.Support)
	}

	// Show the alarm evidence for one alarm test series: the distance to
	// the alarm patterns should be small, to the normal patterns large.
	for _, in := range split.Test {
		if in.Label != 2 {
			continue
		}
		fmt.Printf("\nexample alarm series: predicted class %d\n", clf.Predict(in.Values))
		fmt.Printf("distances to patterns: %.3f\n", clf.Transform(in.Values))
		break
	}
}

func errOf(preds []int, d rpm.Dataset) float64 {
	wrong := 0
	for i, p := range preds {
		if p != d[i].Label {
			wrong++
		}
	}
	return float64(wrong) / float64(len(d))
}
