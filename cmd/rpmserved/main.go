// Command rpmserved is the RPM inference server: it loads every saved
// classifier snapshot (*.json, written by Classifier.Save / rpmcli
// -save) from a model directory into a versioned, hot-reloadable
// registry and serves predictions over HTTP, amortizing per-request
// transform cost through an adaptive micro-batcher (see DESIGN.md §10).
//
// Usage:
//
//	rpmserved -models ./models -addr :8080
//
// Endpoints:
//
//	POST /v1/predict        {"model":"name","values":[...]}    → {"model","version","label"}
//	POST /v1/predict:batch  {"model":"name","series":[[...]]}  → {"model","version","labels"}
//	GET  /v1/models         list loaded models and versions
//	POST /v1/streams/{id}          append samples to a live stream (created on first touch)
//	GET  /v1/streams/{id}          stream state; DELETE closes the stream
//	GET  /v1/streams/{id}/events   SSE feed of committed class-change events (Last-Event-ID resume)
//	GET  /v1/streams               list live streams and their memory footprint
//	POST /admin/reload      re-scan the model directory (also SIGHUP)
//	GET  /healthz, /readyz  liveness / readiness
//	GET  /debug/obs         live serve.* counters, latency summaries, pools
//	GET  /debug/faults      armed chaos sites and the injected-fault log
//	     /debug/vars        expvar (includes rpm_obs), /debug/pprof/*
//
// The "model" field may be omitted when exactly one model is loaded.
// Hot reload (SIGHUP or POST /admin/reload) atomically swaps in changed
// snapshots; corrupt files are rejected and the previous version keeps
// serving. SIGTERM/SIGINT drains gracefully: /readyz flips to 503 the
// moment the drain begins (while /healthz stays 200), in-flight and
// queued requests finish, new ones get 503.
//
// Chaos mode (-faults "site:p=0.5;...", -faults-seed N) arms the
// deterministic fault injector of DESIGN.md §13 inside the serving
// layer — model-load I/O errors, flush stalls, queue saturation,
// deadline exhaustion, response-write aborts. Same seed + spec
// reproduces the exact injected sequence. Never use in production.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rpm/internal/faults"
	"rpm/internal/obs"
	"rpm/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		models       = flag.String("models", "", "directory of saved model snapshots (*.json); required")
		maxBatch     = flag.Int("max-batch", 16, "micro-batch flush size")
		maxDelay     = flag.Duration("max-delay", 2*time.Millisecond, "longest a request waits for batch-mates before flushing")
		queueSize    = flag.Int("queue", 256, "batch queue bound; a full queue sheds with 429")
		workers      = flag.Int("workers", 0, "predict fan-out per flush (0 = all cores, 1 = sequential)")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request deadline (queueing + prediction)")
		maxStreams   = flag.Int("max-streams", 10000, "live-stream cap; creation beyond it sheds with 429 (-1 = unbounded)")
		streamChunk  = flag.Int("stream-chunk", 8192, "max samples per stream append; larger chunks get 413")
		streamK      = flag.Int("stream-confirm", 3, "hysteresis depth: consecutive agreeing samples before a class change commits")
		streamDead   = flag.Int("stream-refractory", 0, "post-commit dead time in samples during which no further change commits")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget on SIGTERM/SIGINT")
		noDebug      = flag.Bool("no-debug", false, "disable /debug/obs, /debug/vars and /debug/pprof")
		faultSpec    = flag.String("faults", "", "chaos fault-injection spec, e.g. \"store.load:p=0.5;batcher.flush:d=50ms:n=3\" (sites: "+strings.Join(faults.KnownSites(), ", ")+"); empty = off")
		faultSeed    = flag.Int64("faults-seed", 1, "fault-injection seed; same seed + spec reproduces the exact injected sequence")
	)
	flag.Parse()
	if *models == "" {
		fmt.Fprintln(os.Stderr, "rpmserved: -models is required (a directory of *.json snapshots)")
		flag.Usage()
		os.Exit(2)
	}
	inj, err := faults.New(*faultSeed, *faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpmserved: %v\n", err)
		os.Exit(2)
	}
	cfg := serve.Config{
		ModelDir:         *models,
		MaxBatch:         *maxBatch,
		MaxDelay:         *maxDelay,
		QueueSize:        *queueSize,
		Workers:          *workers,
		RequestTimeout:   *timeout,
		MaxStreams:       *maxStreams,
		MaxStreamChunk:   *streamChunk,
		StreamConfirm:    *streamK,
		StreamRefractory: *streamDead,
		Faults:           inj,
	}
	if err := run(*addr, cfg, *drainTimeout, !*noDebug, inj); err != nil {
		log.Fatalf("rpmserved: %v", err)
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration, debug bool, inj *faults.Injector) error {
	reg := obs.NewRegistry()
	cfg.Registry = reg
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if inj != nil {
		log.Printf("CHAOS MODE: %s — not for production", inj)
	}
	for _, m := range srv.Store().Models() {
		log.Printf("loaded model %q v%d (%d patterns, classes %v) from %s",
			m.Name, m.Version, m.NumPatterns, m.Classes, m.Path)
	}
	if srv.Store().Len() == 0 {
		log.Printf("warning: no loadable models in %s; /readyz stays 503 until a reload finds one", cfg.ModelDir)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if debug {
		// The PR-3 debug surface: live instrumentation, expvar, pprof.
		mux.Handle("GET /debug/obs", obs.Handler(reg))
		// Chaos surface: armed sites and the injected-fault log (empty
		// arming and log when running without -faults).
		mux.HandleFunc("GET /debug/faults", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"armed":  inj.Armed(),
				"events": inj.Events(),
			})
		})
		expvar.Publish("rpm_obs", expvar.Func(func() any { return reg.Snapshot() }))
		mux.Handle("GET /debug/vars", expvar.Handler())
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	httpSrv := &http.Server{Addr: addr, Handler: mux}

	// SIGHUP → hot reload; SIGTERM/SIGINT → graceful drain.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			rep, err := srv.Reload()
			if err != nil {
				log.Printf("reload failed: %v", err)
				continue
			}
			log.Printf("reload: %d loaded, %d unchanged, %d kept-old, %d rejected, %d removed (%d serving)",
				len(rep.Loaded), len(rep.Unchanged), len(rep.KeptOld), len(rep.Rejected), len(rep.Removed), rep.Models)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (models=%s maxBatch=%d maxDelay=%s queue=%d maxStreams=%d)",
			addr, cfg.ModelDir, cfg.MaxBatch, cfg.MaxDelay, cfg.QueueSize, cfg.MaxStreams)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("got %s, draining (budget %s)", sig, drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Order matters: flip /readyz to 503 immediately (load balancers stop
	// routing here while /healthz stays 200), then stop accepting and
	// finish in-flight handlers (http.Server.Shutdown), then drain the
	// batch queue (serve.Close).
	srv.BeginDrain()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("draining batcher: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
