// Package lint is the repo's stdlib-only static-analysis framework:
// a tiny analyzer driver (go/parser + go/types + go/importer — no
// golang.org/x/tools, preserving the zero-dependency policy) plus the
// six project-specific analyzers behind cmd/rpmlint.
//
// The analyzers mechanically enforce invariants that earlier PRs
// established only by convention and spot tests:
//
//	detmap        — no order-sensitive map iteration in deterministic
//	                packages (PR 1: byte-identical results at any
//	                worker count).
//	nondeterm     — no clock / global-rand / environment reads in
//	                deterministic packages outside obs-recording call
//	                sites (PR 1 + PR 3).
//	errtaxonomy   — exported functions of the error-taxonomy packages
//	                (the public rpm API and the archive runner) route
//	                every returned error through their own typed
//	                *Error constructors or sentinels (PR 2, PR 9).
//	baregoroutine — no bare `go` statements outside the worker-pool /
//	                serving / obs layers, so fan-out stays cancellable
//	                and pool-accounted (PR 1 + PR 4).
//	nilsafeobs    — every exported pointer-receiver method in
//	                internal/obs begins with a nil-receiver guard
//	                (PR 3: nil handles never steer).
//	floateq       — no ==/!= between floating-point operands in
//	                non-test code, except literal-0 sentinels.
//
// A second, interprocedural tier (DESIGN.md §16) runs on top of the
// pass-1 facts engine in facts.go:
//
//	hotpathalloc  — //rpmlint:hotpath-marked functions are transitively
//	                allocation-free (PR 6 + PR 8: 0-alloc predict and
//	                stream paths), following calls across packages.
//	ctxflow       — a function holding a context passes it on: no
//	                context.Background()/TODO() outside cmd/*, no
//	                calling Foo when FooContext exists (PR 2).
//	obsnames      — every recorded metric/span name traces to a
//	                constant in the owning package's obsnames.go; no
//	                raw literals, duplicates, or dead names (PR 3).
//	faultsite     — injector call sites name declared site constants,
//	                and every declared site is exercised by the serving
//	                layer (PR 7: chaos-suite drift).
//	staleignore   — an //rpmlint:ignore that suppresses nothing is
//	                itself a diagnostic (PR 5 ledger hygiene).
//
// Deliberate exceptions are annotated in the source with
//
//	//rpmlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory; a directive without one is itself a diagnostic.
//
// The driver analyzes only non-test files (go list's GoFiles), so
// _test.go files are exempt from every analyzer by construction.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Config tells the analyzers which packages play which architectural
// role. Defaults() returns this repo's wiring; tests substitute fixture
// paths.
type Config struct {
	// DeterministicPkgs are the import paths whose outputs must be
	// byte-identical run to run (detmap, nondeterm).
	DeterministicPkgs []string
	// ObsPkg is the instrumentation package: calls into it are
	// obs-recording (nondeterm exemption) and its exported
	// pointer-receiver methods must be nil-guarded (nilsafeobs).
	ObsPkg string
	// ErrTaxonomyPkgs are the packages whose exported functions must
	// route errors through their own typed taxonomy (errtaxonomy):
	// each declares its own sentinels, *Error type, and constructors,
	// and the analyzer checks every listed package against its own
	// declarations.
	ErrTaxonomyPkgs []string
	// GoroutineExemptPkgs are import paths (exact, or prefixes when
	// ending in "/") where bare `go` statements are allowed
	// (baregoroutine).
	GoroutineExemptPkgs []string
	// FaultsPkg is the fault-injection package: its Injector methods
	// are decision sites (faultsite) and facts record which functions
	// reach them.
	FaultsPkg string
	// FaultsUsePkgs are the packages (exact, or prefixes when ending in
	// "/") that must exercise every declared fault site (faultsite).
	FaultsUsePkgs []string
	// CmdPkgPrefixes are the import-path prefixes of binary entry
	// points, where creating a root context with context.Background()
	// is legitimate (ctxflow).
	CmdPkgPrefixes []string
}

// Defaults returns the repo's own role wiring.
func Defaults() Config {
	return Config{
		DeterministicPkgs: []string{
			"rpm/internal/core",
			"rpm/internal/sax",
			"rpm/internal/sequitur",
			"rpm/internal/cluster",
			"rpm/internal/features",
			"rpm/internal/svm",
			"rpm/internal/direct",
			"rpm/internal/dist",
			"rpm/internal/paa",
			"rpm/internal/stream",
		},
		ObsPkg: "rpm/internal/obs",
		ErrTaxonomyPkgs: []string{
			"rpm",
			"rpm/internal/experiments/archive",
		},
		GoroutineExemptPkgs: []string{
			"rpm/internal/parallel",
			"rpm/internal/serve", // prefix: also covers serve/client
			"rpm/internal/faults",
			"rpm/internal/obs",
			"rpm/cmd/",
		},
		FaultsPkg:      "rpm/internal/faults",
		FaultsUsePkgs:  []string{"rpm/internal/serve"},
		CmdPkgPrefixes: []string{"rpm/cmd/"},
	}
}

// deterministic reports whether path is one of the deterministic
// packages.
func (c Config) deterministic(path string) bool {
	for _, p := range c.DeterministicPkgs {
		if p == path {
			return true
		}
	}
	return false
}

// errTaxonomyChecked reports whether path's exported functions are
// held to the typed-error taxonomy.
func (c Config) errTaxonomyChecked(path string) bool {
	for _, p := range c.ErrTaxonomyPkgs {
		if p == path {
			return true
		}
	}
	return false
}

// goroutineExempt reports whether path may contain bare go statements.
func (c Config) goroutineExempt(path string) bool {
	return matchPkg(c.GoroutineExemptPkgs, path)
}

// faultsUse reports whether path belongs to the layer that must
// exercise every declared fault site.
func (c Config) faultsUse(path string) bool {
	return matchPkg(c.FaultsUsePkgs, path)
}

// cmdPkg reports whether path is a binary entry point (ctxflow's
// context.Background() exemption).
func (c Config) cmdPkg(path string) bool {
	for _, p := range c.CmdPkgPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// matchPkg matches path against entries that are exact import paths, or
// prefixes when ending in "/", or subtree roots otherwise.
func matchPkg(entries []string, path string) bool {
	for _, p := range entries {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
			continue
		}
		if p == path || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Analyzer is one named check. Run reports findings through
// pass.Reportf.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore
	// directives.
	Name string
	// Doc is a one-line description shown by rpmlint -list.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Config   Config
	Fset     *token.FileSet
	Pkg      *types.Package
	Info     *types.Info
	Files    []*ast.File

	// PkgPath is the import path of the analyzed package (Pkg.Path()
	// for source-checked targets; kept explicit for symmetry with the
	// facts indexes).
	PkgPath string

	// Facts is the pass-1 interprocedural summary over every analyzed
	// package (nil only when Run was handed no packages).
	Facts *Facts

	diags *[]Diagnostic

	// ignores is the run-wide directive index; EdgeCut consults it so
	// hotpathalloc can stop a traversal at an annotated call site.
	ignores *ignoreIndex

	// parents maps each AST node to its parent, built lazily per pass
	// for analyzers that walk upward (nondeterm's obs-call nesting).
	parents map[ast.Node]ast.Node
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// EdgeCut reports whether pos carries an //rpmlint:ignore directive for
// this analyzer (same line or the line above). hotpathalloc uses it to
// stop traversing at a reviewed boundary call — the directive counts as
// used, so staleignore stays quiet about it.
func (p *Pass) EdgeCut(pos token.Pos) bool {
	if p.ignores == nil {
		return false
	}
	position := p.Fset.Position(pos)
	return p.ignores.use(position.Filename, position.Line, p.Analyzer.Name)
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves the callee object of a call expression: the
// function or method being invoked, or nil when it cannot be resolved
// (builtins resolve to *types.Builtin).
func (p *Pass) calleeOf(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// calleePkgPath returns the import path of the package declaring the
// callee of call, or "" when unresolvable (builtins, type conversions).
func (p *Pass) calleePkgPath(call *ast.CallExpr) string {
	obj := p.calleeOf(call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if _, ok := obj.(*types.Func); !ok {
		return "" // conversion via named type, var of func type, etc.
	}
	return obj.Pkg().Path()
}

// parentOf returns the AST parent of n within this pass's files,
// building the parent map on first use.
func (p *Pass) parentOf(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = map[ast.Node]ast.Node{}
		for _, f := range p.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					p.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents[n]
}

// enclosingFuncBody walks up from n to the body of the innermost
// enclosing function literal or declaration.
func (p *Pass) enclosingFuncBody(n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = p.parentOf(cur) {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Render formats the diagnostic with its path relative to base when
// possible, keeping file:line:col clickable from the repo root.
func (d Diagnostic) Render(base string) string {
	name := d.Pos.Filename
	if abs, err := filepath.Abs(base); err == nil {
		if rel, err := filepath.Rel(abs, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetMap,
		NonDeterm,
		ErrTaxonomy,
		BareGoroutine,
		NilSafeObs,
		FloatEq,
		HotPathAlloc,
		CtxFlow,
		ObsNames,
		FaultSite,
		StaleIgnore,
	}
}

// Run executes the two-pass pipeline: parse every ignore directive,
// compute the pass-1 facts, run every analyzer over every package with
// the facts attached, apply //rpmlint:ignore suppression (tracking
// which directives earn their keep), report stale directives, and
// return the surviving diagnostics sorted by position.
func Run(cfg Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var ignores []*ignoreDirective
	for _, pkg := range pkgs {
		igs, bad := collectIgnores(pkg, known)
		ignores = append(ignores, igs...)
		diags = append(diags, bad...)
	}
	ix := newIgnoreIndex(ignores)
	facts := ComputeFacts(cfg, pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Name == StaleIgnore.Name {
				continue // framework-driven below, once per run
			}
			pass := &Pass{
				Analyzer: a,
				Config:   cfg,
				Fset:     pkg.Fset,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Files:    pkg.Files,
				PkgPath:  pkg.ImportPath,
				Facts:    facts,
				diags:    &diags,
				ignores:  ix,
			}
			a.Run(pass)
		}
	}
	diags = ix.suppress(diags)
	if known[StaleIgnore.Name] {
		var stale []Diagnostic
		for _, ig := range ignores {
			if ig.used {
				continue
			}
			stale = append(stale, Diagnostic{
				Analyzer: StaleIgnore.Name,
				Pos:      ig.pos,
				Message:  fmt.Sprintf("ignore directive for %q suppresses no diagnostic; remove it", ig.analyzer),
			})
		}
		diags = append(diags, ix.suppress(stale)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is one parsed //rpmlint:ignore comment. It suppresses
// diagnostics of the named analyzer on its own line and on the line
// directly below (so it can ride at end-of-line or stand above the
// offending statement). used tracks whether it suppressed anything (or
// cut a hotpathalloc edge) this run; staleignore reports the rest.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	pos      token.Position
	used     bool
}

const ignorePrefix = "//rpmlint:ignore"

// collectIgnores parses the ignore directives of one package and
// reports malformed ones (missing analyzer, unknown analyzer, missing
// reason) as diagnostics under the pseudo-analyzer name "rpmlint".
func collectIgnores(pkg *Package, known map[string]bool) ([]*ignoreDirective, []Diagnostic) {
	var igs []*ignoreDirective
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Analyzer: "rpmlint", Pos: pkg.Fset.Position(pos), Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //rpmlint:ignoreX — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "malformed ignore directive: missing analyzer name and reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(c.Pos(), fmt.Sprintf("ignore directive names unknown analyzer %q", name))
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), fmt.Sprintf("ignore directive for %q is missing a reason", name))
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				igs = append(igs, &ignoreDirective{file: pos.Filename, line: pos.Line, analyzer: name, pos: pos})
			}
		}
	}
	return igs, bad
}

// ignoreKey addresses directives by suppression coordinates.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreIndex is the run-wide directive lookup shared by suppression
// and hotpathalloc edge cutting; both mark matched directives used.
type ignoreIndex struct {
	idx map[ignoreKey][]*ignoreDirective
}

func newIgnoreIndex(igs []*ignoreDirective) *ignoreIndex {
	ix := &ignoreIndex{idx: map[ignoreKey][]*ignoreDirective{}}
	for _, ig := range igs {
		k := ignoreKey{ig.file, ig.line, ig.analyzer}
		ix.idx[k] = append(ix.idx[k], ig)
	}
	return ix
}

// use marks (and reports) any directive covering file:line for
// analyzer — on the same line or the line directly above.
func (ix *ignoreIndex) use(file string, line int, analyzer string) bool {
	hit := false
	for _, l := range [2]int{line, line - 1} {
		for _, ig := range ix.idx[ignoreKey{file, l, analyzer}] {
			ig.used = true
			hit = true
		}
	}
	return hit
}

// suppress drops diagnostics covered by an ignore directive on the same
// or the preceding line of the same file.
func (ix *ignoreIndex) suppress(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if ix.use(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}
