package ts

// Resample linearly interpolates v to exactly n points. It is used to
// bring variable-length motif instances (grammar-rule subsequences differ in
// length, paper Fig. 4) onto a common length before averaging them into a
// cluster centroid. Resample(v, len(v)) returns a copy.
func Resample(v []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	switch {
	case len(v) == 0:
		return out
	case len(v) == 1:
		for i := range out {
			out[i] = v[0]
		}
		return out
	case n == 1:
		out[0] = Mean(v)
		return out
	}
	scale := float64(len(v)-1) / float64(n-1)
	for i := range out {
		x := float64(i) * scale
		j := int(x)
		if j >= len(v)-1 {
			out[i] = v[len(v)-1]
			continue
		}
		frac := x - float64(j)
		out[i] = v[j]*(1-frac) + v[j+1]*frac
	}
	return out
}
