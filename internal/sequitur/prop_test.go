package sequitur

import (
	"math/rand"
	"testing"
)

// Property tests for the Sequitur grammar: randomized (fixed-seed) streams
// over several regimes — uniform noise, small alphabets, periodic and
// run-length-heavy inputs — checking the three invariants the candidate
// generator relies on: lossless expansion, rule utility / digram
// uniqueness, and span/yield consistency.

// streamGen produces one random token stream; each regime stresses a
// different part of the algorithm.
type streamGen struct {
	name string
	gen  func(rng *rand.Rand, n int) []int
}

var streamGens = []streamGen{
	{"uniform-wide", func(rng *rand.Rand, n int) []int {
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Intn(50)
		}
		return v
	}},
	{"uniform-narrow", func(rng *rand.Rand, n int) []int {
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Intn(3)
		}
		return v
	}},
	{"periodic-noisy", func(rng *rand.Rand, n int) []int {
		period := 2 + rng.Intn(6)
		v := make([]int, n)
		for i := range v {
			v[i] = i % period
			if rng.Intn(10) == 0 {
				v[i] = rng.Intn(period + 2)
			}
		}
		return v
	}},
	{"runs", func(rng *rand.Rand, n int) []int {
		v := make([]int, 0, n)
		for len(v) < n {
			tok := rng.Intn(4)
			run := 1 + rng.Intn(6)
			for k := 0; k < run && len(v) < n; k++ {
				v = append(v, tok)
			}
		}
		return v
	}},
}

// TestPropExpandRoundTrip: for every regime, Infer followed by Expand is
// the identity, Len agrees, and the internal invariants (rule used ≥ 2
// times, ≥ 2 symbols, digram uniqueness) hold.
func TestPropExpandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sg := range streamGens {
		for it := 0; it < 60; it++ {
			n := 1 + rng.Intn(400)
			tokens := sg.gen(rng, n)
			g := Infer(tokens)
			if g.Len() != len(tokens) {
				t.Fatalf("%s it %d: Len %d != input %d", sg.name, it, g.Len(), len(tokens))
			}
			got := g.Expand()
			if len(got) != len(tokens) {
				t.Fatalf("%s it %d: expansion length %d != %d", sg.name, it, len(got), len(tokens))
			}
			for i := range tokens {
				if got[i] != tokens[i] {
					t.Fatalf("%s it %d: expansion diverges at %d: %d != %d", sg.name, it, i, got[i], tokens[i])
				}
			}
			if err := g.checkInvariants(); err != nil {
				t.Fatalf("%s it %d: %v", sg.name, it, err)
			}
		}
	}
}

// TestPropRuleSpansConsistent: every reported rule occurrence span must
// (a) stay inside the input, (b) have length equal to the rule's yield,
// (c) cover tokens that literally equal the yield, and (d) appear at
// least twice — the rule-utility property at the Rules() surface. Spans
// of one rule must also be non-overlapping and sorted.
func TestPropRuleSpansConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sg := range streamGens {
		for it := 0; it < 40; it++ {
			n := 20 + rng.Intn(400)
			tokens := sg.gen(rng, n)
			g := Infer(tokens)
			rules := g.Rules()
			if len(rules) != g.NumRules() {
				t.Fatalf("%s it %d: Rules() %d entries vs NumRules %d", sg.name, it, len(rules), g.NumRules())
			}
			for _, r := range rules {
				if len(r.Yield) < 2 {
					t.Fatalf("%s it %d: rule R%d yield %v shorter than 2", sg.name, it, r.ID, r.Yield)
				}
				if len(r.Spans) < 2 {
					t.Fatalf("%s it %d: rule R%d has %d occurrences (< 2)", sg.name, it, r.ID, len(r.Spans))
				}
				prevEnd := -1
				for _, sp := range r.Spans {
					if sp.Start < 0 || sp.End >= len(tokens) || sp.Start > sp.End {
						t.Fatalf("%s it %d: rule R%d span %+v out of range (n=%d)", sg.name, it, r.ID, sp, len(tokens))
					}
					if sp.Start <= prevEnd {
						t.Fatalf("%s it %d: rule R%d spans overlap or unsorted at %+v", sg.name, it, r.ID, sp)
					}
					prevEnd = sp.End
					if sp.Len() != len(r.Yield) {
						t.Fatalf("%s it %d: rule R%d span len %d != yield len %d", sg.name, it, r.ID, sp.Len(), len(r.Yield))
					}
					for k, want := range r.Yield {
						if tokens[sp.Start+k] != want {
							t.Fatalf("%s it %d: rule R%d span %+v tokens diverge from yield at +%d", sg.name, it, r.ID, sp, k)
						}
					}
				}
			}
		}
	}
}

// TestPropRuleCoverageBounded: summed span coverage of any single rule
// never exceeds the input length (occurrences are disjoint), and a
// highly repetitive input must actually produce rules — guarding against
// a regression where Rules() silently returns nothing.
func TestPropRuleCoverageBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for it := 0; it < 50; it++ {
		n := 40 + rng.Intn(200)
		period := 2 + rng.Intn(4)
		tokens := make([]int, n)
		for i := range tokens {
			tokens[i] = i % period
		}
		g := Infer(tokens)
		rules := g.Rules()
		if n >= 4*period && len(rules) == 0 {
			t.Fatalf("it %d: periodic input (n=%d period=%d) induced no rules", it, n, period)
		}
		for _, r := range rules {
			covered := 0
			for _, sp := range r.Spans {
				covered += sp.Len()
			}
			if covered > n {
				t.Fatalf("it %d: rule R%d covers %d tokens of %d", it, r.ID, covered, n)
			}
		}
	}
}
