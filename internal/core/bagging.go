package core

import (
	"context"
	"fmt"

	"rpm/internal/obs"
	"rpm/internal/parallel"
	"rpm/internal/sax"
	"rpm/internal/ts"
)

// Ensemble is a bagged set of RPM classifiers (ROADMAP item 4, after
// Raza & Kramer's randomized shapelet ensembles): every member mines
// its own seeded subset of the candidate pool (Options.Sample with a
// per-member derived seed) over the same training data and parameters,
// and the ensemble classifies by majority vote over the members'
// labels, ties breaking toward the smaller label. Member order is
// fixed at training time, so the vote — and hence every prediction —
// is deterministic for any Options.Workers value.
type Ensemble struct {
	// Members are the bagged classifiers, in training order. They share
	// per-class SAX parameters (the search runs once) but differ in
	// their sampled candidate pools.
	Members []*Classifier
	opts    Options
}

// TrainBagged learns a bagged RPM ensemble; see TrainBaggedContext.
func TrainBagged(train ts.Dataset, opts Options) (*Ensemble, error) {
	return TrainBaggedContext(context.Background(), train, opts)
}

// TrainBaggedContext learns an Options.Bags-member bagged ensemble:
// one shared parameter search (sampled like everything else when
// Options.Sample is active), then one sampled mining pass per member
// with the member's derived sampling seed. Members train sequentially
// — each member's internal stages already fan out over
// Options.Workers — so the ensemble is byte-identical for any worker
// count. Bags ≤ 1 degenerates to a single-member ensemble around
// TrainContext. Canceling ctx aborts between (and inside) member
// trainings with ctx.Err().
func TrainBaggedContext(ctx context.Context, train ts.Dataset, opts Options) (*Ensemble, error) {
	if opts.Bags <= 1 {
		c, err := TrainContext(ctx, train, opts)
		if err != nil {
			return nil, err
		}
		return &Ensemble{Members: []*Classifier{c}, opts: c.opts}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if opts.Gamma <= 0 || opts.Gamma > 1 {
		return nil, fmt.Errorf("core: gamma %v outside (0,1]", opts.Gamma)
	}
	if opts.Splits <= 0 {
		opts.Splits = 5
	}
	if opts.TrainFrac <= 0 || opts.TrainFrac >= 1 {
		opts.TrainFrac = 0.7
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 60
	}
	opts.span = opts.Obs.StartSpan(SpanTrain)
	defer opts.span.End()
	opts.Obs.Gauge(GaugeWorkers).Set(int64(parallel.Workers(opts.Workers)))
	opts.Obs.Counter(CtrBagMembers).Add(int64(opts.Bags))
	classes := train.Classes()
	perClass, err := chooseParams(ctx, train, classes, opts)
	if err != nil {
		return nil, err
	}
	baseSeed := resolveSampleSeed(opts)
	members := make([]*Classifier, 0, opts.Bags)
	for b := 0; b < opts.Bags; b++ {
		mopts := opts
		mopts.Sample.Seed = memberSampleSeed(baseSeed, b)
		mopts.span = opts.span.Start(fmt.Sprintf("%s%d", SpanBagMember, b))
		m, err := trainBagMember(ctx, train, classes, perClass, mopts)
		mopts.span.End()
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	return &Ensemble{Members: members, opts: opts}, nil
}

// trainBagMember trains one member on the shared parameters, with the
// same retry-on-empty semantics TrainContext applies to a single model:
// searched parameters that fail to generalize fall back to the
// heuristic defaults before accepting a pattern-free 1NN member.
func trainBagMember(ctx context.Context, train ts.Dataset, classes []int, perClass map[int]sax.Params, opts Options) (*Classifier, error) {
	c, err := trainWithParams(ctx, train, cloneParams(perClass), opts)
	if err != nil {
		return nil, err
	}
	if len(c.Patterns) == 0 && opts.Mode != ParamFixed {
		retry := map[int]sax.Params{}
		for _, cl := range classes {
			retry[cl] = HeuristicParams(train.MinLen())
		}
		c2, err := trainWithParams(ctx, train, retry, opts)
		if err != nil {
			return nil, err
		}
		if len(c2.Patterns) > 0 {
			return c2, nil
		}
	}
	return c, nil
}

// cloneParams copies the shared per-class parameter map so each
// member's trainWithParams (which fills missing classes in place)
// cannot alias another member's view.
func cloneParams(perClass map[int]sax.Params) map[int]sax.Params {
	out := make(map[int]sax.Params, len(perClass))
	for c, p := range perClass {
		out[c] = p
	}
	return out
}

// memberSampleSeed derives member b's sampling seed from the resolved
// base seed. Member 0 keeps the base seed, so a 1-bag ensemble mines
// exactly the model TrainContext would; later members get independent
// mixed seeds (never 0 — 0 means "derive" to resolveSampleSeed).
func memberSampleSeed(base int64, b int) int64 {
	if b == 0 {
		return base
	}
	s := int64(splitmix64(uint64(base) ^ splitmix64(uint64(b))))
	if s == 0 {
		s = 1
	}
	return s
}

// Options returns the options the ensemble was trained with.
func (e *Ensemble) Options() Options { return e.opts }

// Bags returns the number of members.
func (e *Ensemble) Bags() int { return len(e.Members) }

// NumPatterns returns the total representative-pattern count across
// members (the summed feature dimensionality, a cost proxy).
func (e *Ensemble) NumPatterns() int {
	n := 0
	for _, m := range e.Members {
		n += m.NumPatterns()
	}
	return n
}

// SetWorkers re-bounds the concurrency of the ensemble's batch
// prediction and of every member. Not safe to call concurrently with
// prediction.
func (e *Ensemble) SetWorkers(n int) {
	e.opts.Workers = n
	for _, m := range e.Members {
		m.SetWorkers(n)
	}
}

// TrainSnapshot returns the shared instrumentation snapshot of the
// bagged training run (all members record into the same registry), or
// nil when the ensemble trained without Options.Obs.
func (e *Ensemble) TrainSnapshot() *obs.Snapshot { return e.opts.Obs.Snapshot() }

// Predict classifies one series by majority vote over the members.
// Like Classifier.Predict it is total over its input.
func (e *Ensemble) Predict(v []float64) int {
	labels := make([]int, len(e.Members))
	for i, m := range e.Members {
		labels[i] = m.Predict(v)
	}
	return majorityLabel(labels)
}

// PredictBatch classifies every instance, fanning the queries out over
// Options.Workers goroutines. Each query votes across all members in
// member order, so the labels are byte-identical to the sequential
// path.
func (e *Ensemble) PredictBatch(test ts.Dataset) []int {
	e.ensureTransformers()
	out := make([]int, len(test))
	parallel.ForPool(len(test), e.opts.Workers, e.opts.Obs.Pool(PoolPredict), func(i int) {
		out[i] = e.Predict(test[i].Values)
	})
	return out
}

// PredictBatchContext is PredictBatch with cooperative cancellation
// (the PredictBatchContext contract of Classifier, lifted to the
// ensemble).
func (e *Ensemble) PredictBatchContext(ctx context.Context, test ts.Dataset) ([]int, error) {
	e.ensureTransformers()
	out := make([]int, len(test))
	if err := parallel.ForCtxPool(ctx, len(test), e.opts.Workers, e.opts.Obs.Pool(PoolPredict), func(i int) {
		out[i] = e.Predict(test[i].Values)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ensureTransformers builds every member's transformer outside the
// prediction fan-out (the same build-once-then-share discipline as
// Classifier.PredictBatch).
func (e *Ensemble) ensureTransformers() {
	for _, m := range e.Members {
		if len(m.Patterns) > 0 {
			m.ensureTransformer()
		}
	}
}

// majorityLabel returns the most frequent label; ties break toward the
// smaller label. The incremental argmax never ranges over the count
// map, so the result depends only on the label multiset, not on map
// iteration order.
func majorityLabel(labels []int) int {
	counts := map[int]int{}
	best, bestN := 0, -1
	for _, l := range labels {
		counts[l]++
		n := counts[l]
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best
}
