package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultSite keeps the PR-7 fault-injection surface and the chaos suite
// in sync (DESIGN.md §13):
//
//   - every Injector.Fire/Err/Sleep call site must name its site via a
//     string constant declared in the faults package (raw literals
//     drift silently when a site is renamed);
//   - every exported Site* constant the faults package declares must be
//     exercised by at least one injection call inside the configured
//     use layer (internal/serve) — a declared-but-dead site means the
//     chaos scenarios document coverage that no longer exists.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "fault-injection sites must use declared Site* constants, and every declared site must be exercised",
	Run:  runFaultSite,
}

func runFaultSite(pass *Pass) {
	facts := pass.Facts
	if facts == nil || pass.Config.FaultsPkg == "" {
		return
	}

	// Rule 1: injection calls in this package name declared constants.
	for _, fc := range facts.faultCalls {
		if fc.PkgPath != pass.PkgPath {
			continue
		}
		ok := false
		for _, c := range constsIn(pass.Info, fc.Arg) {
			if c.Pkg() != nil && c.Pkg().Path() == pass.Config.FaultsPkg {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(fc.Pos, "fault site passed to %s is not a %s constant; declare the site there", fc.Fn, pass.Config.FaultsPkg)
		}
	}

	// Rule 2, checked while visiting the faults package itself: every
	// exported Site* constant is exercised in the use layer.
	if pass.PkgPath != pass.Config.FaultsPkg {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Site") || !name.IsExported() {
						continue
					}
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					basic, ok := c.Type().Underlying().(*types.Basic)
					if !ok || basic.Info()&types.IsString == 0 {
						continue
					}
					exercised := false
					for _, pkgPath := range facts.usedFaultSites[canonKey(c)] {
						if pass.Config.faultsUse(pkgPath) {
							exercised = true
							break
						}
					}
					if !exercised {
						pass.Reportf(name.Pos(), "fault site %s is declared but never exercised by the serving layer; wire it in or delete it", name.Name)
					}
				}
			}
		}
	}
}
