// Package good records every name through obsnames.go constants,
// including the prefix-concatenation and Sprintf-formatted dynamic
// shapes. Clean.
package good

import (
	"fmt"

	"lintfix/obsnames/obs"
)

func record(r *obs.Registry, code string, step int) {
	r.Counter(CtrHits).Inc()
	r.Counter(CtrErrPrefix + code).Inc()
	sp := r.StartSpan(fmt.Sprintf("%s%d", SpanStep, step))
	sp.End()
}
