// Package baregoroutine is a golden fixture: go statements outside the
// exempted concurrency-owning packages are reported.
package baregoroutine

// Bad spawns an unaccounted goroutine.
func Bad() {
	ch := make(chan int)
	go func() { ch <- 1 }() // want "bare goroutine"
	<-ch
}

// GoodIgnored is a deliberate exception with a reason.
func GoodIgnored(hook func()) {
	//rpmlint:ignore baregoroutine fixture: fire-and-forget hook may not block the caller
	go hook()
}
