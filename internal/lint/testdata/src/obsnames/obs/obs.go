// Package obs is the fixture stand-in for the instrumentation package:
// the obsnames analyzer keys recording calls off these receiver/method
// names.
package obs

type Registry struct{}
type Counter struct{}
type Span struct{}

func (r *Registry) Counter(name string) *Counter { _ = name; return nil }
func (r *Registry) Gauge(name string) *Counter   { _ = name; return nil }
func (r *Registry) Summary(name string) *Counter { _ = name; return nil }
func (r *Registry) StartSpan(name string) *Span  { _ = name; return nil }

func (s *Span) Start(name string) *Span { _ = name; return nil }
func (s *Span) End()                    {}

func (c *Counter) Inc() {}
