#!/usr/bin/env bash
# Stream smoke: train a small model end to end, serve it with rpmserved,
# and drive the streaming ingest path with rpmload in stream mode —
# dozens of live streams receiving chunked appends round-robin for the
# whole duration. The run fails (rpmload -strict) when nothing completed
# or any append came back as an error envelope or transport error — the
# whole streaming path (HTTP decode → registry → rolling z-norm fan-out
# → hysteresis gate → encode) has to hold up under sustained concurrent
# ingest, not just unit tests. Afterwards the script spot-checks the
# registry listing and the SSE feed framing of one loaded stream.
#
# Usage: scripts/stream_smoke.sh [duration] [streams]
set -euo pipefail

duration="${1:-2s}"
streams="${2:-32}"
port="${STREAM_SMOKE_PORT:-18082}"

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
served_pid=""
cleanup() {
    [ -n "$served_pid" ] && kill "$served_pid" 2>/dev/null || true
    [ -n "$served_pid" ] && wait "$served_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/ucrgen ./cmd/rpmcli ./cmd/rpmserved ./cmd/rpmload

echo "== train"
"$work/bin/ucrgen" -dir "$work/data" -name SynCBF -seed 1
mkdir -p "$work/models"
"$work/bin/rpmcli" \
    -train "$work/data/SynCBF_TRAIN" -test "$work/data/SynCBF_TEST" \
    -mode fixed -window 40 -paa 6 -alpha 4 \
    -save "$work/models/cbf.json"

echo "== serve"
"$work/bin/rpmserved" -addr "127.0.0.1:$port" -models "$work/models" \
    -stream-confirm 1 &
served_pid=$!

echo "== stream load ($duration, $streams streams)"
"$work/bin/rpmload" \
    -addr "http://127.0.0.1:$port" -model cbf \
    -streams "$streams" -stream-chunk 128 \
    -duration "$duration" -concurrency 4 \
    -wait 10s -strict

echo "== verify stream state"
# The load generator's streams must be live with samples ingested; the
# registry listing is the authoritative count.
curl -fsS "http://127.0.0.1:$port/v1/streams" | grep -q '"load-0000"' \
    || { echo "stream load-0000 missing from /v1/streams" >&2; exit 1; }

# The SSE feed must answer with event-stream framing. --max-time bounds
# the open-ended feed; curl exits 28 (timeout) after capturing the
# header, which is the expected shape for a live feed.
headers="$(curl -s --max-time 1 -D - -o /dev/null \
    "http://127.0.0.1:$port/v1/streams/load-0000/events" 2>/dev/null || true)"
echo "$headers" | grep -qi '^content-type: text/event-stream' \
    || { echo "SSE feed lacks text/event-stream framing:" >&2; echo "$headers" >&2; exit 1; }

echo "stream smoke OK"
