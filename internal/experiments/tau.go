package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"rpm/internal/core"
	"rpm/internal/datagen"
	"rpm/internal/parallel"
	"rpm/internal/stats"
)

// TauPercentiles are the similarity-threshold settings swept by the
// paper's Table 3 and Figure 9.
var TauPercentiles = []float64{10, 30, 50, 70, 90}

// TauPoint is one (τ percentile → runtime, error) measurement.
type TauPoint struct {
	Percentile float64
	Err        float64
	Time       time.Duration
}

// TauSeries is the τ sweep of one dataset.
type TauSeries struct {
	Dataset string
	Points  []TauPoint
}

// RunTauSweep measures RPM's running time and error across the τ
// percentiles for each configured dataset (paper §5.3, Table 3 / Fig. 9).
// Datasets fan out over cfg.Workers goroutines; the τ points within one
// dataset stay sequential so consecutive-percentile time ratios (Table 3)
// are measured back to back. Results come back in cfg.Datasets order.
func RunTauSweep(cfg Config, progress func(string)) ([]TauSeries, error) {
	cfg = cfg.withDefaults()
	var progressMu sync.Mutex
	type outcome struct {
		series TauSeries
		err    error
	}
	outcomes := parallel.Map(len(cfg.Datasets), cfg.Workers, func(i int) outcome {
		name := cfg.Datasets[i]
		g, ok := datagen.ByName(name)
		if !ok {
			return outcome{err: fmt.Errorf("experiments: unknown dataset %q", name)}
		}
		split := g.Generate(cfg.Seed)
		series := TauSeries{Dataset: name}
		for _, pct := range TauPercentiles {
			o := rpmOptions(cfg)
			o.TauPercentile = pct
			start := time.Now()
			clf, err := core.Train(split.Train, o)
			if err != nil {
				return outcome{err: err}
			}
			preds := clf.PredictBatch(split.Test)
			series.Points = append(series.Points, TauPoint{
				Percentile: pct,
				Err:        stats.ErrorRate(preds, split.Test.Labels()),
				Time:       time.Since(start),
			})
		}
		if progress != nil {
			progressMu.Lock()
			progress("tau sweep done: " + name)
			progressMu.Unlock()
		}
		return outcome{series: series}
	})
	out := make([]TauSeries, 0, len(outcomes))
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		out = append(out, o.series)
	}
	return out, nil
}

// FormatTable3 renders the paper's Table 3: the average percent change of
// running time and classification error between consecutive τ settings.
func FormatTable3(sweep []TauSeries) string {
	var b strings.Builder
	b.WriteString("Table 3: average running-time and error change for different τ percentiles\n")
	b.WriteString("(positive = increase, negative = decrease)\n\n")
	steps := len(TauPercentiles) - 1
	timeChange := make([]float64, steps)
	errChange := make([]float64, steps)
	counts := make([]int, steps)
	for _, s := range sweep {
		for i := 0; i+1 < len(s.Points); i++ {
			prev, next := s.Points[i], s.Points[i+1]
			if prev.Time > 0 {
				timeChange[i] += 100 * (next.Time.Seconds() - prev.Time.Seconds()) / prev.Time.Seconds()
			}
			// error change in absolute percentage points, as in the paper
			errChange[i] += 100 * (next.Err - prev.Err)
			counts[i]++
		}
	}
	header := "Metric"
	for i := 0; i < steps; i++ {
		header += fmt.Sprintf("\t%.0f%%-%.0f%%", TauPercentiles[i], TauPercentiles[i+1])
	}
	rows := [][]float64{timeChange, errChange}
	names := []string{"Running Time Change (%)", "Error Change (points)"}
	b.WriteString(header + "\n")
	for r, row := range rows {
		line := names[r]
		for i := 0; i < steps; i++ {
			v := 0.0
			if counts[i] > 0 {
				v = row[i] / float64(counts[i])
			}
			line += fmt.Sprintf("\t%+.2f", v)
		}
		b.WriteString(line + "\n")
	}
	return strings.ReplaceAll(b.String(), "\t", "   ")
}

// FormatFig9 renders the data behind Figure 9: per-dataset running time
// and error as functions of the τ percentile.
func FormatFig9(sweep []TauSeries) string {
	var b strings.Builder
	b.WriteString("Figure 9: running time (s) and error as functions of τ percentile\n")
	for _, s := range sweep {
		b.WriteString(fmt.Sprintf("\n-- %s --\n", s.Dataset))
		b.WriteString("  tau%:  ")
		for _, p := range s.Points {
			b.WriteString(fmt.Sprintf("%8.0f", p.Percentile))
		}
		b.WriteString("\n  time:  ")
		for _, p := range s.Points {
			b.WriteString(fmt.Sprintf("%8.2f", p.Time.Seconds()))
		}
		b.WriteString("\n  error: ")
		for _, p := range s.Points {
			b.WriteString(fmt.Sprintf("%8.3f", p.Err))
		}
		b.WriteString("\n")
	}
	return b.String()
}
