package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"rpm/internal/sax"
	"rpm/internal/svm"
	"rpm/internal/ts"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// ErrCorrupt marks every failure of Load's snapshot validation: a model
// file that decoded but is internally inconsistent (wrong version,
// out-of-range SAX parameters, non-finite pattern values, SVM dimensions
// that disagree with the pattern count, an empty fallback). Callers test
// for it with errors.Is; the public rpm façade maps it to
// rpm.ErrCorruptModel.
var ErrCorrupt = errors.New("corrupt classifier snapshot")

// snapshot is the JSON shape of a saved classifier.
type snapshot struct {
	Version        int                `json:"version"`
	Patterns       []Pattern          `json:"patterns"`
	PerClassParams map[int]sax.Params `json:"perClassParams"`
	Options        Options            `json:"options"`
	SVM            *svm.Snapshot      `json:"svm,omitempty"`
	// Fallback is stored only for degenerate models with no patterns,
	// which classify by 1NN on the raw training set.
	Fallback ts.Dataset `json:"fallback,omitempty"`
}

// Save serializes the trained classifier as JSON. The format is versioned;
// Load rejects unknown versions. Classifiers trained with a custom
// VectorClassifier cannot be serialized.
func (c *Classifier) Save(w io.Writer) error {
	if c.custom != nil {
		return fmt.Errorf("core: classifiers with a custom VectorClassifier cannot be saved")
	}
	s := snapshot{
		Version:        persistVersion,
		Patterns:       c.Patterns,
		PerClassParams: c.PerClassParams,
		Options:        c.opts,
	}
	if c.model != nil {
		snap := c.model.Snapshot()
		s.SVM = &snap
	}
	if len(c.Patterns) == 0 {
		s.Fallback = c.fallback
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// corrupt builds a Load validation error carrying the ErrCorrupt marker.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("core: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Load deserializes a classifier previously written by Save. The decoded
// snapshot is fully validated — version, per-class SAX parameters within
// sax bounds, pattern values non-empty and finite, SVM weight/feature
// dimensions consistent with the pattern count, fallback instances
// non-empty and finite — before any predict-path state (the transformer)
// is built, so a corrupt or adversarial model file fails here with an
// error matching ErrCorrupt instead of panicking at predict time.
func Load(r io.Reader) (*Classifier, error) {
	var s snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding classifier: %w: %w", ErrCorrupt, err)
	}
	if err := validateSnapshot(&s); err != nil {
		return nil, err
	}
	c := &Classifier{
		Patterns:       s.Patterns,
		PerClassParams: s.PerClassParams,
		opts:           s.Options,
		fallback:       s.Fallback,
	}
	if len(s.Patterns) > 0 {
		m, err := svm.FromSnapshot(*s.SVM)
		if err != nil {
			return nil, fmt.Errorf("core: %w: %w", ErrCorrupt, err)
		}
		c.model = m
		// Safe to build only now: every pattern has been validated
		// non-empty and finite.
		c.ensureTransformer()
	}
	return c, nil
}

// validateSnapshot checks every structural invariant a trained classifier
// guarantees, so the rest of the package may assume them.
func validateSnapshot(s *snapshot) error {
	if s.Version != persistVersion {
		return corrupt("unsupported classifier version %d (want %d)", s.Version, persistVersion)
	}
	// Per-class SAX parameters must be inside the sax package's bounds:
	// they are reported to users and re-used by tooling, and out-of-range
	// values (e.g. Alphabet: 99) would panic inside sax on first use.
	// Iterate classes in sorted order so the same corrupt snapshot
	// always yields the same first error (detmap invariant).
	classes := make([]int, 0, len(s.PerClassParams))
	for class := range s.PerClassParams {
		classes = append(classes, class)
	}
	sort.Ints(classes)
	for _, class := range classes {
		p := s.PerClassParams[class]
		if err := p.Validate(0); err != nil {
			return corrupt("class %d SAX params %v: %v", class, p, err)
		}
	}
	for i, p := range s.Patterns {
		if len(p.Values) == 0 {
			return corrupt("pattern %d has no values", i)
		}
		for j, v := range p.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return corrupt("pattern %d value %d is not finite", i, j)
			}
		}
		if p.Support < 0 || p.Freq < 0 {
			return corrupt("pattern %d has negative support/frequency", i)
		}
	}
	if len(s.Patterns) > 0 {
		if s.SVM == nil {
			return corrupt("classifier has patterns but no SVM state")
		}
		// The SVM consumes the len(Patterns)-dimensional transform
		// vector; a dimension mismatch would panic on the first Predict.
		if len(s.SVM.Mean) != len(s.Patterns) {
			return corrupt("SVM expects %d features but classifier has %d patterns", len(s.SVM.Mean), len(s.Patterns))
		}
		if len(s.SVM.Scale) != len(s.SVM.Mean) {
			return corrupt("SVM scaler mean/scale length mismatch %d != %d", len(s.SVM.Mean), len(s.SVM.Scale))
		}
		for k, w := range s.SVM.Weights {
			for j, v := range w {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return corrupt("SVM weight [%d][%d] is not finite", k, j)
				}
			}
		}
		for j := range s.SVM.Mean {
			if math.IsNaN(s.SVM.Mean[j]) || math.IsInf(s.SVM.Mean[j], 0) ||
				math.IsNaN(s.SVM.Scale[j]) || math.IsInf(s.SVM.Scale[j], 0) {
				return corrupt("SVM scaler entry %d is not finite", j)
			}
		}
		return nil
	}
	// Degenerate model: must carry a usable 1NN fallback.
	if len(s.Fallback) == 0 {
		return corrupt("classifier has neither patterns nor fallback data")
	}
	for i, in := range s.Fallback {
		if len(in.Values) == 0 {
			return corrupt("fallback instance %d has no values", i)
		}
		for j, v := range in.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return corrupt("fallback instance %d value %d is not finite", i, j)
			}
		}
	}
	return nil
}
