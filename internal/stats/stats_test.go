package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpm/internal/ts"
)

func TestErrorRate(t *testing.T) {
	if e := ErrorRate([]int{1, 2, 3}, []int{1, 2, 3}); e != 0 {
		t.Errorf("perfect = %v", e)
	}
	if e := ErrorRate([]int{1, 2, 3, 4}, []int{1, 0, 3, 0}); e != 0.5 {
		t.Errorf("half = %v", e)
	}
	if e := ErrorRate(nil, nil); e != 0 {
		t.Errorf("empty = %v", e)
	}
}

func TestErrorRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ErrorRate([]int{1}, []int{1, 2})
}

func TestFMeasuresBinary(t *testing.T) {
	//        truth: 1 1 1 1 2 2
	//    predicted: 1 1 2 2 2 2
	pred := []int{1, 1, 2, 2, 2, 2}
	truth := []int{1, 1, 1, 1, 2, 2}
	ms := FMeasures(pred, truth)
	if len(ms) != 2 {
		t.Fatalf("classes = %v", ms)
	}
	// class 1: tp=2 fp=0 fn=2 -> p=1 r=0.5 f=2/3
	c1 := ms[0]
	if c1.Class != 1 || math.Abs(c1.Precision-1) > 1e-12 || math.Abs(c1.Recall-0.5) > 1e-12 || math.Abs(c1.F1-2.0/3) > 1e-12 {
		t.Errorf("class1 = %+v", c1)
	}
	// class 2: tp=2 fp=2 fn=0 -> p=0.5 r=1 f=2/3
	c2 := ms[1]
	if c2.Class != 2 || math.Abs(c2.Precision-0.5) > 1e-12 || math.Abs(c2.Recall-1) > 1e-12 {
		t.Errorf("class2 = %+v", c2)
	}
}

func TestFMeasuresDegenerateClass(t *testing.T) {
	// class 3 never predicted, class 4 never in truth
	pred := []int{4, 1}
	truth := []int{3, 1}
	ms := FMeasures(pred, truth)
	for _, m := range ms {
		switch m.Class {
		case 3:
			if m.Recall != 0 || m.F1 != 0 {
				t.Errorf("class 3 = %+v", m)
			}
		case 4:
			if m.Precision != 0 || m.F1 != 0 {
				t.Errorf("class 4 = %+v", m)
			}
		}
	}
}

func TestMacroF1PerfectAndWorst(t *testing.T) {
	if f := MacroF1([]int{1, 2}, []int{1, 2}); math.Abs(f-1) > 1e-12 {
		t.Errorf("perfect macro F1 = %v", f)
	}
	if f := MacroF1([]int{2, 1}, []int{1, 2}); f != 0 {
		t.Errorf("all-wrong macro F1 = %v", f)
	}
}

func testDataset() ts.Dataset {
	var d ts.Dataset
	for c := 1; c <= 3; c++ {
		for i := 0; i < 10; i++ {
			d = append(d, ts.Instance{Label: c, Values: []float64{float64(c), float64(i)}})
		}
	}
	return d
}

func TestStratifiedSplitProportions(t *testing.T) {
	d := testDataset()
	rng := rand.New(rand.NewSource(1))
	train, val := StratifiedSplit(d, 0.7, rng)
	if len(train)+len(val) != len(d) {
		t.Fatalf("split loses instances: %d + %d != %d", len(train), len(val), len(d))
	}
	for _, c := range []int{1, 2, 3} {
		nt := len(train.ByClass()[c])
		nv := len(val.ByClass()[c])
		if nt != 7 || nv != 3 {
			t.Errorf("class %d split %d/%d, want 7/3", c, nt, nv)
		}
	}
}

func TestStratifiedSplitKeepsBothSidesNonEmpty(t *testing.T) {
	d := ts.Dataset{
		{Label: 1, Values: []float64{1}},
		{Label: 1, Values: []float64{2}},
	}
	rng := rand.New(rand.NewSource(2))
	train, val := StratifiedSplit(d, 0.99, rng)
	if len(train) != 1 || len(val) != 1 {
		t.Errorf("2-instance class must split 1/1, got %d/%d", len(train), len(val))
	}
	// single-instance class goes wherever the fraction says, no crash
	d = ts.Dataset{{Label: 5, Values: []float64{1}}}
	train, val = StratifiedSplit(d, 1.0, rng)
	if len(train)+len(val) != 1 {
		t.Error("lost the only instance")
	}
}

func TestKFoldBalanced(t *testing.T) {
	d := testDataset()
	rng := rand.New(rand.NewSource(3))
	fold := KFold(d, 5, rng)
	if len(fold) != len(d) {
		t.Fatal("wrong fold count")
	}
	counts := map[int]int{}
	for _, f := range fold {
		if f < 0 || f >= 5 {
			t.Fatalf("fold %d out of range", f)
		}
		counts[f]++
	}
	for f, c := range counts {
		if c != 6 {
			t.Errorf("fold %d has %d instances, want 6", f, c)
		}
	}
	// stratification: each class spread over folds evenly (10 into 5 folds = 2 per fold)
	for _, class := range []int{1, 2, 3} {
		per := map[int]int{}
		for i, in := range d {
			if in.Label == class {
				per[fold[i]]++
			}
		}
		for f, c := range per {
			if c != 2 {
				t.Errorf("class %d fold %d has %d, want 2", class, f, c)
			}
		}
	}
}

func TestKFoldMinimumK(t *testing.T) {
	d := testDataset()
	fold := KFold(d, 1, rand.New(rand.NewSource(4)))
	max := 0
	for _, f := range fold {
		if f > max {
			max = f
		}
	}
	if max != 1 {
		t.Errorf("k<2 should clamp to 2 folds, max fold = %d", max)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 33); got != 7 {
		t.Errorf("single-value percentile = %v", got)
	}
	// input must not be mutated
	v2 := []float64{3, 1, 2}
	Percentile(v2, 50)
	if v2[0] != 3 || v2[1] != 1 || v2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			q := Percentile(v, p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if p := WilcoxonSignedRank(a, a); p != 1 {
		t.Errorf("identical samples p = %v, want 1", p)
	}
}

func TestWilcoxonClearDifference(t *testing.T) {
	// 12 pairs all shifted the same way: p must be small.
	var a, b []float64
	for i := 0; i < 12; i++ {
		a = append(a, float64(i)+10+0.01*float64(i*i))
		b = append(b, float64(i))
	}
	p := WilcoxonSignedRank(a, b)
	if p > 0.01 {
		t.Errorf("clear difference p = %v, want < 0.01", p)
	}
}

func TestWilcoxonExactKnownValue(t *testing.T) {
	// n=5, all positive differences: W+ = 15, two-sided exact p = 2/32 = 0.0625.
	a := []float64{2, 3, 4, 5, 6}
	b := []float64{1, 1.5, 2, 2.5, 3}
	p := WilcoxonSignedRank(a, b)
	if math.Abs(p-0.0625) > 1e-9 {
		t.Errorf("n=5 one-sided-extreme p = %v, want 0.0625", p)
	}
}

func TestWilcoxonSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if p1, p2 := WilcoxonSignedRank(a, b), WilcoxonSignedRank(b, a); math.Abs(p1-p2) > 1e-9 {
		t.Errorf("test not symmetric: %v vs %v", p1, p2)
	}
}

func TestWilcoxonNullDistribution(t *testing.T) {
	// Under H0 (same distribution) the test should rarely reject.
	rng := rand.New(rand.NewSource(9))
	rejections := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 15)
		b := make([]float64, 15)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		if WilcoxonSignedRank(a, b) < 0.05 {
			rejections++
		}
	}
	if rejections > trials/10 {
		t.Errorf("null rejection rate %d/%d too high", rejections, trials)
	}
}

func TestWilcoxonLargeSampleNormalApprox(t *testing.T) {
	// n=40 forces the normal path; a strong consistent shift must be detected.
	rng := rand.New(rand.NewSource(10))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		x := rng.NormFloat64()
		a[i] = x + 1.5
		b[i] = x + rng.NormFloat64()*0.1
	}
	if p := WilcoxonSignedRank(a, b); p > 1e-4 {
		t.Errorf("large-sample shift p = %v", p)
	}
}

func TestWilcoxonTiesUseNormalApprox(t *testing.T) {
	// ties in |d| force the tie-corrected path even for small n; must not panic
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{0, 1, 2, 3, 4, 5} // all diffs equal 1 -> maximal ties
	p := WilcoxonSignedRank(a, b)
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("tie-handling p = %v", p)
	}
}

func TestWilcoxonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	WilcoxonSignedRank([]float64{1}, []float64{1, 2})
}
