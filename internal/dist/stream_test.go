package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// feedStream drives the streaming kernel exactly as a caller would: one
// RollingStats per window length, one StreamScan per matcher, windows
// read from the growing series.
func feedStream(m *Matcher, series []float64) Match {
	n := m.Len()
	rs := NewRollingStats(n)
	sc := NewStreamScan()
	for t, x := range series {
		var out float64
		if rs.Full() {
			out = series[t-n]
		}
		mean, inv, ok := rs.Push(x, out)
		if !ok {
			continue
		}
		pos := t + 1 - n
		m.StreamEval(&sc, series[pos:t+1], mean, inv, pos)
	}
	return m.StreamMatch(&sc)
}

// genStreamSeries builds the hostile regimes the streaming kernel must
// agree with the batch kernel on: smooth walks, constant stretches
// (inv == 0 sentinel), exact repeats (distance ties), and NaN runs.
func genStreamSeries(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	x := rng.NormFloat64()
	hold := 0 // remaining samples of a constant stretch
	for i := range v {
		if hold > 0 {
			hold--
			v[i] = x
			continue
		}
		switch rng.Intn(8) {
		case 0: // constant stretch (exercises the inv == 0 sentinel)
			hold = 1 + rng.Intn(8)
			v[i] = x
		case 1: // jump
			x = rng.NormFloat64() * 10
			v[i] = x
		case 2: // exact repeat of an earlier sample (tie fodder)
			if i > 0 {
				v[i] = v[rng.Intn(i)]
				x = v[i]
			} else {
				v[i] = x
			}
		case 3:
			if rng.Intn(4) == 0 {
				v[i] = math.NaN()
			} else {
				x += rng.NormFloat64()
				v[i] = x
			}
		default: // random walk
			x += rng.NormFloat64()
			v[i] = x
		}
	}
	return v
}

// TestStreamBitIdenticalToBest pins the streaming contract: feeding a
// series sample-by-sample yields bit-identical Dist AND Pos to the
// batch Matcher.Best scan, across smooth, constant, tie-heavy and
// NaN-bearing regimes.
func TestStreamBitIdenticalToBest(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func() bool {
		n := 2 + rng.Intn(24)
		sn := n + rng.Intn(120) // series at least as long as the pattern
		pat := genStreamSeries(rng, n)
		series := genStreamSeries(rng, sn)
		m := NewMatcher(pat)
		want := m.Best(series)
		got := feedStream(m, series)
		if got.Pos != want.Pos {
			t.Logf("pos: got %d want %d (n=%d sn=%d)", got.Pos, want.Pos, n, sn)
			return false
		}
		// Bit-identical: compare raw bits so NaN==NaN and -0 != 0.
		if math.Float64bits(got.Dist) != math.Float64bits(want.Dist) {
			t.Logf("dist: got %x want %x", math.Float64bits(got.Dist), math.Float64bits(want.Dist))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamShortSeries pins the no-role-swap contract: a stream shorter
// than the pattern reports +Inf / -1 (Best would slide the series inside
// the pattern instead — a whole-series semantic a stream cannot have).
func TestStreamShortSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pat := genStreamSeries(rng, 16)
	m := NewMatcher(pat)
	for sn := 0; sn < 16; sn++ {
		got := feedStream(m, genStreamSeries(rng, sn))
		if !math.IsInf(got.Dist, 1) || got.Pos != -1 {
			t.Fatalf("short series len %d: got %v, want {+Inf,-1}", sn, got)
		}
	}
}

// TestRollingStatsMatchesWindowStats pins that the rolling recurrence
// yields exactly the (mean, inv) sequence WindowStats.compute produces —
// the shared foundation both equivalence proofs stand on.
func TestRollingStatsMatchesWindowStats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(16)
		series := genStreamSeries(rng, n+rng.Intn(80))
		var ws WindowStats
		ws.compute(series, n)
		rs := NewRollingStats(n)
		w := 0
		for t2, x := range series {
			var out float64
			if rs.Full() {
				out = series[t2-n]
			}
			mean, inv, ok := rs.Push(x, out)
			if !ok {
				continue
			}
			if math.Float64bits(mean) != math.Float64bits(ws.mean[w]) ||
				math.Float64bits(inv) != math.Float64bits(ws.inv[w]) {
				t.Fatalf("window %d (n=%d): rolling (%v,%v) != batch (%v,%v)",
					w, n, mean, inv, ws.mean[w], ws.inv[w])
			}
			w++
		}
		if w != ws.Windows() {
			t.Fatalf("rolling yielded %d windows, batch %d", w, ws.Windows())
		}
	}
}

// TestRollingStatsPanics pins the constructor contract.
func TestRollingStatsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRollingStats(0) did not panic")
		}
	}()
	NewRollingStats(0)
}
