package svm

import "fmt"

// Snapshot is the serializable state of a trained model, used for model
// persistence (all fields exported for encoding/json).
type Snapshot struct {
	Classes []int       `json:"classes"`
	Weights [][]float64 `json:"weights"`
	Mean    []float64   `json:"mean"`
	Scale   []float64   `json:"scale"`
}

// Snapshot exports the model state.
func (m *Model) Snapshot() Snapshot {
	return Snapshot{Classes: m.classes, Weights: m.weights, Mean: m.mean, Scale: m.scale}
}

// FromSnapshot rebuilds a model from exported state.
func FromSnapshot(s Snapshot) (*Model, error) {
	if len(s.Classes) == 0 {
		return nil, fmt.Errorf("svm: snapshot has no classes")
	}
	if len(s.Weights) != len(s.Classes) {
		return nil, fmt.Errorf("svm: snapshot has %d weight vectors for %d classes", len(s.Weights), len(s.Classes))
	}
	if len(s.Mean) != len(s.Scale) {
		return nil, fmt.Errorf("svm: snapshot mean/scale length mismatch")
	}
	for i, w := range s.Weights {
		if len(w) != len(s.Mean)+1 {
			return nil, fmt.Errorf("svm: weight vector %d has %d entries, want %d", i, len(w), len(s.Mean)+1)
		}
	}
	return &Model{classes: s.Classes, weights: s.Weights, mean: s.Mean, scale: s.Scale}, nil
}
