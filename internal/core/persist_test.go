package core

import (
	"bytes"
	"strings"
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/sax"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(1)
	c, err := Train(s.Train, fixedOpts(sax.Params{Window: 30, PAA: 6, Alphabet: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPatterns() == 0 {
		t.Fatal("need patterns for this test")
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPatterns() != c.NumPatterns() {
		t.Fatalf("pattern count changed: %d -> %d", c.NumPatterns(), loaded.NumPatterns())
	}
	// Loaded model must predict identically.
	for _, in := range s.Test[:30] {
		if got, want := loaded.Predict(in.Values), c.Predict(in.Values); got != want {
			t.Fatalf("loaded model predicts %d, original %d", got, want)
		}
	}
	// Parameters survive.
	for class, p := range c.PerClassParams {
		if loaded.PerClassParams[class] != p {
			t.Error("per-class params changed")
		}
	}
}

func TestSaveLoadFallbackModel(t *testing.T) {
	s := datagen.MustByName("SynMoteStrain").Generate(9)
	o := fixedOpts(sax.Params{Window: 80, PAA: 12, Alphabet: 12})
	o.Gamma = 1.0
	c, err := Train(s.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPatterns() != 0 {
		t.Skip("patterns found; fallback persistence untested on this seed")
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range s.Test[:10] {
		if loaded.Predict(in.Values) != c.Predict(in.Values) {
			t.Fatal("fallback predictions differ after reload")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99}`,
		`{"version": 1, "patterns": [{"Class":1,"Values":[1,2]}]}`, // patterns but no SVM
		`{"version": 1}`, // neither patterns nor fallback
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
