package core

import (
	"sort"
	"sync/atomic"

	"rpm/internal/dist"
	"rpm/internal/features"
	"rpm/internal/parallel"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

// findDistinct implements Algorithm 2: compute the similarity threshold τ
// from the pooled intra-cluster distances, drop near-duplicate candidates
// (keeping the more frequent of each similar pair), transform the training
// set into the candidate distance space, and keep only the features CFS
// selects. It returns the surviving candidates as Patterns, in feature
// order.
func findDistinct(train ts.Dataset, cands []candidate, opts Options) []Pattern {
	if len(cands) == 0 {
		return nil
	}
	tau := computeTau(cands, opts.TauPercentile)
	kept := removeSimilar(cands, tau, opts.Workers)
	opts.Obs.Counter(CtrPruneKept).Add(int64(len(kept)))
	opts.Obs.Counter(CtrPruneDropped).Add(int64(len(cands) - len(kept)))
	if len(kept) == 0 {
		return nil
	}
	// Transform the training data: feature j = closest-match distance to
	// candidate j (Alg. 2 line 20).
	pats := toPatterns(kept)
	X := newTransformer(pats, opts.RotationInvariant).applyAllPool(train, opts.Workers, opts.Obs.Pool(PoolTransform))
	selected := features.SelectObs(X, train.Labels(), opts.Obs.Counter(CtrCFSExpansions))
	opts.Obs.Counter(CtrCFSSelected).Add(int64(len(selected)))
	if len(selected) == 0 {
		return nil
	}
	out := make([]Pattern, 0, len(selected))
	for _, j := range selected {
		out = append(out, pats[j])
	}
	return out
}

// computeTau pools the intra-cluster pairwise distances of all candidates
// and returns the configured percentile (Alg. 2 line 3; default the 30th).
func computeTau(cands []candidate, percentile float64) float64 {
	var all []float64
	for _, c := range cands {
		all = append(all, c.intraDists...)
	}
	if len(all) == 0 {
		return 0
	}
	return stats.Percentile(all, percentile)
}

// removeSimilar drops candidates whose closest-match distance to an
// already-kept candidate is below τ, keeping whichever of the pair is more
// frequent (Alg. 2 lines 5-18). Candidates are processed in descending
// frequency order (ties by class then support) so the outcome is
// deterministic and frequent patterns win.
//
// The outer loop is inherently sequential (each decision depends on the
// kept set so far), but the O(k) closest-match scan against the kept set
// — the inner half of the O(k²) pairwise work — fans out over workers.
// "Is any kept candidate within τ?" is an order-independent OR, so the
// kept set, and hence the feature space, is identical for every worker
// count.
func removeSimilar(cands []candidate, tau float64, workers int) []candidate {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.freq != cb.freq {
			return ca.freq > cb.freq
		}
		if ca.support != cb.support {
			return ca.support > cb.support
		}
		return ca.class < cb.class
	})
	var kept []candidate
	var keptMatchers []*dist.Matcher
	for _, i := range order {
		c := cands[i]
		if !similarToKept(c, kept, keptMatchers, tau, workers) {
			kept = append(kept, c)
			keptMatchers = append(keptMatchers, dist.NewMatcher(c.values))
		}
	}
	return kept
}

// similarToKept reports whether c's closest-match distance to any kept
// candidate is below τ, scanning the kept set on up to workers
// goroutines. The atomic flag both records a hit and early-abandons the
// remaining scans.
func similarToKept(c candidate, kept []candidate, keptMatchers []*dist.Matcher, tau float64, workers int) bool {
	var similar atomic.Bool
	parallel.For(len(keptMatchers), workers, func(ki int) {
		if similar.Load() {
			return
		}
		// match the shorter candidate inside the longer one
		m := keptMatchers[ki]
		var d float64
		if m.Len() <= len(c.values) {
			d = m.Best(c.values).Dist
		} else {
			d = dist.ClosestMatch(c.values, kept[ki].values).Dist
		}
		if d < tau {
			similar.Store(true)
		}
	})
	return similar.Load()
}

func toPatterns(cands []candidate) []Pattern {
	out := make([]Pattern, len(cands))
	for i, c := range cands {
		out[i] = Pattern{Class: c.class, Values: c.values, Support: c.support, Freq: c.freq}
	}
	return out
}
