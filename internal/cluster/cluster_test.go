package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// distMatrix builds a symmetric distance matrix from 1-D points.
func distMatrix(points []float64) [][]float64 {
	n := len(points)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(points[i] - points[j])
		}
	}
	return d
}

func TestCompleteLinkageTwoBlobs(t *testing.T) {
	points := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	got := CompleteLinkage(distMatrix(points), 2)
	if len(got) != 2 {
		t.Fatalf("got %d clusters", len(got))
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("clusters = %v", got)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("clusters = %v, want %v", got, want)
			}
		}
	}
}

func TestCompleteLinkageKEqualsN(t *testing.T) {
	points := []float64{5, 1, 9}
	got := CompleteLinkage(distMatrix(points), 3)
	if len(got) != 3 {
		t.Fatalf("clusters = %v", got)
	}
	for i, c := range got {
		if len(c) != 1 || c[0] != i {
			t.Fatalf("clusters = %v", got)
		}
	}
}

func TestCompleteLinkageKOne(t *testing.T) {
	points := []float64{1, 2, 3, 4}
	got := CompleteLinkage(distMatrix(points), 1)
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("clusters = %v", got)
	}
}

func TestCompleteLinkageEdgeCases(t *testing.T) {
	if got := CompleteLinkage(nil, 2); got != nil {
		t.Errorf("empty input: %v", got)
	}
	// k > n clamps to n; k <= 0 clamps to 1
	got := CompleteLinkage(distMatrix([]float64{1, 2}), 5)
	if len(got) != 2 {
		t.Errorf("k>n: %v", got)
	}
	got = CompleteLinkage(distMatrix([]float64{1, 2}), 0)
	if len(got) != 1 {
		t.Errorf("k=0: %v", got)
	}
}

// Every item appears in exactly one cluster, and exactly k clusters are
// produced (when k <= n).
func TestCompleteLinkagePartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%30) + 1
		k := int(kRaw%uint8(n)) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([]float64, n)
		for i := range points {
			points[i] = rng.Float64() * 100
		}
		clusters := CompleteLinkage(distMatrix(points), k)
		if len(clusters) != k {
			return false
		}
		seen := map[int]bool{}
		for _, c := range clusters {
			for _, i := range c {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitRefineSeparatesGroups(t *testing.T) {
	// Two well-separated, balanced blobs must be split apart.
	var points []float64
	for i := 0; i < 10; i++ {
		points = append(points, float64(i)*0.01)
	}
	for i := 0; i < 10; i++ {
		points = append(points, 100+float64(i)*0.01)
	}
	groups := SplitRefine(distMatrix(points), 0.3)
	if len(groups) < 2 {
		t.Fatalf("expected at least 2 groups, got %v", groups)
	}
	// no group may mix low and high points
	for _, g := range groups {
		low, high := false, false
		for _, i := range g {
			if points[i] < 50 {
				low = true
			} else {
				high = true
			}
		}
		if low && high {
			t.Fatalf("mixed group %v", g)
		}
	}
}

func TestSplitRefineKeepsTightGroupWhole(t *testing.T) {
	// A single tight blob: the 2-way split will be imbalanced or the
	// recursion will stop quickly; every stop leaves groups >= 30% of parent.
	var points []float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		points = append(points, rng.NormFloat64()*0.001)
	}
	// one clear outlier: an imbalanced split (1 vs 11) must be rejected
	points = append(points, 1000)
	groups := SplitRefine(distMatrix(points), 0.3)
	if len(groups) != 1 {
		t.Fatalf("outlier split should be rejected, groups = %v", groups)
	}
	if len(groups[0]) != 13 {
		t.Fatalf("group lost items: %v", groups)
	}
}

func TestSplitRefineSmallGroups(t *testing.T) {
	for n := 0; n < 4; n++ {
		points := make([]float64, n)
		for i := range points {
			points[i] = float64(i) * 100
		}
		groups := SplitRefine(distMatrix(points), 0.3)
		if n == 0 {
			if groups != nil {
				t.Errorf("n=0: %v", groups)
			}
			continue
		}
		if len(groups) != 1 || len(groups[0]) != n {
			t.Errorf("n=%d: groups under 4 items must not be split: %v", n, groups)
		}
	}
}

// SplitRefine output is always a partition of the input items.
func TestSplitRefinePartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 40)
		rng := rand.New(rand.NewSource(seed))
		points := make([]float64, n)
		for i := range points {
			points[i] = rng.Float64() * 10
		}
		groups := SplitRefine(distMatrix(points), 0.3)
		seen := map[int]bool{}
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitRefineThreeBlobs(t *testing.T) {
	var points []float64
	for c := 0; c < 3; c++ {
		for i := 0; i < 8; i++ {
			points = append(points, float64(c)*50+float64(i)*0.01)
		}
	}
	groups := SplitRefine(distMatrix(points), 0.3)
	if len(groups) != 3 {
		t.Fatalf("expected 3 groups, got %d: %v", len(groups), groups)
	}
	for _, g := range groups {
		if len(g) != 8 {
			t.Fatalf("unbalanced groups: %v", groups)
		}
	}
}
