package ctxflow

import "context"

// Wrap is the convenience-wrapper idiom: a ctx-less function passing a
// fresh Background straight into its Context sibling. Allowed.
func Wrap() error { return work(context.Background()) }

type job struct{ ctx context.Context }

// normalize defaults a nil ctx field with a plain assignment — the
// accepted nil-normalization idiom.
func normalize(j *job) {
	if j.ctx == nil {
		j.ctx = context.Background()
	}
}

// pairCallerCtx threads its ctx into the Context variant. Clean.
func pairCallerCtx(ctx context.Context) int { return FetchContext(ctx) }
