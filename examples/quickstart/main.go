// Quickstart: train an RPM classifier on a synthetic Cylinder-Bell-Funnel
// dataset and classify its test set — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	"rpm"
)

func main() {
	// 1. Get a dataset. GenerateDataset synthesizes a UCR-style split
	// deterministically; real UCR files load via rpm.LoadUCR.
	split := rpm.GenerateDataset("SynCBF", 1)
	fmt.Printf("dataset %s: %d train, %d test, length %d\n",
		split.Name, len(split.Train), len(split.Test), len(split.Train[0].Values))

	// 2. Train. DefaultOptions runs the full pipeline with per-class
	// DIRECT parameter optimization; here we pin the SAX parameters to
	// keep the example instant.
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 40, PAA: 6, Alphabet: 4}
	clf, err := rpm.Train(split.Train, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect what was learned: each class gets its own representative
	// patterns (paper Fig. 2 shows these for CBF).
	fmt.Printf("\nlearned %d representative patterns:\n", len(clf.Patterns()))
	for i, p := range clf.Patterns() {
		fmt.Printf("  pattern %d: class=%d length=%d support=%d instances\n",
			i, p.Class, len(p.Values), p.Support)
	}

	// 4. Classify.
	preds := clf.PredictBatch(split.Test)
	wrong := 0
	for i, pred := range preds {
		if pred != split.Test[i].Label {
			wrong++
		}
	}
	fmt.Printf("\ntest error: %.4f (%d/%d wrong)\n",
		float64(wrong)/float64(len(split.Test)), wrong, len(split.Test))

	// 5. A single prediction with its distance-space view.
	q := split.Test[0]
	fmt.Printf("\nfirst test series: true class %d, predicted %d\n", q.Label, clf.Predict(q.Values))
	fmt.Printf("distances to the representative patterns: %.3f\n", clf.Transform(q.Values))
}
