// Package staleignore exercises the suppression-ledger check: a live
// directive (suppressing a real floateq finding) is fine, a directive
// suppressing nothing is itself a finding.
package staleignore

// eq deliberately compares floats bitwise; the directive earns its keep.
func eq(a, b float64) bool {
	return a == b //rpmlint:ignore floateq fixture: deliberate bitwise comparison
}

//rpmlint:ignore floateq fixture: the code it excused is gone // want "suppresses no diagnostic"
func stale() int { return 3 }
