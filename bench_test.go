// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see EXPERIMENTS.md for the mapping), plus ablation benches
// for the design choices called out in DESIGN.md and micro-benchmarks of
// the hot substrates. The table/figure benches run on small suite subsets
// with reduced search budgets so a full `go test -bench=. -benchmem` stays
// laptop-sized; use cmd/benchtab for the full-suite runs.
package rpm_test

import (
	"math/rand"
	"testing"

	"rpm/internal/core"
	"rpm/internal/datagen"
	"rpm/internal/dist"
	"rpm/internal/experiments"
	"rpm/internal/sax"
	"rpm/internal/sequitur"
	"rpm/internal/stats"
	"rpm/internal/svm"
)

// benchSubset keeps table benches fast; cmd/benchtab runs the full suite.
var benchSubset = []string{"SynItalyPower", "SynECGFiveDays", "SynMoteStrain"}

func benchConfig(seed int64) experiments.Config {
	return experiments.Config{Seed: seed, Quick: true, Datasets: benchSubset}
}

// BenchmarkTable1 regenerates Table 1 (classification error, six methods)
// on the benchmark subset, reporting each method's mean error.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunSuite(benchConfig(1), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMeanErrors(b, results, experiments.AllMethods())
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (runtime of LS, FS, RPM), reporting
// the mean LS/RPM speedup.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig(1)
	cfg.Methods = []string{experiments.MethodLS, experiments.MethodFS, experiments.MethodRPM}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunSuite(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var speedup float64
			n := 0
			for _, dr := range results {
				ls := dr.Results[experiments.MethodLS]
				rpmRes := dr.Results[experiments.MethodRPM]
				if rpmRes.Total() > 0 {
					speedup += ls.Total().Seconds() / rpmRes.Total().Seconds()
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(speedup/float64(n), "LS/RPM-speedup")
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (τ sensitivity) on one dataset,
// reporting the error spread across τ settings.
func BenchmarkTable3(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Quick: true, Datasets: []string{"SynItalyPower"}}
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunTauSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			lo, hi := 1.0, 0.0
			for _, p := range sweep[0].Points {
				if p.Err < lo {
					lo = p.Err
				}
				if p.Err > hi {
					hi = p.Err
				}
			}
			b.ReportMetric(hi-lo, "err-spread")
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (rotated-test error) on one shape
// dataset, reporting RPM's and NN-ED's errors under rotation.
func BenchmarkTable4(b *testing.B) {
	split := datagen.MustByName("SynGunPoint").Generate(1)
	rng := rand.New(rand.NewSource(8))
	rotated := experiments.RotateDataset(split.Test, rng)
	for i := 0; i < b.N; i++ {
		o := core.DefaultOptions()
		o.Splits = 2
		o.MaxEvals = 16
		o.RotationInvariant = true
		clf, err := core.Train(split.Train, o)
		if err != nil {
			b.Fatal(err)
		}
		eRPM := stats.ErrorRate(clf.PredictBatch(rotated), rotated.Labels())
		if i == b.N-1 {
			b.ReportMetric(eRPM, "err/RPM-rot")
		}
	}
}

// BenchmarkFig7 regenerates the Figure 7 comparison (pairwise error +
// Wilcoxon p-values), reporting the RPM-vs-NN-ED p-value.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunSuite(benchConfig(1), nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.FormatFig7(results, experiments.AllMethods())
		if i == b.N-1 {
			b.ReportMetric(experiments.Wilcoxon(results, experiments.MethodRPM, experiments.MethodNNED), "p/RPM-vs-NNED")
		}
	}
}

// BenchmarkFig8 regenerates the Figure 8 runtime scatter, reporting the
// fraction of datasets where RPM is faster than LS.
func BenchmarkFig8(b *testing.B) {
	cfg := benchConfig(1)
	cfg.Methods = []string{experiments.MethodLS, experiments.MethodFS, experiments.MethodRPM}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunSuite(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.FormatFig8(results)
		if i == b.N-1 {
			faster := 0
			for _, dr := range results {
				if dr.Results[experiments.MethodRPM].Total() < dr.Results[experiments.MethodLS].Total() {
					faster++
				}
			}
			b.ReportMetric(float64(faster)/float64(len(results)), "frac-RPM-faster-than-LS")
		}
	}
}

// BenchmarkFig9 regenerates the Figure 9 τ series on one dataset.
func BenchmarkFig9(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Quick: true, Datasets: []string{"SynECGFiveDays"}}
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunTauSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.FormatFig9(sweep)
	}
}

// BenchmarkAlarmCase regenerates the §6.2 medical-alarm case study with
// RPM only, reporting its error.
func BenchmarkAlarmCase(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Quick: true, Methods: []string{experiments.MethodRPM}}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAlarmCase(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Results[experiments.MethodRPM].Err, "err/RPM")
		}
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ----------

func ablateOptions() core.Options {
	o := core.DefaultOptions()
	o.Mode = core.ParamFixed
	o.Params = sax.Params{Window: 40, PAA: 6, Alphabet: 4}
	return o
}

// BenchmarkAblateNumerosity compares RPM with and without SAX numerosity
// reduction on SynCBF.
func BenchmarkAblateNumerosity(b *testing.B) {
	split := datagen.MustByName("SynCBF").Generate(1)
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			o := ablateOptions()
			o.NumerosityReduction = on
			var e float64
			for i := 0; i < b.N; i++ {
				clf, err := core.Train(split.Train, o)
				if err != nil {
					b.Fatal(err)
				}
				e = stats.ErrorRate(clf.PredictBatch(split.Test), split.Test.Labels())
			}
			b.ReportMetric(e, "err")
		})
	}
}

// BenchmarkAblateCentroidMedoid compares centroid and medoid prototypes.
func BenchmarkAblateCentroidMedoid(b *testing.B) {
	split := datagen.MustByName("SynCBF").Generate(1)
	for _, medoid := range []bool{false, true} {
		name := "centroid"
		if medoid {
			name = "medoid"
		}
		b.Run(name, func(b *testing.B) {
			o := ablateOptions()
			o.UseMedoid = medoid
			var e float64
			for i := 0; i < b.N; i++ {
				clf, err := core.Train(split.Train, o)
				if err != nil {
					b.Fatal(err)
				}
				e = stats.ErrorRate(clf.PredictBatch(split.Test), split.Test.Labels())
			}
			b.ReportMetric(e, "err")
		})
	}
}

// BenchmarkAblateParamSearch compares fixed heuristic parameters, grid
// search, and DIRECT on SynItalyPower.
func BenchmarkAblateParamSearch(b *testing.B) {
	split := datagen.MustByName("SynItalyPower").Generate(1)
	modes := []struct {
		name string
		mode core.ParamMode
	}{{"fixed", core.ParamFixed}, {"grid", core.ParamGrid}, {"direct", core.ParamDIRECT}}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			o := core.DefaultOptions()
			o.Mode = m.mode
			o.Splits = 2
			o.MaxEvals = 16
			var e float64
			for i := 0; i < b.N; i++ {
				clf, err := core.Train(split.Train, o)
				if err != nil {
					b.Fatal(err)
				}
				e = stats.ErrorRate(clf.PredictBatch(split.Test), split.Test.Labels())
			}
			b.ReportMetric(e, "err")
		})
	}
}

// BenchmarkAblateRotationInvariance measures the cost and benefit of the
// rotation-invariant transform on unrotated data (it should cost ~2x
// transform time and not hurt accuracy).
func BenchmarkAblateRotationInvariance(b *testing.B) {
	split := datagen.MustByName("SynGunPoint").Generate(1)
	for _, inv := range []bool{false, true} {
		name := "plain"
		if inv {
			name = "invariant"
		}
		b.Run(name, func(b *testing.B) {
			o := ablateOptions()
			o.Params = sax.Params{Window: 30, PAA: 6, Alphabet: 4}
			o.RotationInvariant = inv
			var e float64
			for i := 0; i < b.N; i++ {
				clf, err := core.Train(split.Train, o)
				if err != nil {
					b.Fatal(err)
				}
				e = stats.ErrorRate(clf.PredictBatch(split.Test), split.Test.Labels())
			}
			b.ReportMetric(e, "err")
		})
	}
}

// BenchmarkAblateGIAlgorithm compares Sequitur against Re-Pair as the
// grammar-induction stage (the paper claims any context-free GI works).
func BenchmarkAblateGIAlgorithm(b *testing.B) {
	split := datagen.MustByName("SynCBF").Generate(1)
	algos := []struct {
		name string
		gi   core.GIAlgorithm
	}{{"sequitur", core.GISequitur}, {"repair", core.GIRePair}}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			o := ablateOptions()
			o.GI = a.gi
			var e float64
			for i := 0; i < b.N; i++ {
				clf, err := core.Train(split.Train, o)
				if err != nil {
					b.Fatal(err)
				}
				e = stats.ErrorRate(clf.PredictBatch(split.Test), split.Test.Labels())
			}
			b.ReportMetric(e, "err")
		})
	}
}

// --- substrate micro-benchmarks ------------------------------------------

func randomSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func BenchmarkSAXDiscretize(b *testing.B) {
	v := randomSeries(1024, 1)
	p := sax.Params{Window: 64, PAA: 8, Alphabet: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sax.Discretize(v, p, true, nil)
	}
}

func BenchmarkSequiturInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tokens := make([]int, 2000)
	for i := range tokens {
		tokens[i] = rng.Intn(20)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := sequitur.Infer(tokens)
		_ = g.Rules()
	}
}

func BenchmarkClosestMatch(b *testing.B) {
	series := randomSeries(1024, 3)
	pattern := randomSeries(64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.ClosestMatch(pattern, series)
	}
}

func BenchmarkDTW(b *testing.B) {
	a := randomSeries(256, 5)
	c := randomSeries(256, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.DTW(a, c, 25)
	}
}

func BenchmarkSVMTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n, d := 200, 10
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 3
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64() + float64(y[i])
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svm.Train(X, y, svm.Config{})
	}
}

func BenchmarkRPMTrainFixed(b *testing.B) {
	split := datagen.MustByName("SynCBF").Generate(1)
	o := ablateOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(split.Train, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPMPredict(b *testing.B) {
	split := datagen.MustByName("SynCBF").Generate(1)
	clf, err := core.Train(split.Train, ablateOptions())
	if err != nil {
		b.Fatal(err)
	}
	q := split.Test[0].Values
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Predict(q)
	}
}

func reportMeanErrors(b *testing.B, results []experiments.DatasetResult, methods []string) {
	for _, m := range methods {
		var sum float64
		n := 0
		for _, dr := range results {
			if r, ok := dr.Results[m]; ok {
				sum += r.Err
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "err/"+m)
		}
	}
}
