// Package serve is the fixture use layer: it exercises SiteUsed
// through the declared constant and fires one raw-literal site, which
// is a finding.
package serve

import "lintfix/faultsite/faults"

func hit(in *faults.Injector) error {
	if in.Fire(faults.SiteUsed) {
		return in.Err(faults.SiteUsed)
	}
	return in.Err("raw.site") // want "not a lintfix/faultsite/faults constant"
}
