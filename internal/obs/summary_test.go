package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestSummaryNilSafety drives the Summary handle on nil receivers and a
// nil registry: nothing panics, reads return zero values.
func TestSummaryNilSafety(t *testing.T) {
	var r *Registry
	if r.Summary("s") != nil {
		t.Fatal("nil registry must hand out a nil summary")
	}
	var s *Summary
	s.Observe(time.Millisecond)
	if s.Count() != 0 {
		t.Fatal("nil summary count")
	}
	var snap *Snapshot
	if snap.Summary("s") != nil || snap.Gauge("g") != 0 {
		t.Fatal("nil snapshot summary/gauge reads")
	}
}

// TestSummaryBuckets pins the bucket mapping: [2^i, 2^(i+1)) → i, with
// clamping at both ends.
func TestSummaryBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10},
		{math.MaxInt64, summaryBuckets - 1},
	}
	for _, c := range cases {
		if got := summaryBucket(c.ns); got != c.want {
			t.Errorf("summaryBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestSummaryStatistics checks count/sum/min/max/mean and that the
// approximate quantiles bracket the true ones within the 2x bucket bound.
func TestSummaryStatistics(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat")
	// 100 observations: 1..100 µs.
	for i := 1; i <= 100; i++ {
		s.Observe(time.Duration(i) * time.Microsecond)
	}
	if s.Count() != 100 {
		t.Fatalf("count = %d", s.Count())
	}
	snap := r.Snapshot().Summary("lat")
	if snap == nil {
		t.Fatal("summary missing from snapshot")
	}
	if snap.Count != 100 || snap.MinNS != int64(time.Microsecond) || snap.MaxNS != int64(100*time.Microsecond) {
		t.Fatalf("count/min/max = %d/%d/%d", snap.Count, snap.MinNS, snap.MaxNS)
	}
	wantSum := int64(100 * 101 / 2 * int(time.Microsecond))
	if snap.SumNS != wantSum {
		t.Fatalf("sum = %d, want %d", snap.SumNS, wantSum)
	}
	if snap.MeanNS != wantSum/100 {
		t.Fatalf("mean = %d, want %d", snap.MeanNS, wantSum/100)
	}
	// True p50 is 50-51 µs; the bucket upper bound may over-report by ≤2x
	// and never under-reports below the true value's bucket lower bound.
	check := func(name string, got int64, trueQ time.Duration) {
		if got < int64(trueQ)/2 || got > 2*int64(trueQ) {
			t.Errorf("%s = %s, want within 2x of %s", name, time.Duration(got), trueQ)
		}
	}
	check("p50", snap.P50NS, 50*time.Microsecond)
	check("p90", snap.P90NS, 90*time.Microsecond)
	check("p99", snap.P99NS, 99*time.Microsecond)
	// Quantiles are monotone.
	if snap.P50NS > snap.P90NS || snap.P90NS > snap.P99NS {
		t.Fatalf("quantiles not monotone: %d %d %d", snap.P50NS, snap.P90NS, snap.P99NS)
	}
}

// TestSummaryEmptySnapshot: a created-but-unobserved summary reports all
// zeros (no MaxInt64 sentinel leaking).
func TestSummaryEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Summary("empty")
	snap := r.Snapshot().Summary("empty")
	if snap == nil {
		t.Fatal("summary missing")
	}
	if snap.Count != 0 || snap.MinNS != 0 || snap.MaxNS != 0 || snap.P50NS != 0 || snap.MeanNS != 0 {
		t.Fatalf("empty summary leaked values: %+v", snap)
	}
}

// TestSummaryNegativeClamps: negative durations count as zero.
func TestSummaryNegativeClamps(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("neg")
	s.Observe(-time.Second)
	snap := r.Snapshot().Summary("neg")
	if snap.Count != 1 || snap.SumNS != 0 || snap.MinNS != 0 || snap.MaxNS != 0 {
		t.Fatalf("negative observation not clamped: %+v", snap)
	}
}

// TestSummaryConcurrent exercises Observe from many goroutines under
// -race and checks the totals add up.
func TestSummaryConcurrent(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("conc")
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	// Concurrent snapshot must not race with recording.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot().Summary("conc")
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	if snap.MinNS != int64(time.Microsecond) || snap.MaxNS != int64(workers*int(time.Microsecond)) {
		t.Fatalf("min/max = %d/%d", snap.MinNS, snap.MaxNS)
	}
}
