// Package sax implements Symbolic Aggregate approXimation (Lin et al. 2007):
// z-normalization, PAA reduction, and mapping of segment means to symbols via
// breakpoints that divide the standard normal distribution into equiprobable
// regions. It also provides the sliding-window discretization with
// numerosity reduction used by the RPM pre-processing step (paper §3.2.1)
// and the MINDIST lower-bounding distance between SAX words used by the
// Fast Shapelets baseline.
package sax

import (
	"fmt"
	"math"

	"rpm/internal/paa"
	"rpm/internal/ts"
)

// MinAlphabet and MaxAlphabet bound the supported alphabet sizes. Symbols
// are the lowercase letters 'a'...; 20 keeps every symbol a single letter.
const (
	MinAlphabet = 2
	MaxAlphabet = 20
)

// Params bundles the three SAX discretization parameters (paper §4): the
// sliding-window size, the PAA word size, and the alphabet size.
type Params struct {
	Window   int // sliding-window length, in points
	PAA      int // number of PAA segments (word length, in symbols)
	Alphabet int // alphabet cardinality, in [MinAlphabet, MaxAlphabet]
}

// Validate reports whether p is internally consistent for series of length
// at least m (m <= 0 skips the window-fits check).
func (p Params) Validate(m int) error {
	if p.Alphabet < MinAlphabet || p.Alphabet > MaxAlphabet {
		return fmt.Errorf("sax: alphabet %d outside [%d,%d]", p.Alphabet, MinAlphabet, MaxAlphabet)
	}
	if p.PAA < 1 {
		return fmt.Errorf("sax: PAA size %d < 1", p.PAA)
	}
	if p.Window < 2 {
		return fmt.Errorf("sax: window %d < 2", p.Window)
	}
	if p.PAA > p.Window {
		return fmt.Errorf("sax: PAA size %d exceeds window %d", p.PAA, p.Window)
	}
	if m > 0 && p.Window > m {
		return fmt.Errorf("sax: window %d exceeds series length %d", p.Window, m)
	}
	return nil
}

func (p Params) String() string {
	return fmt.Sprintf("w=%d/paa=%d/a=%d", p.Window, p.PAA, p.Alphabet)
}

// invNormCDF approximates the inverse CDF of the standard normal
// distribution using Acklam's rational approximation (relative error below
// 1.15e-9 everywhere), which is plenty for breakpoint generation.
func invNormCDF(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	const phigh = 1 - plow
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// breakpointTable[α] caches the α-1 breakpoints for each supported alphabet.
var breakpointTable = func() [][]float64 {
	t := make([][]float64, MaxAlphabet+1)
	for a := MinAlphabet; a <= MaxAlphabet; a++ {
		bp := make([]float64, a-1)
		for i := 1; i < a; i++ {
			bp[i-1] = invNormCDF(float64(i) / float64(a))
		}
		t[a] = bp
	}
	return t
}()

// Breakpoints returns the α-1 breakpoints dividing N(0,1) into α
// equiprobable regions. The returned slice is shared; callers must not
// modify it.
func Breakpoints(alpha int) []float64 {
	if alpha < MinAlphabet || alpha > MaxAlphabet {
		panic(fmt.Sprintf("sax: alphabet %d outside [%d,%d]", alpha, MinAlphabet, MaxAlphabet))
	}
	return breakpointTable[alpha]
}

// Symbol maps a single PAA value to its symbol index in [0, alpha).
func Symbol(x float64, alpha int) int {
	bp := Breakpoints(alpha)
	// binary search: first breakpoint greater than x
	lo, hi := 0, len(bp)
	for lo < hi {
		mid := (lo + hi) / 2
		if x < bp[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Letter converts a symbol index to its letter rune ('a' + i).
func Letter(i int) byte { return byte('a' + i) }

// WordOf discretizes a (raw, not yet normalized) subsequence into a SAX
// word of p.PAA symbols: z-normalize, PAA, then symbol mapping.
func WordOf(sub []float64, p Params) string {
	buf := make([]byte, 0, p.PAA)
	z := make([]float64, len(sub))
	pa := make([]float64, 0, p.PAA)
	return string(wordInto(buf, z, pa, sub, p))
}

// wordInto is the allocation-free core of WordOf; buf, z and pa are
// scratch buffers (z must have len(sub) elements).
func wordInto(buf []byte, z, pa, sub []float64, p Params) []byte {
	ts.ZNormInto(z, sub)
	pa = paa.TransformInto(pa[:0], z, p.PAA)
	for _, x := range pa {
		buf = append(buf, Letter(Symbol(x, p.Alphabet)))
	}
	return buf
}

// WordAt is a labeled SAX word: the word plus the offset of the
// subsequence (its leftmost point) it was extracted from.
type WordAt struct {
	Word   string
	Offset int
}

// Discretize slides a window of p.Window over v, discretizing each window
// into a SAX word. With numerosity reduction (reduce=true) consecutive
// identical words are collapsed to their first occurrence (paper §3.2.1).
// skip, if non-nil, suppresses windows for which skip(start) is true — used
// to avoid windows spanning concatenation junctions.
func Discretize(v []float64, p Params, reduce bool, skip func(start int) bool) []WordAt {
	n := ts.NumWindows(len(v), p.Window)
	if n <= 0 {
		return nil
	}
	out := make([]WordAt, 0, n/2+1)
	z := make([]float64, p.Window)
	pa := make([]float64, 0, p.PAA)
	buf := make([]byte, 0, p.PAA)
	prev := ""
	havePrev := false
	for i := 0; i < n; i++ {
		if skip != nil && skip(i) {
			// a skipped region breaks the run for numerosity reduction:
			// the next retained word is always emitted.
			havePrev = false
			continue
		}
		buf = wordInto(buf[:0], z, pa, v[i:i+p.Window], p)
		w := string(buf)
		if reduce && havePrev && w == prev {
			continue
		}
		out = append(out, WordAt{Word: w, Offset: i})
		prev = w
		havePrev = true
	}
	return out
}

// mindistCell returns the breakpoint distance between symbol indices r and
// c for the given alphabet: 0 if |r-c| <= 1, else the gap between the
// closest breakpoints (Lin et al. 2007).
func mindistCell(r, c, alpha int) float64 {
	if r > c {
		r, c = c, r
	}
	if c-r <= 1 {
		return 0
	}
	bp := Breakpoints(alpha)
	return bp[c-1] - bp[r]
}

// MinDist returns the MINDIST lower bound between two equal-length SAX
// words drawn from the same alphabet, for original subsequences of length n.
// It lower-bounds the Euclidean distance between the z-normalized
// subsequences.
func MinDist(a, b string, n, alpha int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("sax: MinDist word length mismatch %d != %d", len(a), len(b)))
	}
	w := len(a)
	if w == 0 {
		return 0
	}
	var s float64
	for i := 0; i < w; i++ {
		d := mindistCell(int(a[i]-'a'), int(b[i]-'a'), alpha)
		s += d * d
	}
	return math.Sqrt(float64(n)/float64(w)) * math.Sqrt(s)
}
