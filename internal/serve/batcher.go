package serve

import (
	"context"
	"sync"
	"time"

	"rpm"
	"rpm/internal/faults"
	"rpm/internal/obs"
)

// predRequest is one single-prediction request queued into the batcher.
type predRequest struct {
	model  string
	values []float64
	// ctx is the request's deadline-bearing context. The flush consults
	// it at admission time: a request whose context already expired is
	// shed with its context error (→ 504) instead of being computed for
	// a caller that stopped listening (the queue-age admission check).
	ctx context.Context
	// out is buffered (capacity 1) so a flush never blocks on a caller
	// that gave up waiting (deadline, disconnect).
	out chan predResponse
}

type predResponse struct {
	label int
	model *Model
	err   error
}

// batcher is the adaptive micro-batcher: single-prediction requests
// queue into a bounded channel and are flushed to one PredictBatch call
// when either maxBatch requests have accumulated or maxDelay has elapsed
// since the first request of the batch. The first request of a batch
// therefore waits at most maxDelay; under load batches fill instantly
// and per-request transform overhead amortizes across the worker pool
// inside PredictBatchContext.
//
// One goroutine (loop) owns batch assembly; flushes resolve the model
// from the store at flush time, so a hot reload redirects the very next
// flush to the new model without dropping anything queued.
type batcher struct {
	store    *Store
	maxBatch int
	maxDelay time.Duration
	faults   *faults.Injector

	queue    chan *predRequest
	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}

	batches  *obs.Counter
	items    *obs.Counter
	expired  *obs.Counter
	injected *obs.Counter
	depth    *obs.Gauge
	pool     *obs.Pool

	// scratch pools the per-flush assembly state (the rpm.Dataset rows
	// handed to PredictBatch) so steady-state flushes reuse one backing
	// slice instead of allocating a fresh dataset per flush. scratchNew
	// counts pool misses — flushes minus misses is the achieved reuse.
	scratch    sync.Pool
	scratchNew *obs.Counter

	// flushGate, when non-nil, turns every flush into a two-phase
	// handshake: flush sends one token (announcing it has begun and is
	// stalled) then receives one token (the release). It exists solely
	// for tests that need a deterministically stalled batcher
	// (queue-full shedding, reload-during-flight); it is nil in
	// production and costs one nil check per flush.
	flushGate chan struct{}
}

// flushScratch is the reusable per-flush assembly state: the dataset
// passed to PredictBatch (and the filtered request list of the rare
// expired-shedding path) grows to the steady-state batch size once and
// is then recycled flush after flush.
type flushScratch struct {
	ds   rpm.Dataset
	reqs []*predRequest
}

func newBatcher(store *Store, maxBatch, queueSize int, maxDelay time.Duration, reg *obs.Registry, inj *faults.Injector) *batcher {
	b := &batcher{
		store:      store,
		maxBatch:   maxBatch,
		maxDelay:   maxDelay,
		faults:     inj,
		queue:      make(chan *predRequest, queueSize),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		batches:    reg.Counter(CtrBatches),
		items:      reg.Counter(CtrBatchItems),
		expired:    reg.Counter(CtrExpired),
		injected:   reg.Counter(CtrFaultsInjected),
		depth:      reg.Gauge(GaugeQueueDepth),
		pool:       reg.Pool(PoolBatch),
		scratchNew: reg.Counter(CtrFlushScratchNew),
	}
	b.scratch.New = func() any {
		b.scratchNew.Inc()
		return &flushScratch{ds: make(rpm.Dataset, 0, maxBatch)}
	}
	return b
}

// start launches the batch-assembly goroutine.
func (b *batcher) start() { go b.loop() }

// enqueue offers a request to the queue without blocking. A false return
// means the queue is full — the caller sheds the request with 429.
// faults.SiteEnqueueFull simulates a saturated queue.
func (b *batcher) enqueue(r *predRequest) bool {
	if b.faults.Fire(faults.SiteEnqueueFull) {
		b.injected.Inc()
		return false
	}
	select {
	case b.queue <- r:
		b.depth.Set(int64(len(b.queue)))
		return true
	default:
		return false
	}
}

// loop assembles and flushes batches until quit, then drains whatever
// remains in the queue so graceful shutdown never strands a queued
// request.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		var first *predRequest
		select {
		case <-b.quit:
			b.drain()
			return
		case first = <-b.queue:
		}
		batch := append(make([]*predRequest, 0, b.maxBatch), first)
		timer := time.NewTimer(b.maxDelay)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case <-b.quit:
				break collect
			case r := <-b.queue:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.depth.Set(int64(len(b.queue)))
		b.flush(batch)
	}
}

// stop signals the loop to drain and waits for it (or ctx). Safe to
// call more than once (Server.Close is idempotent).
func (b *batcher) stop(ctx context.Context) error {
	b.quitOnce.Do(func() { close(b.quit) })
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain empties the queue after quit, flushing in maxBatch-sized groups.
func (b *batcher) drain() {
	var batch []*predRequest
	for {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
			if len(batch) >= b.maxBatch {
				b.flush(batch)
				batch = nil
			}
		default:
			if len(batch) > 0 {
				b.flush(batch)
			}
			return
		}
	}
}

// flush classifies one assembled batch. Requests are grouped by model
// name (one PredictBatch call per distinct model, resolved from the
// store at flush time so reloads take effect immediately); each group's
// labels are distributed back to the waiting handlers. The typical
// single-model deployment always produces exactly one PredictBatch call.
//
//rpmlint:hotpath PR6 serving flush: steady-state flush is allocation-free
func (b *batcher) flush(batch []*predRequest) {
	if b.flushGate != nil {
		b.flushGate <- struct{}{} // announce: stalled at the gate
		<-b.flushGate             // wait for release
	}
	// Injected flush stall / latency spike (faults.SiteFlushDelay):
	// sleeps before any model work, so queued requests age exactly as
	// they would behind a genuinely slow flush.
	//rpmlint:ignore hotpathalloc fault injection: disabled injectors return 0 with no allocation; armed runs are chaos tests
	if d := b.faults.Sleep(faults.SiteFlushDelay); d > 0 {
		b.injected.Inc()
	}
	start := time.Now()
	sc := b.scratch.Get().(*flushScratch) //rpmlint:ignore hotpathalloc pooled flush scratch: Pool.Get runs New only until the pool warms
	if sameModel(batch) {
		// The typical single-model deployment: no grouping state at all.
		b.flushGroup(batch[0].model, batch, sc)
	} else {
		//rpmlint:ignore hotpathalloc multi-model grouping is the accepted allocating slow path; single-model deployments never enter it
		b.flushMulti(batch, sc)
	}
	// Drop the request value references before pooling so an idle batcher
	// does not pin the last batch's series.
	clear(sc.ds[:cap(sc.ds)])
	sc.ds = sc.ds[:0]
	clear(sc.reqs[:cap(sc.reqs)])
	sc.reqs = sc.reqs[:0]
	b.scratch.Put(sc)
	dur := time.Since(start)
	b.batches.Inc()
	b.items.Add(int64(len(batch)))
	b.pool.WorkerTask(0, dur)
	b.pool.RunDone(1, dur)
}

// flushMulti is the mixed-model slow path: group by model, preserving
// arrival order within groups, then run the groups sequentially so they
// share the one pooled dataset. It allocates (map + order slice) and is
// deliberately outside the hot-path proof — a deployment serving one
// model per batcher never reaches it.
func (b *batcher) flushMulti(batch []*predRequest, sc *flushScratch) {
	groups := map[string][]*predRequest{}
	var order []string
	for _, r := range batch {
		if _, ok := groups[r.model]; !ok {
			order = append(order, r.model)
		}
		groups[r.model] = append(groups[r.model], r)
	}
	for _, name := range order {
		b.flushGroup(name, groups[name], sc)
	}
}

// sameModel reports whether every request of the batch targets one model.
func sameModel(batch []*predRequest) bool {
	for _, r := range batch[1:] {
		if r.model != batch[0].model {
			return false
		}
	}
	return true
}

// flushGroup classifies one same-model group of the batch through the
// pooled dataset and distributes labels (or the shared error) back to
// the waiting handlers.
//
// Queue-age admission check: a request whose context expired while it
// sat in the queue is answered with its context error (the handler maps
// it to 504) and excluded from the PredictBatchContext call — it is
// shed before the store lookup, never computed and discarded. A group
// left with no live requests skips the model entirely.
func (b *batcher) flushGroup(name string, group []*predRequest, sc *flushScratch) {
	// Fast path: no expired request means no filtering and no copy.
	live := group
	for i, r := range group {
		if r.ctx != nil && r.ctx.Err() != nil {
			live = b.shedExpired(group, i, sc)
			break
		}
	}
	if len(live) == 0 {
		return
	}
	//rpmlint:ignore hotpathalloc model resolution: the happy path is an atomic load + map read; only error paths build their typed error
	m, err := b.store.Get(name)
	if err != nil {
		for _, r := range live {
			r.out <- predResponse{err: err}
		}
		return
	}
	ds := sc.ds[:0]
	for _, r := range live {
		ds = append(ds, rpm.Instance{Values: r.values}) //rpmlint:ignore hotpathalloc growth bounded by max batch size; pooled scratch keeps the backing array
	}
	sc.ds = ds
	//rpmlint:ignore hotpathalloc classifier batch call returns a fresh labels slice by contract (2 allocs/op, bench-gated); its inner kernel applyInto carries its own hotpath proof
	labels, err := m.clf.PredictBatchContext(context.Background(), ds)
	if err != nil {
		for _, r := range live {
			r.out <- predResponse{err: err}
		}
		return
	}
	for i, r := range live {
		r.out <- predResponse{label: labels[i], model: m}
	}
}

// shedExpired answers every expired request of group from firstExpired
// onward with its context error and returns the surviving requests,
// assembled in sc.reqs (valid until the next group of the same flush
// reuses it — groups run sequentially, and live is consumed before
// flushGroup returns the next time around).
func (b *batcher) shedExpired(group []*predRequest, firstExpired int, sc *flushScratch) []*predRequest {
	live := append(sc.reqs[:0], group[:firstExpired]...)
	for _, r := range group[firstExpired:] {
		if r.ctx != nil && r.ctx.Err() != nil {
			b.expired.Inc()
			r.out <- predResponse{err: r.ctx.Err()}
			continue
		}
		live = append(live, r) //rpmlint:ignore hotpathalloc growth bounded by group size; pooled scratch keeps the backing array
	}
	sc.reqs = live
	return live
}
