// Package repair implements Re-Pair (Larsson & Moffat, 1999), an offline
// grammar-induction algorithm: repeatedly replace the most frequent digram
// in the sequence with a fresh non-terminal until every digram is unique.
// The paper notes (§3.2.2) that RPM "also works with other (context-free)
// GI algorithms"; this package provides exactly that alternative — the
// core exposes it through Options so the Sequitur-vs-Re-Pair choice can be
// ablated (see bench_test.go).
//
// The output mirrors package sequitur's rule reporting: every rule's
// terminal yield and all of its occurrence spans in the input, so the two
// algorithms are drop-in interchangeable for candidate generation.
package repair

import (
	"fmt"

	"rpm/internal/sequitur"
)

// Rule is one Re-Pair production with its full expansion and every
// occurrence in the parsed input. Span semantics match package sequitur.
type Rule struct {
	ID    int
	Yield []int
	Spans []sequitur.Span
}

// Grammar is the result of Re-Pair compression.
type Grammar struct {
	rules []rulePair // rule i expands to the pair rules[i]
	final []int      // compressed top-level sequence
	n     int        // input length
}

// rulePair is a rule body: exactly two symbols (terminals >= 0,
// non-terminal rule r encoded as -(r+1), matching the digram encoding).
type rulePair struct{ a, b int }

const minToken = 0

func encodeRule(r int) int { return -(r + 1) }
func decodeRule(s int) int { return -s - 1 }
func isRule(s int) bool    { return s < minToken }

// Infer runs Re-Pair on the token sequence. Tokens must be non-negative.
func Infer(tokens []int) *Grammar {
	for _, t := range tokens {
		if t < 0 {
			panic(fmt.Sprintf("repair: negative token %d", t))
		}
	}
	seq := make([]int, len(tokens))
	copy(seq, tokens)
	g := &Grammar{n: len(tokens)}
	for {
		pair, count := mostFrequentDigram(seq)
		if count < 2 {
			break
		}
		id := len(g.rules)
		g.rules = append(g.rules, rulePair{a: pair[0], b: pair[1]})
		seq = replacePair(seq, pair, encodeRule(id))
	}
	g.final = seq
	return g
}

// mostFrequentDigram counts non-overlapping digram occurrences (greedy
// left-to-right, the standard Re-Pair treatment of runs like "aaa") and
// returns the most frequent one; ties break deterministically by the
// smaller encoded pair.
func mostFrequentDigram(seq []int) ([2]int, int) {
	counts := map[[2]int]int{}
	var last [2]int
	lastAt := -2
	for i := 0; i+1 < len(seq); i++ {
		p := [2]int{seq[i], seq[i+1]}
		// skip the overlapping middle of a run of identical symbols
		if p == last && i == lastAt+1 && p[0] == p[1] {
			lastAt = -2
			continue
		}
		counts[p]++
		last = p
		lastAt = i
	}
	var best [2]int
	bestC := 0
	for p, c := range counts {
		if c > bestC || (c == bestC && less(p, best)) {
			best = p
			bestC = c
		}
	}
	return best, bestC
}

func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// replacePair rewrites every non-overlapping occurrence of pair with sym.
func replacePair(seq []int, pair [2]int, sym int) []int {
	out := seq[:0:0]
	for i := 0; i < len(seq); {
		if i+1 < len(seq) && seq[i] == pair[0] && seq[i+1] == pair[1] {
			out = append(out, sym)
			i += 2
		} else {
			out = append(out, seq[i])
			i++
		}
	}
	return out
}

// Expand reconstructs the original token sequence (test oracle).
func (g *Grammar) Expand() []int {
	var out []int
	var walk func(sym int)
	walk = func(sym int) {
		if !isRule(sym) {
			out = append(out, sym)
			return
		}
		r := g.rules[decodeRule(sym)]
		walk(r.a)
		walk(r.b)
	}
	for _, s := range g.final {
		walk(s)
	}
	if out == nil {
		out = []int{}
	}
	return out
}

// NumRules returns the number of productions created.
func (g *Grammar) NumRules() int { return len(g.rules) }

// Rules returns every rule with its yield and occurrence spans, computed
// by walking the derivation of the compressed sequence.
func (g *Grammar) Rules() []*Rule {
	yields := make([][]int, len(g.rules))
	var yieldOf func(sym int) []int
	yieldOf = func(sym int) []int {
		if !isRule(sym) {
			return []int{sym}
		}
		id := decodeRule(sym)
		if yields[id] != nil {
			return yields[id]
		}
		r := g.rules[id]
		y := append(append([]int{}, yieldOf(r.a)...), yieldOf(r.b)...)
		yields[id] = y
		return y
	}
	recs := map[int]*Rule{}
	var walk func(sym, pos int) int
	walk = func(sym, pos int) int {
		if !isRule(sym) {
			return pos + 1
		}
		id := decodeRule(sym)
		y := yieldOf(sym)
		rec, ok := recs[id]
		if !ok {
			rec = &Rule{ID: id, Yield: y}
			recs[id] = rec
		}
		rec.Spans = append(rec.Spans, sequitur.Span{Start: pos, End: pos + len(y) - 1})
		r := g.rules[id]
		pos = walk(r.a, pos)
		return walk(r.b, pos)
	}
	pos := 0
	for _, s := range g.final {
		pos = walk(s, pos)
	}
	out := make([]*Rule, 0, len(recs))
	for id := 0; id < len(g.rules); id++ {
		if rec, ok := recs[id]; ok {
			out = append(out, rec)
		}
	}
	return out
}
