package serve

// Focused resilience tests pinning individual failure behaviors: the
// drain readiness contract (/readyz vs /healthz), the batcher's
// queue-age admission check, and single-site fault injection through
// the HTTP surface. The chaos suite (chaos_test.go) composes these
// behaviors under randomized storms; these tests pin each one in
// isolation so a regression names the exact broken mechanism.

import (
	"context"
	"net/http"
	"testing"

	"rpm"
	"rpm/internal/faults"
)

// TestDrainReadyzVsHealthz pins the drain readiness contract: the
// moment BeginDrain is called — long before the process exits —
// /readyz flips to 503 so load balancers stop routing here, while
// /healthz stays 200 because the process is alive and finishing its
// queued work. Killing liveness during a drain would get a draining
// pod restarted mid-drain, the exact opposite of graceful.
func TestDrainReadyzVsHealthz(t *testing.T) {
	s, ts, _ := newTestServer(t, nil)
	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, buf[:n]
	}
	if status, body := get("/readyz"); status != http.StatusOK {
		t.Fatalf("pre-drain /readyz = %d: %s", status, body)
	}
	if status, body := get("/healthz"); status != http.StatusOK {
		t.Fatalf("pre-drain /healthz = %d: %s", status, body)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	status, body := get("/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503: %s", status, body)
	}
	if code := errCode(t, status, body); code != "draining" {
		t.Fatalf("draining /readyz code = %q, want draining", code)
	}
	if status, body := get("/healthz"); status != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (liveness must survive the drain): %s", status, body)
	}
	// The serving endpoints reject immediately too.
	resp, rbody := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, resp.StatusCode, rbody) != "draining" {
		t.Fatalf("draining /v1/predict = %d %s, want 503 draining", resp.StatusCode, rbody)
	}
}

// TestFlushShedsExpiredQueuedRequest pins the queue-age admission check
// at the batcher layer: a request whose context expired while queued is
// answered with its context error and EXCLUDED from the PredictBatch
// call. The expired request targets a nonexistent model — if the flush
// consulted the store before shedding, the answer would be "unknown
// model", so getting the context error proves the shed happens first
// (the request is never looked up, never computed).
func TestFlushShedsExpiredQueuedRequest(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	expired := &predRequest{model: "ghost", values: fixProbe[0].Values, ctx: expiredCtx,
		out: make(chan predResponse, 1)}
	live := &predRequest{model: "cbf", values: fixProbe[1].Values, ctx: context.Background(),
		out: make(chan predResponse, 1)}
	s.batcher.flush([]*predRequest{expired, live})

	res := <-expired.out
	if res.err != context.Canceled {
		t.Fatalf("expired request answered %v, want its context error (it must be shed before the store lookup)", res.err)
	}
	lres := <-live.out
	if lres.err != nil {
		t.Fatalf("live batch-mate failed: %v", lres.err)
	}
	if want := fixClf1.Predict(fixProbe[1].Values); lres.label != want {
		t.Fatalf("live batch-mate label %d != direct Predict %d", lres.label, want)
	}
	if n := s.reg.Snapshot().Counter(CtrExpired); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
}

// TestFlushShedsAllExpiredGroup: a group left with no live requests
// skips the model lookup and the predict entirely.
func TestFlushShedsAllExpiredGroup(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]*predRequest, 3)
	for i := range reqs {
		reqs[i] = &predRequest{model: "ghost", values: fixProbe[i].Values, ctx: expiredCtx,
			out: make(chan predResponse, 1)}
	}
	batchesBefore := s.reg.Snapshot().Counter(CtrBatches)
	s.batcher.flush(reqs)
	for i, r := range reqs {
		if res := <-r.out; res.err != context.Canceled {
			t.Fatalf("expired request %d answered %v, want context.Canceled", i, res.err)
		}
	}
	snap := s.reg.Snapshot()
	if n := snap.Counter(CtrExpired); n != 3 {
		t.Fatalf("expired counter = %d, want 3", n)
	}
	// The flush itself is still accounted, but nothing was computed for a
	// model that does not exist — no error escaped to any caller.
	if got := snap.Counter(CtrBatches); got != batchesBefore+1 {
		t.Fatalf("batches counter = %d, want %d", got, batchesBefore+1)
	}
}

// TestDeadlineFaultAnswers504 drives the deadline-exhaustion site
// end-to-end: the first request's context is killed before it is
// enqueued (n=1 caps the blast), so the handler answers 504
// deadline_exceeded and the flush's queue-age check counts the shed;
// the very next request serves normally.
func TestDeadlineFaultAnswers504(t *testing.T) {
	inj, err := faults.New(7, "server.deadline:p=1:n=1")
	if err != nil {
		t.Fatal(err)
	}
	s, ts, _ := newTestServer(t, func(c *Config) { c.Faults = inj })
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("faulted request = %d %s, want 504", resp.StatusCode, body)
	}
	if code := errCode(t, resp.StatusCode, body); code != "deadline_exceeded" {
		t.Fatalf("faulted request code = %q, want deadline_exceeded", code)
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault request = %d %s, want 200", resp.StatusCode, body)
	}
	// The dead request rode the queue and was shed at flush time, never
	// computed (asynchronous to the handler's own 504 answer).
	waitFor(t, func() bool { return s.reg.Snapshot().Counter(CtrExpired) == 1 })
}

// TestEnqueueFaultSheds429: injected queue saturation is answered
// exactly like the real thing — 429, "overloaded" envelope, and a
// Retry-After hint for well-behaved clients.
func TestEnqueueFaultSheds429(t *testing.T) {
	inj, err := faults.New(7, "batcher.enqueue:p=1:n=1")
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, func(c *Config) { c.Faults = inj })
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("faulted request = %d %s, want 429", resp.StatusCode, body)
	}
	if code := errCode(t, resp.StatusCode, body); code != "overloaded" {
		t.Fatalf("faulted request code = %q, want overloaded", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault request = %d %s, want 200", resp.StatusCode, body)
	}
}

// TestStoreLoadFaultKeepsOldModel: an injected model-load I/O failure
// during reload must leave the previous version serving (skip=1 exempts
// the initial load). The follow-up reload then picks up the new bytes.
func TestStoreLoadFaultKeepsOldModel(t *testing.T) {
	inj, err := faults.New(7, "store.load:skip=1:p=1:n=1")
	if err != nil {
		t.Fatal(err)
	}
	s, ts, dir := newTestServer(t, func(c *Config) { c.Faults = inj })
	writeModel(t, dir, "cbf", model2)
	rep, err := s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.KeptOld) != 1 || len(rep.Loaded) != 0 {
		t.Fatalf("faulted reload: keptOld=%d loaded=%d, want 1/0", len(rep.KeptOld), len(rep.Loaded))
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictBody("cbf", fixProbe[0].Values))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after faulted reload = %d %s", resp.StatusCode, body)
	}
	// v1 (model1) must still be the one answering.
	checkIdentity(t, body, map[int]*rpm.Classifier{1: fixClf1}, fixProbe[0].Values)
	// The fault budget (n=1) is spent: the next reload loads model2.
	rep, err = s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 1 {
		t.Fatalf("post-fault reload: loaded=%d, want 1", len(rep.Loaded))
	}
	m, err := s.store.Get("cbf")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("post-fault version = %d, want 2", m.Version)
	}
}

// TestWriteFaultAbortsConnection: an injected response-write failure
// aborts the connection (client sees a transport error) instead of
// sending a truncated or wrong 200 — and must not surface as a 500
// through the panic guard.
func TestWriteFaultAbortsConnection(t *testing.T) {
	inj, err := faults.New(7, "server.write:p=1:n=1")
	if err != nil {
		t.Fatal(err)
	}
	s, ts, _ := newTestServer(t, func(c *Config) { c.Faults = inj })
	_, _, perr := rawPredict(ts, predictBody("cbf", fixProbe[0].Values))
	if perr == nil {
		t.Fatal("faulted write delivered a response; want an aborted connection")
	}
	status, body, perr := rawPredict(ts, predictBody("cbf", fixProbe[0].Values))
	if perr != nil || status != http.StatusOK {
		t.Fatalf("post-fault request: status %d err %v (%s)", status, perr, body)
	}
	if n := s.reg.Snapshot().Counter(CtrErrPrefix + "internal"); n != 0 {
		t.Fatalf("write abort surfaced as %d internal errors", n)
	}
}
