// Package ts provides the basic time-series data types and operations used
// throughout the repository: z-normalization, sliding-window extraction,
// rotation (circular shift), and concatenation of labeled training instances
// with junction tracking.
//
// A time series is represented as a plain []float64; a labeled instance pairs
// a series with an integer class label. Keeping the representation this thin
// lets every higher layer (SAX, distance computation, classifiers) operate on
// ordinary slices without conversions.
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Instance is a single labeled time series.
type Instance struct {
	// Label is the class label. Labels are arbitrary integers; they are not
	// required to be contiguous or start at zero.
	Label int
	// Values holds the ordered observations.
	Values []float64
}

// Len returns the number of observations in the instance.
func (in Instance) Len() int { return len(in.Values) }

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	v := make([]float64, len(in.Values))
	copy(v, in.Values)
	return Instance{Label: in.Label, Values: v}
}

// Dataset is an ordered collection of labeled instances.
type Dataset []Instance

// Clone deep-copies the dataset.
func (d Dataset) Clone() Dataset {
	out := make(Dataset, len(d))
	for i, in := range d {
		out[i] = in.Clone()
	}
	return out
}

// Labels returns the label of every instance, in order.
func (d Dataset) Labels() []int {
	out := make([]int, len(d))
	for i, in := range d {
		out[i] = in.Label
	}
	return out
}

// Classes returns the sorted set of distinct labels present in the dataset.
func (d Dataset) Classes() []int {
	seen := map[int]bool{}
	var out []int
	for _, in := range d {
		if !seen[in.Label] {
			seen[in.Label] = true
			out = append(out, in.Label)
		}
	}
	// insertion sort; class counts are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ByClass groups instances by label, preserving the original order within
// each class.
func (d Dataset) ByClass() map[int]Dataset {
	out := map[int]Dataset{}
	for _, in := range d {
		out[in.Label] = append(out[in.Label], in)
	}
	return out
}

// MinLen returns the length of the shortest series in the dataset, or 0 for
// an empty dataset.
func (d Dataset) MinLen() int {
	if len(d) == 0 {
		return 0
	}
	m := len(d[0].Values)
	for _, in := range d[1:] {
		if len(in.Values) < m {
			m = len(in.Values)
		}
	}
	return m
}

// ErrShortSeries is returned when an operation receives a series shorter
// than it requires.
var ErrShortSeries = errors.New("ts: series too short")

// Mean returns the arithmetic mean of v. It returns 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v. It returns 0 for
// slices with fewer than one element.
func Std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// ZNormThreshold is the standard-deviation threshold below which a
// subsequence is considered constant and z-normalization returns an all-zero
// vector instead of amplifying noise. The value follows the convention used
// in the SAX literature.
const ZNormThreshold = 1e-8

// ZNorm returns a z-normalized copy of v: zero mean, unit standard
// deviation. Nearly-constant input (std < ZNormThreshold) yields a zero
// vector.
func ZNorm(v []float64) []float64 {
	out := make([]float64, len(v))
	ZNormInto(out, v)
	return out
}

// ZNormInto z-normalizes v into dst, which must have the same length as v.
// It exists so hot loops (sliding-window discretization, distance
// computation) can avoid per-call allocation.
func ZNormInto(dst, v []float64) {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("ts: ZNormInto length mismatch %d != %d", len(dst), len(v)))
	}
	m := Mean(v)
	sd := Std(v)
	if sd < ZNormThreshold {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / sd
	for i, x := range v {
		dst[i] = (x - m) * inv
	}
}

// ZNormInstance z-normalizes every instance of d in place. Whole-series
// normalization is the standard UCR pre-processing step.
func ZNormInstance(d Dataset) {
	for i := range d {
		ZNormInto(d[i].Values, d[i].Values)
	}
}

// Window returns the subsequence of v of length n starting at p, as a
// subslice (no copy). It returns an error if the window does not fit.
func Window(v []float64, p, n int) ([]float64, error) {
	if n <= 0 || p < 0 || p+n > len(v) {
		return nil, fmt.Errorf("ts: window [%d,%d) outside series of length %d: %w", p, p+n, len(v), ErrShortSeries)
	}
	return v[p : p+n : p+n], nil
}

// NumWindows returns the number of sliding windows of size n over a series
// of length m (0 when the window does not fit).
func NumWindows(m, n int) int {
	if n <= 0 || n > m {
		return 0
	}
	return m - n + 1
}

// Rotate returns a copy of v circularly shifted so that the element at
// index cut becomes the first element; i.e. it swaps the sections before
// and after the cut point, the transformation used in the paper's rotation
// case study (§6.1).
func Rotate(v []float64, cut int) []float64 {
	n := len(v)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	cut = ((cut % n) + n) % n
	copy(out, v[cut:])
	copy(out[n-cut:], v[:cut])
	return out
}

// RotateHalf returns v rotated at its midpoint. The rotation-invariant
// classification transform (paper §6.1) matches a pattern against both the
// series and its half rotation and keeps the smaller distance.
func RotateHalf(v []float64) []float64 { return Rotate(v, len(v)/2) }

// RotateInto is Rotate writing into dst, which is grown when too small
// and returned resliced to len(v). It exists so hot predict paths (the
// rotation-invariant transform evaluates every query twice) can reuse a
// per-worker scratch buffer instead of allocating per call. dst and v
// must not overlap.
func RotateInto(dst, v []float64, cut int) []float64 {
	n := len(v)
	if cap(dst) < n {
		dst = make([]float64, n) //rpmlint:ignore hotpathalloc grows the caller's scratch to len(v) once; steady state reuses it
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	cut = ((cut % n) + n) % n
	copy(dst, v[cut:])
	copy(dst[n-cut:], v[:cut])
	return dst
}

// RotateHalfInto is RotateInto at the midpoint cut RotateHalf uses.
func RotateHalfInto(dst, v []float64) []float64 { return RotateInto(dst, v, len(v)/2) }

// Concatenated is the result of joining several series end to end while
// remembering where each constituent series starts, so later stages can
// avoid patterns that span junction points (paper §3.2.2, Fig. 4).
type Concatenated struct {
	// Values is the joined series.
	Values []float64
	// Starts[i] is the offset of the i-th constituent series within Values.
	Starts []int
	// Lens[i] is the length of the i-th constituent series.
	Lens []int
}

// Concat joins the given series. The inputs are copied.
func Concat(series ...[]float64) Concatenated {
	var total int
	for _, s := range series {
		total += len(s)
	}
	c := Concatenated{
		Values: make([]float64, 0, total),
		Starts: make([]int, len(series)),
		Lens:   make([]int, len(series)),
	}
	for i, s := range series {
		c.Starts[i] = len(c.Values)
		c.Lens[i] = len(s)
		c.Values = append(c.Values, s...)
	}
	return c
}

// ConcatDataset joins the values of every instance of d, in order.
func ConcatDataset(d Dataset) Concatenated {
	series := make([][]float64, len(d))
	for i, in := range d {
		series[i] = in.Values
	}
	return Concat(series...)
}

// SeriesIndex returns the index of the constituent series containing
// offset, or -1 if the offset is out of range.
func (c Concatenated) SeriesIndex(offset int) int {
	if offset < 0 || offset >= len(c.Values) {
		return -1
	}
	// binary search over Starts
	lo, hi := 0, len(c.Starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.Starts[mid] <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// SpansJunction reports whether the window [start, start+n) crosses a
// boundary between two constituent series. Windows that do are
// concatenation artifacts and must be skipped during discretization.
func (c Concatenated) SpansJunction(start, n int) bool {
	if n <= 0 {
		return false
	}
	i := c.SeriesIndex(start)
	j := c.SeriesIndex(start + n - 1)
	return i == -1 || j == -1 || i != j
}

// Local converts a global offset into (series index, local offset) within
// that series. It returns (-1, -1) when the offset is out of range.
func (c Concatenated) Local(offset int) (series, local int) {
	i := c.SeriesIndex(offset)
	if i < 0 {
		return -1, -1
	}
	return i, offset - c.Starts[i]
}
