package serve

// Streaming inference endpoints (DESIGN.md §14): a stream is a named,
// append-only signal classified incrementally against one model
// version. POST /v1/streams/{id} appends a chunk of samples (creating
// the stream on first touch), GET /v1/streams/{id}/events is the SSE
// feed of committed class-change events with Last-Event-ID resume.
// All detector state lives in internal/stream; this file is only the
// HTTP boundary, the obs accounting, and the fault seams.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"rpm"
	"rpm/internal/faults"
	"rpm/internal/stream"
)

// Unexported stream-path sentinels, mapped by errorStatus.
var (
	errUnknownStream = errors.New("unknown stream")
	errChunkTooLarge = errors.New("stream chunk too large")
)

type streamAppendRequest struct {
	// Model selects the model on the append that creates the stream;
	// optional when exactly one model is loaded. On later appends it must
	// be empty or match the stream's bound model.
	Model  string    `json:"model,omitempty"`
	Values []float64 `json:"values"`
}

// streamState is the per-stream view every stream endpoint returns.
type streamState struct {
	ID      string `json:"id"`
	Model   string `json:"model"`
	Version int    `json:"version"`
	Seen    int64  `json:"seen"`
	Warm    bool   `json:"warm"`
	// Label is the committed (hysteresis-gated) class; present once warm.
	Label *int `json:"label,omitempty"`
	// Events is the number of events committed so far (the next SSE
	// event's seq).
	Events int `json:"events"`
}

type streamAppendResponse struct {
	streamState
	// Created reports whether this append created the stream.
	Created bool `json:"created,omitempty"`
	// Appended is the number of samples this append consumed.
	Appended int `json:"appended"`
	// NewEvents are the events this append committed, in order.
	NewEvents []stream.Event `json:"newEvents,omitempty"`
}

// boundModel reads the model a stream was created against.
func boundModel(st *stream.Stream) *Model { return st.Tag.(*Model) }

func stateOf(st *stream.Stream) streamState {
	m := boundModel(st)
	res := st.State()
	out := streamState{
		ID:      st.ID,
		Model:   m.Name,
		Version: m.Version,
		Seen:    res.Seen,
		Warm:    res.Warm,
		Events:  res.Seq,
	}
	if res.Started {
		l := res.Label
		out.Label = &l
	}
	return out
}

// validateChunk rejects an empty, oversized, or non-finite chunk with
// the typed taxonomy (the fuzz target's contract: hostile chunks are
// 4xx envelopes, never panics or 500s).
func (s *Server) validateChunk(values []float64) error {
	if len(values) == 0 {
		return fmt.Errorf("%w: empty chunk", rpm.ErrBadInput)
	}
	if len(values) > s.cfg.MaxStreamChunk {
		return fmt.Errorf("%w: %d samples (max %d per append)", errChunkTooLarge, len(values), s.cfg.MaxStreamChunk)
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: chunk value %d is not finite", rpm.ErrBadInput, i)
		}
	}
	return nil
}

// handleStreamAppend serves POST /v1/streams/{id}: append a chunk to
// the stream, creating it against the resolved model on first touch.
func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.latStream.Observe(d)
		s.spanStream.Add(d)
	}()
	s.reqStream.Inc()
	id := r.PathValue("id")
	var req streamAppendRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeErrorFor(w, err)
		return
	}
	if err := s.validateChunk(req.Values); err != nil {
		s.writeErrorFor(w, err)
		return
	}
	// Injected stream saturation (faults.SiteStreamAppend): shed with
	// 429 before touching the registry, so a shed append provably
	// consumes no samples and commits no events.
	if s.faults.Fire(faults.SiteStreamAppend) {
		s.injected.Inc()
		s.shed.Inc()
		s.writeError(w, http.StatusTooManyRequests, "overloaded", "stream layer saturated (injected)")
		return
	}
	st, created, err := s.streams.GetOrCreate(id, func() (*stream.Detector, any, error) {
		m, err := s.store.Get(req.Model)
		if err != nil {
			return nil, nil, err
		}
		sm, err := m.StreamModel()
		if err != nil {
			return nil, nil, err
		}
		det := sm.NewDetector(stream.Config{
			ConfirmWindows: s.cfg.StreamConfirm,
			Refractory:     s.cfg.StreamRefractory,
			MaxEvents:      s.cfg.StreamEvents,
		})
		return det, m, nil
	})
	if err != nil {
		s.writeErrorFor(w, err)
		return
	}
	m := boundModel(st)
	if created {
		s.streamsMade.Inc()
		s.gaugeStreams.Set(int64(s.streams.Len()))
		s.gaugeStrBytes.Set(s.streams.Bytes())
	} else if req.Model != "" && req.Model != m.Name {
		s.writeError(w, http.StatusBadRequest, "bad_input",
			fmt.Sprintf("stream %q is bound to model %q, not %q", id, m.Name, req.Model))
		return
	}
	res, err := st.Append(req.Values)
	if err != nil {
		s.writeErrorFor(w, err)
		return
	}
	s.streamSamples.Add(int64(len(req.Values)))
	s.streamEvents.Add(int64(len(res.Events)))
	out := streamAppendResponse{
		streamState: streamState{
			ID:      st.ID,
			Model:   m.Name,
			Version: m.Version,
			Seen:    res.Seen,
			Warm:    res.Warm,
			Events:  res.Seq,
		},
		Created:   created,
		Appended:  len(req.Values),
		NewEvents: res.Events,
	}
	if res.Started {
		l := res.Label
		out.Label = &l
	}
	s.writeResult(w, out)
}

// getStream resolves a live stream or writes the 404 envelope.
func (s *Server) getStream(w http.ResponseWriter, id string) (*stream.Stream, bool) {
	st, ok := s.streams.Get(id)
	if !ok {
		s.writeErrorFor(w, fmt.Errorf("%w: %q", errUnknownStream, id))
		return nil, false
	}
	return st, true
}

// handleStreamGet serves GET /v1/streams/{id}: the stream's state.
func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.getStream(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, stateOf(st))
}

// handleStreamDelete serves DELETE /v1/streams/{id}: close and drop the
// stream, ending its event feeds.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.streams.Remove(id) {
		s.writeErrorFor(w, fmt.Errorf("%w: %q", errUnknownStream, id))
		return
	}
	s.streamsClosed.Inc()
	s.gaugeStreams.Set(int64(s.streams.Len()))
	s.gaugeStrBytes.Set(s.streams.Bytes())
	writeJSON(w, map[string]any{"id": id, "deleted": true})
}

// handleStreamList serves GET /v1/streams.
func (s *Server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	ids := s.streams.IDs()
	out := make([]streamState, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.streams.Get(id); ok {
			out = append(out, stateOf(st))
		}
	}
	writeJSON(w, map[string]any{"streams": out, "bytes": s.streams.Bytes()})
}

// handleStreamEvents serves GET /v1/streams/{id}/events: a Server-Sent
// Events feed of the stream's committed events. Each event is
//
//	id: <seq>
//	event: <start|change>
//	data: {"seq":..,"sample":..,"label":..,"prev":..,"kind":".."}
//
// The feed first replays retained history — all of it by default, or
// events after the cursor in Last-Event-ID (standard SSE resume) or
// ?since=<seq> — then follows the stream until it is deleted, the
// server drains, or the client disconnects. Within the retained-ring
// horizon (Config.StreamEvents) a reconnecting client loses nothing
// and duplicates nothing: event seqs are per-stream, dense, and
// deterministic, which is exactly what the chaos suite diffs.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.getStream(w, r.PathValue("id"))
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	cursor := -1 // default: replay the full retained window
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			cursor = n
		}
	}
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_input", "since must be an integer event seq")
			return
		}
		cursor = n
	}
	sub, err := st.Subscribe()
	if err != nil {
		s.writeErrorFor(w, err) // closed concurrently: 503 draining
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush() // commit headers so clients see the feed is live
	for {
		for _, e := range st.EventsSince(cursor) {
			// Injected subscriber death (faults.SiteSSEWrite): the
			// connection aborts mid-feed; the stream is untouched and a
			// reconnect with Last-Event-ID resumes at the cursor.
			if s.faults.Fire(faults.SiteSSEWrite) {
				s.injected.Inc()
				panic(http.ErrAbortHandler)
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: {\"seq\":%d,\"sample\":%d,\"label\":%d,\"prev\":%d,\"kind\":%q}\n\n",
				e.Seq, e.Kind, e.Seq, e.Sample, e.Label, e.Prev, e.Kind)
			cursor = e.Seq
		}
		// Injected slow subscriber (faults.SiteSSEFlush): stall before the
		// flush; pending notifications coalesce and the next EventsSince
		// catches the feed up without loss or duplication.
		if d := s.faults.Sleep(faults.SiteSSEFlush); d > 0 {
			s.injected.Inc()
		}
		flusher.Flush()
		select {
		case _, open := <-sub.Wait():
			if !open {
				return // stream deleted or server draining
			}
		case <-r.Context().Done():
			return
		}
	}
}
