package faults

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilInjectorIsNoOp pins the chaos-off contract: every method of a
// nil *Injector is a safe no-op, so production code can thread the
// injector unconditionally.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Fire(SiteStoreLoad) {
		t.Error("nil injector fired")
	}
	if err := in.Err(SiteStoreLoad); err != nil {
		t.Errorf("nil injector injected error %v", err)
	}
	if d := in.Sleep(SiteFlushDelay); d != 0 {
		t.Errorf("nil injector slept %v", d)
	}
	if ev := in.Events(); ev != nil {
		t.Errorf("nil injector has events %v", ev)
	}
	if a := in.Armed(); a != nil {
		t.Errorf("nil injector is armed: %v", a)
	}
	if s := in.String(); s != "chaos off" {
		t.Errorf("nil injector String = %q", s)
	}
}

// TestEmptySpecMeansOff: an empty or blank spec returns a nil injector,
// not an armed-with-nothing one.
func TestEmptySpecMeansOff(t *testing.T) {
	for _, spec := range []string{"", "  ", "\t"} {
		in, err := New(1, spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		if in != nil {
			t.Fatalf("New(%q) = %v, want nil", spec, in)
		}
	}
}

// TestSpecParsing covers the option grammar and its error cases.
func TestSpecParsing(t *testing.T) {
	in, err := New(7, "store.load:p=0.5:n=3:skip=2; batcher.flush:d=30ms , server.deadline")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{SiteFlushDelay, SiteStoreLoad, SiteDeadline}
	if got := in.Armed(); !reflect.DeepEqual(got, sortedCopy(want)) {
		t.Fatalf("Armed = %v, want %v", got, sortedCopy(want))
	}
	if s := in.String(); !strings.Contains(s, "store.load p=0.5 n=3 skip=2") || !strings.Contains(s, "d=30ms") {
		t.Fatalf("String = %q", s)
	}

	for _, bad := range []string{
		"nope.site",              // unknown site
		"store.load:p",           // malformed option
		"store.load:p=2",         // p out of range
		"store.load:p=0",         // p out of range
		"store.load:n=-1",        // negative n
		"store.load:skip=-2",     // negative skip
		"batcher.flush:d=-5ms",   // negative delay
		"store.load:zap=1",       // unknown key
		"store.load;store.load",  // duplicate site
		"store.load:p=abc",       // unparsable float
		"batcher.flush:d=potato", // unparsable duration
	} {
		if _, err := New(1, bad); err == nil {
			t.Errorf("New(%q) accepted a bad spec", bad)
		}
	}
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// TestDeterministicSequence is the core contract: the same seed and the
// same per-site hit order produce an identical event log, bit for bit;
// a different seed produces a different decision sequence.
func TestDeterministicSequence(t *testing.T) {
	run := func(seed int64) []Event {
		in, err := New(seed, "store.load:p=0.4; server.deadline:p=0.6:n=5")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			in.Err(SiteStoreLoad)
			in.Fire(SiteDeadline)
		}
		return in.Events()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different logs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("p=0.4/0.6 over 40 hits fired nothing; injector is inert")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical logs")
	}
	// n=5 caps the deadline site.
	deadline := 0
	for _, ev := range a {
		if ev.Site == SiteDeadline {
			deadline++
		}
	}
	if deadline != 5 {
		t.Fatalf("deadline site fired %d times, n=5", deadline)
	}
}

// TestPerSiteStreamsAreIndependent: interleaving hits of another site
// does not shift a site's own decision sequence.
func TestPerSiteStreamsAreIndependent(t *testing.T) {
	seq := func(interleave bool) []int {
		in, err := New(9, "store.load:p=0.5; server.deadline:p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 30; i++ {
			if interleave {
				in.Fire(SiteDeadline)
			}
			if in.Fire(SiteStoreLoad) {
				fired = append(fired, i)
			}
		}
		return fired
	}
	if a, b := seq(false), seq(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("store.load decisions shifted when another site interleaved:\n%v\n%v", a, b)
	}
}

// TestSkipAndAlwaysFire: skip passes early hits through, p omitted
// means every decided hit fires, and Err returns a typed *Fault.
func TestSkipAndAlwaysFire(t *testing.T) {
	in, err := New(1, "store.load:skip=3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := in.Err(SiteStoreLoad); err != nil {
			t.Fatalf("hit %d inside skip window fired: %v", i, err)
		}
	}
	err = in.Err(SiteStoreLoad)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("post-skip hit = %v, want *Fault", err)
	}
	if f.Site != SiteStoreLoad || f.Hit != 3 {
		t.Fatalf("fault = %+v", f)
	}
	if !strings.Contains(f.Error(), "store.load") {
		t.Fatalf("fault message %q does not name the site", f.Error())
	}
}

// TestUnarmedSiteNeverFires: consulting a site the spec did not arm is
// free and silent.
func TestUnarmedSiteNeverFires(t *testing.T) {
	in, err := New(1, "store.load")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if in.Fire(SiteWriteFail) {
			t.Fatal("unarmed site fired")
		}
	}
	if n := len(in.Events()); n != 0 {
		t.Fatalf("unarmed consults logged %d events", n)
	}
}

// TestSleepInjectsDelay: an armed delay site actually blocks for d and
// reports it; Events record kind "delay".
func TestSleepInjectsDelay(t *testing.T) {
	in, err := New(1, "batcher.flush:d=20ms:n=1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if d := in.Sleep(SiteFlushDelay); d != 20*time.Millisecond {
		t.Fatalf("Sleep returned %v", d)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want ≥ ~20ms", elapsed)
	}
	if d := in.Sleep(SiteFlushDelay); d != 0 {
		t.Fatalf("n=1 site slept twice (%v)", d)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Kind != "delay" || ev[0].Site != SiteFlushDelay {
		t.Fatalf("events = %v", ev)
	}
}

// TestConcurrentConsults: the injector is safe under concurrent hits
// (exercised with -race by the repo-wide race gate) and the log stays
// consistent: sequential Seq, per-site Hit indices each seen once.
func TestConcurrentConsults(t *testing.T) {
	in, err := New(3, "store.load:p=0.5; server.write:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Err(SiteStoreLoad)
				in.Fire(SiteWriteFail)
			}
		}()
	}
	wg.Wait()
	ev := in.Events()
	seenHit := map[string]map[int]bool{}
	for i, e := range ev {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
		if seenHit[e.Site] == nil {
			seenHit[e.Site] = map[int]bool{}
		}
		if seenHit[e.Site][e.Hit] {
			t.Fatalf("site %s hit %d fired twice", e.Site, e.Hit)
		}
		seenHit[e.Site][e.Hit] = true
	}
	if len(ev) == 0 {
		t.Fatal("nothing fired over 800 hits at p=0.5")
	}
}

// TestKnownSitesSorted pins that KnownSites is sorted (it renders into
// error messages and docs).
func TestKnownSitesSorted(t *testing.T) {
	ks := KnownSites()
	if !reflect.DeepEqual(ks, sortedCopy(ks)) {
		t.Fatalf("KnownSites not sorted: %v", ks)
	}
	if len(ks) != 8 {
		t.Fatalf("expected the 8 documented sites, got %v", ks)
	}
}
