package rpm

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// ensembleOpts is the shared small-budget bagged configuration of the
// public ensemble tests.
func ensembleOpts() Options {
	o := DefaultOptions()
	o.Splits = 2
	o.MaxEvals = 8
	o.Sample = SampleOptions{Rate: 0.3, Seed: 7}
	o.Bags = 3
	return o
}

// TestEnsembleEndToEnd trains a 3-bag sampled ensemble through the
// public API and checks the vote classifies the synthetic test split
// about as well as a single exhaustive model would.
func TestEnsembleEndToEnd(t *testing.T) {
	split := GenerateDataset("SynItalyPower", 3)
	e, err := TrainEnsemble(split.Train, ensembleOpts())
	if err != nil {
		t.Fatal(err)
	}
	if e.Bags() != 3 {
		t.Fatalf("Bags() = %d, want 3", e.Bags())
	}
	if e.NumPatterns() <= 0 {
		t.Fatal("ensemble mined no patterns")
	}
	preds := e.PredictBatch(split.Test)
	if len(preds) != len(split.Test) {
		t.Fatalf("got %d predictions for %d instances", len(preds), len(split.Test))
	}
	wrong := 0
	for i, p := range preds {
		if p != split.Test[i].Label {
			wrong++
		}
		if p != e.Predict(split.Test[i].Values) {
			t.Fatalf("PredictBatch[%d] disagrees with Predict", i)
		}
	}
	if errRate := float64(wrong) / float64(len(preds)); errRate > 0.2 {
		t.Errorf("bagged ensemble error = %v on SynItalyPower", errRate)
	}
	got, err := e.PredictBatchContext(context.Background(), split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, preds) {
		t.Fatal("PredictBatchContext disagrees with PredictBatch")
	}
	e.SetWorkers(2)
	if !reflect.DeepEqual(e.PredictBatch(split.Test), preds) {
		t.Fatal("predictions changed after SetWorkers")
	}
}

// TestEnsembleValidation pins the ensemble-specific option rules at the
// public boundary: Sample.Rate outside [0,1], negative Bags, and
// Bags > 1 without an active sampling rate are all ErrBadInput.
func TestEnsembleValidation(t *testing.T) {
	split := GenerateDataset("SynItalyPower", 3)
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"rate below zero", func(o *Options) { o.Sample.Rate = -0.1 }},
		{"rate above one", func(o *Options) { o.Sample.Rate = 1.5 }},
		{"negative bags", func(o *Options) { o.Bags = -1 }},
		{"bags without sampling", func(o *Options) { o.Bags = 3; o.Sample.Rate = 0 }},
		{"bags with exhaustive rate", func(o *Options) { o.Bags = 3; o.Sample.Rate = 1 }},
	}
	for _, tc := range cases {
		o := ensembleOpts()
		tc.mutate(&o)
		if _, err := TrainEnsemble(split.Train, o); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err = %v, want ErrBadInput", tc.name, err)
		}
		// Train applies the same validation: the knobs are rejected even
		// when the caller never goes through the ensemble entry point.
		if _, err := Train(split.Train, o); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s via Train: err = %v, want ErrBadInput", tc.name, err)
		}
	}
	// Bags with sampling but through the single-model path is fine: Train
	// ignores Bags rather than erroring, per the Options doc.
	o := ensembleOpts()
	if _, err := Train(split.Train, o); err != nil {
		t.Errorf("Train with valid ensemble options: %v", err)
	}
}

// TestEnsembleContextAndReport covers cancellation and instrumentation
// through the public surface.
func TestEnsembleContextAndReport(t *testing.T) {
	split := GenerateDataset("SynItalyPower", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainEnsembleContext(ctx, split.Train, ensembleOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled training err = %v, want context.Canceled", err)
	}

	o := ensembleOpts()
	o.Instrument = true
	e, err := TrainEnsemble(split.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	r := e.TrainReport()
	if r == nil {
		t.Fatal("nil TrainReport with Instrument set")
	}
	if r.Counters["train.bags.members"] != 3 {
		t.Fatalf("train.bags.members = %d, want 3", r.Counters["train.bags.members"])
	}

	// Boundary validation on batch prediction: a non-finite query fails
	// typed instead of poisoning the batch.
	bad := split.Test[:1]
	bad[0].Values = []float64{1, 2, math.NaN()}
	if _, err := e.PredictBatchContext(context.Background(), bad); !errors.Is(err, ErrBadInput) {
		t.Fatalf("non-finite query err = %v, want ErrBadInput", err)
	}
}
