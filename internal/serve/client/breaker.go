package serveclient

import (
	"sync"
	"time"

	"rpm/internal/obs"
)

// Breaker states as recorded in the per-model state gauge.
const (
	stateClosed   = 0
	stateOpen     = 1
	stateHalfOpen = 2
)

// breaker is one model's circuit breaker: closed (normal service,
// counting consecutive failures), open (rejecting instantly until the
// cool-off elapses), half-open (admitting one probe at a time; probe
// successes close it, one probe failure re-opens it).
//
// The state machine advances only on allow/record calls — no background
// goroutine, no timers; "open long enough" is evaluated lazily against
// the clock the caller passes in (which is how tests drive it without
// sleeping).
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	until     time.Time // while open: when a probe may be admitted
	probing   bool      // while half-open: a probe is in flight

	opened *obs.Counter
	closed *obs.Counter
	gauge  *obs.Gauge
}

func newBreaker(cfg BreakerConfig, opened, closed *obs.Counter, gauge *obs.Gauge) *breaker {
	return &breaker{cfg: cfg, opened: opened, closed: closed, gauge: gauge}
}

// allow reports whether a call may proceed now. An open breaker whose
// cool-off elapsed transitions to half-open and admits exactly one
// probe; further calls are rejected until that probe is recorded.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(b.until) {
			return false
		}
		b.state = stateHalfOpen
		b.successes = 0
		b.probing = true
		b.gauge.Set(stateHalfOpen)
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports the outcome of an admitted call.
func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	case stateHalfOpen:
		b.probing = false
		if !ok {
			b.trip(now)
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = stateClosed
			b.failures = 0
			b.closed.Inc()
			b.gauge.Set(stateClosed)
		}
	case stateOpen:
		// A call admitted before the trip finishing after it: its outcome
		// carries no information about the post-trip server, ignore it.
	}
}

// trip opens the breaker until now+OpenFor. Caller holds b.mu.
func (b *breaker) trip(now time.Time) {
	b.state = stateOpen
	b.until = now.Add(b.cfg.OpenFor)
	b.failures = 0
	b.probing = false
	b.opened.Inc()
	b.gauge.Set(stateOpen)
}

func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
