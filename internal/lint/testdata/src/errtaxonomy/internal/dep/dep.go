// Package dep plays the role of an internal package whose raw errors
// must not escape the public API unclassified.
package dep

import "errors"

// Do fails with an untyped error.
func Do() error { return errors.New("dep failed") }

// Get fails with an untyped error alongside a value.
func Get() (int, error) { return 0, errors.New("dep failed") }
