// Package faults is a deterministic, seeded fault injector for the
// serving stack: named injection sites threaded through internal/serve
// decide — from per-site seeded random streams, never from wall-clock
// state — whether to fail, delay, or fire at each hit. A nil *Injector
// is the canonical "chaos off" value (mirroring internal/obs): every
// method is a nil-guarded no-op, so production code pays one nil check
// per site and the bench gate cannot see the difference.
//
// Determinism contract: each armed site owns an independent rand stream
// seeded from (seed, site name), so the k-th hit of a site decides the
// same way in every run with that seed, regardless of how other sites
// interleave. When the workload drives sites with a deterministic
// per-site hit order (the chaos suite issues requests sequentially),
// the full injected-fault sequence — the Events log — is reproducible
// bit for bit. Decisions never read clocks or global rand, keeping the
// injector compatible with rpmlint's nondeterm discipline.
//
// Sites are armed by a spec string (see New):
//
//	store.load:p=0.5;batcher.flush:d=30ms:n=3
//
// arms a 50%-probability load error and three 30ms flush delays.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The injection sites internal/serve consults. Arming any other name is
// a spec error, so typos fail fast instead of silently injecting
// nothing.
const (
	// SiteStoreLoad fails a model snapshot read during Store.Reload,
	// exercising the corrupt-reload path (old version keeps serving).
	SiteStoreLoad = "store.load"
	// SiteFlushDelay stalls the batcher's flush for the configured d
	// before any prediction runs: a latency spike (small d) or a wedged
	// flush (large d).
	SiteFlushDelay = "batcher.flush"
	// SiteEnqueueFull makes the batcher report a saturated queue, so the
	// server sheds the request with 429 + Retry-After.
	SiteEnqueueFull = "batcher.enqueue"
	// SiteDeadline expires a request's deadline before it is enqueued,
	// exercising the queue-age admission check (504, never computed).
	SiteDeadline = "server.deadline"
	// SiteWriteFail aborts the response write of a successful
	// prediction, simulating a client connection dying at write time.
	SiteWriteFail = "server.write"
	// SiteStreamAppend sheds a stream append with 429 as if the stream
	// layer were saturated, exercising client retry against a live
	// detector (a shed append must change nothing: no samples consumed,
	// no events committed).
	SiteStreamAppend = "stream.append"
	// SiteSSEFlush stalls an SSE event flush for the configured d, a slow
	// or congested subscriber connection (events must coalesce, never
	// duplicate or drop).
	SiteSSEFlush = "stream.sse.flush"
	// SiteSSEWrite aborts an SSE connection mid-feed, a subscriber dying
	// at write time; the stream itself must be unaffected and a
	// reconnecting subscriber resumes losslessly via Last-Event-ID.
	SiteSSEWrite = "stream.sse.write"
)

// KnownSites lists every site name New accepts, sorted.
func KnownSites() []string {
	return []string{
		SiteEnqueueFull,
		SiteFlushDelay,
		SiteDeadline,
		SiteWriteFail,
		SiteStoreLoad,
		SiteStreamAppend,
		SiteSSEFlush,
		SiteSSEWrite,
	}
}

// Event is one injected fault, in global injection order. Seq is
// 0-based; Hit is the 0-based per-site hit index at which the site
// fired (so per-site sequences can be compared across runs even when
// global interleaving differs).
type Event struct {
	Seq  int    `json:"seq"`
	Site string `json:"site"`
	Kind string `json:"kind"` // "error", "delay" or "fire"
	Hit  int    `json:"hit"`
}

// site is the armed configuration and mutable state of one injection
// point.
type site struct {
	name  string
	p     float64       // fire probability per hit, (0,1]
	n     int           // max fires; 0 = unlimited
	skip  int           // hits to pass through before the first decision
	delay time.Duration // Sleep duration when fired

	rng   *rand.Rand
	hits  int
	fired int
}

// Injector decides fault injection at named sites. Construct with New;
// nil means "no chaos" and every method no-ops.
type Injector struct {
	mu    sync.Mutex
	sites map[string]*site
	log   []Event
}

// Fault is the error an armed error-site injects. It unwraps to
// nothing: the serving layer treats it exactly like the I/O failure it
// stands in for.
type Fault struct {
	Site string
	Hit  int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected failure at %s (hit %d)", f.Site, f.Hit)
}

// New parses a spec and returns an armed injector. The spec is a ';'-
// or ','-separated list of sites, each "name[:key=value]...":
//
//	p=0.5    fire with probability 0.5 per hit (default 1: every hit)
//	n=3      stop after 3 fires (default 0: unlimited)
//	skip=2   pass the first 2 hits through undecided
//	d=30ms   delay injected by Sleep sites (default 0)
//
// An empty spec returns (nil, nil): chaos off. Unknown site names and
// malformed options are errors.
func New(seed int64, spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, s := range KnownSites() {
		known[s] = true
	}
	in := &Injector{sites: map[string]*site{}}
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		name := strings.TrimSpace(fields[0])
		if !known[name] {
			return nil, fmt.Errorf("faults: unknown site %q (known: %s)", name, strings.Join(KnownSites(), ", "))
		}
		if _, dup := in.sites[name]; dup {
			return nil, fmt.Errorf("faults: site %q armed twice", name)
		}
		st := &site{name: name, p: 1}
		for _, opt := range fields[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faults: site %q: malformed option %q (want key=value)", name, opt)
			}
			var err error
			switch k {
			case "p":
				st.p, err = strconv.ParseFloat(v, 64)
				if err == nil && (st.p <= 0 || st.p > 1) {
					err = fmt.Errorf("out of range (0,1]")
				}
			case "n":
				st.n, err = strconv.Atoi(v)
				if err == nil && st.n < 0 {
					err = fmt.Errorf("negative")
				}
			case "skip":
				st.skip, err = strconv.Atoi(v)
				if err == nil && st.skip < 0 {
					err = fmt.Errorf("negative")
				}
			case "d":
				st.delay, err = time.ParseDuration(v)
				if err == nil && st.delay < 0 {
					err = fmt.Errorf("negative")
				}
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return nil, fmt.Errorf("faults: site %q: option %s=%s: %v", name, k, v, err)
			}
		}
		// Independent per-site stream: the same seed gives the same
		// decision sequence at this site no matter what other sites do.
		h := fnv.New64a()
		h.Write([]byte(st.name))
		st.rng = rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
		in.sites[name] = st
	}
	return in, nil
}

// decide runs one hit of a site under the injector lock and returns
// (fired, per-site hit index, armed delay).
func (in *Injector) decide(name, kind string) (bool, int, time.Duration) {
	if in == nil {
		return false, 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[name]
	if !ok {
		return false, 0, 0
	}
	hit := st.hits
	st.hits++
	if hit < st.skip {
		return false, hit, 0
	}
	if st.n > 0 && st.fired >= st.n {
		return false, hit, 0
	}
	// Consume one variate even at p=1 so lowering p in a spec never
	// shifts the stream alignment of later hits.
	if st.rng.Float64() >= st.p {
		return false, hit, 0
	}
	st.fired++
	in.log = append(in.log, Event{Seq: len(in.log), Site: name, Kind: kind, Hit: hit})
	return true, hit, st.delay
}

// Fire reports whether the site injects at this hit. No-op (false) on a
// nil injector or an unarmed site.
func (in *Injector) Fire(name string) bool {
	fired, _, _ := in.decide(name, "fire")
	return fired
}

// Err returns the injected *Fault when the site fires, else nil.
func (in *Injector) Err(name string) error {
	fired, hit, _ := in.decide(name, "error")
	if !fired {
		return nil
	}
	return &Fault{Site: name, Hit: hit}
}

// Sleep blocks for the site's configured delay when it fires and
// returns the injected duration (0 when it did not fire). The decision
// is taken under the injector lock; the sleep itself is not, so
// concurrent flushes stall independently.
func (in *Injector) Sleep(name string) time.Duration {
	fired, _, d := in.decide(name, "delay")
	if !fired || d <= 0 {
		return 0
	}
	time.Sleep(d)
	return d
}

// Events returns a copy of the injected-fault log in injection order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// Armed returns the armed site names, sorted.
func (in *Injector) Armed() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.sites))
	for n := range in.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the armed sites and their fire counts, sorted by site
// name ("chaos off" for a nil injector).
func (in *Injector) String() string {
	if in == nil {
		return "chaos off"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for n := range in.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		st := in.sites[n]
		fmt.Fprintf(&b, "%s p=%g", n, st.p)
		if st.n > 0 {
			fmt.Fprintf(&b, " n=%d", st.n)
		}
		if st.skip > 0 {
			fmt.Fprintf(&b, " skip=%d", st.skip)
		}
		if st.delay > 0 {
			fmt.Fprintf(&b, " d=%s", st.delay)
		}
		fmt.Fprintf(&b, " (fired %d/%d hits)", st.fired, st.hits)
	}
	return b.String()
}
