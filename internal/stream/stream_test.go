package stream

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rpm/internal/dist"
)

// scriptPred replays a scripted label per classification call,
// repeating the last one — full control over the raw-label sequence the
// hysteresis gate sees, independent of any real model arithmetic.
type scriptPred struct {
	labels []int
	i      int
}

func (p *scriptPred) PredictVector([]float64) int {
	l := p.labels[min(p.i, len(p.labels)-1)]
	p.i++
	return l
}

// argminPred labels by the index of the smallest feature (strict <, so
// ties keep the earlier pattern) — a deterministic stand-in for the SVM.
type argminPred struct{}

func (argminPred) PredictVector(feat []float64) int {
	best, arg := math.Inf(1), 0
	for k, f := range feat {
		if f < best {
			best, arg = f, k
		}
	}
	return arg
}

func mustModel(t *testing.T, patterns [][]float64, pred Predictor) *Model {
	t.Helper()
	m, err := NewModel(patterns, pred)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ramp returns a strictly increasing pattern of length n (never
// constant, so windows z-normalize cleanly).
func ramp(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestNewModelRejectsBadInputs(t *testing.T) {
	if _, err := NewModel(nil, argminPred{}); err == nil {
		t.Fatal("no patterns accepted")
	}
	if _, err := NewModel([][]float64{{1, 2}, {}}, argminPred{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := NewModel([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("nil predictor accepted")
	}
	m := mustModel(t, [][]float64{ramp(4), ramp(7), ramp(4)}, argminPred{})
	if m.NumPatterns() != 3 || m.MaxPatternLen() != 7 {
		t.Fatalf("NumPatterns=%d MaxPatternLen=%d", m.NumPatterns(), m.MaxPatternLen())
	}
}

// TestHysteresisGate scripts the raw-label sequence and pins exactly
// which samples commit events: the start event at warm-up, flutter
// shorter than ConfirmWindows suppressed, a K-run committing on its
// K-th sample.
func TestHysteresisGate(t *testing.T) {
	pred := &scriptPred{labels: []int{
		0, 0, // samples 3,4: start at 0, stay
		1,       // 5: flutter, run 1
		0,       // 6: back, run resets
		1, 1, 1, // 7,8,9: K=3 run commits at sample 9
		1, 1, // stays
	}}
	m := mustModel(t, [][]float64{ramp(4)}, pred)
	d := m.NewDetector(Config{ConfirmWindows: 3, MaxEvents: 16})
	if d.cfg.Warmup != 4 {
		t.Fatalf("warmup defaulted to %d, want 4", d.cfg.Warmup)
	}
	series := make([]float64, 12)
	for i := range series {
		series[i] = rand.New(rand.NewSource(int64(i))).NormFloat64() + float64(i)
	}
	evs := d.Append(series)
	want := []Event{
		{Seq: 0, Sample: 3, Label: 0, Prev: 0, Kind: KindStart},
		{Seq: 1, Sample: 9, Label: 1, Prev: 0, Kind: KindChange},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events %+v, want %+v", evs, want)
	}
	if l, ok := d.Label(); !ok || l != 1 {
		t.Fatalf("Label() = %d,%v want 1,true", l, ok)
	}
}

// TestRefractory pins the dead time: after a commit, Refractory samples
// pass without accumulating toward a change, so the next change needs a
// fresh full K-run after the dead time.
func TestRefractory(t *testing.T) {
	pred := &scriptPred{labels: []int{
		0,    // sample 2: start
		1, 1, // 3,4: K=2 run commits at 4, refractory 3 begins
		0, 0, 0, // 5,6,7: inside dead time — ignored
		0,    // 8: run 1
		0,    // 9: run 2 → commits at 9
		0, 0, // stays
	}}
	m := mustModel(t, [][]float64{ramp(3)}, pred)
	d := m.NewDetector(Config{ConfirmWindows: 2, Refractory: 3, MaxEvents: 16})
	evs := d.Append(ramp(12))
	want := []Event{
		{Seq: 0, Sample: 2, Label: 0, Prev: 0, Kind: KindStart},
		{Seq: 1, Sample: 4, Label: 1, Prev: 0, Kind: KindChange},
		{Seq: 2, Sample: 9, Label: 0, Prev: 1, Kind: KindChange},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events %+v, want %+v", evs, want)
	}
}

// TestWarmup pins that nothing is classified before the warm-up
// boundary and that Warmup is clamped up to the longest pattern.
func TestWarmup(t *testing.T) {
	m := mustModel(t, [][]float64{ramp(5)}, &scriptPred{labels: []int{7}})
	d := m.NewDetector(Config{Warmup: 2}) // clamped to 5
	if evs := d.Append(ramp(4)); len(evs) != 0 {
		t.Fatalf("events before warm-up: %+v", evs)
	}
	if _, ok := d.Label(); ok {
		t.Fatal("Label ok before warm-up")
	}
	if _, ok := d.Raw(); ok {
		t.Fatal("Raw ok before warm-up")
	}
	if d.Warm() {
		t.Fatal("Warm before warm-up")
	}
	evs := d.Append(ramp(1))
	if len(evs) != 1 || evs[0].Kind != KindStart || evs[0].Sample != 4 {
		t.Fatalf("start event %+v", evs)
	}
	if l, ok := d.Label(); !ok || l != 7 {
		t.Fatalf("Label = %d,%v", l, ok)
	}
	if !d.Warm() || d.Seen() != 5 {
		t.Fatalf("Warm=%v Seen=%d", d.Warm(), d.Seen())
	}
}

// TestEventsSinceRing pins the bounded-history semantics: the ring
// retains the last MaxEvents events, EventsSince(-1) replays them all,
// a cursor replays only the tail, and older events are discarded.
func TestEventsSinceRing(t *testing.T) {
	// Alternate labels with K=1 → one change event per sample.
	pred := &scriptPred{}
	for i := 0; i < 32; i++ {
		pred.labels = append(pred.labels, i%2)
	}
	m := mustModel(t, [][]float64{ramp(2)}, pred)
	d := m.NewDetector(Config{ConfirmWindows: 1, MaxEvents: 4})
	d.Append(ramp(20)) // 19 classified samples → 19 events
	if d.EventSeq() != 19 {
		t.Fatalf("EventSeq = %d, want 19", d.EventSeq())
	}
	all := d.EventsSince(-1)
	if len(all) != 4 {
		t.Fatalf("retained %d events, want 4", len(all))
	}
	for i, e := range all {
		if e.Seq != 15+i {
			t.Fatalf("retained window starts at seq %d, want 15..18: %+v", e.Seq, all)
		}
	}
	tail := d.EventsSince(17)
	if len(tail) != 1 || tail[0].Seq != 18 {
		t.Fatalf("EventsSince(17) = %+v", tail)
	}
	if got := d.EventsSince(18); len(got) != 0 {
		t.Fatalf("EventsSince(head) = %+v", got)
	}
}

// TestChunkingInvariance pins that how a series is chunked is
// unobservable: per-sample, whole-series, and random-chunk feeding all
// yield bit-identical features, matches, labels, and event logs.
func TestChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	patterns := [][]float64{ramp(3), ramp(8), ramp(5), ramp(8)}
	series := make([]float64, 300)
	x := 0.0
	for i := range series {
		x += rng.NormFloat64()
		series[i] = x
	}
	cfg := Config{ConfirmWindows: 2, Refractory: 4, MaxEvents: 64}
	feed := func(chunks [][]float64) (*Detector, []Event) {
		m := mustModel(t, patterns, argminPred{})
		d := m.NewDetector(cfg)
		var evs []Event
		for _, c := range chunks {
			evs = append(evs, d.Append(c)...)
		}
		return d, evs
	}
	// Reference: one sample at a time.
	var perSample [][]float64
	for _, v := range series {
		perSample = append(perSample, []float64{v})
	}
	ref, refEvs := feed(perSample)

	for trial := 0; trial < 5; trial++ {
		var chunks [][]float64
		if trial == 0 {
			chunks = [][]float64{series}
		} else {
			for i := 0; i < len(series); {
				n := 1 + rng.Intn(40)
				if i+n > len(series) {
					n = len(series) - i
				}
				chunks = append(chunks, series[i:i+n])
				i += n
			}
		}
		d, evs := feed(chunks)
		if !reflect.DeepEqual(evs, refEvs) {
			t.Fatalf("trial %d: events diverged:\n%+v\nvs\n%+v", trial, evs, refEvs)
		}
		refFeat, feat := make([]float64, 4), make([]float64, 4)
		ref.Features(refFeat)
		d.Features(feat)
		for k := range feat {
			if math.Float64bits(feat[k]) != math.Float64bits(refFeat[k]) {
				t.Fatalf("trial %d: feature %d differs: %v vs %v", trial, k, feat[k], refFeat[k])
			}
		}
		refM, gotM := make([]dist.Match, 4), make([]dist.Match, 4)
		ref.Matches(refM)
		d.Matches(gotM)
		if !reflect.DeepEqual(refM, gotM) {
			t.Fatalf("trial %d: matches diverged: %+v vs %+v", trial, gotM, refM)
		}
		if rl, _ := ref.Raw(); func() int { l, _ := d.Raw(); return l }() != rl {
			t.Fatalf("trial %d: raw label diverged", trial)
		}
	}
}

// TestDetectorBytes pins that the footprint is fixed at construction:
// Bytes is positive and does not grow no matter how much is appended.
func TestDetectorBytes(t *testing.T) {
	m := mustModel(t, [][]float64{ramp(16), ramp(4)}, argminPred{})
	d := m.NewDetector(Config{MaxEvents: 8})
	before := d.Bytes()
	if before <= 0 {
		t.Fatalf("Bytes = %d", before)
	}
	for i := 0; i < 50; i++ {
		d.Append(ramp(97))
	}
	if after := d.Bytes(); after != before {
		t.Fatalf("footprint grew: %d → %d", before, after)
	}
}

// ---------------------------------------------------------------------------
// Registry

func regModel(t *testing.T) *Model {
	t.Helper()
	return mustModel(t, [][]float64{ramp(4)}, argminPred{})
}

func create(m *Model) func() (*Detector, any, error) {
	return func() (*Detector, any, error) { return m.NewDetector(Config{}), nil, nil }
}

func TestRegistryLifecycle(t *testing.T) {
	m := regModel(t)
	r := NewRegistry(2)
	a, created, err := r.GetOrCreate("a", create(m))
	if err != nil || !created || a.ID != "a" {
		t.Fatalf("create a: %v %v", created, err)
	}
	a2, created, err := r.GetOrCreate("a", create(m))
	if err != nil || created || a2 != a {
		t.Fatalf("get a: %v %v", created, err)
	}
	if _, _, err := r.GetOrCreate("b", create(m)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.GetOrCreate("c", create(m)); !errors.Is(err, ErrTooManyStreams) {
		t.Fatalf("over capacity: %v", err)
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("IDs = %v", got)
	}
	if r.Len() != 2 || r.Bytes() != 2*int64(a.Bytes()) {
		t.Fatalf("Len=%d Bytes=%d det=%d", r.Len(), r.Bytes(), a.Bytes())
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("Remove not idempotent-correct")
	}
	if r.Len() != 1 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
	if _, err := a.Append([]float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on removed stream: %v", err)
	}
	// Creation error propagates and creates nothing.
	boom := errors.New("boom")
	if _, _, err := r.GetOrCreate("x", func() (*Detector, any, error) { return nil, nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("create error: %v", err)
	}
	if r.Len() != 1 {
		t.Fatal("failed create leaked a stream")
	}
	r.Close()
	if _, _, err := r.GetOrCreate("z", create(m)); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatalf("after close: Len=%d Bytes=%d", r.Len(), r.Bytes())
	}
}

// TestSubscribeNotify pins the subscriber contract: a committed event
// wakes subscribers (coalesced), EventsSince with a cursor reads
// exactly the new events, and Drain closes the channel without killing
// the stream.
func TestSubscribeNotify(t *testing.T) {
	m := mustModel(t, [][]float64{ramp(2)}, &scriptPred{labels: []int{0, 1, 1, 0, 0}})
	r := NewRegistry(0)
	st, _, err := r.GetOrCreate("s", func() (*Detector, any, error) {
		return m.NewDetector(Config{ConfirmWindows: 2, MaxEvents: 8}), nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := st.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Append(ramp(2)) // sample 1 classifies: start event
	if err != nil || len(res.Events) != 1 {
		t.Fatalf("append: %+v %v", res, err)
	}
	select {
	case _, open := <-sub.Wait():
		if !open {
			t.Fatal("notify closed prematurely")
		}
	default:
		t.Fatal("no wake-up after a committed event")
	}
	cursor := -1
	evs := st.EventsSince(cursor)
	if len(evs) != 1 || evs[0].Kind != KindStart {
		t.Fatalf("EventsSince(-1) = %+v", evs)
	}
	cursor = evs[0].Seq
	// Two appends committing one event each while nobody reads: tokens
	// coalesce, EventsSince catches up in one read.
	st.Append(ramp(1)) // raw 1, run 1
	st.Append(ramp(1)) // raw 1, run 2 → change commits
	st.Append(ramp(1)) // raw 0, run 1
	st.Append(ramp(1)) // raw 0, run 2 → change commits
	select {
	case <-sub.Wait():
	default:
		t.Fatal("no coalesced wake-up")
	}
	evs = st.EventsSince(cursor)
	if len(evs) != 2 || evs[0].Kind != KindChange || evs[1].Kind != KindChange {
		t.Fatalf("catch-up read = %+v", evs)
	}
	r.Drain()
	if _, open := <-sub.Wait(); open {
		t.Fatal("Drain did not close the subscriber channel")
	}
	// Stream survives the drain: appends still work, new subscribers too.
	if _, err := st.Append(ramp(1)); err != nil {
		t.Fatalf("append after drain: %v", err)
	}
	sub.Close() // idempotent after detach
	sub2, err := st.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	sub2.Close()
	if _, open := <-sub2.Wait(); open {
		t.Fatal("Sub.Close did not close the channel")
	}
}
