// Package datagen synthesizes the evaluation datasets. The UCR archive the
// paper evaluates on cannot be redistributed and this build is offline, so
// each archive dataset used in the evaluation has a structurally faithful
// synthetic stand-in here: class-conditional local patterns embedded at
// (possibly random) positions in noise, plus globally shaped families where
// whole-series distance methods shine. The generators are deterministic
// given a seed. See DESIGN.md §3 for the substitution rationale.
package datagen

import (
	"math"
	"math/rand"
)

// shape helpers ------------------------------------------------------------

// addNoise adds i.i.d. Gaussian noise of the given standard deviation.
func addNoise(v []float64, rng *rand.Rand, sd float64) {
	for i := range v {
		v[i] += rng.NormFloat64() * sd
	}
}

// addBump adds a Gaussian bump centered at c with width sigma and height amp.
func addBump(v []float64, c, sigma, amp float64) {
	for i := range v {
		d := (float64(i) - c) / sigma
		v[i] += amp * math.Exp(-0.5*d*d)
	}
}

// addPlateau adds amp on [from, to) with linear ramps of rampLen on each side.
func addPlateau(v []float64, from, to, rampLen int, amp float64) {
	if rampLen < 1 {
		rampLen = 1
	}
	for i := range v {
		switch {
		case i < from-rampLen || i >= to+rampLen:
			// outside
		case i < from:
			v[i] += amp * float64(i-(from-rampLen)) / float64(rampLen)
		case i < to:
			v[i] += amp
		default:
			v[i] += amp * float64(to+rampLen-i) / float64(rampLen)
		}
	}
}

// addRampBlock adds a linear ramp from a0 to a1 over [from, to).
func addRampBlock(v []float64, from, to int, a0, a1 float64) {
	if to <= from {
		return
	}
	n := float64(to - from)
	for i := from; i < to && i < len(v); i++ {
		if i < 0 {
			continue
		}
		frac := float64(i-from) / n
		v[i] += a0 + (a1-a0)*frac
	}
}

// addSine adds a sine of the given period, amplitude and phase.
func addSine(v []float64, period, amp, phase float64) {
	w := 2 * math.Pi / period
	for i := range v {
		v[i] += amp * math.Sin(w*float64(i)+phase)
	}
}

// addDampedBurst adds an exponentially decaying oscillation starting at
// pos: amp * exp(-(t-pos)/decay) * sin(w (t-pos)).
func addDampedBurst(v []float64, pos int, decay, period, amp float64) {
	w := 2 * math.Pi / period
	for i := pos; i < len(v); i++ {
		if i < 0 {
			continue
		}
		t := float64(i - pos)
		v[i] += amp * math.Exp(-t/decay) * math.Sin(w*t)
	}
}

// smooth applies a centered moving average of half-width k.
func smooth(v []float64, k int) []float64 {
	if k <= 0 {
		out := make([]float64, len(v))
		copy(out, v)
		return out
	}
	out := make([]float64, len(v))
	for i := range v {
		lo := i - k
		if lo < 0 {
			lo = 0
		}
		hi := i + k
		if hi > len(v)-1 {
			hi = len(v) - 1
		}
		var s float64
		for _, x := range v[lo : hi+1] {
			s += x
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// uniform returns a uniform draw in [lo, hi).
func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// warp applies a smooth random monotone time warping of the given
// strength (0 = identity; 0.5 = strong): sampling positions drift by a
// smoothed random walk, so globally aligned methods degrade while local
// shapes survive. The output has the same length as the input.
func warp(v []float64, rng *rand.Rand, strength float64) []float64 {
	n := len(v)
	if n < 3 || strength <= 0 {
		out := make([]float64, n)
		copy(out, v)
		return out
	}
	// positive step sizes with smooth variation -> monotone positions
	steps := make([]float64, n)
	walk := 0.0
	for i := range steps {
		walk = 0.9*walk + rng.NormFloat64()*strength
		steps[i] = math.Exp(walk * 0.3)
	}
	pos := make([]float64, n)
	var total float64
	for i, s := range steps {
		pos[i] = total
		total += s
	}
	scale := float64(n-1) / pos[n-1]
	out := make([]float64, n)
	for i := range out {
		x := pos[i] * scale
		j := int(x)
		if j >= n-1 {
			out[i] = v[n-1]
			continue
		}
		frac := x - float64(j)
		out[i] = v[j]*(1-frac) + v[j+1]*frac
	}
	return out
}
