package core

import (
	"sort"

	"rpm/internal/sax"
	"rpm/internal/ts"
)

// MotifOccurrence is one appearance of a class-specific motif in a
// training instance.
type MotifOccurrence struct {
	// Series is the index of the instance within the class's training
	// instances (in dataset order).
	Series int
	// Start is the offset of the occurrence within that instance.
	Start int
	// Values is the occurrence's raw subsequence.
	Values []float64
}

// Motif is a class-specific subspace motif (paper §1, §2.1): a
// variable-length pattern occurring in many training instances of one
// class, with all of its occurrences. This is the exploratory product the
// paper highlights beyond classification; representative patterns are the
// discriminative subset of these.
type Motif struct {
	Class int
	// Prototype is the z-normalized cluster centroid (or medoid).
	Prototype []float64
	// Support is the number of distinct instances containing the motif.
	Support int
	// Occurrences lists every subsequence in the motif's cluster.
	Occurrences []MotifOccurrence
}

// DiscoverMotifs runs the candidate-generation stage only (Algorithm 1)
// and returns each class's motifs with their full occurrence lists, sorted
// by support (descending). Unlike Train, no discrimination-based pruning
// happens: this is frequent-pattern discovery, the paper's "class-specific
// subspace motifs".
func DiscoverMotifs(train ts.Dataset, p sax.Params, opts Options) map[int][]Motif {
	out := map[int][]Motif{}
	byClass := train.ByClass()
	for _, class := range train.Classes() {
		groups := findMotifGroups(byClass[class], class, p, opts)
		motifs := make([]Motif, 0, len(groups))
		for _, g := range groups {
			motifs = append(motifs, g.toMotif())
		}
		sort.SliceStable(motifs, func(i, j int) bool {
			if motifs[i].Support != motifs[j].Support {
				return motifs[i].Support > motifs[j].Support
			}
			return len(motifs[i].Occurrences) > len(motifs[j].Occurrences)
		})
		out[class] = motifs
	}
	return out
}

// motifGroup is a refined cluster of rule occurrences: the shared internal
// currency of candidate generation and motif discovery.
type motifGroup struct {
	class      int
	prototype  []float64 // z-normalized
	support    int
	occs       []occurrence
	intraDists []float64
}

func (g motifGroup) toMotif() Motif {
	m := Motif{
		Class:     g.class,
		Prototype: g.prototype,
		Support:   g.support,
	}
	for _, o := range g.occs {
		m.Occurrences = append(m.Occurrences, MotifOccurrence{
			Series: o.series,
			Start:  o.start,
			Values: o.values,
		})
	}
	return m
}

func (g motifGroup) toCandidate() candidate {
	return candidate{
		class:      g.class,
		values:     g.prototype,
		support:    g.support,
		freq:       len(g.occs),
		intraDists: g.intraDists,
	}
}
