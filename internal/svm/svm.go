// Package svm implements a linear support vector machine trained by dual
// coordinate descent (Hsieh et al., ICML 2008), with one-vs-rest reduction
// for multiclass problems. RPM classifies time series in the
// representative-pattern distance space with an SVM (paper §3.1); the
// transformed space is low-dimensional and near-linearly separable (paper
// Fig. 6), so a linear kernel suffices. Features are standardized
// internally and a bias term is learned via feature augmentation.
package svm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls training.
type Config struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// MaxEpochs caps the number of passes over the data (default 1000).
	MaxEpochs int
	// Tol is the projected-gradient stopping tolerance (default 1e-3).
	Tol float64
	// Seed drives the coordinate permutation (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 1000
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is a trained one-vs-rest linear SVM.
type Model struct {
	classes []int
	// weights[k] is the augmented weight vector (bias last) of the
	// binary classifier separating classes[k] from the rest.
	weights [][]float64
	mean    []float64
	scale   []float64 // 1/std per feature (1 for constant features)
}

// Train fits the model to the n×d matrix X with labels y. It panics on
// empty or ragged input. A single-class training set yields a model that
// always predicts that class.
func Train(X [][]float64, y []int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	n := len(X)
	if n == 0 || len(y) != n {
		panic("svm: empty training set or label mismatch")
	}
	d := len(X[0])
	for i := range X {
		if len(X[i]) != d {
			panic(fmt.Sprintf("svm: row %d has %d columns, want %d", i, len(X[i]), d))
		}
	}
	m := &Model{classes: distinctSorted(y)}
	m.fitScaler(X)
	Xs := m.scaleAll(X)
	if len(m.classes) == 1 {
		m.weights = [][]float64{make([]float64, d+1)}
		return m
	}
	for _, class := range m.classes {
		yb := make([]float64, n)
		for i, lab := range y {
			if lab == class {
				yb[i] = 1
			} else {
				yb[i] = -1
			}
		}
		m.weights = append(m.weights, trainBinary(Xs, yb, cfg))
	}
	return m
}

// trainBinary solves the L1-loss SVM dual
//
//	min_α ½αᵀQα − eᵀα   s.t. 0 ≤ α_i ≤ C,  Q_ij = y_i y_j x_iᵀx_j
//
// by coordinate descent over randomly permuted coordinates, maintaining
// w = Σ α_i y_i x_i. Inputs are pre-scaled and already augmented with the
// bias feature.
func trainBinary(X [][]float64, y []float64, cfg Config) []float64 {
	n := len(X)
	d := len(X[0])
	w := make([]float64, d)
	alpha := make([]float64, n)
	qii := make([]float64, n)
	for i, x := range X {
		for _, v := range x {
			qii[i] += v * v
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		maxPG := 0.0
		for _, i := range perm {
			if qii[i] == 0 {
				continue
			}
			g := y[i]*dot(w, X[i]) - 1
			// projected gradient for the box constraint
			pg := g
			switch {
			case alpha[i] == 0 && g > 0:
				pg = 0
			//rpmlint:ignore floateq alpha is clipped to exactly cfg.C by the box projection below
			case alpha[i] == cfg.C && g < 0:
				pg = 0
			}
			if math.Abs(pg) > maxPG {
				maxPG = math.Abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			a := old - g/qii[i]
			if a < 0 {
				a = 0
			} else if a > cfg.C {
				a = cfg.C
			}
			alpha[i] = a
			delta := (a - old) * y[i]
			for j, v := range X[i] {
				w[j] += delta * v
			}
		}
		if maxPG < cfg.Tol {
			break
		}
	}
	return w
}

// fitScaler computes per-feature standardization parameters.
func (m *Model) fitScaler(X [][]float64) {
	n := len(X)
	d := len(X[0])
	m.mean = make([]float64, d)
	m.scale = make([]float64, d)
	for f := 0; f < d; f++ {
		var s float64
		for i := range X {
			s += X[i][f]
		}
		mu := s / float64(n)
		var ss float64
		for i := range X {
			dv := X[i][f] - mu
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n))
		m.mean[f] = mu
		if sd < 1e-12 {
			m.scale[f] = 1
		} else {
			m.scale[f] = 1 / sd
		}
	}
}

// scaleOne standardizes and bias-augments one instance.
func (m *Model) scaleOne(x []float64) []float64 {
	if len(x) != len(m.mean) {
		panic(fmt.Sprintf("svm: instance has %d features, model expects %d", len(x), len(m.mean)))
	}
	out := make([]float64, len(x)+1)
	for f, v := range x {
		out[f] = (v - m.mean[f]) * m.scale[f]
	}
	out[len(x)] = 1 // bias feature
	return out
}

func (m *Model) scaleAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i := range X {
		out[i] = m.scaleOne(X[i])
	}
	return out
}

// Classes returns the model's label set, sorted.
func (m *Model) Classes() []int {
	out := make([]int, len(m.classes))
	copy(out, m.classes)
	return out
}

// Decision returns the per-class decision values (w·x + b). Higher means
// more confident.
func (m *Model) Decision(x []float64) map[int]float64 {
	xs := m.scaleOne(x)
	out := make(map[int]float64, len(m.classes))
	for k, class := range m.classes {
		out[class] = dot(m.weights[k], xs)
	}
	return out
}

// Predict returns the class with the highest decision value; ties break
// toward the smaller label for determinism (classes are sorted and the
// comparison is strict). It allocates nothing: the standardization is
// fused into the dot product — w·scaleOne(x) with the identical
// per-term arithmetic ((v-mean)*scale first, then the weight multiply,
// accumulated in feature order, bias last), so the decision values are
// bit-identical to Decision's.
//
//rpmlint:hotpath PR6 predict kernel: fused scale+dot allocates nothing
func (m *Model) Predict(x []float64) int {
	if len(m.classes) == 1 {
		return m.classes[0]
	}
	if len(x) != len(m.mean) {
		panic(fmt.Sprintf("svm: instance has %d features, model expects %d", len(x), len(m.mean)))
	}
	best := m.classes[0]
	bestV := math.Inf(-1)
	for k, class := range m.classes {
		w := m.weights[k]
		var v float64
		for f, xv := range x {
			v += w[f] * ((xv - m.mean[f]) * m.scale[f])
		}
		v += w[len(x)] // bias feature is the constant 1
		if v > bestV {
			bestV = v
			best = class
		}
	}
	return best
}

// PredictBatch classifies every row of X.
func (m *Model) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func distinctSorted(y []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range y {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
