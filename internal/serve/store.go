// Package serve is the batched model-serving subsystem behind
// cmd/rpmserved: a stdlib-only HTTP inference layer that loads saved rpm
// classifier snapshots into a versioned, atomically hot-reloadable model
// store and serves single and batch predictions, amortizing per-request
// transform cost through an adaptive micro-batcher (see DESIGN.md §10).
//
// The package composes the three substrates the earlier layers built:
// the worker pool bounds per-flush predict fan-out (rpm.SetWorkers), the
// typed error taxonomy maps onto HTTP statuses (rpm.ErrBadInput → 400,
// rpm.ErrTooShort → 422, rpm.ErrCorruptModel → 503, rpm.ErrInternal →
// 500), and every request is accounted in an obs.Registry (counters,
// latency summaries, batch-pool usage) exposed over /debug/obs.
package serve

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpm"
	"rpm/internal/faults"
	"rpm/internal/obs"
	"rpm/internal/stream"
)

// Model is one loaded classifier snapshot, immutable once published.
// Version counts successful content changes of the model's file: it
// starts at 1 on first load and bumps only when a reload sees different
// bytes (an unchanged file keeps the same *Model, so in-flight requests
// and the version number are stable across no-op reloads).
type Model struct {
	// Name is the snapshot file's base name without extension; request
	// payloads select models by it.
	Name string
	// Version is the content generation of this model (1-based).
	Version int
	// Path is the snapshot file the model was loaded from.
	Path string
	// LoadedAt is when this content version was loaded.
	LoadedAt time.Time
	// NumPatterns is the dimensionality of the model's transform space.
	NumPatterns int
	// Classes are the model's class labels, sorted.
	Classes []int

	clf *rpm.Classifier
	sum [sha256.Size]byte

	// Streaming state is derived lazily, once per content version: the
	// first stream created against this model builds the shared immutable
	// stream.Model (matchers grouped by pattern length); every later
	// stream reuses it. Models that cannot stream (pattern-free 1NN
	// fallback, rotation-invariant transform) cache the typed error.
	streamOnce  sync.Once
	streamModel *stream.Model
	streamErr   error
}

// Classifier exposes the underlying classifier (read-only use).
func (m *Model) Classifier() *rpm.Classifier { return m.clf }

// StreamModel returns the shared streaming state for this model
// version, building it on first use. The error (an rpm.ErrBadInput for
// models that cannot stream) is stable across calls.
func (m *Model) StreamModel() (*stream.Model, error) {
	m.streamOnce.Do(func() {
		if err := m.clf.ValidateStreamingFeatures(m.clf.NumPatterns()); err != nil {
			m.streamErr = err
			return
		}
		pats := m.clf.Patterns()
		raw := make([][]float64, len(pats))
		for i, p := range pats {
			raw[i] = p.Values
		}
		m.streamModel, m.streamErr = stream.NewModel(raw, m.clf)
	})
	return m.streamModel, m.streamErr
}

// catalog is the immutable set of models the store publishes with one
// atomic pointer swap. defaultName is non-empty iff exactly one model is
// loaded, letting single-model deployments omit the "model" field.
type catalog struct {
	models      map[string]*Model
	names       []string // sorted
	defaultName string
}

// ReloadOutcome describes one file's fate during a reload pass.
type ReloadOutcome struct {
	Name string `json:"name"`
	File string `json:"file"`
	// Err is the load failure, empty on success.
	Err string `json:"err,omitempty"`
}

// ReloadReport summarizes one reload pass over the model directory.
// Corrupt snapshots never evict a serving model: a file that fails
// rpm.LoadClassifier keeps its previous version serving (KeptOld) or,
// if it never loaded, is skipped (Rejected).
type ReloadReport struct {
	// Loaded are models whose content changed and loaded cleanly.
	Loaded []ReloadOutcome `json:"loaded,omitempty"`
	// Unchanged are models whose file bytes were identical; the existing
	// *Model (and its version) keeps serving.
	Unchanged []ReloadOutcome `json:"unchanged,omitempty"`
	// KeptOld are corrupt files whose previous version keeps serving.
	KeptOld []ReloadOutcome `json:"keptOld,omitempty"`
	// Rejected are corrupt files with no previous version to fall back to.
	Rejected []ReloadOutcome `json:"rejected,omitempty"`
	// Removed are models whose file disappeared from the directory.
	Removed []ReloadOutcome `json:"removed,omitempty"`
	// Models is the number of models serving after the pass.
	Models int `json:"models"`
}

// Store is the versioned model registry: an atomic.Pointer catalog that
// readers dereference once per request (no locks on the serve path) and
// that Reload swaps wholesale after building the next catalog off to the
// side. Reloads are serialized by a mutex; readers never block.
type Store struct {
	dir     string
	workers int
	faults  *faults.Injector

	reloads     *obs.Counter
	rejected    *obs.Counter
	injected    *obs.Counter
	gaugeModels *obs.Gauge

	mu  sync.Mutex // serializes Reload
	cur atomic.Pointer[catalog]
}

// NewStore creates a store over a directory of *.json snapshots written
// by rpm's Classifier.Save (e.g. rpmcli -save). workers is the predict
// fan-out bound applied to every loaded classifier (rpm.SetWorkers).
// inj, usually nil, injects deterministic model-load failures during
// Reload (DESIGN.md §13). The store starts empty; call Reload to
// populate it.
func NewStore(dir string, workers int, reg *obs.Registry, inj *faults.Injector) *Store {
	s := &Store{
		dir:         dir,
		workers:     workers,
		faults:      inj,
		reloads:     reg.Counter(CtrReloads),
		rejected:    reg.Counter(CtrReloadRejected),
		injected:    reg.Counter(CtrFaultsInjected),
		gaugeModels: reg.Gauge(GaugeModels),
	}
	s.cur.Store(&catalog{models: map[string]*Model{}})
	return s
}

// Len returns the number of models currently serving.
func (s *Store) Len() int { return len(s.cur.Load().models) }

// Models returns the serving models sorted by name.
func (s *Store) Models() []*Model {
	c := s.cur.Load()
	out := make([]*Model, 0, len(c.names))
	for _, n := range c.names {
		out = append(out, c.models[n])
	}
	return out
}

// Get resolves a model by name. An empty name selects the default model,
// which exists only when exactly one model is loaded. The returned
// *Model stays valid (and keeps predicting) even if a reload swaps the
// catalog mid-request.
func (s *Store) Get(name string) (*Model, error) {
	c := s.cur.Load()
	if len(c.models) == 0 {
		return nil, errNoModels
	}
	if name == "" {
		if c.defaultName == "" {
			return nil, fmt.Errorf("%w: %d models loaded (%s); request must name one",
				errAmbiguousModel, len(c.names), strings.Join(c.names, ", "))
		}
		name = c.defaultName
	}
	m, ok := c.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (have: %s)", errUnknownModel, name, strings.Join(c.names, ", "))
	}
	return m, nil
}

// Reload scans the model directory and atomically publishes the next
// catalog. It returns an error only when the directory itself is
// unreadable; per-file failures are reported in the ReloadReport and
// never evict a model that is already serving (the old version keeps
// answering until a clean replacement appears).
func (s *Store) Reload() (ReloadReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return ReloadReport{Models: s.Len()}, fmt.Errorf("serve: reading model dir: %w", err)
	}
	old := s.cur.Load()
	next := &catalog{models: make(map[string]*Model, len(entries))}
	var rep ReloadReport
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		path := filepath.Join(s.dir, e.Name())
		seen[name] = true
		out := ReloadOutcome{Name: name, File: e.Name()}
		data, err := os.ReadFile(path)
		if err == nil {
			// Injected model-load I/O failure (faults.SiteStoreLoad):
			// indistinguishable from a real read error, so the KeptOld /
			// Rejected fallback below is exactly what a chaos run proves.
			if ferr := s.faults.Err(faults.SiteStoreLoad); ferr != nil {
				s.injected.Inc()
				err = ferr
			}
		}
		if err != nil {
			out.Err = err.Error()
			if prev, ok := old.models[name]; ok {
				next.models[name] = prev
				rep.KeptOld = append(rep.KeptOld, out)
			} else {
				rep.Rejected = append(rep.Rejected, out)
			}
			s.rejected.Inc()
			continue
		}
		sum := sha256.Sum256(data)
		if prev, ok := old.models[name]; ok && prev.sum == sum {
			next.models[name] = prev
			rep.Unchanged = append(rep.Unchanged, out)
			continue
		}
		clf, err := rpm.LoadClassifier(bytes.NewReader(data))
		if err != nil {
			// Corrupt snapshot: rpm.ErrCorruptModel (or read junk). The
			// previously serving version, if any, keeps serving.
			out.Err = err.Error()
			if prev, ok := old.models[name]; ok {
				next.models[name] = prev
				rep.KeptOld = append(rep.KeptOld, out)
			} else {
				rep.Rejected = append(rep.Rejected, out)
			}
			s.rejected.Inc()
			continue
		}
		clf.SetWorkers(s.workers)
		version := 1
		if prev, ok := old.models[name]; ok {
			version = prev.Version + 1
		}
		next.models[name] = &Model{
			Name:        name,
			Version:     version,
			Path:        path,
			LoadedAt:    time.Now(),
			NumPatterns: clf.NumPatterns(),
			Classes:     classesOf(clf),
			clf:         clf,
			sum:         sum,
		}
		rep.Loaded = append(rep.Loaded, out)
	}
	for name, prev := range old.models {
		if !seen[name] {
			rep.Removed = append(rep.Removed, ReloadOutcome{Name: name, File: filepath.Base(prev.Path)})
		}
	}
	for n := range next.models {
		next.names = append(next.names, n)
	}
	sort.Strings(next.names)
	if len(next.names) == 1 {
		next.defaultName = next.names[0]
	}
	s.cur.Store(next)
	s.reloads.Inc()
	s.gaugeModels.Set(int64(len(next.names)))
	rep.Models = len(next.names)
	return rep, nil
}

// classesOf lists a classifier's class labels, sorted. Degenerate
// (pattern-free) models report no classes.
func classesOf(clf *rpm.Classifier) []int {
	params := clf.PerClassParams()
	out := make([]int, 0, len(params))
	for c := range params {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
