package archive

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rpm"
)

// smokeDatasets is the 3-dataset mini-archive the tests (and the CI
// archive-smoke gate) run over: small synthetic splits that train in
// well under a second each.
var smokeDatasets = []string{"SynCoffee", "SynECGFiveDays", "SynItalyPower"}

// testConfig returns a fast archive configuration over the mini
// archive: fixed SAX parameters (no search) keep each dataset cheap.
func testConfig(t *testing.T) Config {
	t.Helper()
	opts := rpm.DefaultOptions()
	opts.Mode = rpm.ParamFixed
	opts.Params = rpm.SAXParams{Window: 12, PAA: 4, Alphabet: 4}
	return Config{
		OutDir:  t.TempDir(),
		Source:  SyntheticSource{Seed: 3, Subset: smokeDatasets},
		Seed:    3,
		Workers: 2,
		Options: opts,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func detJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	blob, err := r.Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestRunEndToEnd covers the happy path: every dataset trains, scores
// reasonably, writes a checkpoint, and lands in the table in sorted
// order.
func TestRunEndToEnd(t *testing.T) {
	cfg := testConfig(t)
	res := mustRun(t, cfg)
	if len(res.Outcomes) != len(smokeDatasets) {
		t.Fatalf("got %d outcomes, want %d", len(res.Outcomes), len(smokeDatasets))
	}
	for i, oc := range res.Outcomes {
		if oc.Dataset != smokeDatasets[i] {
			t.Fatalf("outcome %d is %s, want sorted order %v", i, oc.Dataset, smokeDatasets)
		}
		if oc.Status != "ok" {
			t.Fatalf("%s: status %s (%s: %s)", oc.Dataset, oc.Status, oc.ErrKind, oc.ErrMsg)
		}
		if oc.Accuracy < 0.5 {
			t.Errorf("%s: accuracy %v suspiciously low", oc.Dataset, oc.Accuracy)
		}
		if oc.TrainSize == 0 || oc.TestSize == 0 || oc.Bags != 1 {
			t.Errorf("%s: incomplete row %+v", oc.Dataset, oc)
		}
		if oc.Counters["train.candidates"] <= 0 {
			t.Errorf("%s: missing candidates counter", oc.Dataset)
		}
		if _, err := os.Stat(CheckpointPath(cfg.OutDir, oc.Dataset)); err != nil {
			t.Errorf("%s: no checkpoint: %v", oc.Dataset, err)
		}
	}
	var tbl bytes.Buffer
	if err := res.WriteTable(&tbl, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "SynCoffee") || !strings.Contains(tbl.String(), "DATASET") {
		t.Fatalf("table missing expected content:\n%s", tbl.String())
	}
}

// TestRunWorkerIndependence asserts the deterministic projection is
// byte-identical between a sequential and a fanned-out run — the
// archive-level extension of the library's Workers guarantee.
func TestRunWorkerIndependence(t *testing.T) {
	a := testConfig(t)
	a.Workers = 1
	b := testConfig(t)
	b.Workers = 4
	if got, want := detJSON(t, mustRun(t, a)), detJSON(t, mustRun(t, b)); !bytes.Equal(got, want) {
		t.Fatalf("deterministic tables diverge between Workers 1 and 4:\n%s\n---\n%s", got, want)
	}
}

// TestResumeByteIdentity is the crash-resume contract: run, delete one
// checkpoint (simulating a dataset the killed run never finished),
// resume, and require the deterministic table byte-identical to the
// uninterrupted run — with only the still-checkpointed datasets served
// from disk.
func TestResumeByteIdentity(t *testing.T) {
	cfg := testConfig(t)
	full := mustRun(t, cfg)
	want := detJSON(t, full)

	if err := os.Remove(CheckpointPath(cfg.OutDir, "SynECGFiveDays")); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	resumed := mustRun(t, cfg)
	if resumed.Resumed != 2 {
		t.Fatalf("resumed %d datasets, want 2", resumed.Resumed)
	}
	if got := detJSON(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed table differs from uninterrupted run:\n%s\n---\n%s", got, want)
	}
	// A second resume serves everything from checkpoints.
	again := mustRun(t, cfg)
	if again.Resumed != 3 {
		t.Fatalf("full resume served %d from checkpoints, want 3", again.Resumed)
	}
	if got := detJSON(t, again); !bytes.Equal(got, want) {
		t.Fatal("fully resumed table differs from uninterrupted run")
	}
}

// TestResumeRejectsCorruptCheckpoint asserts byte verification: a
// flipped payload byte fails the SHA check, the dataset retrains, and
// the overwritten checkpoint verifies again. In strict mode the corrupt
// file is an error instead.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	cfg := testConfig(t)
	mustRun(t, cfg)
	path := CheckpointPath(cfg.OutDir, "SynCoffee")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(blob, []byte(`"accuracy"`))
	if i < 0 {
		t.Fatalf("no accuracy field in checkpoint:\n%s", blob)
	}
	corrupted := bytes.Replace(blob, []byte(`"accuracy"`), []byte(`"accuracyX"`), 1)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpoint(cfg.OutDir, "SynCoffee", cfg.hash()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt checkpoint err = %v, want ErrCheckpointCorrupt", err)
	}

	strict := cfg
	strict.Resume = true
	strict.Strict = true
	if _, err := Run(context.Background(), strict); !errors.Is(err, ErrRunFailed) {
		t.Fatalf("strict resume over corrupt checkpoint err = %v, want ErrRunFailed", err)
	}

	cfg.Resume = true
	res := mustRun(t, cfg)
	if res.Resumed != 2 {
		t.Fatalf("resumed %d, want 2 (the corrupt dataset must retrain)", res.Resumed)
	}
	if _, err := readCheckpoint(cfg.OutDir, "SynCoffee", cfg.hash()); err != nil {
		t.Fatalf("rewritten checkpoint fails verification: %v", err)
	}
}

// TestResumeRejectsConfigMismatch asserts checkpoints from a different
// result-affecting configuration are not spliced into the table.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	cfg := testConfig(t)
	mustRun(t, cfg)

	changed := cfg
	changed.Options.Gamma = 0.3
	if cfg.hash() == changed.hash() {
		t.Fatal("config hash ignores Gamma")
	}
	if _, err := readCheckpoint(cfg.OutDir, "SynCoffee", changed.hash()); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("mismatched checkpoint err = %v, want ErrCheckpointMismatch", err)
	}
	// Workers and Instrument must NOT change the hash: they never change
	// an outcome, and a resume at a different worker count is legal.
	rewired := cfg
	rewired.Options.Workers = 7
	rewired.Options.Instrument = true
	if cfg.hash() != rewired.hash() {
		t.Fatal("config hash depends on Workers/Instrument")
	}
	changed.Resume = true
	res := mustRun(t, changed)
	if res.Resumed != 0 {
		t.Fatalf("resumed %d datasets across a config change, want 0", res.Resumed)
	}
}

// TestTimeout asserts a dataset exceeding the per-dataset budget is
// recorded as a timeout row while the run continues.
func TestTimeout(t *testing.T) {
	cfg := testConfig(t)
	cfg.Timeout = time.Nanosecond
	res := mustRun(t, cfg)
	for _, oc := range res.Outcomes {
		if oc.Status != "timeout" || oc.ErrKind != "timeout" {
			t.Fatalf("%s: status=%s kind=%s, want timeout", oc.Dataset, oc.Status, oc.ErrKind)
		}
	}
}

// TestShardPartition asserts the shards cover every dataset exactly
// once regardless of worker count, and out-of-range shards are
// rejected.
func TestShardPartition(t *testing.T) {
	seen := map[string]int{}
	for shard := 0; shard < 2; shard++ {
		cfg := testConfig(t)
		cfg.Shard, cfg.Shards = shard, 2
		res := mustRun(t, cfg)
		for _, oc := range res.Outcomes {
			seen[oc.Dataset]++
		}
	}
	if len(seen) != len(smokeDatasets) {
		t.Fatalf("shards covered %d datasets, want %d", len(seen), len(smokeDatasets))
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("%s ran %d times across shards", name, n)
		}
	}
}

// TestBadConfig asserts up-front validation returns typed ErrBadConfig
// for every unusable configuration.
func TestBadConfig(t *testing.T) {
	base := testConfig(t)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no outdir", func(c *Config) { c.OutDir = "" }},
		{"no source", func(c *Config) { c.Source = nil }},
		{"shard out of range", func(c *Config) { c.Shard, c.Shards = 2, 2 }},
		{"negative shard", func(c *Config) { c.Shard = -1 }},
		{"negative timeout", func(c *Config) { c.Timeout = -time.Second }},
		{"unknown dataset", func(c *Config) { c.Datasets = []string{"NoSuch"} }},
		{"unsafe name", func(c *Config) { c.Source = SyntheticSource{Subset: []string{"../evil"}} }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
}

// TestBaggedArchive runs the mini archive with sampled bagged training
// — the configuration the EXPERIMENTS.md speedup table uses — and
// checks the ensemble columns land in the rows.
func TestBaggedArchive(t *testing.T) {
	cfg := testConfig(t)
	cfg.Options.Mode = rpm.ParamDIRECT
	cfg.Options.Splits = 2
	cfg.Options.MaxEvals = 8
	cfg.Options.Sample = rpm.SampleOptions{Rate: 0.2, Seed: 5}
	cfg.Options.Bags = 3
	cfg.Datasets = []string{"SynItalyPower"}
	res := mustRun(t, cfg)
	oc := res.Outcomes[0]
	if oc.Status != "ok" {
		t.Fatalf("bagged run failed: %s: %s", oc.ErrKind, oc.ErrMsg)
	}
	if oc.Bags != 3 {
		t.Fatalf("Bags column = %d, want 3", oc.Bags)
	}
	if oc.Counters["train.bags.members"] != 3 {
		t.Fatalf("bag member counter = %d, want 3", oc.Counters["train.bags.members"])
	}
	if oc.Counters["train.sample.windows.dropped"] <= 0 {
		t.Fatal("sampled run recorded no dropped windows")
	}
}

// TestDirSource round-trips the mini archive through UCR files on disk.
func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	syn := SyntheticSource{Seed: 3, Subset: []string{"SynCoffee"}}
	split, err := syn.Load("SynCoffee")
	if err != nil {
		t.Fatal(err)
	}
	for suffix, d := range map[string]rpm.Dataset{"_TRAIN": split.Train, "_TEST": split.Test} {
		f, err := os.Create(filepath.Join(dir, "SynCoffee"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if err := rpm.SaveUCR(f, d); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A half split (TRAIN without TEST) must be skipped, not fail.
	if err := os.WriteFile(filepath.Join(dir, "Orphan_TRAIN"), []byte("1 0.0 1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := DirSource{Dir: dir}
	names, err := src.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "SynCoffee" {
		t.Fatalf("Names = %v, want [SynCoffee]", names)
	}
	got, err := src.Load("SynCoffee")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Train) != len(split.Train) || len(got.Test) != len(split.Test) {
		t.Fatalf("round-trip sizes %d/%d, want %d/%d", len(got.Train), len(got.Test), len(split.Train), len(split.Test))
	}

	cfg := testConfig(t)
	cfg.Source = src
	res := mustRun(t, cfg)
	if len(res.Outcomes) != 1 || res.Outcomes[0].Status != "ok" {
		t.Fatalf("dir-source archive run broken: %+v", res.Outcomes)
	}
}

// TestRunCancel asserts parent-context cancellation aborts the run with
// the context error and does not checkpoint aborted datasets.
func TestRunCancel(t *testing.T) {
	cfg := testConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run err = %v, want context.Canceled", err)
	}
	entries, err := os.ReadDir(cfg.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt.json") {
			t.Fatalf("canceled run left checkpoint %s", e.Name())
		}
	}
}
