// Package faults is the fixture stand-in for the fault injector: the
// faultsite analyzer checks its Site* constants and the call sites of
// its decision methods.
package faults

type Injector struct{}

func (in *Injector) Fire(site string) bool { _ = site; return false }
func (in *Injector) Err(site string) error { _ = site; return nil }

const (
	SiteUsed = "fix.used"
	SiteDead = "fix.dead" // want "never exercised by the serving layer"
)
