package serve

// FuzzPredictRequest fuzzes the JSON decode + validation boundary of
// /v1/predict and /v1/predict:batch with arbitrary bytes. The contract
// under fuzz: the server never panics and never answers 500 — every
// malformed, hostile, or merely weird body maps to a typed error
// envelope from the PR-2 taxonomy (bad_input 400, too_large 413,
// too_short 422, not_found 404, no_models 503, deadline_exceeded
// 504, ...), and every non-2xx body parses as that envelope. Wired into
// `make fuzz`.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func FuzzPredictRequest(f *testing.F) {
	// Seeds: the valid shapes, then progressively broken ones — cut-off
	// JSON, wrong types, non-finite floats, deep nesting, huge values,
	// duplicate keys, null floods.
	seeds := []string{
		`{"model":"cbf","values":[1,2,3]}`,
		`{"values":[0.5,-0.5,0.25]}`,
		`{"model":"ghost","values":[1]}`,
		`{"series":[[1,2],[3,4]]}`,
		`{"model":"cbf","series":[[1,2,3]]}`,
		`{"values":[]}`,
		`{"series":[]}`,
		`{"values":[1e308,1e308]}`,
		`{"values":["NaN"]}`,
		`{"values":[null]}`,
		`{"values":{"a":1}}`,
		`{"model":123,"values":[1]}`,
		`{"model":"cbf","values":[1,2`,
		`{}`,
		``,
		`[]`,
		`null`,
		`"values"`,
		`{"model":"` + strings.Repeat("x", 1<<12) + `","values":[1]}`,
		`{"values":[` + strings.Repeat("1,", 1<<10) + `1]}`,
		strings.Repeat(`{"values":`, 64) + `1` + strings.Repeat(`}`, 64),
		`{"model":"cbf","model":"other","values":[1],"values":[2]}`,
		"\x00\x01\x02",
		`{"values":[1,2,3],"extra":{"deep":[[[[[1]]]]]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// One server per fuzz process, over an EMPTY model dir: the decode
	// and validation path is fully exercised without paying model
	// training per worker, and the empty catalog adds the no_models
	// branch to the reachable surface. A tight body cap makes the
	// too_large branch reachable from small fuzz inputs. Requests are
	// driven in-process (ResponseRecorder, no sockets) so the fuzz
	// engine gets tens of thousands of execs per second instead of
	// being throttled by HTTP round trips; a handler panic still fails
	// the run — the guard converts it to the 500 asserted against
	// below, and a re-panicked abort would crash the worker.
	s, err := New(Config{ModelDir: f.TempDir(), Workers: 1, MaxBodyBytes: 1 << 14})
	if err != nil {
		f.Fatal(err)
	}
	handler := s.Handler()

	check := func(t *testing.T, path string, data []byte) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code == http.StatusInternalServerError {
			t.Fatalf("%s: arbitrary input produced a 500: %q → %s", path, data, rec.Body.Bytes())
		}
		if rec.Code == http.StatusOK {
			return
		}
		var env errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: status %d body is not the error envelope: %q → %s", path, rec.Code, data, rec.Body.Bytes())
		}
		if env.Error.Code == "" || env.Error.Status != rec.Code {
			t.Fatalf("%s: malformed envelope for %q: code=%q envStatus=%d httpStatus=%d",
				path, data, env.Error.Code, env.Error.Status, rec.Code)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		check(t, "/v1/predict", data)
		check(t, "/v1/predict:batch", data)
	})
}
