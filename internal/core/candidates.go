package core

import (
	"sort"
	"time"

	"rpm/internal/cluster"
	"rpm/internal/dist"
	"rpm/internal/parallel"
	"rpm/internal/repair"
	"rpm/internal/sax"
	"rpm/internal/sequitur"
	"rpm/internal/ts"
)

// candidate is an internal representative-pattern candidate: the refined
// cluster's prototype plus the bookkeeping the later pruning steps need.
type candidate struct {
	class   int
	values  []float64 // z-normalized prototype
	support int       // distinct source instances
	freq    int       // total occurrences in the concatenated series
	// intraDists are the pairwise closest-match distances inside the
	// source cluster, pooled across candidates to derive τ (Alg. 2 line 3).
	intraDists []float64
}

// occurrence is one subsequence mapped back from a grammar rule.
type occurrence struct {
	series int // index within the class's training instances
	start  int // local offset
	values []float64
}

// findCandidates implements Algorithm 1 for a single class, reducing each
// discovered motif group to its prototype candidate.
func findCandidates(classTrain ts.Dataset, class int, p sax.Params, opts Options) []candidate {
	groups := findMotifGroups(classTrain, class, p, opts)
	out := make([]candidate, 0, len(groups))
	for _, g := range groups {
		out = append(out, g.toCandidate())
	}
	return out
}

// findMotifGroups is the candidate-generation core: concatenate the
// class's training series, discretize (skipping junction-spanning
// windows), infer a grammar over the SAX words, map each rule's
// occurrences back to raw subsequences, refine each rule's instance set by
// recursive 2-way clustering, and emit a motif group per sufficiently
// supported cluster.
func findMotifGroups(classTrain ts.Dataset, class int, p sax.Params, opts Options) []motifGroup {
	if len(classTrain) == 0 {
		return nil
	}
	concat := ts.ConcatDataset(classTrain)
	if p.Validate(len(concat.Values)) != nil {
		return nil
	}
	// Step 1 (§3.2.1): discretization time accumulates into the aggregate
	// step1 span — per-class contributions sum atomically, so under
	// Workers > 1 the span's busy total can exceed the candidates wall.
	// Under Options.Sample, whole window-length blocks of start
	// positions are skipped by the seeded per-class sampler — a pure
	// (seed, position) decision, so the surviving word sequence is
	// identical for any worker count (DESIGN.md §15).
	skip := func(start int) bool {
		return concat.SpansJunction(start, p.Window)
	}
	var sampleKept, sampleDropped int64
	if opts.Sample.active() {
		ws := newWindowSampler(resolveSampleSeed(opts), class, p.Window, opts.Sample.Rate)
		junction := skip
		skip = func(start int) bool {
			if junction(start) {
				return true
			}
			if !ws.keep(start) {
				sampleDropped++
				return true
			}
			sampleKept++
			return false
		}
	}
	t0 := time.Now()
	words := sax.Discretize(concat.Values, p, opts.NumerosityReduction, skip)
	opts.spanStep1.Add(time.Since(t0))
	if opts.Sample.active() && opts.Obs != nil {
		opts.Obs.Counter(CtrSampleWindowsKept).Add(sampleKept)
		opts.Obs.Counter(CtrSampleWindowsDropped).Add(sampleDropped)
	}
	if len(words) < 2 {
		return nil
	}
	// Intern words as integer tokens for the grammar.
	tokens := make([]int, len(words))
	intern := map[string]int{}
	for i, w := range words {
		id, ok := intern[w.Word]
		if !ok {
			id = len(intern)
			intern[w.Word] = id
		}
		tokens[i] = id
	}
	// Step 2 (§3.2.2): grammar induction, rule-occurrence mapping and
	// recursive 2-way cluster refinement, timed into the aggregate step2
	// span with the same summed-across-classes semantics as step 1.
	t1 := time.Now()
	rules := inferRules(tokens, opts.GI)
	minSupport := int(opts.Gamma * float64(len(classTrain)))
	if minSupport < 2 {
		minSupport = 2
	}
	if opts.Sample.active() {
		// Block sampling keeps ~Rate of each motif's occurrences, so
		// the γ support floor shrinks proportionally (its relative
		// meaning is preserved; the absolute floor of 2 still holds).
		minSupport = sampledMinSupport(minSupport, opts.Sample.Rate)
	}
	var out []motifGroup
	for _, rule := range rules {
		occs := ruleOccurrences(rule.spans, words, concat, p.Window)
		if len(occs) < minSupport {
			continue
		}
		out = append(out, refineRule(occs, class, minSupport, opts)...)
	}
	opts.spanStep2.Add(time.Since(t1))
	return out
}

// grammarRule is the GI-algorithm-independent view of a rule: where its
// occurrences sit in the token sequence.
type grammarRule struct {
	spans []sequitur.Span
}

// inferRules runs the configured grammar-induction algorithm and returns
// the rules in a uniform shape.
func inferRules(tokens []int, gi GIAlgorithm) []grammarRule {
	switch gi {
	case GIRePair:
		g := repair.Infer(tokens)
		rules := g.Rules()
		out := make([]grammarRule, len(rules))
		for i, r := range rules {
			out[i] = grammarRule{spans: r.Spans}
		}
		return out
	default:
		g := sequitur.Infer(tokens)
		rules := g.Rules()
		out := make([]grammarRule, len(rules))
		for i, r := range rules {
			out[i] = grammarRule{spans: r.Spans}
		}
		return out
	}
}

// ruleOccurrences maps a grammar rule's token spans back to raw
// subsequences of the concatenated series, dropping occurrences that span
// junctions between training instances (concatenation artifacts, §3.2.2).
func ruleOccurrences(spans []sequitur.Span, words []sax.WordAt, concat ts.Concatenated, window int) []occurrence {
	var out []occurrence
	for _, span := range spans {
		startOff := words[span.Start].Offset
		endOff := words[span.End].Offset + window - 1
		if endOff >= len(concat.Values) {
			endOff = len(concat.Values) - 1
		}
		si, localStart := concat.Local(startOff)
		sj, _ := concat.Local(endOff)
		if si < 0 || si != sj {
			continue
		}
		out = append(out, occurrence{
			series: si,
			start:  localStart,
			values: concat.Values[startOff : endOff+1],
		})
	}
	return out
}

// refineRule clusters one rule's occurrences (paper: "a candidate motif
// found by grammar induction may contain more than one group of similar
// patterns") and turns every sufficiently supported cluster into a motif
// group.
func refineRule(occs []occurrence, class int, minSupport int, opts Options) []motifGroup {
	n := len(occs)
	d := make([][]float64, n)
	matchers := make([]*dist.Matcher, n)
	for i := range d {
		d[i] = make([]float64, n)
		matchers[i] = dist.NewMatcher(occs[i].values)
	}
	// The O(n²) pairwise closest-match matrix fans out by row: row i owns
	// every cell (i, j) with j > i (and its mirror), so no cell has two
	// writers and the matrix is identical for any worker count. The
	// dynamic index hand-out in parallel.For load-balances the shrinking
	// rows.
	parallel.ForPool(n, opts.Workers, opts.Obs.Pool(PoolRefine), func(i int) {
		for j := i + 1; j < n; j++ {
			// slide the shorter occurrence inside the longer one
			var dd float64
			if len(occs[i].values) <= len(occs[j].values) {
				dd = matchers[i].Best(occs[j].values).Dist
			} else {
				dd = matchers[j].Best(occs[i].values).Dist
			}
			d[i][j] = dd
			d[j][i] = dd
		}
	})
	groups := cluster.SplitRefine(d, opts.SplitMinFrac)
	ctrKept := opts.Obs.Counter(CtrClustersKept)
	ctrDropped := opts.Obs.Counter(CtrClustersDropped)
	var out []motifGroup
	for _, g := range groups {
		// support = distinct source instances (requirement (i) of §3.2)
		seen := map[int]bool{}
		for _, idx := range g {
			seen[occs[idx].series] = true
		}
		if len(seen) < minSupport {
			ctrDropped.Inc()
			continue
		}
		ctrKept.Inc()
		var proto []float64
		if opts.UseMedoid {
			proto = medoid(occs, g, d)
		} else {
			proto = centroid(occs, g)
		}
		var intra []float64
		groupOccs := make([]occurrence, 0, len(g))
		for a := 0; a < len(g); a++ {
			groupOccs = append(groupOccs, occs[g[a]])
			for b := a + 1; b < len(g); b++ {
				intra = append(intra, d[g[a]][g[b]])
			}
		}
		out = append(out, motifGroup{
			class:      class,
			prototype:  ts.ZNorm(proto),
			support:    len(seen),
			occs:       groupOccs,
			intraDists: intra,
		})
	}
	return out
}

// centroid averages the cluster members after resampling them to the
// median member length (rule occurrences vary in length, paper Fig. 4).
func centroid(occs []occurrence, group []int) []float64 {
	lens := make([]int, len(group))
	for i, idx := range group {
		lens[i] = len(occs[idx].values)
	}
	sort.Ints(lens)
	L := lens[len(lens)/2]
	sum := make([]float64, L)
	for _, idx := range group {
		r := ts.Resample(occs[idx].values, L)
		z := ts.ZNorm(r)
		for l := range sum {
			sum[l] += z[l]
		}
	}
	inv := 1 / float64(len(group))
	for l := range sum {
		sum[l] *= inv
	}
	return sum
}

// medoid returns the member minimizing the summed distance to the rest.
func medoid(occs []occurrence, group []int, d [][]float64) []float64 {
	best := group[0]
	bestSum := sumRow(d, group, group[0])
	for _, idx := range group[1:] {
		if s := sumRow(d, group, idx); s < bestSum {
			bestSum = s
			best = idx
		}
	}
	out := make([]float64, len(occs[best].values))
	copy(out, occs[best].values)
	return out
}

func sumRow(d [][]float64, group []int, i int) float64 {
	var s float64
	for _, j := range group {
		s += d[i][j]
	}
	return s
}
