// Rotation invariance (paper §6.1): train on clean data, classify test
// series that have been circularly shifted at random cut points — the
// distortion radial shape scans and out-of-phase video data suffer from.
// Global-distance classifiers collapse; RPM with its rotation-invariant
// transform (match each pattern against the series AND its midpoint
// rotation, keep the minimum) stays accurate. Reproduces the shape of
// Table 4 and Figure 10 on the SynGunPoint dataset.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rpm"
)

func main() {
	split := rpm.GenerateDataset("SynGunPoint", 1)

	// Rotate ONLY the test data: the training data is clean, as in the
	// paper ("we learn the patterns on existing training data, but modify
	// the test data to create rotation distortion").
	rng := rand.New(rand.NewSource(42))
	rotated := make(rpm.Dataset, len(split.Test))
	for i, in := range split.Test {
		cut := 1 + rng.Intn(len(in.Values)-1)
		rotated[i] = rpm.Instance{Label: in.Label, Values: rpm.Rotate(in.Values, cut)}
	}

	fixed := rpm.DefaultOptions()
	fixed.Mode = rpm.ParamFixed
	fixed.Params = rpm.SAXParams{Window: 30, PAA: 6, Alphabet: 4}

	inv := fixed
	inv.RotationInvariant = true

	plain, err := rpm.Train(split.Train, fixed)
	if err != nil {
		log.Fatal(err)
	}
	invariant, err := rpm.Train(split.Train, inv)
	if err != nil {
		log.Fatal(err)
	}
	nnED, err := rpm.NewNNEuclidean(split.Train)
	if err != nil {
		log.Fatal(err)
	}
	nnDTW, err := rpm.NewNNDTWBest(split.Train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("test set               NN-ED   NN-DTWB  RPM      RPM(rot-inv)")
	fmt.Printf("clean                  %.3f   %.3f    %.3f    %.3f\n",
		errOf(rpm.PredictAll(nnED, split.Test), split.Test),
		errOf(rpm.PredictAll(nnDTW, split.Test), split.Test),
		errOf(plain.PredictBatch(split.Test), split.Test),
		errOf(invariant.PredictBatch(split.Test), split.Test))
	fmt.Printf("rotated                %.3f   %.3f    %.3f    %.3f\n",
		errOf(rpm.PredictAll(nnED, rotated), rotated),
		errOf(rpm.PredictAll(nnDTW, rotated), rotated),
		errOf(plain.PredictBatch(rotated), rotated),
		errOf(invariant.PredictBatch(rotated), rotated))
	fmt.Println("\nExpected shape (paper Table 4): the NN baselines degrade drastically on")
	fmt.Println("rotated data while rotation-invariant RPM stays close to its clean error.")
}

func errOf(preds []int, d rpm.Dataset) float64 {
	wrong := 0
	for i, p := range preds {
		if p != d[i].Label {
			wrong++
		}
	}
	return float64(wrong) / float64(len(d))
}
