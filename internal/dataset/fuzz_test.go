package dataset

import (
	"math"
	"strings"
	"testing"
)

// TestReadWithRejections is the table of hostile inputs the strict reader
// must refuse with a line-numbered error (and never panic on).
func TestReadWithRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts ReadOptions
		want string // substring of the error, "" means must succeed
	}{
		{"valid", "1,0.5,0.6\n2,0.7,0.8\n", ReadOptions{}, ""},
		{"valid whitespace", "1 0.5 0.6\n2 0.7 0.8\n", ReadOptions{}, ""},
		{"blank lines skipped", "\n1,0.5,0.6\n\n", ReadOptions{}, ""},
		{"label only", "1\n", ReadOptions{}, "need a label"},
		{"bad label", "abc,1,2\n", ReadOptions{}, "bad label"},
		{"nan label", "NaN,1,2\n", ReadOptions{}, "non-finite or out-of-range label"},
		{"inf label", "+Inf,1,2\n", ReadOptions{}, "non-finite or out-of-range label"},
		{"huge label", "1e300,1,2\n", ReadOptions{}, "non-finite or out-of-range label"},
		{"bad value", "1,0.5,xyz\n", ReadOptions{}, "bad value"},
		{"nan value", "1,0.5,NaN\n", ReadOptions{}, "non-finite value"},
		{"inf value", "1,0.5,-Inf\n", ReadOptions{}, "non-finite value"},
		{"ragged strict", "1,0.5,0.6\n2,0.7\n", ReadOptions{}, "ragged row"},
		{"ragged allowed", "1,0.5,0.6\n2,0.7\n", ReadOptions{AllowVariableLength: true}, ""},
		{"over cap", "1,1,2,3,4\n", ReadOptions{MaxLineValues: 3}, "per-line cap"},
		{"at cap", "1,1,2,3\n", ReadOptions{MaxLineValues: 3}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ReadWith(strings.NewReader(tc.in), tc.opts)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted hostile input, got %d instances", len(d))
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzDatasetRead asserts the core robustness contract of the reader:
// any byte stream either parses into finite, well-formed instances or
// returns an error — it never panics and never lets NaN/Inf through.
func FuzzDatasetRead(f *testing.F) {
	f.Add([]byte("1,0.5,0.6\n2,0.7,0.8\n"))
	f.Add([]byte("1 0.5 0.6\n2 0.7 0.8\n"))
	f.Add([]byte("1.0000000e+00, -2.5e-1, 3\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("1\n"))
	f.Add([]byte("NaN,1,2\n"))
	f.Add([]byte("1,NaN\n"))
	f.Add([]byte("1,Inf,-Inf\n"))
	f.Add([]byte("1e999,1\n"))
	f.Add([]byte("1,2,3\n4,5\n"))
	f.Add([]byte("a,b,c\n"))
	f.Add([]byte("1,,2\n"))
	f.Add([]byte("-9999999999999999999,1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		wantLen := -1
		for i, in := range d {
			if len(in.Values) == 0 {
				t.Fatalf("instance %d has no values", i)
			}
			if wantLen < 0 {
				wantLen = len(in.Values)
			} else if len(in.Values) != wantLen {
				t.Fatalf("strict Read returned ragged rows: %d vs %d", len(in.Values), wantLen)
			}
			for j, v := range in.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("instance %d value %d is not finite: %v", i, j, v)
				}
			}
		}
	})
}
