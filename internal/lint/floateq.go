package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in non-test
// code. Exact float equality is almost always a bug in a numerical
// pipeline (accumulated rounding differs across code paths and
// optimization levels); distance comparisons should use tolerances.
//
// Two idioms are exempt:
//
//   - comparisons where one side is a constant zero — the repo uses 0
//     as an "unset/sentinel" value for distances, scales, and option
//     fields, and 0 is exactly representable;
//   - x != x / x == x self-comparison, the allocation-free NaN test.
//
// Everything else takes a tolerance or a reasoned
// //rpmlint:ignore floateq directive (e.g. comparing values that are
// copies of the same computation, where equality is exact by
// construction).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= between floating-point operands",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if pass.isConstZero(be.X) || pass.isConstZero(be.Y) {
				return true
			}
			if sameIdent(be.X, be.Y) {
				return true // NaN check: x != x
			}
			pass.Reportf(be.Pos(), "exact floating-point %s comparison; use a tolerance (or //rpmlint:ignore floateq <reason> when equality is exact by construction)", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstZero reports whether e is a compile-time constant equal to 0.
func (p *Pass) isConstZero(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(tv.Value)
		return f == 0
	}
	return false
}

// sameIdent reports whether both operands are the same identifier
// (object-identical), i.e. the x != x NaN idiom.
func sameIdent(a, b ast.Expr) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	return ok && ai.Name == bi.Name
}
