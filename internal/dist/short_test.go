package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rpm/internal/ts"
)

// TestMatcherBestShortEquivalence pins the hoisted short-query path of
// Matcher.Best: for every query shorter than the pattern the result is
// byte-identical to the old routing through ClosestMatch on the stored
// z-normalized pattern, and agrees with ClosestMatch on the raw pattern
// up to floating point (per-window z-normalization is invariant to the
// pattern's global normalization).
func TestMatcherBestShortEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := makeSeries(rng, 16+rng.Intn(64))
		q := makeSeries(rng, 1+rng.Intn(len(pat)-1)) // strictly shorter
		m := NewMatcher(pat)
		got := m.Best(q)
		// Old routing, spelled out: swap roles, z-normalize the query,
		// slide it over the stored zp.
		old := ClosestMatch(ts.ZNorm(pat), q)
		if got.Pos != old.Pos || got.Dist != old.Dist {
			t.Logf("seed %d: hoisted %+v != old routing %+v", seed, got, old)
			return false
		}
		// Raw-pattern agreement (affine invariance of per-window z-norm).
		// Distances must agree to fp tolerance; positions may differ when
		// several windows tie, since tie-breaking is fp-noise sensitive.
		raw := ClosestMatch(pat, q)
		if math.Abs(got.Dist-raw.Dist) > 1e-9 {
			t.Logf("seed %d: hoisted %+v != raw ClosestMatch %+v", seed, got, raw)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMatcherBestShortConstantQuery: a constant (zero-variance) short
// query z-normalizes to the zero vector and must still match somewhere
// with a finite distance.
func TestMatcherBestShortConstantQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatcher(makeSeries(rng, 40))
	got := m.Best([]float64{3, 3, 3, 3, 3})
	if math.IsInf(got.Dist, 1) || got.Pos < 0 {
		t.Fatalf("constant short query: %+v", got)
	}
}

// BenchmarkMatcherBestShort measures the short-query path (query shorter
// than the pattern) that serving exposes to arbitrary query lengths.
func BenchmarkMatcherBestShort(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := NewMatcher(makeSeries(rng, 256))
	q := makeSeries(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Best(q)
	}
}

// BenchmarkMatcherBestLong is the common long-series counterpart, for
// comparing the two paths' costs.
func BenchmarkMatcherBestLong(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := NewMatcher(makeSeries(rng, 64))
	series := makeSeries(rng, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Best(series)
	}
}
