// Package sequitur implements the SEQUITUR algorithm of Nevill-Manning and
// Witten (1997): online inference of a context-free grammar from a token
// sequence in linear time and space. The grammar maintains two invariants —
// digram uniqueness (no pair of adjacent symbols appears more than once in
// the grammar) and rule utility (every rule is used at least twice) — which
// together make repeated subsequences of the input surface as grammar rules.
//
// RPM (paper §3.2.2) feeds the SAX word sequence to Sequitur and treats each
// rule's expanded occurrences as a candidate motif. To support mapping rules
// back to time-series subsequences, the grammar reports, for every rule, the
// token-index spans of all its occurrences in the parse of the input.
package sequitur

import (
	"fmt"
	"sort"
	"strings"
)

// symbol is a node in a rule's doubly-linked symbol list. A symbol is one
// of: a terminal (r == nil, token >= 0), a non-terminal referencing a rule
// (r != nil, guard false), or a rule's guard node (guard true, r points to
// the owning rule).
type symbol struct {
	next, prev *symbol
	token      int
	r          *rule
	guard      bool
}

func (s *symbol) isGuard() bool       { return s.guard }
func (s *symbol) isNonTerminal() bool { return s.r != nil && !s.guard }

// id returns the digram identity of the symbol: non-negative for
// terminals, negative (unique per rule) for non-terminals.
func (s *symbol) id() int64 {
	if s.isNonTerminal() {
		return -int64(s.r.id) - 1
	}
	return int64(s.token)
}

// rule is a grammar production. Its right-hand side is the circular list
// hanging off the guard node: guard.next is the first symbol, guard.prev
// the last.
type rule struct {
	guard *symbol
	id    int
	count int // number of non-terminal references to this rule
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

// Grammar is an inferred SEQUITUR grammar. The zero value is not usable;
// construct with Infer or New/Append.
type Grammar struct {
	root    *rule
	rules   []*rule // all live rules, root first; holes are nil after inlining
	digrams map[[2]int64]*symbol
	length  int // number of input tokens consumed
}

// New returns an empty grammar ready for Append.
func New() *Grammar {
	g := &Grammar{digrams: make(map[[2]int64]*symbol)}
	g.root = g.newRule()
	return g
}

// Infer builds the grammar of the whole token sequence.
func Infer(tokens []int) *Grammar {
	g := New()
	for _, t := range tokens {
		g.Append(t)
	}
	return g
}

// Len returns the number of tokens consumed so far.
func (g *Grammar) Len() int { return g.length }

func (g *Grammar) newRule() *rule {
	r := &rule{id: len(g.rules)}
	gd := &symbol{guard: true, r: r}
	gd.next, gd.prev = gd, gd
	r.guard = gd
	g.rules = append(g.rules, r)
	return r
}

// Append feeds the next input token to the grammar. Tokens must be
// non-negative.
func (g *Grammar) Append(token int) {
	if token < 0 {
		panic(fmt.Sprintf("sequitur: negative token %d", token))
	}
	g.length++
	s := &symbol{token: token}
	g.insertAfter(g.root.last(), s)
	if g.root.first() != s {
		g.check(s.prev)
	}
}

// digramKey builds the index key for the digram starting at s.
func digramKey(s *symbol) [2]int64 { return [2]int64{s.id(), s.next.id()} }

// deleteDigram removes the digram starting at s from the index, if the
// index currently points at this exact occurrence.
func (g *Grammar) deleteDigram(s *symbol) {
	if s.isGuard() || s.next == nil || s.next.isGuard() {
		return
	}
	k := digramKey(s)
	if g.digrams[k] == s {
		delete(g.digrams, k)
	}
}

// join links left and right, unindexing the digram that used to start at
// left and re-indexing overlapping same-symbol triples (the classic "aaa"
// fix from the reference implementation).
func (g *Grammar) join(left, right *symbol) {
	if left.next != nil {
		g.deleteDigram(left)
		// Deal with triples like "aaa": relink may have created a valid
		// digram occurrence that must own the index slot.
		if right.prev != nil && right.next != nil &&
			!right.isGuard() && !right.prev.isGuard() && !right.next.isGuard() &&
			right.id() == right.prev.id() && right.id() == right.next.id() {
			g.digrams[digramKey(right)] = right
		}
		if left.prev != nil && left.next != nil &&
			!left.isGuard() && !left.prev.isGuard() && !left.next.isGuard() &&
			left.id() == left.prev.id() && left.id() == left.next.id() {
			g.digrams[digramKey(left.prev)] = left.prev
		}
	}
	left.next = right
	right.prev = left
}

// insertAfter inserts y after pos in the symbol list.
func (g *Grammar) insertAfter(pos, y *symbol) {
	g.join(y, pos.next)
	g.join(pos, y)
}

// removeSymbol unlinks s from its list, maintaining digram bookkeeping and
// the reference count of a referenced rule.
func (g *Grammar) removeSymbol(s *symbol) {
	g.join(s.prev, s.next)
	if !s.isGuard() {
		g.deleteDigram(s)
		if s.isNonTerminal() {
			s.r.count--
		}
	}
}

// check enforces digram uniqueness for the digram starting at s. It
// returns true if the digram was replaced by a rule reference.
func (g *Grammar) check(s *symbol) bool {
	if s == nil || s.isGuard() || s.next == nil || s.next.isGuard() {
		return false
	}
	k := digramKey(s)
	m, ok := g.digrams[k]
	if !ok {
		g.digrams[k] = s
		return false
	}
	if m == s {
		return false
	}
	if m.next != s { // overlapping occurrences (e.g. "aaa") are not matched
		g.match(s, m)
	}
	return true
}

// ruleOf returns the rule whose guard is gd's container when gd is a
// guard's neighbor; used to detect a digram that is a whole rule body.
func containerRule(m *symbol) *rule {
	// m.prev is the guard iff m is a rule's first symbol
	if m.prev.isGuard() {
		return m.prev.r
	}
	return nil
}

// match resolves a repeated digram: s is the newly formed occurrence, m the
// indexed one. Either the indexed occurrence is exactly an existing rule's
// body (then s is replaced by a reference to it), or a new rule is created
// and substituted at both occurrences.
func (g *Grammar) match(s, m *symbol) {
	var r *rule
	if cr := containerRule(m); cr != nil && m.next.next.isGuard() {
		r = cr
		g.substitute(s, r)
	} else {
		r = g.newRule()
		// The new rule's body is a copy of the digram.
		g.insertAfter(r.last(), g.copySymbol(s))
		g.insertAfter(r.last(), g.copySymbol(s.next))
		g.substitute(m, r)
		g.substitute(s, r)
		g.digrams[digramKey(r.first())] = r.first()
	}
	// Rule utility: if the new/old rule's first symbol references a rule
	// now used only once, inline it.
	if r.first().isNonTerminal() && r.first().r.count == 1 {
		g.expand(r.first())
	}
}

// copySymbol clones a symbol's identity (not its links), bumping rule
// reference counts.
func (g *Grammar) copySymbol(s *symbol) *symbol {
	if s.isNonTerminal() {
		s.r.count++
		return &symbol{token: s.token, r: s.r}
	}
	return &symbol{token: s.token}
}

// substitute replaces the digram starting at s with a reference to rule r.
func (g *Grammar) substitute(s *symbol, r *rule) {
	q := s.prev
	g.removeSymbol(s.next)
	g.removeSymbol(s)
	r.count++
	nt := &symbol{r: r}
	g.insertAfter(q, nt)
	if !g.check(q) {
		g.check(nt)
	}
}

// expand inlines a rule that is referenced exactly once: s is that single
// reference; the rule's body replaces it.
func (g *Grammar) expand(s *symbol) {
	left := s.prev
	right := s.next
	r := s.r
	f, l := r.first(), r.last()
	g.deleteDigram(s)
	// Drop the rule from the live set.
	g.rules[r.id] = nil
	r.count--
	g.join(left, f)
	g.join(l, right)
	g.digrams[digramKey(l)] = l
}

// NumRules returns the number of live non-root rules.
func (g *Grammar) NumRules() int {
	n := 0
	for _, r := range g.rules {
		if r != nil && r != g.root {
			n++
		}
	}
	return n
}

// Rule describes one inferred rule after a Finalize pass.
type Rule struct {
	// ID is the rule's grammar identifier (root is 0).
	ID int
	// Yield is the rule's full terminal expansion (token ids).
	Yield []int
	// Spans lists every occurrence of the rule in the parsed input, as
	// token-index ranges (inclusive).
	Spans []Span
	// RHS is a human-readable right-hand side, terminals as numbers and
	// non-terminals as R<id>.
	RHS string
}

// Span is an inclusive token-index interval [Start, End] in the input.
type Span struct{ Start, End int }

// Len returns the number of tokens the span covers.
func (s Span) Len() int { return s.End - s.Start + 1 }

// Rules performs a full derivation walk of the root rule and returns every
// live non-root rule together with its terminal yield and every occurrence
// span. The walk is linear in the input length.
func (g *Grammar) Rules() []*Rule {
	out := map[int]*Rule{}
	yieldCache := map[int][]int{}
	var yieldOf func(r *rule) []int
	yieldOf = func(r *rule) []int {
		if y, ok := yieldCache[r.id]; ok {
			return y
		}
		var y []int
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.isNonTerminal() {
				y = append(y, yieldOf(s.r)...)
			} else {
				y = append(y, s.token)
			}
		}
		yieldCache[r.id] = y
		return y
	}
	var walk func(r *rule, pos int) int
	walk = func(r *rule, pos int) int {
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.isNonTerminal() {
				sub := s.r
				n := len(yieldOf(sub))
				rec, ok := out[sub.id]
				if !ok {
					rec = &Rule{ID: sub.id, Yield: yieldOf(sub), RHS: g.ruleRHS(sub)}
					out[sub.id] = rec
				}
				rec.Spans = append(rec.Spans, Span{Start: pos, End: pos + n - 1})
				walk(sub, pos)
				pos += n
			} else {
				pos++
			}
		}
		return pos
	}
	walk(g.root, 0)
	res := make([]*Rule, 0, len(out))
	for _, r := range g.rules {
		if r == nil || r == g.root {
			continue
		}
		if rec, ok := out[r.id]; ok {
			res = append(res, rec)
		}
	}
	return res
}

func (g *Grammar) ruleRHS(r *rule) string {
	var b strings.Builder
	for s := r.first(); !s.isGuard(); s = s.next {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if s.isNonTerminal() {
			fmt.Fprintf(&b, "R%d", s.r.id)
		} else {
			fmt.Fprintf(&b, "%d", s.token)
		}
	}
	return b.String()
}

// Expand reconstructs the full input token sequence from the grammar. It
// is primarily a correctness oracle for tests.
func (g *Grammar) Expand() []int {
	var out []int
	var walk func(r *rule)
	walk = func(r *rule) {
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.isNonTerminal() {
				walk(s.r)
			} else {
				out = append(out, s.token)
			}
		}
	}
	walk(g.root)
	return out
}

// String renders the grammar, one rule per line, for debugging.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, r := range g.rules {
		if r == nil {
			continue
		}
		name := fmt.Sprintf("R%d", r.id)
		if r == g.root {
			name = "R0(root)"
		}
		fmt.Fprintf(&b, "%s -> %s\n", name, g.ruleRHS(r))
	}
	return b.String()
}

// checkInvariants verifies digram uniqueness and rule utility; tests use it
// as an oracle. It returns an error describing the first violation.
func (g *Grammar) checkInvariants() error {
	seen := map[[2]int64]int{}
	for _, r := range g.rules {
		if r == nil {
			continue
		}
		n := 0
		for s := r.first(); !s.isGuard(); s = s.next {
			n++
			if s.next != nil && !s.next.isGuard() {
				k := digramKey(s)
				seen[k]++
			}
		}
		if r != g.root && r.count < 2 {
			return fmt.Errorf("rule R%d used %d times (< 2)", r.id, r.count)
		}
		if r != g.root && n < 2 {
			return fmt.Errorf("rule R%d has %d symbols (< 2)", r.id, n)
		}
	}
	// Iterate digrams in sorted order so the same broken grammar always
	// reports the same first violation (detmap invariant).
	keys := make([][2]int64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if c := seen[k]; c > 1 {
			// overlapping digrams of equal symbols are permitted (aaa)
			if k[0] != k[1] {
				return fmt.Errorf("digram %v appears %d times", k, c)
			}
		}
	}
	return nil
}
