package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` statements over maps in deterministic packages
// whose loop bodies are order-sensitive — the single most common way a
// Go program silently stops being reproducible (PR 1's byte-identity
// contract; the paper's Table 2 depends on deterministic candidate
// generation and selection).
//
// A map range is accepted without a diagnostic only when its body is
// provably order-insensitive:
//
//   - it only collects keys/values into slices that are sorted later in
//     the same function (the canonical sort-the-keys idiom), and/or
//   - it only performs commutative integer accumulation (x++, x--,
//     x += e, |=, &=, ^= on integer lvalues), writes through map
//     indices, delete()s, or nests those inside if statements.
//
// Anything else — appending without a later sort, float accumulation
// (non-associative!), min/max tracking with tie-dependent extras,
// returns, calls — is reported. Genuinely order-free loops that the
// analysis cannot prove safe take a reasoned
// //rpmlint:ignore detmap directive.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "order-sensitive map iteration in deterministic packages",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) {
	if !pass.Config.deterministic(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			inspectShallow(body, func(n ast.Node) {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return
				}
				if _, isMap := pass.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
					return
				}
				if reason := pass.mapRangeUnsafe(rs, body); reason != "" {
					pass.Reportf(rs.Pos(), "map iteration order is random: %s; sort the keys first (or add //rpmlint:ignore detmap <reason> if provably order-free)", reason)
				}
			})
		}
	}
}

// functionBodies returns the body of every function declaration and
// function literal in f, each exactly once.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// inspectShallow visits every node under body except the interiors of
// nested function literals (which functionBodies hands out separately,
// so each node belongs to exactly one scope walk).
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// mapRangeUnsafe classifies the body of a map-range statement. It
// returns "" when the body is provably order-insensitive within scope
// (the enclosing function body, used to find post-loop sorts), or a
// short human-readable reason otherwise.
func (p *Pass) mapRangeUnsafe(rs *ast.RangeStmt, scope *ast.BlockStmt) string {
	var appendTargets []types.Object
	var reason string
	var checkStmt func(s ast.Stmt) bool
	checkStmt = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if obj := p.appendTarget(s); obj != nil {
				appendTargets = append(appendTargets, obj)
				return true
			}
			if p.mapIndexAssign(s) {
				return true
			}
			if p.integerOpAssign(s) {
				return true
			}
			reason = "loop body assigns order-dependent state"
			return false
		case *ast.IncDecStmt:
			if isInteger(p.TypeOf(s.X)) {
				return true
			}
			if ix, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok {
				if _, isMap := p.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					return true
				}
			}
			reason = "loop body increments non-integer state"
			return false
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
						return true
					}
				}
			}
			reason = "loop body has side-effecting calls"
			return false
		case *ast.IfStmt:
			if s.Init != nil && !checkStmt(s.Init) {
				return false
			}
			for _, inner := range s.Body.List {
				if !checkStmt(inner) {
					return false
				}
			}
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					for _, inner := range e.List {
						if !checkStmt(inner) {
							return false
						}
					}
				case *ast.IfStmt:
					return checkStmt(e)
				}
			}
			return true
		case *ast.BlockStmt:
			for _, inner := range s.List {
				if !checkStmt(inner) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE {
				return true
			}
			reason = "loop body branches (break/goto) order-dependently"
			return false
		case *ast.EmptyStmt:
			return true
		default:
			reason = "loop body is order-sensitive"
			return false
		}
	}
	for _, s := range rs.Body.List {
		if !checkStmt(s) {
			return reason
		}
	}
	for _, obj := range appendTargets {
		if !p.sortedAfter(obj, rs.End(), scope) {
			return "keys/values are collected but never sorted afterwards"
		}
	}
	return ""
}

// appendTarget recognizes `x = append(x, ...)` (or :=) with a single
// slice-typed ident target and returns x's object, else nil.
func (p *Pass) appendTarget(s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return nil
	}
	obj := p.Info.Uses[lhs]
	if obj == nil {
		obj = p.Info.Defs[lhs]
	}
	return obj
}

// mapIndexAssign reports whether s writes (only) through map index
// expressions — keyed writes commute across iteration orders.
func (p *Pass) mapIndexAssign(s *ast.AssignStmt) bool {
	for _, lhs := range s.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return false
		}
		if _, isMap := p.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
			return false
		}
	}
	return len(s.Lhs) > 0
}

// integerOpAssign reports whether s is a commutative integer
// accumulation: +=, -=, |=, &=, ^= with integer-typed operands.
func (p *Pass) integerOpAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if len(s.Lhs) != 1 {
		return false
	}
	return isInteger(p.TypeOf(s.Lhs[0]))
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAfter reports whether obj is passed to a sort call
// (sort.Strings/Ints/Float64s/Slice/SliceStable/Sort or
// slices.Sort/SortFunc/SortStableFunc) after pos within scope.
func (p *Pass) sortedAfter(obj types.Object, pos token.Pos, scope *ast.BlockStmt) bool {
	found := false
	inspectShallow(scope, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 || found {
			return
		}
		switch p.calleePkgPath(call) {
		case "sort", "slices":
		default:
			return
		}
		name := p.calleeOf(call).Name()
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "SortFunc", "SortStableFunc", "Stable":
		default:
			return
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.Info.Uses[arg] == obj {
			found = true
		}
	})
	return found
}
