// Package floateq is a golden fixture: exact ==/!= between floats is
// reported; literal-zero sentinels and the x != x NaN idiom are not.
package floateq

// Bad compares floats exactly.
func Bad(a, b float64) bool {
	return a == b // want "exact floating-point == comparison"
}

// BadNeq compares float32s exactly.
func BadNeq(a, b float32) bool {
	return a != b // want "exact floating-point != comparison"
}

// BadMixed compares a float expression against a non-zero constant.
func BadMixed(a float64) bool {
	return a == 1.5 // want "exact floating-point == comparison"
}

// GoodZero uses 0 as an unset sentinel — exactly representable.
func GoodZero(a float64) bool {
	return a == 0
}

// GoodZeroFloat spells the sentinel as a float literal.
func GoodZeroFloat(a float64) bool {
	return 0.0 != a
}

// GoodNaN is the allocation-free NaN test.
func GoodNaN(a float64) bool {
	return a != a
}

// GoodInts is integer equality: out of scope.
func GoodInts(a, b int) bool { return a == b }

// GoodTolerance is the recommended pattern.
func GoodTolerance(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// GoodIgnored documents an exact-by-construction comparison.
func GoodIgnored(a float64) bool {
	b := a
	//rpmlint:ignore floateq b is a copy of a; equality exact by construction
	return a == b
}
