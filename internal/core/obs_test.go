package core

import (
	"bytes"
	"reflect"
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/obs"
)

func saveBytes(t *testing.T, c *Classifier) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := c.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestObsByteIdentity is the observability determinism regression: a
// training run with a live Registry attached must produce a model that
// is byte-identical (same Save serialization, same predictions) to one
// trained with a nil Registry, at Workers 1 and Workers 8. Recording
// only reads clocks and bumps atomics; if it ever feeds back into the
// computation this test catches it.
func TestObsByteIdentity(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	for _, workers := range []int{1, 8} {
		plainOpts := workersOpts(workers)
		instrOpts := workersOpts(workers)
		instrOpts.Obs = obs.NewRegistry()

		plain, err := Train(split.Train, plainOpts)
		if err != nil {
			t.Fatal(err)
		}
		instr, err := Train(split.Train, instrOpts)
		if err != nil {
			t.Fatal(err)
		}

		if got, want := saveBytes(t, instr), saveBytes(t, plain); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: instrumented model serialization differs from uninstrumented", workers)
		}
		if !reflect.DeepEqual(plain.PredictBatch(split.Test), instr.PredictBatch(split.Test)) {
			t.Fatalf("workers=%d: instrumented predictions differ", workers)
		}
	}
}

// TestObsTrainRecords asserts the report is substantive on a non-trivial
// dataset: the stage spans exist with nonzero wall time and every
// headline counter is positive.
func TestObsTrainRecords(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	opts := workersOpts(2)
	opts.Obs = obs.NewRegistry()
	c, err := Train(split.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Patterns) == 0 {
		t.Fatal("degenerate fixture: no patterns")
	}
	snap := c.TrainSnapshot()
	if snap == nil {
		t.Fatal("TrainSnapshot returned nil with a live registry")
	}
	for _, span := range []string{SpanTrain, SpanParamSearch, SpanCandidates, SpanStep1, SpanStep2, SpanStep3, SpanFit} {
		s := snap.FindSpan(span)
		if s == nil {
			t.Fatalf("span %q missing from snapshot", span)
		}
		if s.WallNS <= 0 {
			t.Errorf("span %q has non-positive wall %d", span, s.WallNS)
		}
	}
	for _, ctr := range []string{
		CtrCandidates, CtrClustersKept, CtrPruneKept,
		CtrSearchEvals, CtrSearchCacheHits, CtrSearchCacheMiss,
		CtrCFSExpansions, CtrCFSSelected,
	} {
		if v := snap.Counter(ctr); v <= 0 {
			t.Errorf("counter %q = %d, want > 0", ctr, v)
		}
	}
	// Per-class candidate counters must sum to the total.
	var perClass int64
	for _, c := range snap.Counters {
		if len(c.Name) > len(CtrCandidatesClass) && c.Name[:len(CtrCandidatesClass)] == CtrCandidatesClass {
			perClass += c.Value
		}
	}
	if total := snap.Counter(CtrCandidates); perClass != total {
		t.Errorf("per-class candidate counters sum to %d, total says %d", perClass, total)
	}
	// Pools must have seen work, and kept+dropped must cover all candidates.
	foundPool := false
	for _, p := range snap.Pools {
		if p.Name == PoolCandidates && p.Tasks > 0 {
			foundPool = true
		}
	}
	if !foundPool {
		t.Errorf("pool %q recorded no tasks", PoolCandidates)
	}
	if kept, dropped, total := snap.Counter(CtrPruneKept), snap.Counter(CtrPruneDropped), snap.Counter(CtrCandidates); kept+dropped != total {
		t.Errorf("prune kept %d + dropped %d != candidates %d", kept, dropped, total)
	}
	// The report never leaks the inner split trainings: exactly one train
	// span root (plus nothing else at root level from this package).
	trains := 0
	for _, s := range snap.Spans {
		if s.Name == SpanTrain {
			trains++
		}
	}
	if trains != 1 {
		t.Errorf("got %d %q root spans, want exactly 1 (inner search trainings must be stripped)", trains, SpanTrain)
	}
}

// TestObsSnapshotStableJSON locks the snapshot's JSON encoding shape:
// two snapshots of the same registry state encode identically.
func TestObsSnapshotStableJSON(t *testing.T) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	opts := workersOpts(1)
	opts.Obs = obs.NewRegistry()
	c, err := Train(split.Train, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.TrainSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.TrainSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot JSON encoding is not stable across calls")
	}
	if len(a) == 0 || a[0] != '{' {
		t.Fatalf("unexpected JSON shape: %.40s", a)
	}
}

// benchTrain is the shared body of the overhead benchmarks: one full
// fixed-parameter training (search excluded so the measured work is the
// instrumented pipeline itself, not the dominating DIRECT evaluations).
func benchTrain(b *testing.B, reg func() *obs.Registry) {
	split := datagen.MustByName("SynItalyPower").Generate(3)
	opts := workersOpts(1)
	opts.Mode = ParamFixed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Obs = reg()
		if _, err := Train(split.Train, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainNoRegistry is the uninstrumented baseline; compare with
// BenchmarkTrainLiveRegistry to measure the recording overhead (the
// nil-path requirement is < 2%, i.e. this benchmark must not regress
// when instrumentation code is added to the pipeline).
func BenchmarkTrainNoRegistry(b *testing.B) {
	benchTrain(b, func() *obs.Registry { return nil })
}

// BenchmarkTrainLiveRegistry measures a full training with recording on.
func BenchmarkTrainLiveRegistry(b *testing.B) {
	benchTrain(b, obs.NewRegistry)
}
