// Package obs is the repo's stdlib-only instrumentation substrate: a
// Registry of hierarchical spans, atomic counters and gauges, and
// worker-pool usage accounting, threaded through the RPM training
// pipeline so the cost of the paper's three steps (§3.2.1–§3.2.3:
// SAX → grammar induction/clustering → refinement/CFS), the parameter
// search, and the worker pools becomes visible.
//
// Everything in this package is nil-safe: a nil *Registry produces nil
// spans, counters, gauges and pools, and every method on those nil
// handles is a no-op that allocates nothing. Instrumentation therefore
// costs nothing unless a caller explicitly attaches a live Registry —
// the property the byte-identity and overhead tests in internal/core
// verify.
//
// Concurrency: all mutating operations (Counter.Add, Gauge.Set,
// Span.Add/AddBusy, Pool.WorkerTask) are atomic or mutex-guarded and
// safe from any goroutine. Reads (Snapshot) may run concurrently with
// writes and observe a consistent tree with possibly-stale values.
//
// Determinism contract: recording into a Registry never changes the
// observed computation — it only reads clocks and bumps atomics —
// so training with a live Registry is byte-identical to training
// without one (enforced by TestObsByteIdentity in internal/core).
package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxPoolWorkers bounds the per-worker task slots a Pool tracks; worker
// ids at or above the bound are folded into the last slot. Worker pools
// in this repo are bounded by GOMAXPROCS, so the fold only triggers on
// very wide machines.
const MaxPoolWorkers = 64

// Registry collects the instrumentation of one training or benchmark
// run. The zero value is not usable; construct with NewRegistry. A nil
// *Registry is the canonical "instrumentation off" value: every method
// is a no-op returning nil handles.
type Registry struct {
	mu        sync.Mutex
	started   time.Time
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	pools     map[string]*Pool
	summaries map[string]*Summary
	roots     []*Span
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		started:   time.Now(),
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		pools:     map[string]*Pool{},
		summaries: map[string]*Summary{},
	}
}

// Counter returns the named monotonically-increasing counter, creating
// it on first use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge (a last-write-wins value), creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Pool returns the named worker-pool accumulator, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Pool(name string) *Pool {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.pools[name]
	if !ok {
		p = &Pool{name: name}
		r.pools[name] = p
	}
	return p
}

// Summary returns the named duration summary (a histogram-ish latency
// accumulator), creating it on first use. Returns nil on a nil registry.
func (r *Registry) Summary(name string) *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{name: name}
		s.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 sentinel: no observations yet
		r.summaries[name] = s
	}
	return s
}

// StartSpan opens a new root-level span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{reg: r, name: name, start: time.Now()}
	r.mu.Lock()
	r.roots = append(r.roots, s)
	r.mu.Unlock()
	return s
}

// Counter is a monotonically-increasing atomic counter. A nil *Counter
// is a valid no-op handle.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-write-wins value. A nil *Gauge is a valid
// no-op handle.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax stores v if it exceeds the current value. No-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// summaryBuckets is the number of power-of-two latency buckets a Summary
// tracks: bucket i counts observations in [2^i, 2^(i+1)) nanoseconds,
// with bucket 0 also absorbing sub-nanosecond values and the last bucket
// absorbing everything ≥ 2^(summaryBuckets-1) ns (~9.2 s and beyond —
// far past any request this repo serves).
const summaryBuckets = 34

// Summary is a duration accumulator with approximate quantiles: count,
// sum, min, max plus a fixed set of power-of-two histogram buckets, all
// atomics. It is the latency measure of the serving layer, where a plain
// Span's accumulated wall time hides tail behavior. A nil *Summary is a
// valid no-op handle; all methods are goroutine-safe.
type Summary struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64 // ns
	min     atomic.Int64 // ns; MaxInt64 until the first observation
	max     atomic.Int64 // ns
	buckets [summaryBuckets]atomic.Int64
}

// Observe folds one duration into the summary. Negative durations clamp
// to zero. No-op on nil.
func (s *Summary) Observe(d time.Duration) {
	if s == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		cur := s.min.Load()
		if ns >= cur || s.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	s.buckets[summaryBucket(ns)].Add(1)
}

// summaryBucket maps a nanosecond value to its power-of-two bucket.
func summaryBucket(ns int64) int {
	b := 0
	for ns > 1 && b < summaryBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// Count returns the number of observations (0 on nil).
func (s *Summary) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Span is one node in the hierarchical timing tree. Two usage styles:
//
//   - Start/End: s := parent.Start("step3"); defer s.End() — records one
//     wall-clock interval (repeated Start with the same name creates
//     sibling spans).
//   - Aggregate: s := parent.Child("step1_sax"); then s.Add(d) from any
//     goroutine — folds externally measured durations into one span.
//     Used by the per-class candidate fan-out, where the per-stage work
//     of concurrent classes accumulates into a single stage span (the
//     reported wall is then the summed busy time across classes, which
//     may exceed the parent's wall under parallelism).
//
// Busy time (AddBusy) is the CPU-ish measure: total attributed work
// across workers, ≥ wall when the span's work ran in parallel.
// A nil *Span is a valid no-op handle; all methods are goroutine-safe.
type Span struct {
	reg    *Registry
	name   string
	parent *Span
	start  time.Time
	wall   atomic.Int64 // accumulated ns
	busy   atomic.Int64 // attributed parallel work, ns
	count  atomic.Int64 // completed Start..End intervals / Add calls

	mu       sync.Mutex
	children []*Span
}

// Start opens a child span. Returns nil on a nil span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.Child(name)
	c.start = time.Now()
	return c
}

// Child creates (always a new) child span without starting its clock,
// for use as an Add aggregation target. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{reg: s.reg, name: name, parent: s}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes a span opened by Start/StartSpan, folding the elapsed wall
// time in. No-op on nil or on a span never started.
func (s *Span) End() {
	if s == nil || s.start.IsZero() {
		return
	}
	s.wall.Add(int64(time.Since(s.start)))
	s.count.Add(1)
}

// Add folds an externally measured duration into the span's wall time.
// Safe from any goroutine; used to aggregate per-class stage work.
// No-op on nil.
func (s *Span) Add(d time.Duration) {
	if s == nil {
		return
	}
	s.wall.Add(int64(d))
	s.count.Add(1)
}

// AddBusy attributes parallel work time to the span (the CPU-ish
// measure: summed across workers it can exceed wall). No-op on nil.
func (s *Span) AddBusy(d time.Duration) {
	if s == nil {
		return
	}
	s.busy.Add(int64(d))
}

// Wall returns the span's accumulated wall time so far (0 on nil).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.wall.Load())
}

// Pool accumulates worker-pool usage for one named pool across all of
// its runs: tasks and busy time per worker slot, plus run wall time and
// scheduled capacity (workers × wall), from which idle time derives.
// A nil *Pool is a valid no-op handle; all methods are atomic.
type Pool struct {
	name       string
	runs       atomic.Int64
	tasks      atomic.Int64
	busy       atomic.Int64 // summed task durations, ns
	capacity   atomic.Int64 // Σ runs workers×wall, ns
	wall       atomic.Int64 // Σ runs wall, ns
	maxWorkers atomic.Int64
	perWorker  [MaxPoolWorkers]atomic.Int64 // tasks per worker slot
}

// WorkerTask records one completed task of duration d executed by the
// given worker slot. No-op on nil.
func (p *Pool) WorkerTask(worker int, d time.Duration) {
	if p == nil {
		return
	}
	p.tasks.Add(1)
	p.busy.Add(int64(d))
	if worker < 0 {
		worker = 0
	}
	if worker >= MaxPoolWorkers {
		worker = MaxPoolWorkers - 1
	}
	p.perWorker[worker].Add(1)
}

// RunDone records one completed pool run that used the given number of
// workers for the given wall time. No-op on nil.
func (p *Pool) RunDone(workers int, wall time.Duration) {
	if p == nil {
		return
	}
	p.runs.Add(1)
	p.wall.Add(int64(wall))
	p.capacity.Add(int64(workers) * int64(wall))
	for {
		cur := p.maxWorkers.Load()
		if int64(workers) <= cur || p.maxWorkers.CompareAndSwap(cur, int64(workers)) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Snapshots

// Snapshot is a consistent, render-ready copy of a Registry's state.
// Counters, gauges and pools are sorted by name so the JSON encoding is
// stable across runs with identical values; spans keep creation order.
type Snapshot struct {
	Spans     []SpanSnapshot    `json:"spans,omitempty"`
	Counters  []CounterSnapshot `json:"counters,omitempty"`
	Gauges    []GaugeSnapshot   `json:"gauges,omitempty"`
	Pools     []PoolSnapshot    `json:"pools,omitempty"`
	Summaries []SummarySnapshot `json:"summaries,omitempty"`
}

// SpanSnapshot is one timing-tree node. WallNS is the accumulated wall
// time; BusyNS the attributed parallel work (0 when not measured);
// Count the number of intervals/Add calls folded in.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	WallNS   int64          `json:"wallNS"`
	BusyNS   int64          `json:"busyNS,omitempty"`
	Count    int64          `json:"count"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Wall returns the node's wall time as a Duration.
func (s SpanSnapshot) Wall() time.Duration { return time.Duration(s.WallNS) }

// CounterSnapshot is one counter's name and value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's name and value.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// SummarySnapshot is one latency summary's state. The quantiles are
// approximate: each is the upper bound of the power-of-two bucket the
// quantile falls in (so they over-report by at most 2x), which is enough
// to see tail behavior without per-observation storage.
type SummarySnapshot struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	SumNS  int64  `json:"sumNS"`
	MinNS  int64  `json:"minNS"`
	MaxNS  int64  `json:"maxNS"`
	P50NS  int64  `json:"p50NS"`
	P90NS  int64  `json:"p90NS"`
	P99NS  int64  `json:"p99NS"`
	MeanNS int64  `json:"meanNS"`
}

// PoolSnapshot is one worker pool's cumulative usage. IdleNS is derived:
// scheduled capacity (Σ workers×wall) minus busy time.
type PoolSnapshot struct {
	Name           string  `json:"name"`
	Runs           int64   `json:"runs"`
	Tasks          int64   `json:"tasks"`
	BusyNS         int64   `json:"busyNS"`
	WallNS         int64   `json:"wallNS"`
	IdleNS         int64   `json:"idleNS"`
	MaxWorkers     int     `json:"maxWorkers"`
	TasksPerWorker []int64 `json:"tasksPerWorker,omitempty"`
}

// Snapshot captures the registry's current state. Returns nil on a nil
// registry. Safe to call concurrently with recording.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	snap := &Snapshot{}
	r.mu.Lock()
	roots := append([]*Span(nil), r.roots...)
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	pools := make([]*Pool, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	summaries := make([]*Summary, 0, len(r.summaries))
	for _, s := range r.summaries {
		summaries = append(summaries, s)
	}
	r.mu.Unlock()

	for _, s := range roots {
		snap.Spans = append(snap.Spans, snapSpan(s))
	}
	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	for _, p := range pools {
		snap.Pools = append(snap.Pools, snapPool(p))
	}
	sort.Slice(snap.Pools, func(i, j int) bool { return snap.Pools[i].Name < snap.Pools[j].Name })
	for _, s := range summaries {
		snap.Summaries = append(snap.Summaries, snapSummary(s))
	}
	sort.Slice(snap.Summaries, func(i, j int) bool { return snap.Summaries[i].Name < snap.Summaries[j].Name })
	return snap
}

// snapSummary copies a summary's atomics and derives the approximate
// quantiles from the bucket counts. Concurrent Observe calls may make
// count and the bucket total differ by in-flight observations; quantile
// ranks use the bucket total so they stay internally consistent.
func snapSummary(s *Summary) SummarySnapshot {
	out := SummarySnapshot{Name: s.name, Count: s.count.Load(), SumNS: s.sum.Load(), MaxNS: s.max.Load()}
	if min := s.min.Load(); out.Count > 0 && min != int64(^uint64(0)>>1) {
		out.MinNS = min
	}
	if out.Count > 0 {
		out.MeanNS = out.SumNS / out.Count
	}
	var counts [summaryBuckets]int64
	var total int64
	for i := range s.buckets {
		counts[i] = s.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return out
	}
	quantile := func(q float64) int64 {
		rank := int64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var seen int64
		for i, c := range counts {
			seen += c
			if seen > rank {
				return int64(1) << uint(i+1) // bucket upper bound
			}
		}
		return out.MaxNS
	}
	out.P50NS = quantile(0.50)
	out.P90NS = quantile(0.90)
	out.P99NS = quantile(0.99)
	return out
}

func snapSpan(s *Span) SpanSnapshot {
	out := SpanSnapshot{
		Name:   s.name,
		WallNS: s.wall.Load(),
		BusyNS: s.busy.Load(),
		Count:  s.count.Load(),
	}
	// A still-running span reports elapsed-so-far so live /metrics views
	// are useful mid-run.
	if out.Count == 0 && !s.start.IsZero() {
		out.WallNS = int64(time.Since(s.start))
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, snapSpan(c))
	}
	return out
}

func snapPool(p *Pool) PoolSnapshot {
	out := PoolSnapshot{
		Name:       p.name,
		Runs:       p.runs.Load(),
		Tasks:      p.tasks.Load(),
		BusyNS:     p.busy.Load(),
		WallNS:     p.wall.Load(),
		MaxWorkers: int(p.maxWorkers.Load()),
	}
	if idle := p.capacity.Load() - out.BusyNS; idle > 0 {
		out.IdleNS = idle
	}
	for w := 0; w < MaxPoolWorkers; w++ {
		if v := p.perWorker[w].Load(); v != 0 {
			for len(out.TasksPerWorker) <= w {
				out.TasksPerWorker = append(out.TasksPerWorker, 0)
			}
			out.TasksPerWorker[w] = v
		}
	}
	return out
}

// FindSpan returns the first span (depth-first, creation order) whose
// name matches, or nil. Works on nil snapshots.
func (s *Snapshot) FindSpan(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Spans {
		if f := findSpanIn(&s.Spans[i], name); f != nil {
			return f
		}
	}
	return nil
}

func findSpanIn(s *SpanSnapshot, name string) *SpanSnapshot {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if f := findSpanIn(&s.Children[i], name); f != nil {
			return f
		}
	}
	return nil
}

// Summary returns the named summary snapshot, or nil when absent (or on
// a nil snapshot).
func (s *Snapshot) Summary(name string) *SummarySnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Summaries {
		if s.Summaries[i].Name == name {
			return &s.Summaries[i]
		}
	}
	return nil
}

// Gauge returns the named gauge's value (0 when absent or nil).
func (s *Snapshot) Gauge(name string) int64 {
	if s == nil {
		return 0
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Counter returns the named counter's value (0 when absent or nil).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// JSON renders the snapshot as indented, stable JSON (fields in struct
// order, name-sorted counters/gauges/pools).
func (s *Snapshot) JSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot for humans: the span tree with durations,
// then counters, gauges and pool usage.
func (s *Snapshot) Text() string {
	if s == nil {
		return "(no instrumentation)\n"
	}
	var b strings.Builder
	if len(s.Spans) > 0 {
		b.WriteString("spans:\n")
		for _, sp := range s.Spans {
			writeSpanText(&b, sp, 1)
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-36s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-36s %d\n", g.Name, g.Value)
		}
	}
	if len(s.Pools) > 0 {
		b.WriteString("pools:\n")
		for _, p := range s.Pools {
			fmt.Fprintf(&b, "  %-28s runs=%d tasks=%d busy=%s idle=%s maxWorkers=%d perWorker=%v\n",
				p.Name, p.Runs, p.Tasks, time.Duration(p.BusyNS).Round(time.Microsecond),
				time.Duration(p.IdleNS).Round(time.Microsecond), p.MaxWorkers, p.TasksPerWorker)
		}
	}
	if len(s.Summaries) > 0 {
		b.WriteString("summaries:\n")
		for _, sm := range s.Summaries {
			fmt.Fprintf(&b, "  %-28s n=%d mean=%s p50=%s p90=%s p99=%s max=%s\n",
				sm.Name, sm.Count, time.Duration(sm.MeanNS).Round(time.Microsecond),
				time.Duration(sm.P50NS).Round(time.Microsecond), time.Duration(sm.P90NS).Round(time.Microsecond),
				time.Duration(sm.P99NS).Round(time.Microsecond), time.Duration(sm.MaxNS).Round(time.Microsecond))
		}
	}
	return b.String()
}

func writeSpanText(b *strings.Builder, s SpanSnapshot, depth int) {
	fmt.Fprintf(b, "%s%-*s wall=%s", strings.Repeat("  ", depth), 36-2*depth, s.Name,
		time.Duration(s.WallNS).Round(time.Microsecond))
	if s.BusyNS > 0 {
		fmt.Fprintf(b, " busy=%s", time.Duration(s.BusyNS).Round(time.Microsecond))
	}
	if s.Count > 1 {
		fmt.Fprintf(b, " n=%d", s.Count)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpanText(b, c, depth+1)
	}
}

// Handler serves the registry's live snapshot over HTTP: JSON by
// default (expvar-style), human text with ?format=text. Safe while the
// run is still recording. A nil registry serves "null".
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, snap.Text())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
	})
}
