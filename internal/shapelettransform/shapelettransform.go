// Package shapelettransform implements the Shapelet Transform classifier
// (Lines, Davis, Hills & Bagnall, KDD 2012), discussed in the paper's
// related work (§2.2): find the K best shapelets by information gain,
// transform every series into a K-vector of closest-match distances, and
// train any vector classifier on the result — here the same linear SVM
// RPM uses. It is not part of the paper's evaluation tables, but it is the
// closest methodological relative of RPM's transform stage and ships as an
// extension for side-by-side comparison.
package shapelettransform

import (
	"math"
	"sort"

	"rpm/internal/dist"
	"rpm/internal/svm"
	"rpm/internal/ts"
)

// Config tunes training. Zero values select sensible defaults.
type Config struct {
	// K is the number of shapelets kept for the transform (default 10·#classes,
	// capped at 100).
	K int
	// Lengths are the candidate shapelet lengths (default a 10-step sweep
	// over [m/10, m/2]).
	Lengths []int
	// Stride is the sampling stride for candidate start positions
	// (default: length/2, at least 1). Exhaustive search (stride 1 at all
	// lengths) is the original algorithm; the stride keeps the candidate
	// count near O(n·m) instead of O(n·m²).
	Stride int
	// SVM configures the classifier trained on the transformed space.
	SVM svm.Config
	// Seed drives the SVM's coordinate shuffling.
	Seed int64
}

// Model is a trained Shapelet Transform classifier.
type Model struct {
	shapelets [][]float64
	svm       *svm.Model
}

// Shapelets returns the selected shapelets, best first.
func (m *Model) Shapelets() [][]float64 { return m.shapelets }

// scored is one candidate with its quality.
type scored struct {
	values []float64
	gain   float64
	gap    float64
	series int
	start  int
}

// Train runs shapelet discovery and fits the transform classifier.
func Train(train ts.Dataset, cfg Config) *Model {
	if len(train) == 0 {
		panic("shapelettransform: empty training set")
	}
	classes := train.Classes()
	if cfg.K <= 0 {
		cfg.K = 10 * len(classes)
		if cfg.K > 100 {
			cfg.K = 100
		}
	}
	m := train.MinLen()
	if len(cfg.Lengths) == 0 {
		lo := m / 10
		if lo < 3 {
			lo = 3
		}
		hi := m / 2
		if hi < lo {
			hi = lo
		}
		step := (hi - lo) / 9
		if step < 1 {
			step = 1
		}
		for l := lo; l <= hi; l += step {
			cfg.Lengths = append(cfg.Lengths, l)
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	labels := train.Labels()
	var all []scored
	for _, L := range cfg.Lengths {
		if L > m || L < 2 {
			continue
		}
		stride := cfg.Stride
		if stride <= 0 {
			stride = L / 2
			if stride < 1 {
				stride = 1
			}
		}
		for si, in := range train {
			for p := 0; p+L <= len(in.Values); p += stride {
				cand := ts.ZNorm(in.Values[p : p+L])
				dists := make([]float64, len(train))
				for i, other := range train {
					dists[i] = dist.ClosestMatch(cand, other.Values).Dist
				}
				gain, _, gap := infoGainSplit(dists, labels)
				if gain <= 0 {
					continue
				}
				all = append(all, scored{values: cand, gain: gain, gap: gap, series: si, start: p})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		//rpmlint:ignore floateq comparator tie-break needs exact ordering for a strict weak order
		if all[i].gain != all[j].gain {
			return all[i].gain > all[j].gain
		}
		return all[i].gap > all[j].gap
	})
	// Keep the top K, discarding self-similar shapelets (overlapping
	// provenance in the same series), as the original algorithm does.
	var kept []scored
	for _, c := range all {
		if len(kept) >= cfg.K {
			break
		}
		if selfSimilar(c, kept) {
			continue
		}
		kept = append(kept, c)
	}
	model := &Model{}
	for _, c := range kept {
		model.shapelets = append(model.shapelets, c.values)
	}
	if len(model.shapelets) == 0 {
		// degenerate: no informative shapelet; fall back to one arbitrary
		// subsequence so the transform stays well-defined
		L := cfg.Lengths[0]
		model.shapelets = append(model.shapelets, ts.ZNorm(train[0].Values[:L]))
	}
	X := make([][]float64, len(train))
	for i, in := range train {
		X[i] = model.transform(in.Values)
	}
	model.svm = svm.Train(X, labels, cfg.SVM)
	return model
}

// selfSimilar reports whether c overlaps an already kept shapelet from the
// same source series.
func selfSimilar(c scored, kept []scored) bool {
	for _, k := range kept {
		if k.series != c.series {
			continue
		}
		aLo, aHi := c.start, c.start+len(c.values)
		bLo, bHi := k.start, k.start+len(k.values)
		if aLo < bHi && bLo < aHi {
			return true
		}
	}
	return false
}

func (m *Model) transform(v []float64) []float64 {
	out := make([]float64, len(m.shapelets))
	for i, s := range m.shapelets {
		out[i] = dist.ClosestMatch(s, v).Dist
	}
	return out
}

// Predict classifies one series.
func (m *Model) Predict(v []float64) int { return m.svm.Predict(m.transform(v)) }

// PredictBatch classifies every instance of test.
func (m *Model) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	for i, in := range test {
		out[i] = m.Predict(in.Values)
	}
	return out
}

// infoGainSplit finds the best threshold on dists by information gain
// (shared logic with the shapelet literature's split evaluation).
func infoGainSplit(dists []float64, labels []int) (gain, threshold, gap float64) {
	n := len(dists)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dists[idx[a]] < dists[idx[b]] })
	total := map[int]int{}
	for _, l := range labels {
		total[l]++
	}
	h := entropyOf(total, n)
	left := map[int]int{}
	bestGain, bestThr, bestGap := -1.0, 0.0, 0.0
	for i := 0; i < n-1; i++ {
		left[labels[idx[i]]]++
		//rpmlint:ignore floateq adjacent sorted values: no threshold exists strictly between equal stored values
		if dists[idx[i]] == dists[idx[i+1]] {
			continue
		}
		nl := i + 1
		nr := n - nl
		right := map[int]int{}
		for l, c := range total {
			right[l] = c - left[l]
		}
		g := h - (float64(nl)/float64(n))*entropyOf(left, nl) - (float64(nr)/float64(n))*entropyOf(right, nr)
		gp := dists[idx[i+1]] - dists[idx[i]]
		//rpmlint:ignore floateq deterministic tie-break between identically computed gains
		if g > bestGain || (g == bestGain && gp > bestGap) {
			bestGain = g
			bestThr = (dists[idx[i]] + dists[idx[i+1]]) / 2
			bestGap = gp
		}
	}
	return bestGain, bestThr, bestGap
}

func entropyOf(counts map[int]int, n int) float64 {
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}
