package sax

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rpm/internal/ts"
)

func TestBreakpointsKnownValues(t *testing.T) {
	// Classic SAX breakpoint tables (Lin et al. 2007).
	cases := map[int][]float64{
		2: {0},
		3: {-0.43, 0.43},
		4: {-0.67, 0, 0.67},
		5: {-0.84, -0.25, 0.25, 0.84},
		6: {-0.97, -0.43, 0, 0.43, 0.97},
	}
	for alpha, want := range cases {
		got := Breakpoints(alpha)
		if len(got) != len(want) {
			t.Fatalf("alpha=%d: %d breakpoints, want %d", alpha, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.005 {
				t.Errorf("alpha=%d bp[%d] = %v, want %v", alpha, i, got[i], want[i])
			}
		}
	}
}

func TestBreakpointsMonotone(t *testing.T) {
	for alpha := MinAlphabet; alpha <= MaxAlphabet; alpha++ {
		bp := Breakpoints(alpha)
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Errorf("alpha=%d: breakpoints not strictly increasing: %v", alpha, bp)
			}
		}
	}
}

func TestBreakpointsPanicOutOfRange(t *testing.T) {
	for _, alpha := range []int{1, 0, -3, MaxAlphabet + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%d: expected panic", alpha)
				}
			}()
			Breakpoints(alpha)
		}()
	}
}

func TestSymbolEquiprobable(t *testing.T) {
	// Large normal sample: each symbol should get roughly 1/alpha of mass.
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for _, alpha := range []int{2, 3, 5, 8} {
		counts := make([]int, alpha)
		for i := 0; i < n; i++ {
			counts[Symbol(rng.NormFloat64(), alpha)]++
		}
		want := float64(n) / float64(alpha)
		for s, c := range counts {
			if math.Abs(float64(c)-want) > want*0.05 {
				t.Errorf("alpha=%d symbol %d: count %d, want ~%.0f", alpha, s, c, want)
			}
		}
	}
}

func TestSymbolBoundaries(t *testing.T) {
	// alpha=4 breakpoints ~ [-0.67, 0, 0.67]
	cases := []struct {
		x    float64
		want int
	}{
		{-10, 0}, {-0.7, 0}, {-0.5, 1}, {-0.001, 1}, {0, 2}, {0.5, 2}, {0.7, 3}, {10, 3},
	}
	for _, c := range cases {
		if got := Symbol(c.x, 4); got != c.want {
			t.Errorf("Symbol(%v,4) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestWordOf(t *testing.T) {
	// A rising ramp: first half low symbols, second half high symbols.
	v := make([]float64, 16)
	for i := range v {
		v[i] = float64(i)
	}
	w := WordOf(v, Params{Window: 16, PAA: 4, Alphabet: 4})
	if len(w) != 4 {
		t.Fatalf("word length %d, want 4", len(w))
	}
	if !(w[0] < w[1] && w[1] <= w[2] && w[2] < w[3]) {
		t.Errorf("ramp word not non-decreasing: %q", w)
	}
	if w[0] != 'a' || w[3] != 'd' {
		t.Errorf("ramp word extremes wrong: %q", w)
	}
}

func TestWordOfConstant(t *testing.T) {
	v := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	w := WordOf(v, Params{Window: 8, PAA: 4, Alphabet: 4})
	// constant -> z-norm zero vector -> all values 0 -> symbol 2 ('c') for alpha=4
	if w != "cccc" {
		t.Errorf("constant word = %q, want cccc", w)
	}
}

func TestDiscretizeOffsetsAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 100)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	p := Params{Window: 20, PAA: 4, Alphabet: 4}
	words := Discretize(v, p, false, nil)
	if len(words) != ts.NumWindows(len(v), p.Window) {
		t.Fatalf("got %d words, want %d", len(words), ts.NumWindows(len(v), p.Window))
	}
	for i, w := range words {
		if w.Offset != i {
			t.Fatalf("word %d has offset %d", i, w.Offset)
		}
		if len(w.Word) != p.PAA {
			t.Fatalf("word %d has length %d", i, len(w.Word))
		}
	}
}

func TestDiscretizeNumerosityReduction(t *testing.T) {
	// A pure sine sampled densely: neighboring windows produce identical
	// words, so reduction must shrink the output substantially, keep
	// offsets strictly increasing, and never emit two equal consecutive words.
	v := make([]float64, 300)
	for i := range v {
		v[i] = math.Sin(float64(i) * 2 * math.Pi / 60)
	}
	p := Params{Window: 30, PAA: 5, Alphabet: 5}
	full := Discretize(v, p, false, nil)
	red := Discretize(v, p, true, nil)
	if len(red) >= len(full) {
		t.Fatalf("reduction did not shrink output: %d >= %d", len(red), len(full))
	}
	for i := 1; i < len(red); i++ {
		if red[i].Offset <= red[i-1].Offset {
			t.Fatalf("offsets not increasing at %d", i)
		}
		if red[i].Word == red[i-1].Word {
			t.Fatalf("consecutive duplicate word %q at %d", red[i].Word, i)
		}
	}
	// Reduced sequence must be the subsequence of full obtained by
	// dropping consecutive duplicates.
	var wantWords []WordAt
	for i, w := range full {
		if i == 0 || w.Word != full[i-1].Word {
			wantWords = append(wantWords, w)
		}
	}
	if len(wantWords) != len(red) {
		t.Fatalf("reduction mismatch: got %d, want %d", len(red), len(wantWords))
	}
	for i := range red {
		if red[i] != wantWords[i] {
			t.Fatalf("reduction differs at %d: got %v want %v", i, red[i], wantWords[i])
		}
	}
}

func TestDiscretizeSkipJunctions(t *testing.T) {
	c := ts.Concat(make([]float64, 50), make([]float64, 50))
	rng := rand.New(rand.NewSource(3))
	for i := range c.Values {
		c.Values[i] = rng.NormFloat64()
	}
	p := Params{Window: 20, PAA: 4, Alphabet: 4}
	words := Discretize(c.Values, p, true, func(start int) bool {
		return c.SpansJunction(start, p.Window)
	})
	for _, w := range words {
		if c.SpansJunction(w.Offset, p.Window) {
			t.Fatalf("word at offset %d spans a junction", w.Offset)
		}
	}
	if len(words) == 0 {
		t.Fatal("no words produced")
	}
}

func TestDiscretizeShortSeries(t *testing.T) {
	if got := Discretize([]float64{1, 2, 3}, Params{Window: 10, PAA: 4, Alphabet: 4}, true, nil); got != nil {
		t.Errorf("expected nil for too-short series, got %v", got)
	}
}

func TestMinDistLowerBoundsEuclidean(t *testing.T) {
	// Property: MINDIST(SAX(A), SAX(B)) <= ED(znorm(A), znorm(B)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		p := Params{Window: n, PAA: 8, Alphabet: 6}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() * 2
		}
		wa := WordOf(a, p)
		wb := WordOf(b, p)
		za, zb := ts.ZNorm(a), ts.ZNorm(b)
		var ed float64
		for i := range za {
			d := za[i] - zb[i]
			ed += d * d
		}
		ed = math.Sqrt(ed)
		return MinDist(wa, wb, n, p.Alphabet) <= ed+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinDistIdenticalAndAdjacent(t *testing.T) {
	if d := MinDist("abba", "abba", 16, 4); d != 0 {
		t.Errorf("identical words MinDist = %v", d)
	}
	if d := MinDist("aaaa", "bbbb", 16, 4); d != 0 {
		t.Errorf("adjacent-symbol words MinDist = %v, want 0", d)
	}
	if d := MinDist("aaaa", "cccc", 16, 4); d <= 0 {
		t.Errorf("distant words MinDist = %v, want > 0", d)
	}
}

func TestMinDistSymmetric(t *testing.T) {
	a, b := "acdb", "badc"
	if MinDist(a, b, 20, 4) != MinDist(b, a, 20, 4) {
		t.Error("MinDist not symmetric")
	}
}

func TestMinDistPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MinDist("ab", "abc", 10, 4)
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p    Params
		m    int
		ok   bool
		name string
	}{
		{Params{20, 4, 4}, 100, true, "good"},
		{Params{20, 4, 1}, 100, false, "alphabet too small"},
		{Params{20, 4, 21}, 100, false, "alphabet too big"},
		{Params{20, 0, 4}, 100, false, "paa zero"},
		{Params{1, 1, 4}, 100, false, "window too small"},
		{Params{10, 11, 4}, 100, false, "paa exceeds window"},
		{Params{200, 4, 4}, 100, false, "window exceeds series"},
		{Params{200, 4, 4}, 0, true, "length check skipped"},
	}
	for _, c := range cases {
		err := c.p.Validate(c.m)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParamsString(t *testing.T) {
	s := Params{Window: 30, PAA: 5, Alphabet: 6}.String()
	if !strings.Contains(s, "30") || !strings.Contains(s, "5") || !strings.Contains(s, "6") {
		t.Errorf("String() = %q", s)
	}
}

func TestInvNormCDFAgainstErf(t *testing.T) {
	// invNormCDF must invert the normal CDF computed via math.Erf.
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := invNormCDF(p)
		cdf := 0.5 * (1 + math.Erf(x/math.Sqrt2))
		if math.Abs(cdf-p) > 1e-8 {
			t.Errorf("invNormCDF(%v) = %v, CDF back = %v", p, x, cdf)
		}
	}
	if !math.IsInf(invNormCDF(0), -1) || !math.IsInf(invNormCDF(1), 1) {
		t.Error("extremes should be infinite")
	}
}
