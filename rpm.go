// Package rpm implements RPM — Representative Pattern Mining for Efficient
// Time Series Classification (Wang, Lin, Senin, Oates, Gandhi,
// Boedihardjo, Chen & Frankenstein, EDBT 2016) — together with every
// substrate the paper depends on and every baseline it is evaluated
// against, all from scratch on the Go standard library.
//
// RPM classifies time series by discovering, for each class, a small set
// of representative patterns: variable-length prototype subsequences that
// occur in a large fraction of the class's training series and that
// discriminate it from the other classes. Training discretizes each
// class's series with SAX, finds recurrent patterns with Sequitur grammar
// induction, refines them by hierarchical clustering, prunes
// near-duplicates and non-discriminative candidates with correlation-based
// feature selection, and fits a linear SVM in the resulting closest-match
// distance space.
//
// # Quick start
//
//	split := rpm.GenerateDataset("SynCBF", 1)
//	clf, err := rpm.Train(split.Train, rpm.DefaultOptions())
//	if err != nil { ... }
//	pred := clf.Predict(split.Test[0].Values)
//
// See the examples directory for end-to-end programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// tables and figures.
package rpm

import (
	"context"
	"io"

	"rpm/internal/core"
	"rpm/internal/datagen"
	"rpm/internal/dataset"
	"rpm/internal/obs"
	"rpm/internal/sax"
	"rpm/internal/ts"
)

// Instance is one labeled time series.
type Instance struct {
	// Label is the class label; any integers are accepted.
	Label int
	// Values are the ordered observations.
	Values []float64
}

// Dataset is an ordered collection of labeled time series.
type Dataset []Instance

// Split is a named dataset with a train/test partition, the unit every
// experiment operates on.
type Split struct {
	Name  string
	Train Dataset
	Test  Dataset
}

// SAXParams are the three SAX discretization parameters (paper §4): the
// sliding-window length, the PAA word size, and the alphabet cardinality.
type SAXParams struct {
	Window   int
	PAA      int
	Alphabet int
}

// GIAlgorithm selects the grammar-induction algorithm behind candidate
// generation.
type GIAlgorithm int

const (
	// GISequitur is the paper's choice (Nevill-Manning & Witten 1997).
	GISequitur GIAlgorithm = iota
	// GIRePair is the Re-Pair alternative (Larsson & Moffat 1999); the
	// paper notes any context-free GI algorithm works.
	GIRePair
)

// ParamMode selects how SAX parameters are chosen during training.
type ParamMode int

const (
	// ParamDIRECT optimizes parameters per class with the DIRECT
	// derivative-free optimizer (paper §4.2). This is the default.
	ParamDIRECT ParamMode = iota
	// ParamGrid runs the exhaustive cross-validated grid search of
	// Algorithm 3.
	ParamGrid
	// ParamFixed uses Options.Params for every class, skipping the
	// search entirely.
	ParamFixed
)

// Options configures RPM training. Construct with DefaultOptions and
// override what you need.
type Options struct {
	// Gamma is the minimum pattern support as a fraction of the class's
	// training instances (default 0.2).
	Gamma float64
	// TauPercentile is the percentile of intra-cluster distances used as
	// the similar-pattern removal threshold τ (default 30).
	TauPercentile float64
	// UseMedoid picks cluster medoids instead of centroids as pattern
	// prototypes.
	UseMedoid bool
	// NumerosityReduction toggles SAX numerosity reduction (default on).
	NumerosityReduction bool
	// RotationInvariant enables the rotation-invariant transform of the
	// paper's §6.1 case study.
	RotationInvariant bool
	// GI selects the grammar-induction algorithm (default GISequitur).
	GI GIAlgorithm
	// Mode selects the parameter search; Params is used when Mode is
	// ParamFixed.
	Mode   ParamMode
	Params SAXParams
	// Splits is the number of train/validate splits per parameter
	// evaluation (default 5).
	Splits int
	// MaxEvals caps parameter-search objective evaluations per class
	// (default 60).
	MaxEvals int
	// Seed makes training deterministic (default 1).
	Seed int64
	// Sample configures seeded subsampling of the candidate-mining
	// work — the fast-training path: Step 1 discretizes only a seeded
	// fraction of the sliding-window blocks, and the parameter search
	// keeps the same fraction of its grid points (grid mode) or
	// objective evaluations (DIRECT mode). Sample.Rate 0 (the zero
	// value) and 1 both mean exhaustive mining, bit-identical to a run
	// without this knob. Sampling is deterministic: every keep/drop
	// decision is a pure function of (Sample.Seed, position), so the
	// trained model is byte-identical for any Workers value. See
	// DESIGN.md §15.
	Sample SampleOptions
	// Bags selects bagged-ensemble training via TrainEnsemble: Bags
	// members each mine their own Sample-seeded candidate subset (the
	// parameter search runs once, shared) and classify by majority
	// vote, ties breaking toward the smaller label. 0 and 1 both mean
	// a single model; Bags > 1 requires Sample.Rate in (0,1) — with
	// exhaustive mining every member would be identical. Train ignores
	// Bags; use TrainEnsemble.
	Bags int
	// Workers bounds the concurrency of training's parallel stages (the
	// pattern×instance transform matrix, the parameter-search
	// cross-validation, candidate pruning) and of PredictBatch: 0 means
	// use every core (runtime.GOMAXPROCS), 1 forces the exact sequential
	// path, any other value caps the worker goroutines. Results are
	// byte-identical for every setting — Workers trades wall-clock time
	// only (see DESIGN.md "Concurrency").
	Workers int
	// Instrument records the training run — stage timings for the
	// paper's three steps and the parameter search, pipeline counters
	// (candidates, clusters kept/dropped at γ, patterns pruned at τ,
	// search-cache hits/misses, CFS expansions) and worker-pool usage —
	// retrievable afterwards via Classifier.TrainReport. Off by default:
	// the uninstrumented path records nothing and allocates nothing, and
	// instrumentation never changes the trained model (see DESIGN.md §9).
	Instrument bool
}

// SampleOptions configures the seeded candidate-pool subsampling of
// Options.Sample.
type SampleOptions struct {
	// Rate is the fraction of mining work kept, in [0,1]. 0 and 1 both
	// disable sampling (exhaustive mining).
	Rate float64
	// Seed drives every keep/drop decision; 0 derives it from
	// Options.Seed, so a sampled run is reproducible without spelling
	// the seed out twice.
	Seed int64
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{
		Gamma:               0.2,
		TauPercentile:       30,
		NumerosityReduction: true,
		Mode:                ParamDIRECT,
		Splits:              5,
		MaxEvals:            60,
		Seed:                1,
	}
}

// Pattern is one selected representative pattern.
type Pattern struct {
	// Class is the label the pattern represents.
	Class int
	// Values is the z-normalized prototype subsequence.
	Values []float64
	// Support is the number of distinct training instances of the class
	// containing the pattern's motif.
	Support int
	// Freq is the total number of motif occurrences behind the pattern.
	Freq int
}

// Classifier is a trained RPM model.
type Classifier struct {
	inner *core.Classifier
}

// Train learns an RPM classifier. Training data should be per-instance
// z-normalized (the UCR convention); GenerateDataset and LoadUCR-produced
// archive data already are.
//
// Train validates its inputs up front — empty or single-class training
// sets, series shorter than MinSeriesLen, NaN/Inf values, out-of-range
// options or fixed SAX parameters all return a typed *Error matching
// ErrBadInput or ErrTooShort — and contains any residual internal panic
// as ErrInternal, so no input can crash the process.
func Train(train Dataset, opts Options) (*Classifier, error) {
	return TrainContext(context.Background(), train, opts)
}

// TrainContext is Train with cooperative cancellation: canceling ctx (or
// passing one with a deadline) aborts the parameter search within one
// evaluation and returns ctx.Err(). With a non-canceled ctx the model is
// byte-identical to Train's for any Options.Workers value.
func TrainContext(ctx context.Context, train Dataset, opts Options) (*Classifier, error) {
	const op = "Train"
	if err := validateTrainingSet(op, train, MinSeriesLen, true); err != nil {
		return nil, err
	}
	if err := validateOptions(op, opts, ts.Dataset.MinLen(toInternal(train))); err != nil {
		return nil, err
	}
	var c *core.Classifier
	err := guard(op, func() error {
		inner, err := core.TrainContext(ctx, toInternal(train), toCoreOptions(opts))
		if err != nil {
			return wrapCoreErr(op, err)
		}
		c = inner
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: c}, nil
}

// Predict classifies one series. It is total: any input — empty,
// non-finite, shorter than every pattern — yields a deterministic label
// without panicking (degenerate queries fall back to the training set's
// nearest-neighbor behavior). Use PredictChecked to have degenerate
// inputs rejected with a typed error instead.
func (c *Classifier) Predict(values []float64) int { return c.inner.Predict(values) }

// PredictChecked is Predict with boundary validation and panic
// containment: an empty query returns ErrTooShort, NaN/Inf values return
// ErrBadInput, and any residual internal panic comes back as ErrInternal
// instead of crashing the caller.
func (c *Classifier) PredictChecked(values []float64) (int, error) {
	const op = "Predict"
	if err := validateSeries(op, values, 1); err != nil {
		return 0, err
	}
	var label int
	err := guard(op, func() error {
		label = c.inner.Predict(values)
		return nil
	})
	return label, err
}

// PredictBatch classifies every instance and returns the predicted labels
// in order.
func (c *Classifier) PredictBatch(test Dataset) []int {
	return c.inner.PredictBatch(toInternal(test))
}

// PredictBatchContext is PredictBatch with boundary validation,
// cooperative cancellation and panic containment: every query series is
// validated up front (empty ⇒ ErrTooShort, non-finite ⇒ ErrBadInput),
// canceling ctx stops scheduling queries and returns ctx.Err(), and with
// a non-canceled ctx the labels are byte-identical to PredictBatch for
// any Workers value.
func (c *Classifier) PredictBatchContext(ctx context.Context, test Dataset) ([]int, error) {
	const op = "PredictBatch"
	for i, in := range test {
		if err := validateSeries(op, in.Values, 1); err != nil {
			return nil, apiErrf(op, errKind(err), "instance %d: %v", i, errCause(err))
		}
	}
	var out []int
	err := guard(op, func() error {
		labels, err := c.inner.PredictBatchContext(ctx, toInternal(test))
		if err != nil {
			return err // ctx error: surface unwrapped
		}
		out = labels
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Transform maps a series into the representative-pattern distance space:
// element k is the closest-match distance to pattern k. Like Predict it
// is total over its input; TransformChecked rejects degenerate input
// with a typed error instead.
func (c *Classifier) Transform(values []float64) []float64 { return c.inner.Transform(values) }

// TransformChecked is Transform with boundary validation and panic
// containment (see PredictChecked).
func (c *Classifier) TransformChecked(values []float64) ([]float64, error) {
	const op = "Transform"
	if err := validateSeries(op, values, 1); err != nil {
		return nil, err
	}
	var out []float64
	err := guard(op, func() error {
		out = c.inner.Transform(values)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictVector classifies a point already in the transformed
// (pattern-distance) space: feat[k] is the closest-match distance to
// pattern k, as Transform produces. It exists for incremental
// (streaming) inference, where the feature vector is maintained sample
// by sample and there is no whole series to hand to Predict;
// PredictVector(Transform(v)) == Predict(v) for every valid v. It is a
// hot-path primitive with a panic contract instead of an error return:
// it requires ValidateStreamingFeatures(len(feat)) == nil — a model
// with at least one pattern and a feature vector of NumPatterns
// entries — which stream creation checks once, not once per sample.
func (c *Classifier) PredictVector(feat []float64) int { return c.inner.PredictVector(feat) }

// ValidateStreamingFeatures reports whether the classifier supports
// vector prediction over featLen incremental features: the model must
// have representative patterns (a pattern-free fallback model
// classifies with whole-series 1NN, which cannot be maintained
// incrementally), must not use the rotation-invariant transform (the
// rotated view needs the complete series), and featLen must equal
// NumPatterns. Returns nil or a typed *Error matching ErrBadInput. The
// streaming layer calls this once per stream creation and then uses
// PredictVector per sample without further checks.
func (c *Classifier) ValidateStreamingFeatures(featLen int) error {
	const op = "PredictVector"
	if c.inner.NumPatterns() == 0 {
		return apiErrf(op, ErrBadInput, "model has no representative patterns (1NN fallback models cannot stream)")
	}
	if c.inner.Options().RotationInvariant {
		return apiErrf(op, ErrBadInput, "rotation-invariant models cannot stream (the rotated view needs the whole series)")
	}
	if featLen != c.inner.NumPatterns() {
		return apiErrf(op, ErrBadInput, "feature vector has %d entries, model expects %d", featLen, c.inner.NumPatterns())
	}
	return nil
}

// SetWorkers re-bounds the concurrency of batch prediction
// (PredictBatch / PredictBatchContext) after training or LoadClassifier:
// 0 means every core, 1 forces the exact sequential path, any other
// value caps the worker goroutines. Snapshots store the training
// machine's Workers setting; a serving process calls SetWorkers once at
// model-load time to impose its own bound. Results are byte-identical
// for every setting. Not safe to call concurrently with prediction.
func (c *Classifier) SetWorkers(n int) { c.inner.SetWorkers(n) }

// NumPatterns returns the number of representative patterns (the
// dimensionality of the transformed space) without copying them.
func (c *Classifier) NumPatterns() int { return c.inner.NumPatterns() }

// Patterns returns the selected representative patterns, in feature order.
func (c *Classifier) Patterns() []Pattern {
	out := make([]Pattern, len(c.inner.Patterns))
	for i, p := range c.inner.Patterns {
		out[i] = Pattern{Class: p.Class, Values: p.Values, Support: p.Support, Freq: p.Freq}
	}
	return out
}

// Save serializes the trained classifier as versioned JSON, suitable for
// shipping a trained model without its training data. Failures (a
// broken writer) surface as typed *Error values like every other public
// entry point.
func (c *Classifier) Save(w io.Writer) error {
	return wrapCoreErr("Save", c.inner.Save(w))
}

// LoadClassifier deserializes a classifier previously written by Save.
// The loaded model predicts identically to the original. The snapshot is
// fully validated before any predict-path state is built: a truncated,
// bit-flipped, or adversarial model file fails here with a typed *Error
// matching ErrCorruptModel, never with a panic at predict time.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	const op = "LoadClassifier"
	var inner *core.Classifier
	err := guard(op, func() error {
		c, err := core.Load(r)
		if err != nil {
			return apiErr(op, ErrCorruptModel, err)
		}
		inner = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Classifier{inner: inner}, nil
}

// PerClassParams reports the SAX parameters chosen for each class.
func (c *Classifier) PerClassParams() map[int]SAXParams {
	out := map[int]SAXParams{}
	for class, p := range c.inner.PerClassParams {
		out[class] = SAXParams{Window: p.Window, PAA: p.PAA, Alphabet: p.Alphabet}
	}
	return out
}

// GenerateDataset synthesizes one dataset of the built-in evaluation suite
// (see DatasetNames) deterministically from a seed. It panics on unknown
// names.
func GenerateDataset(name string, seed int64) Split {
	return fromInternalSplit(datagen.MustByName(name).Generate(seed))
}

// GenerateABP synthesizes the arterial-blood-pressure alarm dataset of the
// paper's medical case study (§6.2).
func GenerateABP(seed int64) Split {
	return fromInternalSplit(datagen.ABP().Generate(seed))
}

// DatasetNames lists the built-in synthetic evaluation suite.
func DatasetNames() []string {
	var out []string
	for _, g := range datagen.Suite() {
		out = append(out, g.Name)
	}
	return out
}

// LoadUCR reads a dataset in the UCR archive text format (label first,
// comma- or whitespace-separated values, one series per line). Parsing is
// strict: NaN/Inf values, non-finite labels, and ragged rows are rejected
// at parse time with a typed *Error matching ErrBadInput (use
// LoadUCROptions to accept variable-length rows).
func LoadUCR(r io.Reader) (Dataset, error) {
	return LoadUCROptions(r, UCRReadOptions{})
}

// UCRReadOptions tunes LoadUCROptions; the zero value is the strict
// default (equal-length rows, finite values, per-row size cap).
type UCRReadOptions struct {
	// AllowVariableLength accepts rows with differing numbers of values.
	AllowVariableLength bool
	// MaxLineValues caps the observations per row (0 means the package
	// default), bounding memory on hostile input.
	MaxLineValues int
}

// LoadUCROptions is LoadUCR with explicit strictness options.
func LoadUCROptions(r io.Reader, opts UCRReadOptions) (Dataset, error) {
	const op = "LoadUCR"
	var out Dataset
	err := guard(op, func() error {
		d, err := dataset.ReadWith(r, dataset.ReadOptions{
			AllowVariableLength: opts.AllowVariableLength,
			MaxLineValues:       opts.MaxLineValues,
		})
		if err != nil {
			return apiErr(op, ErrBadInput, err)
		}
		out = fromInternal(d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SaveUCR writes a dataset in the UCR archive text format. Failures (a
// broken writer or unwritable values) surface as typed *Error values.
func SaveUCR(w io.Writer, d Dataset) error {
	if err := dataset.Write(w, toInternal(d)); err != nil {
		return apiErr("SaveUCR", ErrBadInput, err)
	}
	return nil
}

// ZNormalize z-normalizes every instance in place (zero mean, unit
// standard deviation), the standard UCR preprocessing.
func ZNormalize(d Dataset) { ts.ZNormInstance(toInternal(d)) }

// Rotate returns a copy of values circularly shifted at the cut point, the
// distortion used in the paper's rotation-invariance study (§6.1).
func Rotate(values []float64, cut int) []float64 { return ts.Rotate(values, cut) }

// conversions -------------------------------------------------------------

// toInternal converts without copying the value slices.
func toInternal(d Dataset) ts.Dataset {
	out := make(ts.Dataset, len(d))
	for i, in := range d {
		out[i] = ts.Instance{Label: in.Label, Values: in.Values}
	}
	return out
}

func fromInternal(d ts.Dataset) Dataset {
	out := make(Dataset, len(d))
	for i, in := range d {
		out[i] = Instance{Label: in.Label, Values: in.Values}
	}
	return out
}

func fromInternalSplit(s dataset.Split) Split {
	return Split{Name: s.Name, Train: fromInternal(s.Train), Test: fromInternal(s.Test)}
}

func toCoreOptions(o Options) core.Options {
	c := core.DefaultOptions()
	if o.Gamma != 0 {
		c.Gamma = o.Gamma
	}
	if o.TauPercentile != 0 {
		c.TauPercentile = o.TauPercentile
	}
	c.UseMedoid = o.UseMedoid
	c.NumerosityReduction = o.NumerosityReduction
	c.RotationInvariant = o.RotationInvariant
	if o.GI == GIRePair {
		c.GI = core.GIRePair
	}
	switch o.Mode {
	case ParamFixed:
		c.Mode = core.ParamFixed
	case ParamGrid:
		c.Mode = core.ParamGrid
	default:
		c.Mode = core.ParamDIRECT
	}
	c.Params = sax.Params{Window: o.Params.Window, PAA: o.Params.PAA, Alphabet: o.Params.Alphabet}
	if o.Splits != 0 {
		c.Splits = o.Splits
	}
	if o.MaxEvals != 0 {
		c.MaxEvals = o.MaxEvals
	}
	if o.Seed != 0 {
		c.Seed = o.Seed
	}
	c.Sample = core.SampleOptions{Rate: o.Sample.Rate, Seed: o.Sample.Seed}
	c.Bags = o.Bags
	c.Workers = o.Workers
	if o.Instrument {
		c.Obs = obs.NewRegistry()
	}
	return c
}
