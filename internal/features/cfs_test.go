package features

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildData creates n instances with d features; informative lists the
// features that carry the class signal, the rest are noise.
func buildData(rng *rand.Rand, n, d int, informative []int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 2
		X[i] = make([]float64, d)
		for f := 0; f < d; f++ {
			X[i][f] = rng.NormFloat64()
		}
		for _, f := range informative {
			X[i][f] = float64(y[i])*4 + rng.NormFloat64()*0.3
		}
	}
	return X, y
}

func TestSelectFindsInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := buildData(rng, 100, 8, []int{3})
	sel := Select(X, y)
	if !containsInt(sel, 3) {
		t.Errorf("selected %v, want feature 3 included", sel)
	}
	if len(sel) > 3 {
		t.Errorf("selected too many noise features: %v", sel)
	}
}

func TestSelectMultipleInformative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, d := 120, 10
	X := make([][]float64, n)
	y := make([]int, n)
	// feature 1 separates class 0 vs {1,2}; feature 5 separates 1 vs 2:
	// both are needed, and they are mutually uncorrelated.
	for i := 0; i < n; i++ {
		y[i] = i % 3
		X[i] = make([]float64, d)
		for f := 0; f < d; f++ {
			X[i][f] = rng.NormFloat64()
		}
		if y[i] == 0 {
			X[i][1] = 5 + rng.NormFloat64()*0.3
		}
		if y[i] == 2 {
			X[i][5] = 5 + rng.NormFloat64()*0.3
		}
	}
	sel := Select(X, y)
	if !containsInt(sel, 1) || !containsInt(sel, 5) {
		t.Errorf("selected %v, want {1,5} included", sel)
	}
}

func TestSelectDropsRedundantCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		y[i] = i % 2
		base := float64(y[i])*4 + rng.NormFloat64()*0.3
		// features 0 and 1 are exact copies (merit cannot improve by
		// adding the duplicate); 2 is noise
		X[i] = []float64{base, base, rng.NormFloat64()}
	}
	sel := Select(X, y)
	if containsInt(sel, 0) && containsInt(sel, 1) {
		t.Errorf("selected both redundant copies: %v", sel)
	}
	if !containsInt(sel, 0) && !containsInt(sel, 1) {
		t.Errorf("selected neither informative copy: %v", sel)
	}
}

func TestSelectDegenerate(t *testing.T) {
	if sel := Select(nil, nil); sel != nil {
		t.Errorf("empty input: %v", sel)
	}
	if sel := Select([][]float64{{1, 2}}, []int{1}); !reflect.DeepEqual(sel, []int{0}) {
		t.Errorf("single instance: %v", sel)
	}
	if sel := Select([][]float64{{}, {}}, []int{0, 1}); sel != nil {
		t.Errorf("zero features: %v", sel)
	}
	// all-constant features: should still return exactly one feature
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	sel := Select(X, y)
	if len(sel) != 1 {
		t.Errorf("constant features: %v", sel)
	}
}

func TestSelectPanicsOnRaggedMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Select([][]float64{{1, 2}, {1}}, []int{0, 1})
}

func TestSelectOutputSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		d := 2 + rng.Intn(8)
		X, y := buildData(rng, n, d, []int{0})
		sel := Select(X, y)
		if len(sel) == 0 {
			return false
		}
		if !sort.IntsAreSorted(sel) {
			return false
		}
		for i := 1; i < len(sel); i++ {
			if sel[i] == sel[i-1] {
				return false
			}
		}
		for _, f := range sel {
			if f < 0 || f >= d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiscretizeEqualValuesShareCodes(t *testing.T) {
	v := []float64{1, 1, 1, 1, 2, 2, 2, 2}
	codes := discretize(v, 4)
	for i := 0; i < 4; i++ {
		if codes[i] != codes[0] {
			t.Fatalf("equal values got different codes: %v", codes)
		}
	}
	for i := 4; i < 8; i++ {
		if codes[i] != codes[4] {
			t.Fatalf("equal values got different codes: %v", codes)
		}
	}
	if codes[0] == codes[4] {
		t.Fatalf("different values share a code: %v", codes)
	}
}

func TestDiscretizeConstant(t *testing.T) {
	codes := discretize([]float64{5, 5, 5}, 10)
	if codes[0] != codes[1] || codes[1] != codes[2] {
		t.Errorf("constant feature codes = %v", codes)
	}
}

func TestEntropyValues(t *testing.T) {
	if h := entropy([]int{1, 1, 1, 1}); h != 0 {
		t.Errorf("constant entropy = %v", h)
	}
	if h := entropy([]int{0, 1, 0, 1}); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Errorf("uniform binary entropy = %v, want ln2", h)
	}
	if h := entropy([]int{0, 1, 2, 3}); math.Abs(h-math.Log(4)) > 1e-12 {
		t.Errorf("uniform 4-ary entropy = %v", h)
	}
}

func TestSymmetricalUncertaintyRange(t *testing.T) {
	// identical variables: SU = 1
	a := []int{0, 1, 0, 1, 2, 2}
	if su := symmetricalUncertainty(a, a); math.Abs(su-1) > 1e-12 {
		t.Errorf("SU(a,a) = %v", su)
	}
	// independent variables: SU ~ 0 on large sample
	rng := rand.New(rand.NewSource(4))
	x := make([]int, 5000)
	y := make([]int, 5000)
	for i := range x {
		x[i] = rng.Intn(4)
		y[i] = rng.Intn(4)
	}
	if su := symmetricalUncertainty(x, y); su > 0.01 {
		t.Errorf("SU(independent) = %v", su)
	}
	// constant variable: SU = 0
	c := make([]int, 6)
	if su := symmetricalUncertainty(a, c); su != 0 {
		t.Errorf("SU(a,const) = %v", su)
	}
}

func TestMeritFromSumsAgreesWithMerit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := buildData(rng, 60, 6, []int{0, 2})
	sc := newSUCache(X, y)
	subsets := [][]int{{0}, {1}, {0, 2}, {0, 1, 2}, {0, 1, 2, 3, 4, 5}}
	for _, s := range subsets {
		var rcfSum, rffSum float64
		for i, f := range s {
			rcfSum += sc.rcf[f]
			for j := 0; j < i; j++ {
				rffSum += sc.featureFeature(f, s[j])
			}
		}
		want := sc.merit(s)
		got := meritFromSums(len(s), rcfSum, rffSum)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("subset %v: incremental merit %v != reference %v", s, got, want)
		}
	}
}

func TestDenseCodes(t *testing.T) {
	codes := denseCodes([]int{7, -3, 7, 100, -3})
	want := []int{0, 1, 0, 2, 1}
	if !reflect.DeepEqual(codes, want) {
		t.Errorf("denseCodes = %v, want %v", codes, want)
	}
}

func TestMeritPrefersGoodSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := buildData(rng, 100, 4, []int{0})
	sc := newSUCache(X, y)
	good := sc.merit([]int{0})
	noise := sc.merit([]int{2})
	if good <= noise {
		t.Errorf("merit(informative)=%v <= merit(noise)=%v", good, noise)
	}
	both := sc.merit([]int{0, 2})
	if both >= good {
		t.Errorf("adding noise should hurt merit: %v >= %v", both, good)
	}
	if m := sc.merit(nil); m != 0 {
		t.Errorf("empty merit = %v", m)
	}
}
