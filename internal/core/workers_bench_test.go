package core

import (
	"testing"
	"time"

	"rpm/internal/datagen"
	"rpm/internal/ts"
)

// benchFixture trains a fixed-parameter classifier once and returns it
// with a widened evaluation set (train+test) so the transform matrix is
// large enough to measure.
func benchFixture(b *testing.B) (*Classifier, ts.Dataset) {
	b.Helper()
	split := datagen.MustByName("SynCBF").Generate(1)
	o := DefaultOptions()
	o.Mode = ParamFixed
	o.Workers = 1
	clf, err := Train(split.Train, o)
	if err != nil {
		b.Fatal(err)
	}
	if len(clf.Patterns) == 0 {
		b.Fatal("benchmark fixture selected no patterns")
	}
	data := make(ts.Dataset, 0, len(split.Train)+len(split.Test))
	data = append(data, split.Train...)
	data = append(data, split.Test...)
	return clf, data
}

// reportSpeedup times fn sequentially (workers=1) outside the benchmark
// timer, runs the parallel variant (workers=0, i.e. GOMAXPROCS — honor
// -cpu) under the timer, and reports sequential/parallel as "speedup".
func reportSpeedup(b *testing.B, fn func(workers int)) {
	b.Helper()
	const reps = 3
	start := time.Now()
	for r := 0; r < reps; r++ {
		fn(1)
	}
	seq := time.Since(start) / reps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(0)
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		par := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
	}
}

// BenchmarkTransformParallel measures the pattern×instance closest-match
// matrix — the dominant cost of training Step 3 — at GOMAXPROCS workers,
// reporting the speedup over the exact sequential path. Run with
// `-cpu 1,4` to see the scaling.
func BenchmarkTransformParallel(b *testing.B) {
	clf, data := benchFixture(b)
	reportSpeedup(b, func(workers int) {
		clf.tf.applyAll(data, workers)
	})
}

// BenchmarkTransformKernels compares the naive per-matcher sweep (one
// rolling stats pass per pattern, unseeded, the pre-Query kernel) against
// the shared-stats seeded kernel on the identical fixture, in the same
// process — the ratio is immune to machine-speed drift between runs,
// unlike absolute ns/op against a committed baseline.
func BenchmarkTransformKernels(b *testing.B) {
	clf, data := benchFixture(b)
	clf.ensureTransformer()
	t := clf.tf
	b.Run("naive", func(b *testing.B) {
		out := make([]float64, len(t.matchers))
		for i := 0; i < b.N; i++ {
			for _, inst := range data {
				for k, m := range t.matchers {
					out[k] = m.Best(inst.Values).Dist
				}
			}
		}
	})
	b.Run("query-seeded", func(b *testing.B) {
		out := make([]float64, len(t.matchers))
		sc := t.getScratch()
		defer t.putScratch(sc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, inst := range data {
				t.applyInto(out, inst.Values, sc)
			}
		}
	})
}

// BenchmarkTransformInto measures one series through the allocation-free
// transform kernel (shared window stats, seeded early abandon, pooled
// scratch) — the per-query cost floor of the predict path.
func BenchmarkTransformInto(b *testing.B) {
	clf, data := benchFixture(b)
	clf.ensureTransformer()
	sc := clf.tf.getScratch()
	defer clf.tf.putScratch(sc)
	out := make([]float64, len(clf.tf.matchers))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.tf.applyInto(out, data[i%len(data)].Values, sc)
	}
}

// BenchmarkPredictBatchParallel measures batch classification (transform
// + SVM per query) at GOMAXPROCS workers vs the sequential path.
func BenchmarkPredictBatchParallel(b *testing.B) {
	clf, data := benchFixture(b)
	base := clf.opts.Workers
	defer func() { clf.opts.Workers = base }()
	reportSpeedup(b, func(workers int) {
		clf.opts.Workers = workers
		clf.PredictBatch(data)
	})
}
