package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCtxMatchesFor(t *testing.T) {
	const n = 500
	want := make([]int, n)
	For(n, 1, func(i int) { want[i] = i * i })
	for _, w := range []int{0, 1, 2, 7} {
		got := make([]int, n)
		if err := ForCtx(context.Background(), n, w, func(i int) { got[i] = i * i }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d: got %d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestForCtxNilContext(t *testing.T) {
	var ran atomic.Int64
	if err := ForCtx(nil, 10, 2, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d of 10 iterations", ran.Load())
	}
}

func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, w := range []int{1, 4} {
		err := ForCtx(ctx, 100, w, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled ctx still ran %d iterations", ran.Load())
	}
}

func TestForCtxMidRunCancel(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForCtx(ctx, 10_000, w, func(i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		// In-flight iterations may finish, but scheduling must stop well
		// before the full range.
		if got := ran.Load(); got >= 10_000 {
			t.Fatalf("workers=%d: cancellation did not stop scheduling (%d iterations ran)", w, got)
		}
	}
}

func TestForCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForCtx(ctx, 1<<30, 2, func(i int) { time.Sleep(100 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestForCtxPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	_ = ForCtx(context.Background(), 100, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Fatal("no panic propagated")
}

func TestMapCtxCompleteAndCanceled(t *testing.T) {
	got, err := MapCtx(context.Background(), 50, 3, func(i int) int { return i + 1 })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("index %d: got %d", i, v)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	part, err := MapCtx(ctx, 50, 3, func(i int) int { return i })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if part != nil {
		t.Fatalf("canceled MapCtx returned a slice (%d elems); partial results must be discarded", len(part))
	}
}

func TestMapReduceCtxMatchesMapReduce(t *testing.T) {
	fn := func(i int) float64 { return 1.0 / float64(i+1) }
	red := func(acc, v float64) float64 { return acc + v }
	want := MapReduce(1000, 4, fn, 0.0, red)
	got, err := MapReduceCtx(context.Background(), 1000, 4, fn, 0.0, red)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %v want %v (must be byte-identical)", got, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	zero, err := MapReduceCtx(ctx, 1000, 4, fn, 0.0, red)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if zero != 0 {
		t.Fatalf("canceled MapReduceCtx returned %v, want zero value", zero)
	}
}
