package fastshapelets

import (
	"math"
	"testing"

	"rpm/internal/datagen"
	"rpm/internal/stats"
	"rpm/internal/ts"
)

func TestTrainPredictGunPoint(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(1)
	m := Train(s.Train, Config{})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.2 {
		t.Errorf("FS error on SynGunPoint = %v", e)
	}
	if m.NumNodes == 0 {
		t.Error("tree has no internal nodes")
	}
}

func TestTrainPredictCBF(t *testing.T) {
	s := datagen.MustByName("SynCBF").Generate(2)
	m := Train(s.Train, Config{})
	preds := m.PredictBatch(s.Test)
	if e := stats.ErrorRate(preds, s.Test.Labels()); e > 0.35 {
		t.Errorf("FS error on SynCBF = %v", e)
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	var d ts.Dataset
	for i := 0; i < 6; i++ {
		v := make([]float64, 40)
		for j := range v {
			v[j] = float64(i + j)
		}
		d = append(d, ts.Instance{Label: 7, Values: v})
	}
	m := Train(d, Config{})
	if m.NumNodes != 0 {
		t.Errorf("pure data grew %d internal nodes", m.NumNodes)
	}
	if got := m.Predict(d[0].Values); got != 7 {
		t.Errorf("Predict = %d", got)
	}
}

func TestShapeletsAccessor(t *testing.T) {
	s := datagen.MustByName("SynGunPoint").Generate(3)
	m := Train(s.Train, Config{})
	shs := m.Shapelets()
	if len(shs) != m.NumNodes {
		t.Errorf("Shapelets() returned %d, NumNodes %d", len(shs), m.NumNodes)
	}
	for _, sh := range shs {
		if len(sh) < 2 {
			t.Error("degenerate shapelet")
		}
		// shapelets are stored z-normalized
		if math.Abs(ts.Mean(sh)) > 1e-6 {
			t.Error("shapelet not z-normalized")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	s := datagen.MustByName("SynItalyPower").Generate(4)
	m1 := Train(s.Train, Config{Seed: 5})
	m2 := Train(s.Train, Config{Seed: 5})
	p1 := m1.PredictBatch(s.Test)
	p2 := m2.PredictBatch(s.Test)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different predictions")
		}
	}
}

func TestBestSplitKnownCase(t *testing.T) {
	dists := []float64{0.1, 0.2, 0.3, 5.1, 5.2, 5.3}
	labels := []int{1, 1, 1, 2, 2, 2}
	gain, thr, gap := bestSplit(dists, labels)
	if math.Abs(gain-1) > 1e-12 {
		t.Errorf("gain = %v, want 1 bit", gain)
	}
	if thr <= 0.3 || thr >= 5.1 {
		t.Errorf("threshold = %v, want inside the gap", thr)
	}
	if math.Abs(gap-4.8) > 1e-9 {
		t.Errorf("gap = %v", gap)
	}
}

func TestBestSplitNoValidThreshold(t *testing.T) {
	// all distances identical: no split possible
	gain, _, _ := bestSplit([]float64{1, 1, 1, 1}, []int{1, 1, 2, 2})
	if gain > 0 {
		t.Errorf("gain = %v on unsplittable distances", gain)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Train(nil, Config{})
}

func TestShortSeries(t *testing.T) {
	var d ts.Dataset
	for i := 0; i < 10; i++ {
		v := make([]float64, 8)
		lab := 1
		if i%2 == 0 {
			lab = 2
			v[3] = 5
		}
		v[0] = float64(i) * 0.01
		d = append(d, ts.Instance{Label: lab, Values: v})
	}
	m := Train(d, Config{})
	preds := m.PredictBatch(d)
	if e := stats.ErrorRate(preds, d.Labels()); e > 0.2 {
		t.Errorf("short-series training error = %v", e)
	}
}
