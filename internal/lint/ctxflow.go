package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces context propagation (PR 2 threaded cancellation
// through train/predict/search; PR 4+ through the serving layer):
//
//   - context.Background()/TODO() may create a root context only in
//     cmd/* packages. Elsewhere it is allowed only as (a) a plain `=`
//     re-assignment normalizing a nil ctx field/variable, or (b) a
//     direct call argument inside a function that holds no context
//     itself (the deliberate-detach / convenience-wrapper idiom).
//     A function that HOLDS a ctx and still conjures a fresh
//     Background is dropping cancellation on the floor — flagged.
//   - A ctx-holding function calling plain Foo when the facts engine
//     knows a FooContext/FooCtx sibling exists is flagged: the variant
//     exists precisely so the ctx can flow.
//   - A ctx-holding function passing a nil literal where the callee
//     accepts a context is flagged.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must flow: no Background()/TODO() outside cmd/*, no dropping a held ctx",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
}

// checkCtxFlow applies the three rules to one function declaration
// (closure bodies included: a closure capturing the held ctx is part of
// the same flow).
func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	holds := fnHoldsCtx(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := pass.calleeOf(call).(*types.Func)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			checkCtxRoot(pass, fd, call, fn.Name(), holds)
			return true
		}
		if holds {
			checkHeldCtxCall(pass, call, fn)
		}
		return true
	})
}

// fnHoldsCtx reports whether fd has a context.Context parameter or
// defines a context-typed local with := (a root it created and now
// owns).
func fnHoldsCtx(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if isContextType(pass.TypeOf(field.Type)) {
				return true
			}
		}
	}
	holds := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if isContextType(pass.TypeOf(id)) {
					holds = true
				}
			}
		}
		return true
	})
	return holds
}

// checkCtxRoot judges one context.Background()/TODO() call.
func checkCtxRoot(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, name string, holds bool) {
	if pass.Config.cmdPkg(pass.PkgPath) {
		return // binaries own their root context
	}
	parent := pass.parentOf(call)
	// Nil-normalization: ctx = context.Background() overwriting an
	// existing context-typed variable or field is defaulting an
	// optional ctx, not discarding one.
	if as, ok := parent.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call && i < len(as.Lhs) && isContextType(pass.TypeOf(as.Lhs[i])) {
				return
			}
		}
	}
	// ctx := context.Background() in library code is creating a root no
	// matter what else the function holds.
	if as, ok := parent.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
		pass.Reportf(call.Pos(), "context.%s() outside cmd/*: accept a ctx parameter instead of creating a root here", name)
		return
	}
	if !holds {
		// A ctx-less function passing Background straight into a callee
		// is the convenience-wrapper idiom (Foo calling FooContext).
		if pcall, ok := parent.(*ast.CallExpr); ok {
			for _, arg := range pcall.Args {
				if ast.Unparen(arg) == call {
					return
				}
			}
		}
		pass.Reportf(call.Pos(), "context.%s() outside cmd/*: accept a ctx parameter instead of creating a root here", name)
		return
	}
	pass.Reportf(call.Pos(), "%s holds a context but calls context.%s(); pass the held ctx instead", fd.Name.Name, name)
}

// checkHeldCtxCall flags a ctx-holder calling the ctx-less variant of a
// function whose Context/Ctx sibling exists, or passing a nil context.
func checkHeldCtxCall(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	facts := pass.Facts
	if facts == nil {
		return
	}
	if ff := facts.FuncFact(fn); ff != nil && !ff.AcceptsCtx && ff.CtxVariant != nil {
		pass.Reportf(call.Pos(), "holding a context but calling %s; use %s so cancellation propagates", fn.Name(), ff.CtxVariant.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && id.Name == "nil" {
			if pass.TypeOf(id) != nil {
				if b, ok := pass.TypeOf(id).(*types.Basic); ok && b.Kind() == types.UntypedNil {
					pass.Reportf(call.Args[i].Pos(), "holding a context but passing nil to %s; pass the held ctx", fn.Name())
				}
			}
		}
	}
}
