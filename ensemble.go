package rpm

import (
	"context"

	"rpm/internal/core"
	"rpm/internal/ts"
)

// Ensemble is a bagged set of RPM classifiers trained by TrainEnsemble:
// every member mines its own seeded subset of the candidate pool
// (Options.Sample with a per-member derived seed) and the ensemble
// classifies by majority vote, ties breaking toward the smaller label.
// With a small Sample.Rate this recovers most of the exhaustive model's
// accuracy at a fraction of the mining cost (DESIGN.md §15; the
// direction of Raza & Kramer's randomized shapelet ensembles).
//
// Ensembles are in-memory classifiers: they cannot be serialized with
// Save (persist each concern separately if needed — the archive runner
// trains and evaluates them in one process) and cannot stream.
type Ensemble struct {
	inner *core.Ensemble
}

// TrainEnsemble learns an Options.Bags-member bagged ensemble. It
// validates like Train, plus the ensemble-specific rules: Bags > 1
// requires Sample.Rate in (0,1) — with exhaustive mining every member
// would be identical. Bags 0 or 1 trains a single-member ensemble
// (still usable; the vote is trivial).
func TrainEnsemble(train Dataset, opts Options) (*Ensemble, error) {
	return TrainEnsembleContext(context.Background(), train, opts)
}

// TrainEnsembleContext is TrainEnsemble with cooperative cancellation:
// canceling ctx aborts the shared parameter search or the member
// trainings within one evaluation and returns ctx.Err(). With a
// non-canceled ctx the ensemble is byte-identical for any
// Options.Workers value: the members train in a fixed order with
// derived seeds, and the vote depends only on the member labels.
func TrainEnsembleContext(ctx context.Context, train Dataset, opts Options) (*Ensemble, error) {
	const op = "TrainEnsemble"
	if err := validateTrainingSet(op, train, MinSeriesLen, true); err != nil {
		return nil, err
	}
	if err := validateOptions(op, opts, ts.Dataset.MinLen(toInternal(train))); err != nil {
		return nil, err
	}
	var e *core.Ensemble
	err := guard(op, func() error {
		inner, err := core.TrainBaggedContext(ctx, toInternal(train), toCoreOptions(opts))
		if err != nil {
			return wrapCoreErr(op, err)
		}
		e = inner
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Ensemble{inner: e}, nil
}

// Predict classifies one series by majority vote over the members. Like
// Classifier.Predict it is total over its input.
func (e *Ensemble) Predict(values []float64) int { return e.inner.Predict(values) }

// PredictBatch classifies every instance and returns the predicted
// labels in order, fanning the queries out over Options.Workers
// goroutines (byte-identical to the sequential path).
func (e *Ensemble) PredictBatch(test Dataset) []int {
	return e.inner.PredictBatch(toInternal(test))
}

// PredictBatchContext is PredictBatch with boundary validation,
// cooperative cancellation and panic containment (the
// Classifier.PredictBatchContext contract, lifted to the ensemble).
func (e *Ensemble) PredictBatchContext(ctx context.Context, test Dataset) ([]int, error) {
	const op = "PredictBatch"
	for i, in := range test {
		if err := validateSeries(op, in.Values, 1); err != nil {
			return nil, apiErrf(op, errKind(err), "instance %d: %v", i, errCause(err))
		}
	}
	var out []int
	err := guard(op, func() error {
		labels, err := e.inner.PredictBatchContext(ctx, toInternal(test))
		if err != nil {
			return err // ctx error: surface unwrapped
		}
		out = labels
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Bags returns the number of members.
func (e *Ensemble) Bags() int { return e.inner.Bags() }

// NumPatterns returns the total representative-pattern count across
// members (the summed feature dimensionality, a cost proxy).
func (e *Ensemble) NumPatterns() int { return e.inner.NumPatterns() }

// SetWorkers re-bounds the concurrency of batch prediction and of every
// member (see Classifier.SetWorkers). Not safe to call concurrently
// with prediction.
func (e *Ensemble) SetWorkers(n int) { e.inner.SetWorkers(n) }

// TrainReport returns the instrumentation gathered while the ensemble
// trained — all members record into one shared registry, so the stage
// tree carries the shared parameter search plus one bag.member.<i> span
// per member — or nil without Options.Instrument.
func (e *Ensemble) TrainReport() *TrainReport {
	return reportFromSnapshot(e.inner.TrainSnapshot())
}
