package core

import (
	"encoding/json"
	"fmt"
	"io"

	"rpm/internal/sax"
	"rpm/internal/svm"
	"rpm/internal/ts"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// snapshot is the JSON shape of a saved classifier.
type snapshot struct {
	Version        int                `json:"version"`
	Patterns       []Pattern          `json:"patterns"`
	PerClassParams map[int]sax.Params `json:"perClassParams"`
	Options        Options            `json:"options"`
	SVM            *svm.Snapshot      `json:"svm,omitempty"`
	// Fallback is stored only for degenerate models with no patterns,
	// which classify by 1NN on the raw training set.
	Fallback ts.Dataset `json:"fallback,omitempty"`
}

// Save serializes the trained classifier as JSON. The format is versioned;
// Load rejects unknown versions. Classifiers trained with a custom
// VectorClassifier cannot be serialized.
func (c *Classifier) Save(w io.Writer) error {
	if c.custom != nil {
		return fmt.Errorf("core: classifiers with a custom VectorClassifier cannot be saved")
	}
	s := snapshot{
		Version:        persistVersion,
		Patterns:       c.Patterns,
		PerClassParams: c.PerClassParams,
		Options:        c.opts,
	}
	if c.model != nil {
		snap := c.model.Snapshot()
		s.SVM = &snap
	}
	if len(c.Patterns) == 0 {
		s.Fallback = c.fallback
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load deserializes a classifier previously written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var s snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding classifier: %w", err)
	}
	if s.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported classifier version %d", s.Version)
	}
	c := &Classifier{
		Patterns:       s.Patterns,
		PerClassParams: s.PerClassParams,
		opts:           s.Options,
		fallback:       s.Fallback,
	}
	if len(s.Patterns) > 0 {
		if s.SVM == nil {
			return nil, fmt.Errorf("core: classifier has patterns but no SVM state")
		}
		m, err := svm.FromSnapshot(*s.SVM)
		if err != nil {
			return nil, err
		}
		c.model = m
		c.ensureTransformer()
	} else if len(s.Fallback) == 0 {
		return nil, fmt.Errorf("core: classifier has neither patterns nor fallback data")
	}
	return c, nil
}
