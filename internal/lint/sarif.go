package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF rendering (the 2.1.0 static-analysis results interchange
// format) so CI can upload rpmlint findings to GitHub code scanning
// and have them surface as inline annotations. The structs cover the
// minimal valid subset: one run, one rule per analyzer, one result per
// diagnostic with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diags as a SARIF 2.1.0 log. analyzers defines the rule
// table (the pseudo-analyzer "rpmlint" for malformed directives is
// appended automatically); base, when non-empty, is the directory file
// paths are made relative to, so URIs stay repo-relative for GitHub.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, base string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	index["rpmlint"] = len(rules)
	rules = append(rules, sarifRule{ID: "rpmlint", ShortDescription: sarifMessage{Text: "malformed //rpmlint:ignore directive"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			idx = index["rpmlint"]
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.Pos.Filename, base)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rpmlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// sarifURI renders name relative to base with forward slashes.
func sarifURI(name, base string) string {
	if base != "" {
		if abs, err := filepath.Abs(base); err == nil {
			if rel, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
	}
	return filepath.ToSlash(name)
}

// jsonDiag is the -format json record for one diagnostic.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// JSON renders diags as a stable machine-readable report. base, when
// non-empty, relativizes file paths the same way SARIF does.
func JSON(diags []Diagnostic, base string) ([]byte, error) {
	out := struct {
		Count       int        `json:"count"`
		Diagnostics []jsonDiag `json:"diagnostics"`
	}{Count: len(diags), Diagnostics: make([]jsonDiag, 0, len(diags))}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			Analyzer: d.Analyzer,
			File:     sarifURI(d.Pos.Filename, base),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
