// Package learnshapelets implements the Learning Shapelets classifier
// (Grabocka, Schilling, Wistuba & Schmidt-Thieme, KDD 2014), the most
// accurate — and slowest — baseline in the paper's evaluation (§5.1).
// Instead of searching candidate subsequences, shapelets are treated as
// free parameters: per-instance features are soft-minimum distances
// between each learned shapelet and all same-length windows of the series,
// a softmax classifier is stacked on the features, and shapelets and
// classifier weights are optimized jointly by gradient descent.
package learnshapelets

import (
	"math"
	"math/rand"

	"rpm/internal/ts"
)

// Config tunes training. Zero values select published-style defaults.
type Config struct {
	// K is the number of shapelets per scale (default max(4, #classes)).
	K int
	// Scales lists shapelet lengths as fractions of the series length
	// (default {0.125, 0.25}).
	Scales []float64
	// Alpha is the soft-minimum sharpness (negative; default -30).
	Alpha float64
	// Epochs is the number of full passes of gradient descent
	// (default 300).
	Epochs int
	// LearnRate is the Adagrad base step (default 0.1).
	LearnRate float64
	// Lambda is the L2 penalty on classifier weights (default 0.01).
	Lambda float64
	// Seed drives initialization and instance order (default 1).
	Seed int64
}

func (c Config) withDefaults(classes int) Config {
	if c.K <= 0 {
		c.K = 4
		if classes > 4 {
			c.K = classes
		}
	}
	if len(c.Scales) == 0 {
		c.Scales = []float64{0.125, 0.25}
	}
	if c.Alpha >= 0 {
		c.Alpha = -30
	}
	if c.Epochs <= 0 {
		c.Epochs = 300
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.1
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is a trained Learning Shapelets classifier.
type Model struct {
	classes   []int
	shapelets [][]float64
	w         [][]float64 // w[c][k], per-class weights over shapelet features
	b         []float64   // per-class bias
	alpha     float64
}

// Shapelets returns the learned shapelets (live references; callers must
// not modify them).
func (m *Model) Shapelets() [][]float64 { return m.shapelets }

// Train fits the model.
func Train(train ts.Dataset, cfg Config) *Model {
	if len(train) == 0 {
		panic("learnshapelets: empty training set")
	}
	classes := train.Classes()
	cfg = cfg.withDefaults(len(classes))
	rng := rand.New(rand.NewSource(cfg.Seed))
	mLen := train.MinLen()

	m := &Model{classes: classes, alpha: cfg.Alpha}
	for _, scale := range cfg.Scales {
		L := int(scale * float64(mLen))
		if L < 3 {
			L = 3
		}
		if L > mLen {
			L = mLen
		}
		m.shapelets = append(m.shapelets, initShapelets(train, L, cfg.K, rng)...)
	}
	K := len(m.shapelets)
	C := len(classes)
	m.w = make([][]float64, C)
	m.b = make([]float64, C)
	for c := range m.w {
		m.w[c] = make([]float64, K)
		for k := range m.w[c] {
			m.w[c][k] = rng.NormFloat64() * 0.01
		}
	}
	classIdx := map[int]int{}
	for i, c := range classes {
		classIdx[c] = i
	}

	// Adagrad accumulators.
	gw := make([][]float64, C)
	for c := range gw {
		gw[c] = make([]float64, K)
	}
	gb := make([]float64, C)
	gs := make([][]float64, K)
	for k := range gs {
		gs[k] = make([]float64, len(m.shapelets[k]))
	}

	order := rng.Perm(len(train))
	feat := make([]float64, K)
	probs := make([]float64, C)
	const eps = 1e-8
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			in := train[idx]
			// forward: soft-min features and the softmin weights needed
			// for the backward pass
			softArgs := make([][]float64, K) // per shapelet: per-window weight
			dists := make([][]float64, K)    // per shapelet: per-window mean sq distance
			for k, s := range m.shapelets {
				feat[k], softArgs[k], dists[k] = softMin(s, in.Values, m.alpha)
			}
			softmaxInto(probs, m.w, m.b, feat)
			yi := classIdx[in.Label]
			// backward
			// dL/dz_c = p_c - 1{c==yi}
			for c := 0; c < C; c++ {
				dz := probs[c]
				if c == yi {
					dz -= 1
				}
				// bias
				gb[c] += dz * dz
				m.b[c] -= cfg.LearnRate / math.Sqrt(gb[c]+eps) * dz
				for k := 0; k < K; k++ {
					gradW := dz*feat[k] + cfg.Lambda*m.w[c][k]
					gw[c][k] += gradW * gradW
					m.w[c][k] -= cfg.LearnRate / math.Sqrt(gw[c][k]+eps) * gradW
				}
			}
			// shapelet gradients: dL/dM_k = sum_c dz_c * w[c][k]
			for k, s := range m.shapelets {
				var dM float64
				for c := 0; c < C; c++ {
					dz := probs[c]
					if c == yi {
						dz -= 1
					}
					dM += dz * m.w[c][k]
				}
				if dM == 0 {
					continue
				}
				L := len(s)
				// dM/dD_j = ψ_j (1 + α (D_j − M)), ψ = softmin weights
				for j, psi := range softArgs[k] {
					dMdD := psi * (1 + m.alpha*(dists[k][j]-feat[k]))
					if dMdD == 0 {
						continue
					}
					coef := dM * dMdD * 2 / float64(L)
					win := in.Values[j : j+L]
					for l := 0; l < L; l++ {
						g := coef * (s[l] - win[l])
						gs[k][l] += g * g
						s[l] -= cfg.LearnRate / math.Sqrt(gs[k][l]+eps) * g
					}
				}
			}
		}
	}
	return m
}

// initShapelets seeds K shapelets of length L with centroids of a few
// k-means iterations over all training segments of that length, following
// the authors' initialization.
func initShapelets(train ts.Dataset, L, K int, rng *rand.Rand) [][]float64 {
	var segs [][]float64
	for _, in := range train {
		stride := L / 2
		if stride < 1 {
			stride = 1
		}
		for p := 0; p+L <= len(in.Values); p += stride {
			segs = append(segs, in.Values[p:p+L])
		}
	}
	if len(segs) == 0 {
		return nil
	}
	if K > len(segs) {
		K = len(segs)
	}
	centroids := make([][]float64, K)
	for i, p := range rng.Perm(len(segs))[:K] {
		centroids[i] = append([]float64{}, segs[p]...)
	}
	assign := make([]int, len(segs))
	for iter := 0; iter < 5; iter++ {
		for i, s := range segs {
			best := math.Inf(1)
			for k, c := range centroids {
				var d float64
				for l := range s {
					diff := s[l] - c[l]
					d += diff * diff
					if d > best {
						break
					}
				}
				if d < best {
					best = d
					assign[i] = k
				}
			}
		}
		counts := make([]int, K)
		sums := make([][]float64, K)
		for k := range sums {
			sums[k] = make([]float64, L)
		}
		for i, s := range segs {
			k := assign[i]
			counts[k]++
			for l := range s {
				sums[k][l] += s[l]
			}
		}
		for k := range centroids {
			if counts[k] == 0 {
				continue
			}
			for l := range centroids[k] {
				centroids[k][l] = sums[k][l] / float64(counts[k])
			}
		}
	}
	return centroids
}

// softMin computes the soft-minimum distance feature between shapelet s
// and series v, plus the per-window softmin weights ψ_j and per-window
// distances D_j needed for gradients. Distances are mean squared errors.
func softMin(s, v []float64, alpha float64) (m float64, psi, d []float64) {
	L := len(s)
	J := len(v) - L + 1
	if J < 1 {
		// series shorter than shapelet: compare against the whole series,
		// padding conceptually by truncating the shapelet
		J = 1
		if L > len(v) {
			L = len(v)
		}
	}
	d = make([]float64, J)
	minD := math.Inf(1)
	for j := 0; j < J; j++ {
		var acc float64
		for l := 0; l < L; l++ {
			diff := s[l] - v[j+l]
			acc += diff * diff
		}
		d[j] = acc / float64(L)
		if d[j] < minD {
			minD = d[j]
		}
	}
	psi = make([]float64, J)
	var den float64
	for j := 0; j < J; j++ {
		psi[j] = math.Exp(alpha * (d[j] - minD))
		den += psi[j]
	}
	var num float64
	for j := 0; j < J; j++ {
		psi[j] /= den
		num += d[j] * psi[j]
	}
	return num, psi, d
}

// softmaxInto fills probs with softmax(w·feat + b).
func softmaxInto(probs []float64, w [][]float64, b, feat []float64) {
	maxZ := math.Inf(-1)
	for c := range probs {
		z := b[c]
		for k, f := range feat {
			z += w[c][k] * f
		}
		probs[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	var den float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxZ)
		den += probs[c]
	}
	for c := range probs {
		probs[c] /= den
	}
}

// Predict classifies one series.
func (m *Model) Predict(query []float64) int {
	K := len(m.shapelets)
	feat := make([]float64, K)
	for k, s := range m.shapelets {
		feat[k], _, _ = softMin(s, query, m.alpha)
	}
	probs := make([]float64, len(m.classes))
	softmaxInto(probs, m.w, m.b, feat)
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return m.classes[best]
}

// PredictBatch classifies every instance of test.
func (m *Model) PredictBatch(test ts.Dataset) []int {
	out := make([]int, len(test))
	for i, in := range test {
		out[i] = m.Predict(in.Values)
	}
	return out
}
