package serveclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpm/internal/obs"
)

// fakeClock is a deterministic time source tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestClient builds a Client over srv with instant sleeps (recorded
// into *sleeps) and a fake clock, so retry tests run in microseconds
// and assert the exact backoff sequence.
func newTestClient(t *testing.T, srv *httptest.Server, mut func(*Config)) (*Client, *fakeClock, *[]time.Duration) {
	t.Helper()
	cfg := Config{BaseURL: srv.URL, Seed: 42}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	clk := newFakeClock()
	c.now = clk.now
	sleeps := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*sleeps = append(*sleeps, d)
		return nil
	}
	return c, clk, sleeps
}

func writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":{"code":%q,"status":%d,"message":%q}}`, code, status, msg)
}

func writePredict(w http.ResponseWriter, label int) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"model": "syn", "version": 1, "label": label})
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with empty BaseURL should fail")
	}
	c, err := New(Config{BaseURL: "http://x/"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.base != "http://x" {
		t.Fatalf("trailing slash not trimmed: %q", c.base)
	}
	if c.cfg.MaxAttempts != 3 || c.cfg.Breaker.FailureThreshold != 5 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
}

func TestPredictSuccess(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/predict" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		if req.Model != "syn" || len(req.Values) != 3 {
			t.Errorf("unexpected payload: %+v", req)
		}
		writePredict(w, 7)
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, nil)
	res, err := c.Predict(context.Background(), "syn", []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if res.Label != 7 || res.Model != "syn" || res.Version != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeEnvelope(w, http.StatusServiceUnavailable, "draining", "try later")
			return
		}
		writePredict(w, 1)
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	c, _, sleeps := newTestClient(t, srv, func(cfg *Config) { cfg.Registry = reg })
	res, err := c.Predict(context.Background(), "syn", []float64{1})
	if err != nil {
		t.Fatalf("Predict after retries: %v", err)
	}
	if res.Label != 1 {
		t.Fatalf("label = %d, want 1", res.Label)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(*sleeps), *sleeps)
	}
	snap := reg.Snapshot()
	if snap.Counter(CtrAttempts) != 3 || snap.Counter(CtrRetries) != 2 {
		t.Fatalf("counters: attempts=%d retries=%d", snap.Counter(CtrAttempts), snap.Counter(CtrRetries))
	}
}

func TestTerminalErrorsAreNotRetried(t *testing.T) {
	for _, tc := range []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, "bad_input"},
		{http.StatusNotFound, "not_found"},
		{http.StatusRequestEntityTooLarge, "too_large"},
		{http.StatusUnprocessableEntity, "too_short"},
		{http.StatusInternalServerError, "internal"},
	} {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			writeEnvelope(w, tc.status, tc.code, "nope")
		}))
		c, _, _ := newTestClient(t, srv, nil)
		_, err := c.Predict(context.Background(), "syn", []float64{1})
		srv.Close()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("status %d: want *APIError, got %v", tc.status, err)
		}
		if apiErr.Status != tc.status || apiErr.Code != tc.code {
			t.Fatalf("status %d: envelope not parsed: %+v", tc.status, apiErr)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("status %d: server saw %d calls, want 1 (terminal)", tc.status, got)
		}
	}
}

func TestRetryAfterSecondsHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeEnvelope(w, http.StatusTooManyRequests, "overloaded", "shed")
			return
		}
		writePredict(w, 2)
	}))
	defer srv.Close()
	c, _, sleeps := newTestClient(t, srv, func(cfg *Config) { cfg.MaxBackoff = 5 * time.Second })
	if _, err := c.Predict(context.Background(), "syn", []float64{1}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != time.Second {
		t.Fatalf("Retry-After not honored: slept %v, want [1s]", *sleeps)
	}
}

func TestRetryAfterHTTPDateHonoredAndCapped(t *testing.T) {
	clkStart := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// 30s in the future per the fake clock — beyond MaxBackoff.
			w.Header().Set("Retry-After", clkStart.Add(30*time.Second).Format(http.TimeFormat))
			writeEnvelope(w, http.StatusServiceUnavailable, "draining", "later")
			return
		}
		writePredict(w, 3)
	}))
	defer srv.Close()
	c, _, sleeps := newTestClient(t, srv, func(cfg *Config) { cfg.MaxBackoff = 2 * time.Second })
	if _, err := c.Predict(context.Background(), "syn", []float64{1}); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 2*time.Second {
		t.Fatalf("HTTP-date Retry-After not capped at MaxBackoff: %v", *sleeps)
	}
}

func TestBackoffJitterDeterministicAndCapped(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		c, err := New(Config{BaseURL: "http://x", Seed: seed,
			BaseBackoff: 50 * time.Millisecond, MaxBackoff: 200 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		for attempt := 0; attempt < 8; attempt++ {
			out = append(out, c.backoff(attempt, 0))
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
		ceiling := 50 * time.Millisecond << i
		if ceiling > 200*time.Millisecond || ceiling <= 0 {
			ceiling = 200 * time.Millisecond
		}
		if a[i] <= 0 || a[i] > ceiling {
			t.Fatalf("backoff[%d] = %v outside (0, %v]", i, a[i], ceiling)
		}
	}
	if d := mk(8); fmt.Sprint(d) == fmt.Sprint(a) {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestTransportErrorRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writePredict(w, 1)
	}))
	srv.Close() // immediately: every dial fails
	c, _, sleeps := newTestClient(t, srv, nil)
	_, err := c.Predict(context.Background(), "syn", []float64{1})
	if err == nil {
		t.Fatal("Predict against closed server should fail")
	}
	if len(*sleeps) != 2 {
		t.Fatalf("transport errors retried %d times, want 2 (MaxAttempts=3): %v", len(*sleeps), *sleeps)
	}
}

func TestOverallDeadlineStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusServiceUnavailable, "draining", "later")
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, func(cfg *Config) {
		cfg.MaxAttempts = 100
		cfg.OverallTimeout = 50 * time.Millisecond
	})
	// Real sleeps here so the overall deadline actually elapses.
	c.sleep = sleepCtx
	start := time.Now()
	_, err := c.Predict(context.Background(), "syn", []float64{1})
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("overall deadline did not stop retries (took %v)", elapsed)
	}
}

func TestBreakerOpensAndRejects(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusInternalServerError, "internal", "boom")
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	c, _, _ := newTestClient(t, srv, func(cfg *Config) {
		cfg.Registry = reg
		cfg.Breaker.FailureThreshold = 3
	})
	// 500 is terminal (no retry) but a breaker failure: three calls trip it.
	for i := 0; i < 3; i++ {
		if _, err := c.Predict(context.Background(), "syn", []float64{1}); err == nil {
			t.Fatal("want error")
		}
	}
	if got := c.BreakerState("syn"); got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}
	_, err := c.Predict(context.Background(), "syn", []float64{1})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counter(CtrBreakerOpened) != 1 || snap.Counter(CtrBreakerRejected) == 0 {
		t.Fatalf("breaker counters: opened=%d rejected=%d",
			snap.Counter(CtrBreakerOpened), snap.Counter(CtrBreakerRejected))
	}
	if snap.Gauge(GaugeBreakerStatePrefix+"syn") != stateOpen {
		t.Fatalf("state gauge = %d, want open", snap.Gauge(GaugeBreakerStatePrefix+"syn"))
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			writeEnvelope(w, http.StatusInternalServerError, "internal", "boom")
			return
		}
		writePredict(w, 9)
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	c, clk, _ := newTestClient(t, srv, func(cfg *Config) {
		cfg.Registry = reg
		cfg.Breaker.FailureThreshold = 2
		cfg.Breaker.OpenFor = time.Second
	})
	for i := 0; i < 2; i++ {
		c.Predict(context.Background(), "syn", []float64{1})
	}
	if got := c.BreakerState("syn"); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	// Before the cool-off: still rejected.
	if _, err := c.Predict(context.Background(), "syn", []float64{1}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen before cool-off, got %v", err)
	}
	// After the cool-off the probe is admitted; server healthy again.
	failing.Store(false)
	clk.advance(2 * time.Second)
	res, err := c.Predict(context.Background(), "syn", []float64{1})
	if err != nil {
		t.Fatalf("probe should succeed: %v", err)
	}
	if res.Label != 9 {
		t.Fatalf("label = %d, want 9", res.Label)
	}
	if got := c.BreakerState("syn"); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if got := reg.Snapshot().Counter(CtrBreakerClosed); got != 1 {
		t.Fatalf("closed counter = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusInternalServerError, "internal", "boom")
	}))
	defer srv.Close()
	c, clk, _ := newTestClient(t, srv, func(cfg *Config) {
		cfg.Breaker.FailureThreshold = 1
		cfg.Breaker.OpenFor = time.Second
	})
	c.Predict(context.Background(), "syn", []float64{1}) // trips
	clk.advance(2 * time.Second)
	c.Predict(context.Background(), "syn", []float64{1}) // failed probe
	if got := c.BreakerState("syn"); got != "open" {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
}

func TestBreakerPerModelIsolation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Model == "bad" {
			writeEnvelope(w, http.StatusInternalServerError, "internal", "boom")
			return
		}
		writePredict(w, 4)
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, func(cfg *Config) { cfg.Breaker.FailureThreshold = 1 })
	c.Predict(context.Background(), "bad", []float64{1})
	if got := c.BreakerState("bad"); got != "open" {
		t.Fatalf("bad model state = %q, want open", got)
	}
	// The healthy model is unaffected by bad's open breaker.
	if _, err := c.Predict(context.Background(), "good", []float64{1}); err != nil {
		t.Fatalf("good model should serve: %v", err)
	}
	if got := c.BreakerState("good"); got != "closed" {
		t.Fatalf("good model state = %q, want closed", got)
	}
}

func Test429IsNotABreakerFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusTooManyRequests, "overloaded", "shed")
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, func(cfg *Config) {
		cfg.Breaker.FailureThreshold = 2
		cfg.MaxAttempts = 10
	})
	c.Predict(context.Background(), "syn", []float64{1})
	if got := c.BreakerState("syn"); got != "closed" {
		t.Fatalf("429s must not trip the breaker: state = %q", got)
	}
}

func TestPredictBatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/predict:batch" {
			t.Errorf("path = %s", r.URL.Path)
		}
		var req predictBatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		labels := make([]int, len(req.Series))
		for i := range labels {
			labels[i] = i
		}
		json.NewEncoder(w).Encode(map[string]any{"model": "syn", "version": 2, "labels": labels})
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, nil)
	res, err := c.PredictBatch(context.Background(), "syn", [][]float64{{1}, {2}, {3}})
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	if len(res.Labels) != 3 || res.Version != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestEnvelopeFallbackForNonJSONBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, func(cfg *Config) { cfg.MaxAttempts = 1 })
	_, err := c.Predict(context.Background(), "syn", []float64{1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Code != "http_502" {
		t.Fatalf("fallback code = %q, want http_502", apiErr.Code)
	}
	if !strings.Contains(apiErr.Error(), "502") {
		t.Fatalf("Error() should carry the status: %q", apiErr.Error())
	}
}

func TestReadyAndWaitReady(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("path = %s", r.URL.Path)
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, nil)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		ready.Store(true) // flips ready on the first poll sleep
		return ctx.Err()
	}
	if err := c.Ready(context.Background()); err == nil {
		t.Fatal("Ready should fail while 503")
	}
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"-1", 0},
		{"garbage", 0},
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10 * time.Second},
		{now.Add(-10 * time.Second).Format(http.TimeFormat), 0},
	} {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestConcurrentClientIsRaceFree(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writePredict(w, 1)
	}))
	defer srv.Close()
	c, _, _ := newTestClient(t, srv, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := fmt.Sprintf("m%d", i%3)
			for j := 0; j < 20; j++ {
				c.Predict(context.Background(), model, []float64{1})
			}
		}(i)
	}
	wg.Wait()
}
