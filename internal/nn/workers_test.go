package nn

import (
	"reflect"
	"testing"

	"rpm/internal/datagen"
)

// TestPredictBatchWorkersDeterminism asserts both 1NN baselines return
// identical labels for the sequential and fanned-out batch paths.
func TestPredictBatchWorkersDeterminism(t *testing.T) {
	s := datagen.MustByName("SynCoffee").Generate(2)

	ed := NewED(s.Train)
	ed.Workers = 1
	seqED := ed.PredictBatch(s.Test)
	ed.Workers = 8
	parED := ed.PredictBatch(s.Test)
	if !reflect.DeepEqual(seqED, parED) {
		t.Fatalf("NN-ED labels diverge:\n  w=1: %v\n  w=8: %v", seqED, parED)
	}

	dtw := NewDTW(s.Train, 5)
	dtw.Workers = 1
	seqDTW := dtw.PredictBatch(s.Test)
	dtw.Workers = 8
	parDTW := dtw.PredictBatch(s.Test)
	if !reflect.DeepEqual(seqDTW, parDTW) {
		t.Fatalf("NN-DTW labels diverge:\n  w=1: %v\n  w=8: %v", seqDTW, parDTW)
	}
}

// TestBestWindowWorkersDeterminism asserts the LOOCV window selection is
// worker-count independent (the correct-count is an integer sum).
func TestBestWindowWorkersDeterminism(t *testing.T) {
	s := datagen.MustByName("SynCoffee").Generate(2)
	w1 := BestWindowWorkers(s.Train, 0.2, 1)
	w8 := BestWindowWorkers(s.Train, 0.2, 8)
	if w1 != w8 {
		t.Fatalf("BestWindow diverges: w=1 → %d, w=8 → %d", w1, w8)
	}
	if w0 := BestWindow(s.Train, 0.2); w0 != w1 {
		t.Fatalf("BestWindow(all cores) = %d, sequential = %d", w0, w1)
	}
}
