package nn

import (
	"testing"
	"time"

	"rpm/internal/datagen"
)

// BenchmarkNNDTWParallel measures 1NN-DTW batch classification (LB_Keogh
// pruning + early-abandoning DTW per query) at GOMAXPROCS workers,
// reporting the speedup over the exact sequential path. Run with
// `-cpu 1,4` to see the scaling.
func BenchmarkNNDTWParallel(b *testing.B) {
	s := datagen.MustByName("SynCBF").Generate(1)
	c := NewDTW(s.Train, 8)
	const reps = 3
	c.Workers = 1
	start := time.Now()
	for r := 0; r < reps; r++ {
		c.PredictBatch(s.Test)
	}
	seq := time.Since(start) / reps
	c.Workers = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatch(s.Test)
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		par := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
	}
}

// BenchmarkNNEDParallel is the Euclidean counterpart.
func BenchmarkNNEDParallel(b *testing.B) {
	s := datagen.MustByName("SynCBF").Generate(1)
	c := NewED(s.Train)
	const reps = 3
	c.Workers = 1
	start := time.Now()
	for r := 0; r < reps; r++ {
		c.PredictBatch(s.Test)
	}
	seq := time.Since(start) / reps
	c.Workers = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatch(s.Test)
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		par := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
	}
}
