#!/usr/bin/env bash
# lint_drill.sh — prove each interprocedural rpmlint analyzer still
# catches its invariant. For every analyzer a deliberately violating
# (but compiling) package is written to a scratch directory and rpmlint
# must exit 1 naming that analyzer; a drill that passes lint means the
# analyzer has gone blind and the gate is lying.
set -euo pipefail
cd "$(dirname "$0")/.."

DRILL_DIR=lintdrill
trap 'rm -rf "$DRILL_DIR"' EXIT
mkdir -p "$DRILL_DIR"

fail() { echo "lint-drill: $*" >&2; exit 1; }

# run_case <analyzer>: reads the violating file from stdin, runs
# rpmlint over the scratch package, and requires exit 1 plus the
# analyzer's name in the output.
run_case() {
  local analyzer=$1
  cat > "$DRILL_DIR/drill.go"
  local out status=0
  out=$(go run ./cmd/rpmlint "./$DRILL_DIR" 2>&1) || status=$?
  if [ "$status" -eq 0 ]; then
    fail "$analyzer: seeded violation passed lint (analyzer gone blind)"
  fi
  if [ "$status" -ne 1 ]; then
    fail "$analyzer: rpmlint exited $status, want 1: $out"
  fi
  if ! grep -q "\[$analyzer\]" <<<"$out"; then
    fail "$analyzer: exit 1 but no [$analyzer] finding in output: $out"
  fi
  echo "lint-drill: $analyzer caught its seeded violation"
}

run_case hotpathalloc <<'EOF'
package lintdrill

//rpmlint:hotpath drill: must be allocation-free
func Hot(n int) []int { return make([]int, n) }
EOF

run_case ctxflow <<'EOF'
package lintdrill

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func hold(ctx context.Context) error { return work(context.Background()) }
EOF

run_case obsnames <<'EOF'
package lintdrill

import "rpm/internal/obs"

func record(reg *obs.Registry) { reg.Counter("drill.raw.name").Inc() }
EOF

run_case faultsite <<'EOF'
package lintdrill

import "rpm/internal/faults"

func hit(in *faults.Injector) bool { return in.Fire("drill.bogus.site") }
EOF

run_case staleignore <<'EOF'
package lintdrill

//rpmlint:ignore floateq drill: suppresses nothing
func stale() int { return 3 }
EOF

echo "lint-drill: all 5 analyzers proved live"
