package svgplot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// renderLine is a helper returning the SVG text.
func renderLine(t *testing.T, c LineChart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func renderScatter(t *testing.T, c ScatterChart) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// wellFormed checks the output parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestLineChartBasics(t *testing.T) {
	svg := renderLine(t, LineChart{
		Title:  "A <Title> & friends",
		XLabel: "t",
		YLabel: "value",
		Series: []Series{
			{Name: "sine", Y: []float64{0, 1, 0, -1, 0}},
			{Name: "ramp", X: []float64{0, 1, 2, 3, 4}, Y: []float64{0, 2, 4, 6, 8}},
		},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Error("no polyline elements")
	}
	if strings.Count(svg, "polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "polyline"))
	}
	if !strings.Contains(svg, "&lt;Title&gt;") || !strings.Contains(svg, "&amp;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "sine") || !strings.Contains(svg, "ramp") {
		t.Error("legend missing")
	}
}

func TestLineChartEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	if err := (LineChart{}).Render(&buf); err == nil {
		t.Error("expected error for empty chart")
	}
}

func TestScatterChartWithDiagonal(t *testing.T) {
	svg := renderScatter(t, ScatterChart{
		Title:    "Fig 7",
		XLabel:   "rival error",
		YLabel:   "RPM error",
		Diagonal: true,
		Groups: []Points{
			{Name: "datasets", X: []float64{0.1, 0.2, 0.3}, Y: []float64{0.05, 0.25, 0.1}},
		},
	})
	wellFormed(t, svg)
	if strings.Count(svg, "<circle") != 3 {
		t.Errorf("want 3 circles, got %d", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("diagonal missing")
	}
}

func TestScatterLogLogDropsNonPositive(t *testing.T) {
	svg := renderScatter(t, ScatterChart{
		LogLog:   true,
		Diagonal: true,
		Groups: []Points{
			{X: []float64{0.5, 10, 0}, Y: []float64{1, 100, 5}},
		},
	})
	wellFormed(t, svg)
	// the (0, 5) point cannot be drawn on a log axis
	if got := strings.Count(svg, "<circle"); got != 2 {
		t.Errorf("want 2 circles on log axes, got %d", got)
	}
}

func TestScatterEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	if err := (ScatterChart{}).Render(&buf); err == nil {
		t.Error("expected error for empty scatter")
	}
}

func TestTicksAreRoundAndOrdered(t *testing.T) {
	for _, r := range [][2]float64{{0, 1}, {-3, 7}, {0.001, 0.009}, {5, 5000}} {
		ts := ticks(r[0], r[1])
		if len(ts) < 3 || len(ts) > 12 {
			t.Errorf("range %v: %d ticks", r, len(ts))
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Errorf("range %v: ticks not increasing: %v", r, ts)
			}
		}
		for _, x := range ts {
			if x < r[0]-1e-9 || x > r[1]+1e-9 {
				t.Errorf("range %v: tick %v outside", r, x)
			}
		}
	}
}

func TestTicksDegenerate(t *testing.T) {
	if got := ticks(3, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("degenerate ticks = %v", got)
	}
	if got := ticks(0, math.Inf(1)); len(got) != 1 {
		t.Errorf("infinite ticks = %v", got)
	}
}

func TestMinMaxSkipsNonFinite(t *testing.T) {
	lo, hi := minMax([]float64{math.NaN(), 2, math.Inf(1), -1})
	if lo != -1 || hi != 2 {
		t.Errorf("minMax = %v, %v", lo, hi)
	}
	lo, hi = minMax(nil)
	if lo != 0 || hi != 1 {
		t.Errorf("empty minMax = %v, %v", lo, hi)
	}
}
