package core

import (
	"math/rand"
	"testing"

	"rpm/internal/sax"
	"rpm/internal/sequitur"
	"rpm/internal/ts"
)

// Junction-constraint tests (paper §3.2.2, Fig. 4): candidate occurrences
// mined from the concatenated class series must never cross a boundary
// between two training instances — such windows are concatenation
// artifacts, not real patterns.

func randJunctionDataset(rng *rand.Rand, instances int) ts.Dataset {
	d := make(ts.Dataset, instances)
	for i := range d {
		n := 30 + rng.Intn(60)
		v := make([]float64, n)
		// random walk so SAX words repeat and the grammar finds rules
		for j := 1; j < n; j++ {
			v[j] = v[j-1] + 0.4*rng.NormFloat64()
		}
		d[i] = ts.Instance{Values: v, Label: 0}
	}
	return d
}

// TestPropDiscretizeSkipsJunctions: the skip predicate wired into
// findMotifGroups must filter exactly the junction-spanning windows, so
// no emitted SAX word starts in one instance and ends in another.
func TestPropDiscretizeSkipsJunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for it := 0; it < 30; it++ {
		d := randJunctionDataset(rng, 2+rng.Intn(4))
		concat := ts.ConcatDataset(d)
		p := sax.Params{Window: 8 + rng.Intn(12), PAA: 4, Alphabet: 4}
		words := sax.Discretize(concat.Values, p, true, func(start int) bool {
			return concat.SpansJunction(start, p.Window)
		})
		for _, w := range words {
			si := concat.SeriesIndex(w.Offset)
			sj := concat.SeriesIndex(w.Offset + p.Window - 1)
			if si < 0 || si != sj {
				t.Fatalf("it %d: word at offset %d (window %d) crosses junction: series %d..%d",
					it, w.Offset, p.Window, si, sj)
			}
		}
	}
}

// TestPropRuleOccurrencesWithinInstance: every occurrence that
// ruleOccurrences emits lies entirely within a single training instance,
// and its values are a verbatim slice of that instance.
func TestPropRuleOccurrencesWithinInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for it := 0; it < 30; it++ {
		d := randJunctionDataset(rng, 2+rng.Intn(4))
		concat := ts.ConcatDataset(d)
		p := sax.Params{Window: 8 + rng.Intn(8), PAA: 3, Alphabet: 3}
		words := sax.Discretize(concat.Values, p, true, func(start int) bool {
			return concat.SpansJunction(start, p.Window)
		})
		if len(words) < 2 {
			continue
		}
		tokens := make([]int, len(words))
		intern := map[string]int{}
		for i, w := range words {
			id, ok := intern[w.Word]
			if !ok {
				id = len(intern)
				intern[w.Word] = id
			}
			tokens[i] = id
		}
		g := sequitur.Infer(tokens)
		for _, rule := range g.Rules() {
			occs := ruleOccurrences(rule.Spans, words, concat, p.Window)
			for _, occ := range occs {
				if occ.series < 0 || occ.series >= len(d) {
					t.Fatalf("it %d: occurrence series %d out of range", it, occ.series)
				}
				inst := d[occ.series].Values
				if occ.start < 0 || occ.start+len(occ.values) > len(inst) {
					t.Fatalf("it %d: occurrence [%d, %d) overflows instance %d (len %d)",
						it, occ.start, occ.start+len(occ.values), occ.series, len(inst))
				}
				for k, v := range occ.values {
					if inst[occ.start+k] != v {
						t.Fatalf("it %d: occurrence values diverge from instance %d at +%d", it, occ.series, k)
					}
				}
			}
		}
	}
}

// TestRuleOccurrencesDropCrossJunction: a hand-built span that covers a
// junction must be dropped while an in-instance span of the same rule
// survives — the filter is per-occurrence, not per-rule.
func TestRuleOccurrencesDropCrossJunction(t *testing.T) {
	// two instances of length 20; windows of 6
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i)
	}
	concat := ts.Concat(a, b)
	window := 6
	// words at offsets 0 (inside A), 17 (A/B junction), 22 (inside B)
	words := []sax.WordAt{
		{Word: "aaa", Offset: 0},
		{Word: "aaa", Offset: 17},
		{Word: "aaa", Offset: 22},
	}
	spans := []sequitur.Span{
		{Start: 0, End: 0}, // tokens[0]: raw [0, 6) — inside instance 0
		{Start: 1, End: 1}, // tokens[1]: raw [17, 23) — crosses the junction at 20
		{Start: 2, End: 2}, // tokens[2]: raw [22, 28) — inside instance 1
	}
	occs := ruleOccurrences(spans, words, concat, window)
	if len(occs) != 2 {
		t.Fatalf("got %d occurrences, want 2 (junction occurrence dropped): %+v", len(occs), occs)
	}
	if occs[0].series != 0 || occs[0].start != 0 {
		t.Fatalf("first occurrence misplaced: %+v", occs[0])
	}
	if occs[1].series != 1 || occs[1].start != 2 {
		t.Fatalf("second occurrence misplaced: %+v", occs[1])
	}
}
