package lint

import (
	"go/ast"
)

// BareGoroutine flags `go` statements outside the packages that own
// concurrency (internal/parallel's worker pool, the serving layer,
// obs) and the cmd/ entry points. Hot-path fan-out must go through the
// worker pool so obs pool accounting, panic propagation, and context
// cancellation stay correct (PR 1's concurrency discipline, PR 3's
// attribution, PR 4's drain semantics). A goroutine that genuinely
// cannot ride the pool takes a reasoned //rpmlint:ignore baregoroutine
// directive.
var BareGoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc:  "go statements outside the worker-pool/serving/obs layers",
	Run:  runBareGoroutine,
}

func runBareGoroutine(pass *Pass) {
	if pass.Config.goroutineExempt(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare goroutine outside the worker-pool/serving/obs layers; use internal/parallel so cancellation and pool accounting hold")
			}
			return true
		})
	}
}
