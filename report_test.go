package rpm

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func instrumentedOpts() Options {
	o := DefaultOptions()
	o.Splits = 2
	o.MaxEvals = 8
	o.Instrument = true
	return o
}

// TestTrainReport is the public acceptance test for the instrumentation
// surface: training with Options.Instrument yields a report whose
// headline counters are all positive on a non-trivial dataset, whose
// stage tree covers the paper's steps, and whose JSON round-trips.
func TestTrainReport(t *testing.T) {
	split := GenerateDataset("SynItalyPower", 3)
	clf, err := Train(split.Train, instrumentedOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep := clf.TrainReport()
	if rep == nil {
		t.Fatal("TrainReport returned nil after instrumented training")
	}
	for _, ctr := range []string{
		CounterCandidates, CounterClustersKept, CounterPruneKept,
		CounterCacheHits, CounterCacheMisses, CounterSearchEvals,
		CounterCFSExpansions, CounterCFSSelected,
	} {
		if v := rep.Counter(ctr); v <= 0 {
			t.Errorf("counter %q = %d, want > 0", ctr, v)
		}
	}
	for _, st := range []string{StageTrain, StageParamSearch, StageCandidates, StageStep1, StageStep2, StageStep3, StageFit} {
		s := rep.Stage(st)
		if s == nil {
			t.Fatalf("stage %q missing", st)
		}
		if s.Wall <= 0 {
			t.Errorf("stage %q wall = %v, want > 0", st, s.Wall)
		}
	}
	if rep.Stage("no-such-stage") != nil {
		t.Error("Stage on unknown name must return nil")
	}

	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round TrainReport
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if round.Counter(CounterCandidates) != rep.Counter(CounterCandidates) {
		t.Fatal("round-tripped counter value differs")
	}

	txt := rep.String()
	for _, want := range []string{"stages:", StageTrain, "counters:", CounterCandidates, "pools:"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("report text missing %q:\n%s", want, txt)
		}
	}
}

// TestTrainReportOff: without Instrument the report is nil and its
// nil-tolerant readers behave.
func TestTrainReportOff(t *testing.T) {
	split := GenerateDataset("SynItalyPower", 3)
	o := instrumentedOpts()
	o.Instrument = false
	clf, err := Train(split.Train, o)
	if err != nil {
		t.Fatal(err)
	}
	rep := clf.TrainReport()
	if rep != nil {
		t.Fatal("TrainReport must be nil without Options.Instrument")
	}
	if rep.Counter(CounterCandidates) != 0 || rep.Stage(StageTrain) != nil {
		t.Fatal("nil report readers must return zero values")
	}
	if b, err := rep.JSON(); err != nil || string(b) != "null" {
		t.Fatalf("nil report JSON = %q, %v", b, err)
	}
	if !strings.Contains(rep.String(), "not instrumented") {
		t.Fatalf("nil report String = %q", rep.String())
	}
}

// TestInstrumentDoesNotChangeModel is the public half of the
// byte-identity guarantee: instrumented and uninstrumented training
// agree on every observable model property.
func TestInstrumentDoesNotChangeModel(t *testing.T) {
	split := GenerateDataset("SynItalyPower", 3)
	on := instrumentedOpts()
	off := instrumentedOpts()
	off.Instrument = false
	a, err := Train(split.Train, on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(split.Train, off)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Patterns(), b.Patterns()) {
		t.Fatal("patterns differ under instrumentation")
	}
	if !reflect.DeepEqual(a.PerClassParams(), b.PerClassParams()) {
		t.Fatal("selected parameters differ under instrumentation")
	}
	if !reflect.DeepEqual(a.PredictBatch(split.Test), b.PredictBatch(split.Test)) {
		t.Fatal("predictions differ under instrumentation")
	}
}
