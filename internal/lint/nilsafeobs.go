package lint

import (
	"go/ast"
	"go/token"
)

// NilSafeObs enforces PR 3's "nil handles never steer" contract
// mechanically: every exported pointer-receiver method in the obs
// package must begin with a nil-receiver guard
//
//	if r == nil { return ... }
//
// so that a nil *Registry (instrumentation off) propagates nil
// sub-handles and every recording call is a no-op. Value-receiver
// methods (snapshot value types) are exempt, as are methods whose
// receiver is blank (they cannot dereference it).
var NilSafeObs = &Analyzer{
	Name: "nilsafeobs",
	Doc:  "exported pointer-receiver obs methods must start with a nil guard",
	Run:  runNilSafeObs,
}

func runNilSafeObs(pass *Pass) {
	if pass.Pkg.Path() != pass.Config.ObsPkg {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
				continue
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue
			}
			name := recv.Names[0].Name
			if !startsWithNilGuard(fd.Body, name) {
				pass.Reportf(fd.Pos(), "exported obs method %s must begin with `if %s == nil { ... }` so nil handles stay no-ops", fd.Name.Name, name)
			}
		}
	}
}

// startsWithNilGuard reports whether the first statement of body is an
// if statement whose condition checks the receiver name against nil
// with == — either alone or as the left-most disjunct of an || chain
// (short-circuit evaluation makes `s == nil || s.x.IsZero()` safe) —
// and whose body terminates (contains a return).
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	// Descend to the left-most operand of any || chain: it is the
	// first condition evaluated.
	for cond.Op == token.LOR {
		inner, ok := ast.Unparen(cond.X).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		cond = inner
	}
	if cond.Op != token.EQL {
		return false
	}
	if !isIdentNilPair(cond.X, cond.Y, recv) && !isIdentNilPair(cond.Y, cond.X, recv) {
		return false
	}
	for _, s := range ifs.Body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func isIdentNilPair(a, b ast.Expr, recv string) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok || ai.Name != recv {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	return ok && bi.Name == "nil"
}
