package rpm

import "testing"

func TestDiscoverMotifs(t *testing.T) {
	split := GenerateDataset("SynCBF", 1)
	motifs := DiscoverMotifs(split.Train, SAXParams{Window: 40, PAA: 6, Alphabet: 4}, DefaultOptions())
	if len(motifs) != 3 {
		t.Fatalf("motifs for %d classes, want 3", len(motifs))
	}
	for class, ms := range motifs {
		if len(ms) == 0 {
			t.Errorf("class %d has no motifs", class)
			continue
		}
		prev := ms[0].Support
		for _, m := range ms {
			if m.Class != class {
				t.Errorf("motif in wrong bucket: %d vs %d", m.Class, class)
			}
			if m.Support > prev {
				t.Error("motifs not sorted by support")
			}
			prev = m.Support
			if m.Support < 2 || len(m.Occurrences) < m.Support {
				t.Errorf("support %d inconsistent with %d occurrences", m.Support, len(m.Occurrences))
			}
			if len(m.Prototype) == 0 {
				t.Error("empty prototype")
			}
			// occurrences must point into real instances
			classInstances := 0
			for _, in := range split.Train {
				if in.Label == class {
					classInstances++
				}
			}
			for _, o := range m.Occurrences {
				if o.Series < 0 || o.Series >= classInstances {
					t.Errorf("occurrence series %d out of range", o.Series)
				}
				if len(o.Values) == 0 || o.Start < 0 {
					t.Error("degenerate occurrence")
				}
			}
		}
	}
}

func TestDiscoverMotifsSaveLoadIndependence(t *testing.T) {
	// DiscoverMotifs must not depend on parameter-search options.
	split := GenerateDataset("SynGunPoint", 2)
	o1 := DefaultOptions()
	o1.MaxEvals = 5
	o2 := DefaultOptions()
	o2.MaxEvals = 500
	m1 := DiscoverMotifs(split.Train, SAXParams{Window: 30, PAA: 6, Alphabet: 4}, o1)
	m2 := DiscoverMotifs(split.Train, SAXParams{Window: 30, PAA: 6, Alphabet: 4}, o2)
	for class := range m1 {
		if len(m1[class]) != len(m2[class]) {
			t.Errorf("class %d: motif counts differ with unrelated options", class)
		}
	}
}
