package direct

import (
	"math"
	"testing"
)

func TestSphere(t *testing.T) {
	f := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v * v
		}
		return s
	}
	res := Minimize(f, []float64{-5, -5}, []float64{5, 5}, Options{MaxEvals: 500})
	if res.F > 0.01 {
		t.Errorf("sphere minimum %v at %v, want ~0", res.F, res.X)
	}
	if res.Evals > 500 {
		t.Errorf("budget exceeded: %d", res.Evals)
	}
}

func TestShiftedMinimum(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3.2)*(x[0]-3.2) + (x[1]+1.7)*(x[1]+1.7)
	}
	res := Minimize(f, []float64{-10, -10}, []float64{10, 10}, Options{MaxEvals: 2000})
	if math.Abs(res.X[0]-3.2) > 0.1 || math.Abs(res.X[1]+1.7) > 0.1 {
		t.Errorf("minimum at %v, want (3.2,-1.7); f=%v", res.X, res.F)
	}
}

func TestMultimodalFindsGlobal(t *testing.T) {
	// f has a shallow local min near x=4 and the global min near x=-3.
	f := func(x []float64) float64 {
		v := x[0]
		return 0.05*(v-4)*(v-4) - 5*math.Exp(-(v+3)*(v+3))
	}
	res := Minimize(f, []float64{-10}, []float64{10}, Options{MaxEvals: 300})
	if math.Abs(res.X[0]+3) > 0.3 {
		t.Errorf("found %v (f=%v), want global minimum near -3", res.X, res.F)
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := Minimize(f, []float64{-2, -2}, []float64{2, 2}, Options{MaxEvals: 3000})
	if res.F > 0.1 {
		t.Errorf("rosenbrock f=%v at %v", res.F, res.X)
	}
}

func TestBudgetRespected(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 {
		calls++
		return x[0]
	}
	res := Minimize(f, []float64{0}, []float64{1}, Options{MaxEvals: 17})
	if calls > 17 {
		t.Errorf("made %d calls, budget 17", calls)
	}
	if res.Evals != calls {
		t.Errorf("Evals=%d, calls=%d", res.Evals, calls)
	}
}

func TestDegenerateBox(t *testing.T) {
	// zero-width dimension: lo == hi
	f := func(x []float64) float64 { return x[0]*x[0] + x[1] }
	res := Minimize(f, []float64{0, 2}, []float64{4, 2}, Options{MaxEvals: 100})
	if res.X[1] != 2 {
		t.Errorf("fixed dimension moved: %v", res.X)
	}
	if math.Abs(res.X[0]) > 0.2 {
		t.Errorf("free dimension not optimized: %v", res.X)
	}
}

func TestNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0.5 {
			return math.NaN()
		}
		return x[0]
	}
	res := Minimize(f, []float64{0}, []float64{1}, Options{MaxEvals: 100})
	if math.IsNaN(res.F) || math.IsInf(res.F, 0) {
		t.Errorf("best value %v; NaN region should be avoided", res.F)
	}
	if res.X[0] < 0.5 {
		t.Errorf("returned point in NaN region: %v", res.X)
	}
}

func TestPanicsOnBadBounds(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{0}, []float64{1, 2}},
		{"inverted", []float64{1}, []float64{0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Minimize(func(x []float64) float64 { return 0 }, c.lo, c.hi, Options{})
		})
	}
}

func TestIntegerRoundedObjective(t *testing.T) {
	// Mimics RPM's use: the objective rounds to integer grid points
	// (SAX params). DIRECT must still find the best cell.
	f := func(x []float64) float64 {
		w := math.Round(x[0])
		p := math.Round(x[1])
		return math.Abs(w-17) + math.Abs(p-5)
	}
	res := Minimize(f, []float64{2, 2}, []float64{60, 12}, Options{MaxEvals: 400})
	if res.F > 0.5 {
		t.Errorf("integer objective best %v at %v", res.F, res.X)
	}
}

func TestResultInsideBoundsAndConsistent(t *testing.T) {
	// Property: the reported optimum lies inside the box and F matches a
	// re-evaluation of the objective at X.
	objectives := []func([]float64) float64{
		func(x []float64) float64 { return math.Sin(x[0]) + x[1]*x[1] },
		func(x []float64) float64 { return math.Abs(x[0]-1) * (2 + math.Cos(x[1]*3)) },
		func(x []float64) float64 { return -math.Exp(-(x[0]*x[0] + x[1]*x[1])) },
	}
	lo := []float64{-4, -2}
	hi := []float64{3, 5}
	for i, f := range objectives {
		res := Minimize(f, lo, hi, Options{MaxEvals: 300})
		for d := range lo {
			if res.X[d] < lo[d]-1e-9 || res.X[d] > hi[d]+1e-9 {
				t.Errorf("objective %d: X[%d]=%v outside [%v,%v]", i, d, res.X[d], lo[d], hi[d])
			}
		}
		if math.Abs(f(res.X)-res.F) > 1e-12 {
			t.Errorf("objective %d: F=%v but f(X)=%v", i, res.F, f(res.X))
		}
	}
}

func TestHalfDiag(t *testing.T) {
	// level 0 in 2-D: sides 1, half diagonal = sqrt(0.5)/... = sqrt(1/4+1/4)
	if d := halfDiag([]int{0, 0}); math.Abs(d-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("halfDiag([0,0]) = %v", d)
	}
	// one trisection shrinks that dimension's contribution by 9x
	d1 := halfDiag([]int{1, 0})
	want := math.Sqrt(1.0/36 + 0.25)
	if math.Abs(d1-want) > 1e-12 {
		t.Errorf("halfDiag([1,0]) = %v, want %v", d1, want)
	}
}
